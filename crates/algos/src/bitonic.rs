//! Bitonic sorting network — the in-place GPU sort family.
//!
//! The paper's related work covers in-place bitonic GPU sorts (Peters
//! et al. \[35\]); Thrust's radix won out historically, but bitonic
//! remains the canonical data-oblivious network: a fixed sequence of
//! compare-exchange stages independent of the data, O(n·log²n) work.
//!
//! Bitonic networks require power-of-two lengths. For arbitrary `n` we
//! pad to the next power of two with an explicit `+∞` sentinel
//! (`Padded(None)`), run the network, and keep the first `n` outputs —
//! the sentinels provably sort to the tail. (A "virtual padding" trick
//! that merely skips out-of-range comparisons is *not* correct for
//! bitonic networks: descending stages must move sentinels, which
//! skipping forbids. The first version of this module did exactly that
//! and was caught by the arbitrary-size tests.)
//!
//! The stage-parallel variant runs each `(k, j)` stage's independent
//! compare-exchanges on worker threads — the parallelism a GPU exploits.

use crate::keys::SortOrd;
use crate::par::{par_parts, split_evenly};

/// Element plus `+∞` sentinel for padding (None sorts after everything).
#[derive(Debug, Clone, Copy)]
struct Padded<T>(Option<T>);

impl<T: SortOrd> SortOrd for Padded<T> {
    #[inline(always)]
    fn total_order(&self, other: &Self) -> std::cmp::Ordering {
        match (&self.0, &other.0) {
            (Some(a), Some(b)) => a.total_order(b),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        }
    }
}

/// Sort in place with a sequential bitonic network (pads to the next
/// power of two internally; O(n·log²n) compare-exchanges).
pub fn bitonic_sort<T: SortOrd>(data: &mut [T]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        network(data, |d, i, l, asc| compare_exchange(d, i, l, asc));
        return;
    }
    let m = n.next_power_of_two();
    let mut padded: Vec<Padded<T>> = Vec::with_capacity(m);
    padded.extend(data.iter().map(|&x| Padded(Some(x))));
    padded.resize(m, Padded(None));
    network(&mut padded, compare_exchange);
    for (slot, p) in data.iter_mut().zip(padded) {
        *slot = p.0.expect("sentinels sort to the tail");
    }
}

/// Stage-parallel bitonic sort on `threads` workers.
pub fn par_bitonic_sort<T: SortOrd>(threads: usize, data: &mut [T]) {
    let n = data.len();
    let threads = threads.max(1);
    if threads == 1 || n < 4096 {
        bitonic_sort(data);
        return;
    }
    if n.is_power_of_two() {
        par_network(threads, data);
        return;
    }
    let m = n.next_power_of_two();
    let mut padded: Vec<Padded<T>> = Vec::with_capacity(m);
    padded.extend(data.iter().map(|&x| Padded(Some(x))));
    padded.resize(m, Padded(None));
    par_network(threads, &mut padded);
    for (slot, p) in data.iter_mut().zip(padded) {
        *slot = p.0.expect("sentinels sort to the tail");
    }
}

#[inline(always)]
fn compare_exchange<T: SortOrd>(data: &mut [T], i: usize, l: usize, ascending: bool) {
    let out_of_order = if ascending {
        data[l].lt(&data[i])
    } else {
        data[i].lt(&data[l])
    };
    if out_of_order {
        data.swap(i, l);
    }
}

/// Run the full network on a power-of-two slice, invoking `exchange`
/// for every in-range pair.
fn network<T, F>(data: &mut [T], mut exchange: F)
where
    F: FnMut(&mut [T], usize, usize, bool),
{
    let m = data.len();
    debug_assert!(m.is_power_of_two());
    let mut k = 2usize;
    while k <= m {
        let mut j = k / 2;
        while j >= 1 {
            for i in 0..m {
                let l = i ^ j;
                if l > i {
                    let ascending = (i & k) == 0;
                    exchange(data, i, l, ascending);
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// One stage-parallel network over a power-of-two slice.
fn par_network<T: SortOrd>(threads: usize, data: &mut [T]) {
    let m = data.len();
    debug_assert!(m.is_power_of_two());
    // Shared output pointer for disjoint compare-exchange pairs.
    struct Cell<T>(*mut T);
    // SAFETY: workers only dereference the pointer at pairwise-disjoint
    // index pairs within one stage (see the block comment below), so
    // sharing the wrapper across scoped threads cannot alias writes.
    unsafe impl<T: Send> Sync for Cell<T> {}
    let mut k = 2usize;
    while k <= m {
        let mut j = k / 2;
        while j >= 1 {
            let cell = Cell(data.as_mut_ptr());
            let cell_ref = &cell;
            let ranges = split_evenly(m, threads);
            par_parts(threads, ranges, move |_, range| {
                for i in range {
                    let l = i ^ j;
                    if l > i {
                        let ascending = (i & k) == 0;
                        // SAFETY: within one (k, j) stage, `i ^ j` is an
                        // involution, so the index pairs {i, i^j} are
                        // pairwise disjoint; only the lower index acts,
                        // and each lower index is visited by exactly
                        // one worker. The scoped join orders stages.
                        unsafe {
                            let a = &*cell_ref.0.add(i);
                            let b = &*cell_ref.0.add(l);
                            let out_of_order = if ascending { b.lt(a) } else { a.lt(b) };
                            if out_of_order {
                                std::ptr::swap(cell_ref.0.add(i), cell_ref.0.add(l));
                            }
                        }
                    }
                }
            });
            j /= 2;
        }
        k *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::introsort::introsort;
    use crate::verify::{fingerprint, is_sorted};

    fn lcg(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn sorts_power_of_two_sizes() {
        for n in [2usize, 4, 64, 1024] {
            let mut v = lcg(1, n);
            let fp = fingerprint(&v);
            bitonic_sort(&mut v);
            assert!(is_sorted(&v), "n={n}");
            assert_eq!(fingerprint(&v), fp, "n={n}");
        }
    }

    #[test]
    fn sorts_arbitrary_sizes() {
        for n in [0usize, 1, 3, 5, 100, 999, 1000, 1025, 4097] {
            let mut v = lcg(n as u64 + 1, n);
            let mut expect = v.clone();
            introsort(&mut expect);
            bitonic_sort(&mut v);
            assert_eq!(
                v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for n in [5000usize, 8192, 10_000] {
            let base = lcg(7, n);
            let mut a = base.clone();
            bitonic_sort(&mut a);
            for threads in [2usize, 3, 8] {
                let mut c = base.clone();
                par_bitonic_sort(threads, &mut c);
                assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    c.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn handles_duplicates_and_specials() {
        let mut v = vec![
            1.0f64,
            f64::NAN,
            -0.0,
            0.0,
            1.0,
            f64::NEG_INFINITY,
            1.0,
            f64::INFINITY,
        ];
        bitonic_sort(&mut v);
        assert!(is_sorted(&v));
        assert_eq!(v[0], f64::NEG_INFINITY);
        assert!(v[7].is_nan());
    }

    #[test]
    fn sorted_and_reverse() {
        let mut v: Vec<i64> = (0..3000).collect();
        bitonic_sort(&mut v);
        assert!(is_sorted(&v));
        let mut v: Vec<i64> = (0..3000).rev().collect();
        par_bitonic_sort(4, &mut v);
        assert!(is_sorted(&v));
        assert_eq!(v[0], 0);
    }

    #[test]
    fn key_value_records_too() {
        use crate::keys::KeyValue;
        let mut v: Vec<KeyValue> = lcg(5, 777)
            .into_iter()
            .enumerate()
            .map(|(i, key)| KeyValue {
                key,
                value: i as u64,
            })
            .collect();
        bitonic_sort(&mut v);
        assert!(is_sorted(&v));
        let mut payloads: Vec<u64> = v.iter().map(|r| r.value).collect();
        payloads.sort_unstable();
        assert!(payloads.iter().enumerate().all(|(i, &p)| p == i as u64));
    }
}
