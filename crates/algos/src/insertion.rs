//! Insertion sort — the small-array finisher used by the quicksort
//! family, plus a guarded variant for use on subranges whose left
//! neighbour is already a lower bound.

use crate::keys::SortOrd;

/// Sort a small slice by binary-shift insertion. O(n²) moves but minimal
/// constant factors; used below [`crate::introsort::INSERTION_CUTOFF`].
pub fn insertion_sort<T: SortOrd>(data: &mut [T]) {
    for i in 1..data.len() {
        let x = data[i];
        let mut j = i;
        while j > 0 && x.lt(&data[j - 1]) {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_reverse() {
        let mut v = vec![5, 4, 3, 2, 1];
        insertion_sort(&mut v);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn handles_empty_and_single() {
        let mut v: Vec<i32> = vec![];
        insertion_sort(&mut v);
        assert!(v.is_empty());
        let mut v = vec![9];
        insertion_sort(&mut v);
        assert_eq!(v, vec![9]);
    }

    #[test]
    fn stable_on_duplicates_by_value() {
        let mut v = vec![3, 1, 3, 1, 3];
        insertion_sort(&mut v);
        assert_eq!(v, vec![1, 1, 3, 3, 3]);
    }

    #[test]
    fn sorts_floats_with_total_order() {
        let mut v = vec![0.0f64, -0.0, 1.0, -1.0, f64::NAN, f64::NEG_INFINITY];
        insertion_sort(&mut v);
        assert!(v[0] == f64::NEG_INFINITY);
        assert!(v[1] == -1.0);
        assert!(v[2].is_sign_negative() && v[2] == 0.0); // -0.0
        assert!(v[3].is_sign_positive() && v[3] == 0.0); // +0.0
        assert!(v[4] == 1.0);
        assert!(v[5].is_nan());
    }
}
