//! Introsort — the `std::sort` stand-in of the reference implementation.
//!
//! Median-of-three quicksort with a heapsort fallback when recursion
//! exceeds `2·⌊log2 n⌋` (Musser's bound) and an insertion-sort finish
//! below a small cutoff. This mirrors what libstdc++'s `std::sort`
//! does, which Figure 4 of the paper uses as the sequential baseline
//! (and which matches the GNU parallel sort at 1 thread).

use crate::insertion::insertion_sort;
use crate::keys::SortOrd;

/// Below this length, ranges are finished with insertion sort.
pub const INSERTION_CUTOFF: usize = 24;

/// Sort `data` in place with introsort under the crate's total order.
pub fn introsort<T: SortOrd>(data: &mut [T]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let depth_limit = 2 * usize::BITS.saturating_sub(n.leading_zeros()) as usize;
    introsort_rec(data, depth_limit);
}

fn introsort_rec<T: SortOrd>(mut data: &mut [T], mut depth: usize) {
    // Tail-recurse into the larger side iteratively.
    while data.len() > INSERTION_CUTOFF {
        if depth == 0 {
            heapsort(data);
            return;
        }
        depth -= 1;
        let p = partition(data);
        let (lo, hi) = data.split_at_mut(p);
        let hi = &mut hi[1..]; // pivot in final position
        if lo.len() < hi.len() {
            introsort_rec(lo, depth);
            data = hi;
        } else {
            introsort_rec(hi, depth);
            data = lo;
        }
    }
    insertion_sort(data);
}

/// Hoare-style partition around a median-of-three pivot; returns the
/// pivot's final index.
fn partition<T: SortOrd>(data: &mut [T]) -> usize {
    let n = data.len();
    let mid = n / 2;
    // Median-of-three: order data[0], data[mid], data[n-1].
    if data[mid].lt(&data[0]) {
        data.swap(mid, 0);
    }
    if data[n - 1].lt(&data[0]) {
        data.swap(n - 1, 0);
    }
    if data[n - 1].lt(&data[mid]) {
        data.swap(n - 1, mid);
    }
    // Use median (at mid) as pivot; park it at n-2.
    data.swap(mid, n - 2);
    let pivot = data[n - 2];
    let mut i = 0usize;
    let mut j = n - 2;
    loop {
        i += 1;
        while data[i].lt(&pivot) {
            i += 1;
        }
        j -= 1;
        while pivot.lt(&data[j]) {
            j -= 1;
        }
        if i >= j {
            break;
        }
        data.swap(i, j);
    }
    data.swap(i, n - 2);
    i
}

/// Bottom-up heapsort (the introsort fallback; also exposed for tests).
pub fn heapsort<T: SortOrd>(data: &mut [T]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    for i in (0..n / 2).rev() {
        sift_down(data, i, n);
    }
    for end in (1..n).rev() {
        data.swap(0, end);
        sift_down(data, 0, end);
    }
}

fn sift_down<T: SortOrd>(data: &mut [T], mut root: usize, end: usize) {
    loop {
        let mut child = 2 * root + 1;
        if child >= end {
            return;
        }
        if child + 1 < end && data[child].lt(&data[child + 1]) {
            child += 1;
        }
        if data[root].lt(&data[child]) {
            data.swap(root, child);
            root = child;
        } else {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_sorted;

    fn check(mut v: Vec<i64>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        introsort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn empty_and_tiny() {
        check(vec![]);
        check(vec![1]);
        check(vec![2, 1]);
        check(vec![1, 2]);
    }

    #[test]
    fn random_like_patterns() {
        // Deterministic pseudo-random via LCG.
        let mut x = 0x243F6A8885A308D3u64;
        let v: Vec<i64> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 16) as i64 - (1 << 47)
            })
            .collect();
        check(v);
    }

    #[test]
    fn adversarial_patterns() {
        check((0..5000).collect()); // sorted
        check((0..5000).rev().collect()); // reverse
        check(vec![7; 5000]); // constant
        let organ: Vec<i64> = (0..2500).chain((0..2500).rev()).collect();
        check(organ); // organ pipe
        let saw: Vec<i64> = (0..5000).map(|i| i % 17).collect();
        check(saw); // many duplicates
    }

    #[test]
    fn heapsort_directly() {
        let mut v: Vec<i64> = (0..1000).rev().collect();
        heapsort(&mut v);
        assert!(is_sorted(&v));
        let mut v: Vec<i64> = vec![];
        heapsort(&mut v);
    }

    #[test]
    fn floats_with_nans_and_zeros() {
        let mut v = vec![
            1.5f64,
            f64::NAN,
            -0.0,
            f64::NEG_INFINITY,
            0.0,
            -f64::NAN,
            3.0,
            f64::INFINITY,
        ];
        introsort(&mut v);
        assert!(v[0].is_nan() && v[0].is_sign_negative()); // -NaN first
        assert_eq!(v[1], f64::NEG_INFINITY);
        assert!(v[2] == 0.0 && v[2].is_sign_negative());
        assert!(v[3] == 0.0 && v[3].is_sign_positive());
        assert_eq!(v[4], 1.5);
        assert_eq!(v[5], 3.0);
        assert_eq!(v[6], f64::INFINITY);
        assert!(v[7].is_nan() && v[7].is_sign_positive()); // +NaN last
    }

    #[test]
    fn exactly_cutoff_sizes() {
        for n in [
            INSERTION_CUTOFF - 1,
            INSERTION_CUTOFF,
            INSERTION_CUTOFF + 1,
            2 * INSERTION_CUTOFF,
        ] {
            check((0..n as i64).rev().collect());
        }
    }
}
