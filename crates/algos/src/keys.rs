//! Radix-key transforms and total-order helpers.
//!
//! LSD radix sort needs each element mapped to an unsigned integer whose
//! natural order equals the element's sort order. For IEEE-754 floats
//! the classic bijection is: flip all bits of negatives, flip only the
//! sign bit of non-negatives. The transform puts `-NaN < -inf < … <
//! -0.0 < +0.0 < … < +inf < +NaN`, which is exactly Rust's
//! `f64::total_cmp` order, so comparison sorts (via [`SortOrd`]) and
//! radix sorts agree bit-for-bit even on pathological inputs.

/// Element that can be sorted by an order-preserving unsigned radix key.
pub trait RadixKey: Copy + Send + Sync {
    /// The unsigned integer key type's width in bytes.
    const KEY_BYTES: usize;
    /// Map to a `u64` key such that `a.key() <= b.key()` iff `a` sorts
    /// before-or-equal `b`. Keys of widths below 8 bytes must occupy the
    /// low-order bytes.
    fn radix_key(self) -> u64;
}

impl RadixKey for u32 {
    const KEY_BYTES: usize = 4;
    #[inline(always)]
    fn radix_key(self) -> u64 {
        self as u64
    }
}

impl RadixKey for u64 {
    const KEY_BYTES: usize = 8;
    #[inline(always)]
    fn radix_key(self) -> u64 {
        self
    }
}

impl RadixKey for i32 {
    const KEY_BYTES: usize = 4;
    #[inline(always)]
    fn radix_key(self) -> u64 {
        (self as u32 ^ 0x8000_0000) as u64
    }
}

impl RadixKey for i64 {
    const KEY_BYTES: usize = 8;
    #[inline(always)]
    fn radix_key(self) -> u64 {
        self as u64 ^ 0x8000_0000_0000_0000
    }
}

impl RadixKey for f32 {
    const KEY_BYTES: usize = 4;
    #[inline(always)]
    fn radix_key(self) -> u64 {
        let bits = self.to_bits();
        let mask = (((bits as i32) >> 31) as u32) | 0x8000_0000;
        (bits ^ mask) as u64
    }
}

impl RadixKey for f64 {
    const KEY_BYTES: usize = 8;
    #[inline(always)]
    fn radix_key(self) -> u64 {
        let bits = self.to_bits();
        let mask = (((bits as i64) >> 63) as u64) | 0x8000_0000_0000_0000;
        bits ^ mask
    }
}

/// A 16-byte key/value record: the workload of Stehle & Jacobsen \[5\]
/// (375 million 64-bit key / 64-bit value pairs = 6 GB), which the
/// paper's §IV-E reproduction replaces with bare 8-byte keys. Sorting
/// is by key only; the value rides along, exactly as in CUB's pairs
/// sort.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KeyValue {
    /// Sort key.
    pub key: f64,
    /// Payload (untouched by comparisons).
    pub value: u64,
}

impl RadixKey for KeyValue {
    const KEY_BYTES: usize = 8;
    #[inline(always)]
    fn radix_key(self) -> u64 {
        self.key.radix_key()
    }
}

impl SortOrd for KeyValue {
    #[inline(always)]
    fn total_order(&self, other: &Self) -> std::cmp::Ordering {
        self.key.total_cmp(&other.key)
    }
    #[inline(always)]
    fn select(take_a: bool, a: Self, b: Self) -> Self {
        // Two integer conditional moves: one per 8-byte half.
        KeyValue {
            key: f64::select(take_a, a.key, b.key),
            value: core::hint::select_unpredictable(take_a, a.value, b.value),
        }
    }
}

/// Total ordering used by every comparison sort in this crate.
///
/// For floats this is IEEE-754 `totalOrder` (`total_cmp`), matching the
/// radix-key order exactly; for integers it is the natural order.
pub trait SortOrd: Copy + Send + Sync {
    /// Three-way comparison under the crate's total order.
    fn total_order(&self, other: &Self) -> std::cmp::Ordering;

    /// `self` sorts strictly before `other`.
    #[inline(always)]
    fn lt(&self, other: &Self) -> bool {
        self.total_order(other) == std::cmp::Ordering::Less
    }

    /// `self` sorts before or equal to `other`.
    #[inline(always)]
    fn le(&self, other: &Self) -> bool {
        self.total_order(other) != std::cmp::Ordering::Greater
    }

    /// Branch-free conditional select: `if take_a { a } else { b }`.
    ///
    /// The default body is that plain conditional — always correct.
    /// Primitive keys override it to select in the *integer* domain via
    /// [`core::hint::select_unpredictable`]: an integer conditional
    /// move exists on baseline x86-64, while a float select needs
    /// SSE4.1 blends the default target profile lacks, so LLVM would
    /// lower a float conditional back into exactly the unpredictable
    /// branch the branchless merge loop is trying to avoid.
    #[inline(always)]
    fn select(take_a: bool, a: Self, b: Self) -> Self {
        if take_a {
            a
        } else {
            b
        }
    }
}

macro_rules! sort_ord_int {
    ($($t:ty),*) => {$(
        impl SortOrd for $t {
            #[inline(always)]
            fn total_order(&self, other: &Self) -> std::cmp::Ordering {
                Ord::cmp(self, other)
            }
            #[inline(always)]
            fn select(take_a: bool, a: Self, b: Self) -> Self {
                core::hint::select_unpredictable(take_a, a, b)
            }
        }
    )*};
}
sort_ord_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SortOrd for f32 {
    #[inline(always)]
    fn total_order(&self, other: &Self) -> std::cmp::Ordering {
        self.total_cmp(other)
    }
    #[inline(always)]
    fn select(take_a: bool, a: Self, b: Self) -> Self {
        f32::from_bits(core::hint::select_unpredictable(
            take_a,
            a.to_bits(),
            b.to_bits(),
        ))
    }
}

impl SortOrd for f64 {
    #[inline(always)]
    fn total_order(&self, other: &Self) -> std::cmp::Ordering {
        self.total_cmp(other)
    }
    #[inline(always)]
    fn select(take_a: bool, a: Self, b: Self) -> Self {
        f64::from_bits(core::hint::select_unpredictable(
            take_a,
            a.to_bits(),
            b.to_bits(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_order_matches<T: RadixKey + SortOrd>(vals: &[T]) {
        for a in vals {
            for b in vals {
                let by_key = a.radix_key().cmp(&b.radix_key());
                let by_ord = a.total_order(b);
                assert_eq!(by_key, by_ord, "key order mismatch");
            }
        }
    }

    #[test]
    fn u64_keys_are_identity() {
        assert_eq!(42u64.radix_key(), 42);
        key_order_matches(&[0u64, 1, u64::MAX, u64::MAX / 2]);
    }

    #[test]
    fn i64_keys_preserve_order() {
        key_order_matches(&[i64::MIN, -1, 0, 1, i64::MAX]);
    }

    #[test]
    fn i32_keys_preserve_order() {
        key_order_matches(&[i32::MIN, -7, 0, 7, i32::MAX]);
    }

    #[test]
    fn f64_keys_preserve_order_incl_specials() {
        key_order_matches(&[
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            1e300,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
        ]);
    }

    #[test]
    fn f32_keys_preserve_order() {
        key_order_matches(&[
            f32::NEG_INFINITY,
            -2.5,
            -0.0,
            0.0,
            2.5,
            f32::INFINITY,
            f32::NAN,
        ]);
    }

    #[test]
    fn neg_zero_sorts_before_pos_zero() {
        assert!((-0.0f64).radix_key() < 0.0f64.radix_key());
        assert_eq!((-0.0f64).total_order(&0.0), std::cmp::Ordering::Less);
    }

    #[test]
    fn narrow_keys_fit_low_bytes() {
        assert!(u32::MAX.radix_key() <= u32::MAX as u64);
        assert!(i32::MAX.radix_key() <= u32::MAX as u64);
        assert!(f32::NAN.radix_key() <= u32::MAX as u64);
    }

    #[test]
    fn key_value_sorts_by_key_only() {
        let a = KeyValue {
            key: 1.0,
            value: 99,
        };
        let b = KeyValue { key: 2.0, value: 0 };
        assert!(SortOrd::lt(&a, &b));
        assert_eq!(a.radix_key(), 1.0f64.radix_key());
        // Values do not affect order.
        let c = KeyValue { key: 1.0, value: 7 };
        assert_eq!(a.total_order(&c), std::cmp::Ordering::Equal);
        assert_eq!(a.radix_key(), c.radix_key());
        assert_eq!(std::mem::size_of::<KeyValue>(), 16);
    }

    #[test]
    fn sort_ord_helpers() {
        assert!(SortOrd::lt(&1.0f64, &2.0));
        assert!(SortOrd::le(&2.0f64, &2.0));
        assert!(!SortOrd::lt(&2.0f64, &2.0));
    }
}
