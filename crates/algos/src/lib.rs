//! # hetsort-algos — CPU sorting and merging algorithms, from scratch
//!
//! The paper treats the CPU side as a set of library black boxes: the GNU
//! libstdc++ parallel mode sort (a multiway mergesort, \[19\]\[20\]), the GNU
//! parallel multiway merge, Intel TBB's parallel sort, `std::sort`
//! (introsort), and `qsort`. This crate rebuilds all of them in safe,
//! portable Rust so the reproduction is self-contained:
//!
//! * [`mod@introsort`] — sequential introsort (`std::sort` stand-in):
//!   median-of-three quicksort, heapsort depth fallback, insertion
//!   finish.
//! * [`qsort`] — a C-`qsort`-style driver through an opaque comparator
//!   function pointer (reproduces the paper's observed ≈2× slowdown from
//!   uninlinable comparators).
//! * [`radix`] — LSD radix sort with order-preserving key transforms for
//!   floats (the Thrust/CUB device-sort stand-in used by the functional
//!   executor).
//! * [`radix_par`] — the parallel count/scan/scatter radix sort, the
//!   structural twin of what Thrust actually runs on the device.
//! * [`merge`] — sequential two-way merge plus the *merge path* parallel
//!   pairwise merge (Green et al. \[18\]) used by the PIPEMERGE pipeline.
//! * [`multiway`] — loser-tree k-way merge plus a co-rank-partitioned
//!   parallel multiway merge (the GNU parallel-mode stand-in).
//! * [`mergesort`] — parallel multiway mergesort (sort p runs, multiway
//!   merge), the reference CPU implementation of the paper.
//! * [`samplesort`] — a TBB-flavored parallel samplesort baseline.
//! * [`par`] — the minimal scoped-thread parallel runtime everything
//!   above uses (`std::thread::scope`; no work-stealing dependency).
//! * [`keys`] — radix-key transforms and total-order helpers for floats.
//! * [`verify`] — sortedness checks and multiset fingerprints used by
//!   tests and the functional executor.
//!
//! All parallel entry points take an explicit `threads` argument so the
//! scalability experiments (Figures 4 and 6) can sweep thread counts
//! deterministically.

pub mod bitonic;
pub mod insertion;
pub mod introsort;
pub mod keys;
pub mod merge;
pub mod mergesort;
pub mod multiway;
pub mod par;
pub mod qsort;
pub mod radix;
pub mod radix_par;
pub mod samplesort;
pub mod verify;

pub use introsort::introsort;
pub use merge::{merge_into, merge_into_reference, par_merge_into, par_merge_into_cfg};
pub use mergesort::par_mergesort;
pub use multiway::{
    multiway_merge_into, par_multiway_merge_into, par_multiway_merge_into_cfg, selection_part_cap,
};
pub use par::{par_copy, Sched, SchedCfg, SchedStats, WorkerStats};
pub use radix::radix_sort;
pub use radix_par::{par_radix_sort, par_radix_sort_cfg};
pub use samplesort::{par_samplesort, par_samplesort_cfg};
