//! Two-way merging: sequential merge and the *merge path* parallel merge.
//!
//! PIPEMERGE (paper §III-D3) merges pairs of sorted batches on the CPU
//! while the GPU is still sorting; Figure 6 measures the scalability of
//! exactly this parallel pairwise merge (8.14× on 16 cores). The
//! parallel algorithm here is Merge Path (Green, Odeh & Birk \[18\]): the
//! output is cut into `p` equal ranges, each range's input split point
//! (*co-rank*) is found by binary search along the merge-path diagonal,
//! and the `p` sub-merges proceed independently.
//!
//! All merges are **stable**: on ties the element from `a` precedes the
//! element from `b`.

use crate::keys::SortOrd;
use crate::par::{par_parts_with, split_evenly, split_ranges_mut, SchedCfg, SchedStats};

/// Sequentially merge sorted `a` and `b` into `out`.
///
/// The inner loop is branchless: while both inputs have elements, the
/// comparison result advances the cursors as index arithmetic and
/// selects the output via [`SortOrd::select`] (an integer-domain
/// conditional move), so random key interleavings cost no branch
/// mispredictions (the classic merge bottleneck on comparison-
/// unpredictable data). Once either side is exhausted the rest is a
/// straight `copy_from_slice`. The selection predicate is exactly
/// [`merge_into_reference`]'s, so output is bit-identical.
///
/// # Panics
///
/// Panics if `out.len() != a.len() + b.len()`.
pub fn merge_into<T: SortOrd>(a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(out.len(), a.len() + b.len(), "output must hold both inputs");
    let mut i = 0;
    let mut j = 0;
    let mut o = 0;
    while i < a.len() && j < b.len() {
        // Stable: take from `a` on ties. Reading both heads and
        // selecting arithmetically keeps the loop body branch-free;
        // the comparison becomes a conditional move instead of a
        // mispredicted jump.
        //
        // SAFETY: the loop condition guarantees `i < a.len()` and
        // `j < b.len()`; `o == i + j < a.len() + b.len() == out.len()`
        // (checked by the assert above). Unchecked indexing is what
        // lets LLVM keep the body jump-free.
        unsafe {
            let x = *a.get_unchecked(i);
            let y = *b.get_unchecked(j);
            let take_a = x.le(&y);
            *out.get_unchecked_mut(o) = T::select(take_a, x, y);
            i += take_a as usize;
            j += 1 - take_a as usize;
            o += 1;
        }
    }
    // At most one of these copies is non-empty.
    out[o..o + (a.len() - i)].copy_from_slice(&a[i..]);
    let o = o + (a.len() - i);
    out[o..].copy_from_slice(&b[j..]);
}

/// The pre-optimization sequential merge, kept as the differential
/// oracle for [`merge_into`]: one conditional per output element,
/// obviously stable (ties take from `a`). Tests assert the branchless
/// kernel matches this bit for bit on adversarial inputs.
pub fn merge_into_reference<T: SortOrd>(a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(out.len(), a.len() + b.len(), "output must hold both inputs");
    let mut i = 0;
    let mut j = 0;
    for slot in out.iter_mut() {
        // Stable: take from `a` on ties.
        if i < a.len() && (j >= b.len() || a[i].le(&b[j])) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Find the merge-path co-rank for output position `k`: the unique
/// `(i, j)` with `i + j = k` such that the first `k` merged elements are
/// exactly `a[..i]` and `b[..j]` under stable (a-first) merging.
pub fn co_rank<T: SortOrd>(k: usize, a: &[T], b: &[T]) -> (usize, usize) {
    debug_assert!(k <= a.len() + b.len());
    let mut lo = k.saturating_sub(b.len());
    let mut hi = k.min(a.len());
    while lo < hi {
        let m = lo + (hi - lo) / 2;
        // Take a[m] into the prefix iff a[m] <= b[k-m-1] (stability:
        // equal keys prefer `a`).
        if a[m].le(&b[k - m - 1]) {
            lo = m + 1;
        } else {
            hi = m;
        }
    }
    (lo, k - lo)
}

/// Merge sorted `a` and `b` into `out` using `threads` workers
/// (Merge Path partitioning, self-scheduled chunks). Falls back to
/// [`merge_into`] for a single thread or tiny inputs.
pub fn par_merge_into<T: SortOrd>(threads: usize, a: &[T], b: &[T], out: &mut [T]) {
    par_merge_into_cfg(&SchedCfg::default(), threads, a, b, out);
}

/// [`par_merge_into`] with an explicit scheduling policy; returns the
/// per-worker stats so callers can surface imbalance as spans.
///
/// The output is over-decomposed into [`SchedCfg::over_parts`] ranges
/// whose input split points are co-ranks along the merge-path diagonal,
/// then the sub-merges are claimed from the scheduler's work queue.
/// Output is identical under every policy and thread count.
pub fn par_merge_into_cfg<T: SortOrd>(
    cfg: &SchedCfg,
    threads: usize,
    a: &[T],
    b: &[T],
    out: &mut [T],
) -> SchedStats {
    assert_eq!(out.len(), a.len() + b.len(), "output must hold both inputs");
    let n = out.len();
    let threads = threads.max(1);
    if threads == 1 || n < 4 * threads {
        merge_into(a, b, out);
        return SchedStats::default();
    }
    // Over-decompose (each part keeps ≥ ~4 elements; the fallback above
    // guarantees n/4 ≥ threads, so every worker can get a part).
    let nparts = cfg.over_parts(threads, n / 4);
    let out_ranges = split_evenly(n, nparts);
    // Co-ranks at each output range boundary.
    let mut cuts = Vec::with_capacity(nparts + 1);
    cuts.push((0usize, 0usize));
    for r in &out_ranges[..nparts - 1] {
        cuts.push(co_rank(r.end, a, b));
    }
    cuts.push((a.len(), b.len()));

    let out_chunks = split_ranges_mut(out, &out_ranges);
    let parts: Vec<(usize, &mut [T])> = out_chunks.into_iter().enumerate().collect();
    par_parts_with(cfg, threads, parts, |_, (p, chunk)| {
        let (ai0, bi0) = cuts[p];
        let (ai1, bi1) = cuts[p + 1];
        merge_into(&a[ai0..ai1], &b[bi0..bi1], chunk);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{combine, fingerprint, is_sorted};

    fn lcg_sorted(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed | 1;
        let mut v: Vec<u64> = (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x
            })
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn merge_basic() {
        let a = [1u64, 3, 5];
        let b = [2u64, 4, 6];
        let mut out = [0u64; 6];
        merge_into(&a, &b, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_empty_sides() {
        let a = [1u64, 2];
        let mut out = [0u64; 2];
        merge_into(&a, &[], &mut out);
        assert_eq!(out, [1, 2]);
        merge_into(&[], &a, &mut out);
        assert_eq!(out, [1, 2]);
        let mut empty: [u64; 0] = [];
        merge_into(&[], &[], &mut empty);
    }

    #[test]
    #[should_panic(expected = "output must hold")]
    fn merge_size_mismatch_panics() {
        let mut out = [0u64; 3];
        merge_into(&[1u64], &[2u64], &mut out);
    }

    #[test]
    fn co_rank_boundaries() {
        let a = [10u64, 20, 30];
        let b = [15u64, 25];
        assert_eq!(co_rank(0, &a, &b), (0, 0));
        assert_eq!(co_rank(5, &a, &b), (3, 2));
        // First 2 of merge are 10,15 → i=1, j=1.
        assert_eq!(co_rank(2, &a, &b), (1, 1));
        // First 3 are 10,15,20 → i=2, j=1.
        assert_eq!(co_rank(3, &a, &b), (2, 1));
    }

    #[test]
    fn co_rank_with_ties_prefers_a() {
        let a = [5u64, 5];
        let b = [5u64, 5];
        // Stable merge = a[0], a[1], b[0], b[1].
        assert_eq!(co_rank(1, &a, &b), (1, 0));
        assert_eq!(co_rank(2, &a, &b), (2, 0));
        assert_eq!(co_rank(3, &a, &b), (2, 1));
    }

    #[test]
    fn co_rank_disjoint_ranges() {
        let a = [1u64, 2, 3];
        let b = [10u64, 11];
        assert_eq!(co_rank(3, &a, &b), (3, 0));
        assert_eq!(co_rank(4, &a, &b), (3, 1));
        let (i, j) = co_rank(2, &b, &a); // b first: prefix 1,2 all from `a` arg
        assert_eq!((i, j), (0, 2));
    }

    #[test]
    fn par_merge_matches_sequential() {
        for (na, nb) in [(1000, 1000), (37, 9123), (0, 100), (100, 0), (1, 1)] {
            let a = lcg_sorted(1, na);
            let b = lcg_sorted(2, nb);
            let mut seq = vec![0u64; na + nb];
            merge_into(&a, &b, &mut seq);
            for threads in [1, 2, 3, 8] {
                let mut par = vec![0u64; na + nb];
                par_merge_into(threads, &a, &b, &mut par);
                assert_eq!(par, seq, "threads={threads} na={na} nb={nb}");
            }
        }
    }

    #[test]
    fn par_merge_cfg_policies_agree() {
        // Length-skewed inputs: both scheduling policies and every
        // thread count must produce the sequential merge bit for bit.
        let a = lcg_sorted(9, 5_000);
        let b = lcg_sorted(10, 50);
        let mut seq = vec![0u64; a.len() + b.len()];
        merge_into(&a, &b, &mut seq);
        for cfg in [SchedCfg::self_sched(), SchedCfg::round_robin_static()] {
            for threads in [2, 3, 8, 16] {
                let mut out = vec![0u64; seq.len()];
                let stats = par_merge_into_cfg(&cfg, threads, &a, &b, &mut out);
                assert_eq!(out, seq, "cfg={cfg:?} threads={threads}");
                assert_eq!(
                    stats.workers.iter().map(|w| w.parts).sum::<usize>(),
                    stats.parts
                );
            }
        }
    }

    #[test]
    fn par_merge_is_permutation_and_sorted() {
        let a = lcg_sorted(5, 4321);
        let b = lcg_sorted(6, 1234);
        let mut out = vec![0u64; a.len() + b.len()];
        par_merge_into(4, &a, &b, &mut out);
        assert!(is_sorted(&out));
        assert_eq!(combine(fingerprint(&a), fingerprint(&b)), fingerprint(&out));
    }

    #[test]
    fn par_merge_heavy_duplicates() {
        let a = vec![7u64; 500];
        let mut b = vec![7u64; 300];
        b.extend_from_slice(&[8; 200]);
        let mut out = vec![0u64; 1000];
        par_merge_into(4, &a, &b, &mut out);
        assert!(is_sorted(&out));
        assert_eq!(out.iter().filter(|&&x| x == 7).count(), 800);
    }

    #[test]
    fn par_merge_floats() {
        let mut a: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.5 - 100.0).collect();
        let mut b: Vec<f64> = (0..800).map(|i| (i as f64) * 0.7 - 50.0).collect();
        a.push(f64::INFINITY);
        b.insert(0, f64::NEG_INFINITY);
        let mut out = vec![0.0f64; a.len() + b.len()];
        par_merge_into(3, &a, &b, &mut out);
        assert!(is_sorted(&out));
    }
}
