//! Parallel multiway mergesort — the GNU parallel mode sort stand-in.
//!
//! The reference CPU implementation the paper benchmarks (Figure 4) is
//! libstdc++'s parallel mode sort \[19\]\[20\]: split the input into `p`
//! runs, sort each run independently, then multiway-merge the runs.
//! This module reproduces that exact structure on top of
//! [`mod@crate::introsort`] and [`crate::multiway`]; at `p = 1` it *is*
//! introsort, matching the paper's observation that `std::sort` and the
//! 1-thread parallel sort perform identically.

use crate::introsort::introsort;
use crate::keys::SortOrd;
use crate::multiway::par_multiway_merge_into;
use crate::par::{par_chunks_mut, split_evenly};

/// Sort `data` with `threads` workers using parallel multiway mergesort.
///
/// Allocates one scratch buffer of `data.len()` (the algorithm is
/// out-of-place internally, like its GNU counterpart).
pub fn par_mergesort<T: SortOrd + Default>(threads: usize, data: &mut [T]) {
    let threads = threads.max(1);
    let n = data.len();
    if threads == 1 || n < 2 * threads {
        introsort(data);
        return;
    }

    // Phase 1: sort `threads` contiguous runs in parallel.
    par_chunks_mut(threads, threads, data, |_, run| introsort(run));

    // Phase 2: multiway-merge the runs into scratch, then move back.
    let ranges = split_evenly(n, threads);
    let runs: Vec<&[T]> = ranges.iter().map(|r| &data[r.clone()]).collect();
    let mut scratch: Vec<T> = vec![T::default(); n];
    par_multiway_merge_into(threads, &runs, &mut scratch);
    data.copy_from_slice(&scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{fingerprint, is_sorted};

    fn lcg(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_introsort_for_all_thread_counts() {
        let base = lcg(17, 10_000);
        let mut expect = base.clone();
        introsort(&mut expect);
        for threads in [1usize, 2, 3, 4, 7, 16] {
            let mut v = base.clone();
            par_mergesort(threads, &mut v);
            assert_eq!(
                v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn preserves_multiset() {
        let v0 = lcg(99, 4321);
        let fp = fingerprint(&v0);
        let mut v = v0;
        par_mergesort(4, &mut v);
        assert!(is_sorted(&v));
        assert_eq!(fingerprint(&v), fp);
    }

    #[test]
    fn tiny_inputs_fall_back() {
        for n in 0..8 {
            let mut v = lcg(n as u64 + 1, n);
            par_mergesort(8, &mut v);
            assert!(is_sorted(&v));
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn sorted_and_reverse_inputs() {
        let mut v: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        par_mergesort(4, &mut v);
        assert!(is_sorted(&v));
        let mut v: Vec<f64> = (0..5000).rev().map(|i| i as f64).collect();
        par_mergesort(4, &mut v);
        assert!(is_sorted(&v));
    }

    #[test]
    fn integers_too() {
        let mut v: Vec<i64> = (0..9999).map(|i| (i * 7919) % 1000).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        par_mergesort(3, &mut v);
        assert_eq!(v, expect);
    }
}
