//! K-way merging: loser-tree sequential merge and a co-rank-partitioned
//! parallel multiway merge.
//!
//! This is the stand-in for the GNU parallel mode's `multiway_merge`,
//! which the paper uses for the final merge of all sorted batches
//! (§III-A: "O(n·log n_b) work ... multiway merge is more cache-efficient
//! than pairwise merging"). The sequential kernel is a classic loser
//! tree: each output element costs ⌈log₂ k⌉ comparisons but only one
//! read and one write of memory — the cache-efficiency the paper relies
//! on. The parallel version cuts the output into `p` ranges and finds
//! each list's split by *multisequence selection*: a per-list binary
//! search on the global stable rank.
//!
//! Stability: ties are resolved by list index (earlier list first),
//! matching a left-to-right stable merge of the batch array.

use crate::keys::SortOrd;
use crate::par::{par_parts_with, split_evenly, split_ranges_mut, SchedCfg, SchedStats};

/// How far ahead of each list cursor [`LoserTree::pop`] prefetches.
/// Eight elements is roughly a cache line of `u64` keys — far enough to
/// cover the ⌈log₂ k⌉ replay comparisons before the line is needed,
/// close enough that the line is still resident when the cursor reaches
/// it.
const PREFETCH_DIST: usize = 8;

/// Hint the CPU to pull `slice[idx]`'s cache line toward L1. Out-of-range
/// indices are ignored; on non-x86 targets this is a no-op. Purely a
/// performance hint — never reads the data, so it cannot change results.
#[inline(always)]
fn prefetch_read<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if idx < slice.len() {
        // SAFETY: idx is in bounds, and _mm_prefetch only hints the
        // memory subsystem; it performs no load observable by the
        // program.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(slice.as_ptr().add(idx) as *const i8, _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, idx);
    }
}

/// Loser tree over `k` sorted input cursors.
struct LoserTree<'a, T: SortOrd> {
    lists: &'a [&'a [T]],
    /// Current position in each list.
    pos: Vec<usize>,
    /// Padded player count (power of two ≥ lists.len(), ≥ 2).
    k: usize,
    /// `tree[1..k]`: loser player index at each internal node;
    /// `tree\[0\]`: the overall winner.
    tree: Vec<usize>,
}

impl<'a, T: SortOrd> LoserTree<'a, T> {
    fn new(lists: &'a [&'a [T]]) -> Self {
        let k = lists.len().next_power_of_two().max(2);
        let mut lt = LoserTree {
            lists,
            pos: vec![0; lists.len()],
            k,
            tree: vec![usize::MAX; k],
        };
        lt.build();
        lt
    }

    /// Head element of player `p`, `None` when exhausted or virtual.
    #[inline]
    fn head(&self, p: usize) -> Option<&T> {
        self.lists.get(p).and_then(|l| l.get(self.pos[p]))
    }

    /// Does player `a` beat player `b`? Exhausted players always lose;
    /// ties go to the lower index (stability).
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.head(a), self.head(b)) {
            (Some(x), Some(y)) => match x.total_order(y) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Initial tournament: play all matches bottom-up.
    fn build(&mut self) {
        // winners[i] for internal node i; leaves are players.
        let mut winners = vec![usize::MAX; 2 * self.k];
        for (i, w) in winners.iter_mut().enumerate().skip(self.k) {
            *w = i - self.k; // leaf: player index (may be virtual)
        }
        for i in (1..self.k).rev() {
            let (a, b) = (winners[2 * i], winners[2 * i + 1]);
            if self.beats(a, b) {
                winners[i] = a;
                self.tree[i] = b;
            } else {
                winners[i] = b;
                self.tree[i] = a;
            }
        }
        self.tree[0] = winners[1];
    }

    /// Pop the smallest head; returns its player index, or `None` when
    /// all lists are exhausted. Advances the winning cursor and replays
    /// its path to the root.
    fn pop(&mut self) -> Option<usize> {
        let w = self.tree[0];
        self.head(w)?;
        self.pos[w] += 1;
        // The winner's list is the only one whose cursor moved; hint its
        // upcoming line into cache while the replay comparisons run.
        prefetch_read(self.lists[w], self.pos[w] + PREFETCH_DIST);
        // Replay from the winner's leaf up.
        let mut cur = w;
        let mut node = (self.k + w) / 2;
        while node >= 1 {
            let other = self.tree[node];
            if self.beats(other, cur) {
                self.tree[node] = cur;
                cur = other;
            }
            node /= 2;
        }
        self.tree[0] = cur;
        Some(w)
    }
}

/// Merge `k` sorted lists into `out` sequentially with a loser tree.
///
/// # Panics
///
/// Panics if `out.len()` differs from the total input length.
pub fn multiway_merge_into<T: SortOrd>(lists: &[&[T]], out: &mut [T]) {
    let total: usize = lists.iter().map(|l| l.len()).sum();
    assert_eq!(out.len(), total, "output must hold all inputs");
    match lists.len() {
        0 => return,
        1 => {
            out.copy_from_slice(lists[0]);
            return;
        }
        2 => {
            crate::merge::merge_into(lists[0], lists[1], out);
            return;
        }
        _ => {}
    }
    let mut lt = LoserTree::new(lists);
    for slot in out.iter_mut() {
        let w = lt.pop().expect("tree exhausted early");
        *slot = lists[w][lt.pos[w] - 1];
    }
}

/// Number of elements of `list` strictly before `v` in the total order.
pub fn lower_bound<T: SortOrd>(list: &[T], v: &T) -> usize {
    let mut lo = 0;
    let mut hi = list.len();
    while lo < hi {
        let m = lo + (hi - lo) / 2;
        if list[m].lt(v) {
            lo = m + 1;
        } else {
            hi = m;
        }
    }
    lo
}

/// Number of elements of `list` before-or-equal `v` in the total order.
pub fn upper_bound<T: SortOrd>(list: &[T], v: &T) -> usize {
    let mut lo = 0;
    let mut hi = list.len();
    while lo < hi {
        let m = lo + (hi - lo) / 2;
        if list[m].le(v) {
            lo = m + 1;
        } else {
            hi = m;
        }
    }
    lo
}

/// Global stable rank of element `(v, t, i)` — the number of elements
/// across all lists that a stable multiway merge emits before list `t`'s
/// element at index `i` (whose value is `v`).
fn global_rank<T: SortOrd>(lists: &[&[T]], v: &T, t: usize, i: usize) -> usize {
    let mut rank = i;
    for (u, l) in lists.iter().enumerate() {
        if u < t {
            rank += upper_bound(l, v);
        } else if u > t {
            rank += lower_bound(l, v);
        }
    }
    rank
}

/// Multisequence selection: per-list cut ranks such that the first `k`
/// elements of the stable multiway merge are exactly
/// `lists[t][..cuts[t]]` for all `t`.
pub fn multiway_cuts<T: SortOrd>(lists: &[&[T]], k: usize) -> Vec<usize> {
    let total: usize = lists.iter().map(|l| l.len()).sum();
    debug_assert!(k <= total);
    let mut cuts = Vec::with_capacity(lists.len());
    for (t, l) in lists.iter().enumerate() {
        // Largest c such that element (l[c-1], t, c-1) has global rank < k.
        let mut lo = 0usize;
        let mut hi = l.len();
        while lo < hi {
            let m = lo + (hi - lo) / 2;
            if global_rank(lists, &l[m], t, m) < k {
                lo = m + 1;
            } else {
                hi = m;
            }
        }
        cuts.push(lo);
    }
    // Release-mode invariant: a mis-partition here would hand workers
    // overlapping or incomplete input ranges and the parallel merge
    // would silently emit garbage — exactly the paper-scale mode
    // `--release` bench runs would never catch with a debug_assert.
    let sum: usize = cuts.iter().sum();
    assert_eq!(
        sum, k,
        "multiway_cuts mis-partition: cut ranks sum to {sum}, expected k = {k} \
         (every input list must be sorted under the same total order)"
    );
    cuts
}

/// Cap on the part count of a partitioned `k`-way merge over `total`
/// elements, so multisequence selection stays a fraction of the merge
/// work.
///
/// Each boundary costs one multisequence selection: for every list a
/// binary search whose probes each rank against all other lists —
/// ~(Σₜ log₂ lenₜ)² comparisons. The merge itself costs `total·log₂ k`.
/// At high fan-in (many short lists) unbounded over-decomposition would
/// spend more time cutting than merging, so parts are capped at
/// `merge_cost / 2·cut_cost`, and never more than one part per four
/// output elements.
///
/// The result is always ≥ 1: both clamp bounds saturate at 1, so the
/// cap is safe to evaluate for any `total` (for `total < 4` the old
/// upper bound `total / 4` was 0, below the lower bound of 1 — a
/// guaranteed `clamp` panic, previously shielded only by the caller's
/// small-input early return).
pub fn selection_part_cap(
    total: usize,
    k: usize,
    list_lens: impl IntoIterator<Item = usize>,
) -> usize {
    let log2 = |x: usize| (usize::BITS - x.max(2).leading_zeros()) as usize;
    let log_sum: usize = list_lens.into_iter().map(log2).sum();
    let cut_cost = log_sum * log_sum;
    let merge_cost = total * log2(k);
    (merge_cost / (2 * cut_cost.max(1))).clamp(1, (total / 4).max(1))
}

/// Merge `k` sorted lists into `out` with `threads` workers: the output
/// is cut into near-equal ranges by multisequence selection, and each
/// range is merged independently (self-scheduled, skew-aware).
pub fn par_multiway_merge_into<T: SortOrd>(threads: usize, lists: &[&[T]], out: &mut [T]) {
    par_multiway_merge_into_cfg(&SchedCfg::default(), threads, lists, out);
}

/// [`par_multiway_merge_into`] with an explicit scheduling policy;
/// returns per-worker stats for observability.
///
/// Skew-aware partitioning: output ranges are cut at the *actual*
/// co-rank boundaries from [`multiway_cuts`], then each part drops the
/// sublists its range does not touch before merging. Under pathological
/// list lengths (one list 10⁴× longer than the rest) most parts see a
/// fan-in of 1 or 2, dispatching to a straight copy or a pairwise merge
/// instead of paying ⌈log₂ k⌉ loser-tree comparisons per element
/// against exhausted lists. Dropping empty sublists preserves stability
/// because ties resolve by list index and the relative order of the
/// surviving lists is unchanged.
pub fn par_multiway_merge_into_cfg<T: SortOrd>(
    cfg: &SchedCfg,
    threads: usize,
    lists: &[&[T]],
    out: &mut [T],
) -> SchedStats {
    let total: usize = lists.iter().map(|l| l.len()).sum();
    assert_eq!(out.len(), total, "output must hold all inputs");
    let threads = threads.max(1);
    if threads == 1 || total < 4 * threads || lists.len() <= 1 {
        multiway_merge_into(lists, out);
        return SchedStats::default();
    }
    let k = lists.len();
    let max_parts = selection_part_cap(total, k, lists.iter().map(|l| l.len()));
    let nparts = cfg.over_parts(threads, max_parts);
    let out_ranges = split_evenly(total, nparts);
    let mut boundaries: Vec<Vec<usize>> = vec![Vec::new(); nparts + 1];
    boundaries[0] = vec![0; k];
    boundaries[nparts] = lists.iter().map(|l| l.len()).collect();
    // The interior boundaries are independent read-only selections —
    // compute them through the same scheduling policy as the merge.
    let interior: Vec<(usize, &mut Vec<usize>)> =
        boundaries[1..nparts].iter_mut().enumerate().collect();
    par_parts_with(cfg, threads, interior, |_, (i, slot)| {
        *slot = multiway_cuts(lists, out_ranges[i].end);
    });

    let out_chunks = split_ranges_mut(out, &out_ranges);
    let parts: Vec<(usize, &mut [T])> = out_chunks.into_iter().enumerate().collect();
    par_parts_with(cfg, threads, parts, |_, (p, chunk)| {
        // Fan-in reduction: keep only the sublists this output range
        // actually draws from (order preserved → stability preserved).
        let subs: Vec<&[T]> = lists
            .iter()
            .enumerate()
            .map(|(t, l)| &l[boundaries[p][t]..boundaries[p + 1][t]])
            .filter(|s| !s.is_empty())
            .collect();
        multiway_merge_into(&subs, chunk);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{fingerprint, is_sorted, Fingerprint};

    fn lcg_sorted(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed.wrapping_mul(2862933555777941757) | 1;
        let mut v: Vec<u64> = (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x % 10_000 // plenty of cross-list duplicates
            })
            .collect();
        v.sort_unstable();
        v
    }

    fn reference_merge(lists: &[&[u64]]) -> Vec<u64> {
        // Repeated stable pairwise folding — independently correct oracle.
        let mut acc: Vec<u64> = Vec::new();
        for l in lists {
            let mut out = vec![0u64; acc.len() + l.len()];
            crate::merge::merge_into(&acc, l, &mut out);
            acc = out;
        }
        acc
    }

    #[test]
    fn part_cap_never_panics_on_tiny_totals() {
        // Regression: with total < 4 the old cap computed
        // `.clamp(1, total / 4)` = `.clamp(1, 0)`, which panics
        // (min > max). The cap must be callable for ANY total — it is
        // only an upper bound, not a promise the caller splits.
        for total in 0..16usize {
            for k in 1..5usize {
                let lens = vec![total / k.max(1); k];
                let cap = selection_part_cap(total, k, lens);
                assert!(cap >= 1, "cap must stay positive (total={total}, k={k})");
                if total >= 4 {
                    assert!(cap <= total / 4, "cap over-splits (total={total}, k={k})");
                }
            }
        }
        // Degenerate fan-in / empty lists are fine too.
        assert_eq!(selection_part_cap(0, 0, []), 1);
        assert_eq!(selection_part_cap(3, 2, [1, 2]), 1);
    }

    #[test]
    fn part_cap_still_limits_selection_cost_at_scale() {
        // The paper-scale sanity the original expression encoded: many
        // long lists admit plenty of parts, a few tiny lists do not.
        let long = selection_part_cap(2_000_000, 8, vec![250_000; 8]);
        assert!(long > 64, "{long}");
        let short = selection_part_cap(1_000, 100, vec![10; 100]);
        assert!(short <= 4, "{short}");
    }

    #[test]
    fn zero_one_two_lists() {
        let mut out: Vec<u64> = vec![];
        multiway_merge_into(&[], &mut out);

        let a = [1u64, 5, 9];
        let mut out = vec![0u64; 3];
        multiway_merge_into(&[&a], &mut out);
        assert_eq!(out, vec![1, 5, 9]);

        let b = [2u64, 3];
        let mut out = vec![0u64; 5];
        multiway_merge_into(&[&a, &b], &mut out);
        assert_eq!(out, vec![1, 2, 3, 5, 9]);
    }

    #[test]
    fn many_lists_match_reference() {
        let lists_owned: Vec<Vec<u64>> = (0..7)
            .map(|i| lcg_sorted(i + 1, 500 + 37 * i as usize))
            .collect();
        let lists: Vec<&[u64]> = lists_owned.iter().map(|v| v.as_slice()).collect();
        let total: usize = lists.iter().map(|l| l.len()).sum();
        let mut out = vec![0u64; total];
        multiway_merge_into(&lists, &mut out);
        assert_eq!(out, reference_merge(&lists));
    }

    #[test]
    fn empty_lists_mixed_in() {
        let a = [1u64, 4];
        let b: [u64; 0] = [];
        let c = [2u64, 3];
        let mut out = vec![0u64; 4];
        multiway_merge_into(&[&a, &b, &c], &mut out);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn non_power_of_two_list_counts() {
        for k in [3usize, 5, 6, 9, 17] {
            let lists_owned: Vec<Vec<u64>> =
                (0..k).map(|i| lcg_sorted(i as u64 + 11, 100)).collect();
            let lists: Vec<&[u64]> = lists_owned.iter().map(|v| v.as_slice()).collect();
            let mut out = vec![0u64; 100 * k];
            multiway_merge_into(&lists, &mut out);
            assert_eq!(out, reference_merge(&lists), "k={k}");
        }
    }

    #[test]
    fn bounds_helpers() {
        let l = [1u64, 3, 3, 3, 7];
        assert_eq!(lower_bound(&l, &3), 1);
        assert_eq!(upper_bound(&l, &3), 4);
        assert_eq!(lower_bound(&l, &0), 0);
        assert_eq!(upper_bound(&l, &9), 5);
    }

    #[test]
    fn cuts_sum_to_k_and_are_consistent() {
        let lists_owned: Vec<Vec<u64>> = (0..4).map(|i| lcg_sorted(i + 3, 250)).collect();
        let lists: Vec<&[u64]> = lists_owned.iter().map(|v| v.as_slice()).collect();
        let merged = reference_merge(&lists);
        for k in [0usize, 1, 17, 500, 999, 1000] {
            let cuts = multiway_cuts(&lists, k);
            assert_eq!(cuts.iter().sum::<usize>(), k);
            // The prefix multiset must equal the merged prefix multiset.
            let mut prefix: Vec<u64> = Vec::new();
            for (t, &c) in cuts.iter().enumerate() {
                prefix.extend_from_slice(&lists[t][..c]);
            }
            prefix.sort_unstable();
            let mut expect = merged[..k].to_vec();
            expect.sort_unstable();
            assert_eq!(prefix, expect, "k={k}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let lists_owned: Vec<Vec<u64>> = (0..6).map(|i| lcg_sorted(i + 21, 777)).collect();
        let lists: Vec<&[u64]> = lists_owned.iter().map(|v| v.as_slice()).collect();
        let total: usize = lists.iter().map(|l| l.len()).sum();
        let mut seq = vec![0u64; total];
        multiway_merge_into(&lists, &mut seq);
        for threads in [2, 3, 5, 16] {
            let mut par = vec![0u64; total];
            par_multiway_merge_into(threads, &lists, &mut par);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_preserves_multiset() {
        let lists_owned: Vec<Vec<u64>> = (0..5).map(|i| lcg_sorted(i + 31, 400)).collect();
        let lists: Vec<&[u64]> = lists_owned.iter().map(|v| v.as_slice()).collect();
        let mut expect = Fingerprint {
            sum: 0,
            xor: 0,
            sq: 0,
            count: 0,
        };
        for l in &lists {
            expect = crate::verify::combine(expect, fingerprint(l));
        }
        let mut out = vec![0u64; 2000];
        par_multiway_merge_into(4, &lists, &mut out);
        assert!(is_sorted(&out));
        assert_eq!(fingerprint(&out), expect);
    }

    #[test]
    fn merges_floats_with_specials() {
        let a = [f64::NEG_INFINITY, -1.0, 0.5];
        let b = [-0.5f64, 0.5, f64::NAN];
        let c = [0.0f64];
        let mut out = vec![0.0f64; 7];
        multiway_merge_into(&[&a, &b, &c], &mut out);
        assert!(is_sorted(&out));
        assert!(out[6].is_nan());
    }

    #[test]
    fn skewed_list_lengths() {
        let a = lcg_sorted(1, 10_000);
        let b = lcg_sorted(2, 3);
        let c = lcg_sorted(3, 1);
        let lists: Vec<&[u64]> = vec![&a, &b, &c];
        let expect = reference_merge(&lists);
        let mut fp = Fingerprint {
            sum: 0,
            xor: 0,
            sq: 0,
            count: 0,
        };
        for l in &lists {
            fp = crate::verify::combine(fp, fingerprint(l));
        }
        for threads in [2, 4, 16] {
            let mut out = vec![0u64; 10_004];
            par_multiway_merge_into(threads, &lists, &mut out);
            assert!(is_sorted(&out), "threads={threads}");
            // A dropped or duplicated element under skew must fail
            // loudly, not just "still sorted".
            assert_eq!(fingerprint(&out), fp, "threads={threads}: multiset changed");
            assert_eq!(out, expect, "threads={threads}: differs from reference");
        }
    }

    #[test]
    fn cfg_policies_agree_under_skew() {
        // One long list plus tiny ones: both scheduling policies and
        // every thread count must reproduce the sequential merge.
        let a = lcg_sorted(41, 8_000);
        let b = lcg_sorted(42, 5);
        let c = lcg_sorted(43, 2);
        let lists: Vec<&[u64]> = vec![&a, &b, &c];
        let mut seq = vec![0u64; 8_007];
        multiway_merge_into(&lists, &mut seq);
        for cfg in [SchedCfg::self_sched(), SchedCfg::round_robin_static()] {
            for threads in [2, 3, 8, 16] {
                let mut out = vec![0u64; seq.len()];
                let stats = par_multiway_merge_into_cfg(&cfg, threads, &lists, &mut out);
                assert_eq!(out, seq, "cfg={cfg:?} threads={threads}");
                assert_eq!(
                    stats.workers.iter().map(|w| w.parts).sum::<usize>(),
                    stats.parts,
                    "cfg={cfg:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiway_cuts mis-partition")]
    fn mis_partition_panics_in_release_builds() {
        // Unsorted input breaks the monotone-rank precondition; before
        // this check was release-mode the cuts [0, 0] (≠ k = 1) sailed
        // through `--release` and the parallel merge emitted garbage.
        let a: &[u64] = &[10, 0]; // deliberately NOT sorted
        let b: &[u64] = &[5];
        let _ = multiway_cuts(&[a, b], 1);
    }
}
