//! Minimal scoped-thread parallel runtime with chunked self-scheduling.
//!
//! A deliberately small substitute for OpenMP/TBB: every parallel
//! algorithm in this crate expresses its parallelism as a set of
//! *parts* executed by up to `threads` scoped worker threads. Parts are
//! over-decomposed (~[`SchedCfg::DEFAULT_CHUNKS_PER_THREAD`]× the
//! worker count) and claimed from an atomic work queue, so a worker
//! that lands a cheap part immediately grabs the next one instead of
//! idling — the dynamic analogue of the static round-robin assignment
//! the GNU parallel mode (and therefore the paper's CPU baseline) uses.
//! [`Sched::RoundRobin`] preserves that static assignment for A/B
//! comparison.
//!
//! `threads == 0` and `threads == 1` both mean "run inline on the
//! calling thread" (zero spawn overhead, no queue, no atomics), so
//! sequential baselines are exactly the same code path measured in
//! Figure 4's single-thread columns.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How parts are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sched {
    /// Atomic work queue: each worker claims the next unclaimed part
    /// when it finishes its current one. Skew-resistant.
    SelfSched,
    /// Static round-robin by part index (worker `w` runs parts
    /// `w, w+n, w+2n, …`), the GNU-parallel-mode assignment the paper
    /// benchmarks. Kept for A/B comparison and reproducibility studies.
    RoundRobin,
}

/// Scheduling policy plus decomposition granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedCfg {
    /// Assignment policy.
    pub sched: Sched,
    /// Parts created per worker thread when a caller over-decomposes a
    /// range; `0` means "auto" ([`Self::DEFAULT_CHUNKS_PER_THREAD`]).
    pub chunks_per_thread: u32,
}

impl SchedCfg {
    /// Auto over-decomposition factor: enough chunks that one slow part
    /// cannot stall the tail for long, few enough that queue traffic
    /// stays negligible next to a merge of thousands of elements.
    pub const DEFAULT_CHUNKS_PER_THREAD: u32 = 4;

    /// The skew-resistant default: self-scheduling, auto granularity.
    pub fn self_sched() -> Self {
        SchedCfg {
            sched: Sched::SelfSched,
            chunks_per_thread: 0,
        }
    }

    /// The pre-existing static scheduler: one part per worker, assigned
    /// round-robin. Reproduces the paper's GNU-parallel-mode behaviour.
    pub fn round_robin_static() -> Self {
        SchedCfg {
            sched: Sched::RoundRobin,
            chunks_per_thread: 1,
        }
    }

    /// Effective chunks-per-thread with `0` resolved to the default.
    pub fn chunks_eff(&self) -> u32 {
        if self.chunks_per_thread == 0 {
            Self::DEFAULT_CHUNKS_PER_THREAD
        } else {
            self.chunks_per_thread
        }
    }

    /// How many parts a caller should decompose its work into for
    /// `threads` workers, capped at `max_parts` (usually the number of
    /// items, so no part is empty).
    pub fn over_parts(&self, threads: usize, max_parts: usize) -> usize {
        let threads = threads.max(1);
        if threads == 1 {
            return 1;
        }
        threads
            .saturating_mul(self.chunks_eff() as usize)
            .min(max_parts)
            .max(1)
    }
}

impl Default for SchedCfg {
    fn default() -> Self {
        Self::self_sched()
    }
}

/// What one worker did during a [`par_parts_with`] call. Times are
/// seconds relative to the call's entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// Worker index (`0` is the calling thread).
    pub worker: usize,
    /// Number of parts this worker executed.
    pub parts: usize,
    /// When the worker first started executing a part.
    pub start_s: f64,
    /// When the worker finished its last part.
    pub end_s: f64,
    /// Total time spent inside part closures (excludes queue waits).
    pub busy_s: f64,
}

/// Per-worker execution record returned by [`par_parts_with`] — the raw
/// material for per-worker observability spans and imbalance metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedStats {
    /// One entry per worker, indexed by worker id, including workers
    /// that claimed zero parts (deterministic length
    /// `min(threads, parts).max(1)` for a non-empty part list).
    pub workers: Vec<WorkerStats>,
    /// Total parts executed.
    pub parts: usize,
}

impl SchedStats {
    /// Ratio of the busiest worker's busy time to the mean busy time;
    /// `1.0` is perfect balance. Returns `1.0` for degenerate inputs.
    pub fn imbalance(&self) -> f64 {
        let n = self.workers.len();
        if n == 0 {
            return 1.0;
        }
        let total: f64 = self.workers.iter().map(|w| w.busy_s).sum();
        let max = self.workers.iter().map(|w| w.busy_s).fold(0.0f64, f64::max);
        if total <= 0.0 {
            return 1.0;
        }
        max * n as f64 / total
    }
}

/// Split `len` items into `parts` contiguous ranges differing in length
/// by at most one. Returns exactly `parts` ranges (possibly empty when
/// `len < parts`).
pub fn split_evenly(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0, "split_evenly requires parts > 0");
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let sz = base + usize::from(i < extra);
        out.push(start..start + sz);
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

/// Execute one closure per part on up to `threads` scoped threads using
/// the default skew-resistant scheduler. The closure receives
/// `(part_index, part)`; every part runs exactly once.
pub fn par_parts<P, F>(threads: usize, parts: Vec<P>, f: F)
where
    P: Send,
    F: Fn(usize, P) + Sync,
{
    par_parts_with(&SchedCfg::default(), threads, parts, f);
}

/// Like [`par_parts`] but with an explicit scheduling policy, returning
/// per-worker execution stats.
///
/// Under [`Sched::SelfSched`] workers claim parts from an atomic queue
/// in index order; under [`Sched::RoundRobin`] worker `w` statically
/// runs parts `w, w+n, w+2n, …`. Either way each part runs exactly
/// once, and disjoint-output callers produce identical results under
/// both policies. `threads ≤ 1` (or a single part) runs inline on the
/// calling thread with no queue and no atomics.
pub fn par_parts_with<P, F>(cfg: &SchedCfg, threads: usize, parts: Vec<P>, f: F) -> SchedStats
where
    P: Send,
    F: Fn(usize, P) + Sync,
{
    let t0 = Instant::now();
    let threads = threads.max(1);
    if parts.is_empty() {
        return SchedStats::default();
    }
    if threads == 1 || parts.len() <= 1 {
        let nparts = parts.len();
        let mut busy = 0.0f64;
        let start_s = t0.elapsed().as_secs_f64();
        for (i, p) in parts.into_iter().enumerate() {
            let s = Instant::now();
            f(i, p);
            busy += s.elapsed().as_secs_f64();
        }
        return SchedStats {
            workers: vec![WorkerStats {
                worker: 0,
                parts: nparts,
                start_s,
                end_s: t0.elapsed().as_secs_f64(),
                busy_s: busy,
            }],
            parts: nparts,
        };
    }

    let nworkers = threads.min(parts.len());
    let nparts = parts.len();
    let fref = &f;

    let run_list = |worker: usize, list: Vec<(usize, P)>| -> WorkerStats {
        let start_s = t0.elapsed().as_secs_f64();
        let mut busy = 0.0f64;
        let n = list.len();
        for (i, p) in list {
            let s = Instant::now();
            fref(i, p);
            busy += s.elapsed().as_secs_f64();
        }
        WorkerStats {
            worker,
            parts: n,
            start_s,
            end_s: t0.elapsed().as_secs_f64(),
            busy_s: busy,
        }
    };

    let mut workers: Vec<WorkerStats> = match cfg.sched {
        Sched::RoundRobin => {
            // Static assignment: preserve per-worker order for
            // determinism; this is the paper's GNU-parallel-mode model.
            let mut buckets: Vec<Vec<(usize, P)>> = (0..nworkers).map(|_| Vec::new()).collect();
            for (i, p) in parts.into_iter().enumerate() {
                buckets[i % nworkers].push((i, p));
            }
            std::thread::scope(|s| {
                let mut iter = buckets.into_iter().enumerate();
                // First worker runs on the calling thread to save a spawn.
                let (_, mine) = iter.next().expect("nworkers >= 1");
                let handles: Vec<_> = iter
                    .map(|(w, bucket)| s.spawn(move || run_list(w, bucket)))
                    .collect();
                let mut out = vec![run_list(0, mine)];
                for h in handles {
                    out.push(h.join().expect("parallel worker panicked"));
                }
                out
            })
        }
        Sched::SelfSched => {
            // Atomic work queue: slots hold the parts; `next` hands out
            // indices. Each slot's mutex is locked exactly once (by the
            // claiming worker), so there is no contention on the data,
            // only one fetch_add per part.
            let slots: Vec<Mutex<Option<P>>> =
                parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
            let next = AtomicUsize::new(0);
            let slots_ref = &slots;
            let next_ref = &next;
            let run_queue = move |worker: usize| -> WorkerStats {
                let start_s = t0.elapsed().as_secs_f64();
                let mut busy = 0.0f64;
                let mut count = 0usize;
                loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= slots_ref.len() {
                        break;
                    }
                    let p = slots_ref[i]
                        .lock()
                        .expect("work-queue slot poisoned")
                        .take()
                        .expect("work-queue slot claimed twice");
                    let s = Instant::now();
                    fref(i, p);
                    busy += s.elapsed().as_secs_f64();
                    count += 1;
                }
                WorkerStats {
                    worker,
                    parts: count,
                    start_s,
                    end_s: t0.elapsed().as_secs_f64(),
                    busy_s: busy,
                }
            };
            std::thread::scope(|s| {
                let handles: Vec<_> = (1..nworkers)
                    .map(|w| s.spawn(move || run_queue(w)))
                    .collect();
                let mut out = vec![run_queue(0)];
                for h in handles {
                    out.push(h.join().expect("parallel worker panicked"));
                }
                out
            })
        }
    };
    workers.sort_by_key(|w| w.worker);
    debug_assert_eq!(workers.iter().map(|w| w.parts).sum::<usize>(), nparts);
    SchedStats {
        workers,
        parts: nparts,
    }
}

/// Split `data` into `parts` contiguous mutable chunks of near-equal
/// size and run `f(part_index, chunk)` on up to `threads` threads.
pub fn par_chunks_mut<T, F>(threads: usize, parts: usize, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let ranges = split_evenly(data.len(), parts.max(1));
    let chunks = split_ranges_mut(data, &ranges);
    par_parts(threads, chunks, f);
}

/// Parallel memcpy: copy `src` into `dst` (equal lengths) with up to
/// `threads` workers over self-scheduled chunks. The PARMEMCPY staging
/// path uses this for host↔pinned copies. Chunks are kept ≥
/// [`MIN_COPY_CHUNK`] elements so thread overhead never dominates small
/// buffers; `threads ≤ 1` is a plain `copy_from_slice`.
pub fn par_copy<T>(threads: usize, src: &[T], dst: &mut [T])
where
    T: Copy + Send + Sync,
{
    assert_eq!(src.len(), dst.len(), "par_copy length mismatch");
    let len = src.len();
    let threads = threads.max(1);
    if threads == 1 || len <= MIN_COPY_CHUNK {
        dst.copy_from_slice(src);
        return;
    }
    let cfg = SchedCfg::default();
    let parts = cfg.over_parts(threads, len.div_ceil(MIN_COPY_CHUNK));
    let ranges = split_evenly(len, parts);
    let chunks = split_ranges_mut(dst, &ranges);
    let pairs: Vec<(&[T], &mut [T])> = ranges
        .iter()
        .zip(chunks)
        .map(|(r, c)| (&src[r.clone()], c))
        .collect();
    par_parts_with(&cfg, threads, pairs, |_, (s, d)| {
        d.copy_from_slice(s);
    });
}

/// Smallest chunk [`par_copy`] will hand to a worker, in elements.
pub const MIN_COPY_CHUNK: usize = 4 * 1024;

/// Carve a mutable slice into the given disjoint, ascending ranges.
///
/// # Panics
///
/// Panics if ranges overlap, descend, or exceed the slice length.
pub fn split_ranges_mut<'a, T>(
    mut data: &'a mut [T],
    ranges: &[std::ops::Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut offset = 0usize;
    for r in ranges {
        assert!(r.start >= offset, "ranges must be ascending and disjoint");
        let skip = r.start - offset;
        let (_, rest) = data.split_at_mut(skip);
        let (chunk, rest) = rest.split_at_mut(r.end - r.start);
        out.push(chunk);
        data = rest;
        offset = r.end;
    }
    out
}

/// Run two closures, possibly in parallel (when `threads > 1`), and
/// return both results. A tiny `join` used by recursive algorithms.
pub fn join<A, B, RA, RB>(threads: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if threads <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            let rb = hb.join().expect("parallel task panicked");
            (ra, rb)
        })
    }
}

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn split_evenly_exact_division() {
        let r = split_evenly(12, 4);
        assert_eq!(r, vec![0..3, 3..6, 6..9, 9..12]);
    }

    #[test]
    fn split_evenly_with_remainder() {
        let r = split_evenly(10, 3);
        assert_eq!(r, vec![0..4, 4..7, 7..10]);
    }

    #[test]
    fn split_evenly_more_parts_than_items() {
        let r = split_evenly(2, 4);
        assert_eq!(r, vec![0..1, 1..2, 2..2, 2..2]);
    }

    #[test]
    fn split_evenly_zero_len() {
        let r = split_evenly(0, 3);
        assert!(r.iter().all(|r| r.is_empty()));
        assert_eq!(r.len(), 3);
    }

    #[test]
    #[should_panic(expected = "parts > 0")]
    fn split_evenly_zero_parts_panics() {
        split_evenly(5, 0);
    }

    #[test]
    fn par_parts_runs_every_part_once() {
        for threads in [1, 2, 4, 9] {
            for cfg in [SchedCfg::self_sched(), SchedCfg::round_robin_static()] {
                let counter = AtomicUsize::new(0);
                let hits: Vec<AtomicUsize> = (0..17).map(|_| AtomicUsize::new(0)).collect();
                let parts: Vec<usize> = (0..17).collect();
                let stats = par_parts_with(&cfg, threads, parts, |i, p| {
                    assert_eq!(i, p);
                    hits[i].fetch_add(1, Ordering::Relaxed);
                    counter.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(counter.load(Ordering::Relaxed), 17);
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
                assert_eq!(stats.parts, 17);
                assert_eq!(stats.workers.len(), threads.min(17));
                assert_eq!(stats.workers.iter().map(|w| w.parts).sum::<usize>(), 17);
            }
        }
    }

    #[test]
    fn par_parts_empty_is_noop() {
        par_parts::<usize, _>(4, Vec::new(), |_, _| panic!("should not run"));
        let stats = par_parts_with::<usize, _>(&SchedCfg::default(), 4, Vec::new(), |_, _| {
            panic!("should not run")
        });
        assert_eq!(stats, SchedStats::default());
    }

    #[test]
    fn inline_path_reports_single_worker() {
        let stats = par_parts_with(&SchedCfg::default(), 1, vec![1, 2, 3], |_, _| {});
        assert_eq!(stats.workers.len(), 1);
        assert_eq!(stats.workers[0].parts, 3);
        assert_eq!(stats.parts, 3);
    }

    #[test]
    fn round_robin_assignment_is_static() {
        // Worker w runs parts w, w+n, w+2n, …: with 10 parts on 3
        // workers the per-worker part counts are fixed at 4/3/3.
        let cfg = SchedCfg::round_robin_static();
        let stats = par_parts_with(&cfg, 3, (0..10).collect::<Vec<usize>>(), |_, _| {});
        let counts: Vec<usize> = stats.workers.iter().map(|w| w.parts).collect();
        assert_eq!(counts, vec![4, 3, 3]);
    }

    #[test]
    fn over_parts_scales_and_caps() {
        let cfg = SchedCfg::default();
        assert_eq!(cfg.chunks_eff(), SchedCfg::DEFAULT_CHUNKS_PER_THREAD);
        assert_eq!(cfg.over_parts(1, 100), 1, "single thread never splits");
        assert_eq!(cfg.over_parts(4, 1_000), 16, "4x over-decomposition");
        assert_eq!(cfg.over_parts(4, 5), 5, "capped at max_parts");
        assert_eq!(cfg.over_parts(4, 0), 1, "never zero");
        let rr = SchedCfg::round_robin_static();
        assert_eq!(rr.over_parts(4, 1_000), 4, "static: one part per worker");
    }

    #[test]
    fn imbalance_of_empty_stats_is_one() {
        assert_eq!(SchedStats::default().imbalance(), 1.0);
    }

    #[test]
    fn par_copy_matches_memcpy() {
        for threads in [1, 2, 4] {
            for len in [0usize, 10, MIN_COPY_CHUNK - 1, MIN_COPY_CHUNK * 3 + 17] {
                let src: Vec<u64> = (0..len as u64).map(|x| x.wrapping_mul(0x9E37)).collect();
                let mut dst = vec![0u64; len];
                par_copy(threads, &src, &mut dst);
                assert_eq!(src, dst, "threads={threads} len={len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn par_copy_rejects_length_mismatch() {
        let src = [1u8, 2];
        let mut dst = [0u8; 3];
        par_copy(2, &src, &mut dst);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v: Vec<usize> = vec![0; 103];
        par_chunks_mut(4, 7, &mut v, |i, chunk| {
            for x in chunk {
                *x = i + 1;
            }
        });
        assert!(v.iter().all(|&x| (1..=7).contains(&x)));
        // First chunk has ceil(103/7)=15 elements of value 1.
        assert_eq!(v.iter().filter(|&&x| x == 1).count(), 15);
    }

    #[test]
    fn split_ranges_mut_disjoint() {
        let mut v: Vec<u32> = (0..10).collect();
        let ranges = vec![0..3, 5..7, 7..10];
        let chunks = split_ranges_mut(&mut v, &ranges);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], &[0, 1, 2]);
        assert_eq!(chunks[1], &[5, 6]);
        assert_eq!(chunks[2], &[7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn split_ranges_mut_rejects_overlap() {
        let mut v = [0u8; 10];
        split_ranges_mut(&mut v, &[0..5, 3..7]);
    }

    #[test]
    fn join_returns_both() {
        for threads in [1, 2] {
            let (a, b) = join(threads, || 6 * 7, || "ok");
            assert_eq!(a, 42);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
