//! Minimal scoped-thread parallel runtime.
//!
//! A deliberately small substitute for OpenMP/TBB: every parallel
//! algorithm in this crate expresses its parallelism as a fixed set of
//! *parts* executed by up to `threads` scoped worker threads. Parts are
//! distributed round-robin at spawn time (deterministic assignment, no
//! work stealing) — the same static scheduling the GNU parallel mode
//! uses for its sort and merge, which is what the paper benchmarks.
//!
//! `threads == 0` and `threads == 1` both mean "run inline on the
//! calling thread" (zero spawn overhead), so sequential baselines are
//! exactly the same code path measured in Figure 4's single-thread
//! columns.

/// Split `len` items into `parts` contiguous ranges differing in length
/// by at most one. Returns exactly `parts` ranges (possibly empty when
/// `len < parts`).
pub fn split_evenly(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0, "split_evenly requires parts > 0");
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let sz = base + usize::from(i < extra);
        out.push(start..start + sz);
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

/// Execute one closure per part on up to `threads` scoped threads.
///
/// Parts are moved into workers round-robin by index: worker `w` runs
/// parts `w, w+threads, w+2·threads, …` in order. The closure receives
/// `(part_index, part)`.
pub fn par_parts<P, F>(threads: usize, parts: Vec<P>, f: F)
where
    P: Send,
    F: Fn(usize, P) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || parts.len() <= 1 {
        for (i, p) in parts.into_iter().enumerate() {
            f(i, p);
        }
        return;
    }
    let nworkers = threads.min(parts.len());
    // Round-robin assignment: preserve per-worker order for determinism.
    let mut buckets: Vec<Vec<(usize, P)>> = (0..nworkers).map(|_| Vec::new()).collect();
    for (i, p) in parts.into_iter().enumerate() {
        buckets[i % nworkers].push((i, p));
    }
    let fref = &f;
    std::thread::scope(|s| {
        // First worker runs on the calling thread to save one spawn.
        let mut iter = buckets.into_iter();
        let mine = iter.next().unwrap();
        for bucket in iter {
            s.spawn(move || {
                for (i, p) in bucket {
                    fref(i, p);
                }
            });
        }
        for (i, p) in mine {
            fref(i, p);
        }
    });
}

/// Split `data` into `parts` contiguous mutable chunks of near-equal
/// size and run `f(part_index, chunk)` on up to `threads` threads.
pub fn par_chunks_mut<T, F>(threads: usize, parts: usize, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let ranges = split_evenly(data.len(), parts.max(1));
    let chunks = split_ranges_mut(data, &ranges);
    par_parts(threads, chunks, f);
}

/// Carve a mutable slice into the given disjoint, ascending ranges.
///
/// # Panics
///
/// Panics if ranges overlap, descend, or exceed the slice length.
pub fn split_ranges_mut<'a, T>(
    mut data: &'a mut [T],
    ranges: &[std::ops::Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut offset = 0usize;
    for r in ranges {
        assert!(r.start >= offset, "ranges must be ascending and disjoint");
        let skip = r.start - offset;
        let (_, rest) = data.split_at_mut(skip);
        let (chunk, rest) = rest.split_at_mut(r.end - r.start);
        out.push(chunk);
        data = rest;
        offset = r.end;
    }
    out
}

/// Run two closures, possibly in parallel (when `threads > 1`), and
/// return both results. A tiny `join` used by recursive algorithms.
pub fn join<A, B, RA, RB>(threads: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if threads <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            let rb = hb.join().expect("parallel task panicked");
            (ra, rb)
        })
    }
}

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn split_evenly_exact_division() {
        let r = split_evenly(12, 4);
        assert_eq!(r, vec![0..3, 3..6, 6..9, 9..12]);
    }

    #[test]
    fn split_evenly_with_remainder() {
        let r = split_evenly(10, 3);
        assert_eq!(r, vec![0..4, 4..7, 7..10]);
    }

    #[test]
    fn split_evenly_more_parts_than_items() {
        let r = split_evenly(2, 4);
        assert_eq!(r, vec![0..1, 1..2, 2..2, 2..2]);
    }

    #[test]
    fn split_evenly_zero_len() {
        let r = split_evenly(0, 3);
        assert!(r.iter().all(|r| r.is_empty()));
        assert_eq!(r.len(), 3);
    }

    #[test]
    #[should_panic(expected = "parts > 0")]
    fn split_evenly_zero_parts_panics() {
        split_evenly(5, 0);
    }

    #[test]
    fn par_parts_runs_every_part_once() {
        for threads in [1, 2, 4, 9] {
            let counter = AtomicUsize::new(0);
            let hits: Vec<AtomicUsize> = (0..17).map(|_| AtomicUsize::new(0)).collect();
            let parts: Vec<usize> = (0..17).collect();
            par_parts(threads, parts, |i, p| {
                assert_eq!(i, p);
                hits[i].fetch_add(1, Ordering::Relaxed);
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 17);
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn par_parts_empty_is_noop() {
        par_parts::<usize, _>(4, Vec::new(), |_, _| panic!("should not run"));
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v: Vec<usize> = vec![0; 103];
        par_chunks_mut(4, 7, &mut v, |i, chunk| {
            for x in chunk {
                *x = i + 1;
            }
        });
        assert!(v.iter().all(|&x| (1..=7).contains(&x)));
        // First chunk has ceil(103/7)=15 elements of value 1.
        assert_eq!(v.iter().filter(|&&x| x == 1).count(), 15);
    }

    #[test]
    fn split_ranges_mut_disjoint() {
        let mut v: Vec<u32> = (0..10).collect();
        let ranges = vec![0..3, 5..7, 7..10];
        let chunks = split_ranges_mut(&mut v, &ranges);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], &[0, 1, 2]);
        assert_eq!(chunks[1], &[5, 6]);
        assert_eq!(chunks[2], &[7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn split_ranges_mut_rejects_overlap() {
        let mut v = [0u8; 10];
        split_ranges_mut(&mut v, &[0..5, 3..7]);
    }

    #[test]
    fn join_returns_both() {
        for threads in [1, 2] {
            let (a, b) = join(threads, || 6 * 7, || "ok");
            assert_eq!(a, 42);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
