//! A C-`qsort`-style sort: quicksort driven through an opaque comparator
//! function pointer.
//!
//! Figure 4 of the paper shows `std::qsort` running roughly half as fast
//! as `std::sort`; the cause is the uninlinable indirect comparator call
//! per comparison. We reproduce that boundary faithfully: the comparator
//! is a `fn` pointer invoked through a `#[inline(never)]` trampoline, so
//! the optimizer cannot specialize the sort for the element type.

use std::cmp::Ordering;

/// Comparator signature, mirroring C's `int (*)(const void*, const void*)`.
pub type Comparator<T> = fn(&T, &T) -> Ordering;

#[inline(never)]
fn call_cmp<T>(cmp: Comparator<T>, a: &T, b: &T) -> Ordering {
    cmp(a, b)
}

/// Sort through an opaque comparator, like C's `qsort`.
pub fn qsort<T: Copy>(data: &mut [T], cmp: Comparator<T>) {
    if data.len() <= 1 {
        return;
    }
    qsort_rec(data, cmp);
}

fn qsort_rec<T: Copy>(mut data: &mut [T], cmp: Comparator<T>) {
    while data.len() > 12 {
        let p = partition(data, cmp);
        let (lo, hi) = data.split_at_mut(p);
        let hi = &mut hi[1..];
        if lo.len() < hi.len() {
            qsort_rec(lo, cmp);
            data = hi;
        } else {
            qsort_rec(hi, cmp);
            data = lo;
        }
    }
    // Insertion finish through the same opaque comparator.
    for i in 1..data.len() {
        let x = data[i];
        let mut j = i;
        while j > 0 && call_cmp(cmp, &x, &data[j - 1]) == Ordering::Less {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = x;
    }
}

fn partition<T: Copy>(data: &mut [T], cmp: Comparator<T>) -> usize {
    let n = data.len();
    let mid = n / 2;
    if call_cmp(cmp, &data[mid], &data[0]) == Ordering::Less {
        data.swap(mid, 0);
    }
    if call_cmp(cmp, &data[n - 1], &data[0]) == Ordering::Less {
        data.swap(n - 1, 0);
    }
    if call_cmp(cmp, &data[n - 1], &data[mid]) == Ordering::Less {
        data.swap(n - 1, mid);
    }
    data.swap(mid, n - 2);
    let pivot = data[n - 2];
    let mut i = 0usize;
    let mut j = n - 2;
    loop {
        i += 1;
        while call_cmp(cmp, &data[i], &pivot) == Ordering::Less {
            i += 1;
        }
        j -= 1;
        while call_cmp(cmp, &pivot, &data[j]) == Ordering::Less {
            j -= 1;
        }
        if i >= j {
            break;
        }
        data.swap(i, j);
    }
    data.swap(i, n - 2);
    i
}

/// The comparator Figure 4 effectively uses: `f64` total order.
pub fn cmp_f64(a: &f64, b: &f64) -> Ordering {
    a.total_cmp(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_sorted;

    #[test]
    fn sorts_ints() {
        let mut v: Vec<i32> = (0..2000).rev().collect();
        qsort(&mut v, |a, b| a.cmp(b));
        let expect: Vec<i32> = (0..2000).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_f64_via_total_cmp() {
        let mut x = 1u64;
        let mut v: Vec<f64> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        qsort(&mut v, cmp_f64);
        assert!(is_sorted(&v));
    }

    #[test]
    fn duplicates_and_patterns() {
        let mut v = vec![5i64; 500];
        qsort(&mut v, |a, b| a.cmp(b));
        assert!(v.iter().all(|&x| x == 5));
        let mut v: Vec<i64> = (0..1000).map(|i| i % 3).collect();
        qsort(&mut v, |a, b| a.cmp(b));
        assert!(is_sorted(&v));
    }

    #[test]
    fn empty_and_small() {
        let mut v: Vec<i32> = vec![];
        qsort(&mut v, |a, b| a.cmp(b));
        let mut v = vec![2, 1];
        qsort(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn reverse_comparator_sorts_descending() {
        let mut v: Vec<i32> = (0..100).collect();
        qsort(&mut v, |a, b| b.cmp(a));
        let expect: Vec<i32> = (0..100).rev().collect();
        assert_eq!(v, expect);
    }
}
