//! LSD radix sort — the Thrust/CUB device-sort stand-in.
//!
//! Thrust's `sort` on primitive keys is a radix sort; the paper's
//! functional pipeline sorts each device-resident batch with it. This
//! module provides the equivalent: an out-of-place least-significant-
//! digit radix sort over 8-bit digits with a ping-pong buffer — the
//! same 2× memory footprint the paper charges against GPU global memory
//! ("Thrust sorts out-of-place, requiring double the memory of the
//! input list", §III-B), which is why batches are `b_s` elements but
//! occupy `2·b_s` on the device.
//!
//! Digits whose byte is constant across the input are skipped (the
//! standard histogram-early-exit optimization), so already-uniform high
//! bytes cost one scan, not one permute.

use crate::keys::RadixKey;

/// Number of buckets per digit (8-bit digits).
const BUCKETS: usize = 256;

/// Elements per cache block of the counting pass. 1024 keys (8 KiB of
/// extracted `u64`s) fits in L1 alongside one digit's 1 KiB counter row,
/// so the digit-major inner loop below never thrashes.
const COUNT_BLOCK: usize = 1024;

/// Histogram every digit of `data` into `hist` (layout
/// `hist[d * BUCKETS + byte]`), cache-blocked: keys are extracted once
/// per block, then each digit's counter row is filled from the resident
/// block. The element-major alternative touches all `KEY_BYTES` counter
/// rows per element, which for 8-byte keys strides across 8 KiB of
/// counters on every iteration; blocking keeps one row hot at a time.
/// Counts are exactly the element-major counts, just accumulated in a
/// different order.
pub(crate) fn count_all_digits<T: RadixKey, C: Copy + From<u8> + std::ops::AddAssign>(
    data: &[T],
    hist: &mut [C],
) {
    let digits = T::KEY_BYTES;
    debug_assert_eq!(hist.len(), BUCKETS * digits);
    let one = C::from(1u8);
    let mut keys = [0u64; COUNT_BLOCK];
    for block in data.chunks(COUNT_BLOCK) {
        let keys = &mut keys[..block.len()];
        for (k, x) in keys.iter_mut().zip(block.iter()) {
            *k = x.radix_key();
        }
        for d in 0..digits {
            let row = &mut hist[d * BUCKETS..(d + 1) * BUCKETS];
            let shift = 8 * d;
            for &k in keys.iter() {
                row[((k >> shift) & 0xFF) as usize] += one;
            }
        }
    }
}

/// Sort `data` in place (internally out-of-place with one scratch
/// allocation of equal length).
pub fn radix_sort<T: RadixKey>(data: &mut [T]) {
    let mut scratch: Vec<T> = data.to_vec();
    let ping_pongs = radix_sort_with_scratch(data, &mut scratch);
    // If an odd number of permute passes ran, the sorted result is in
    // `scratch`; copy back.
    if ping_pongs % 2 == 1 {
        data.copy_from_slice(&scratch);
    }
}

/// Sort `data` using the caller's scratch buffer (must be same length).
/// Returns the number of permute passes performed; if odd, the sorted
/// data ends up in `scratch` and the caller (or [`radix_sort`]) must
/// copy back.
pub fn radix_sort_with_scratch<T: RadixKey>(data: &mut [T], scratch: &mut [T]) -> usize {
    assert_eq!(data.len(), scratch.len(), "scratch must match input length");
    let n = data.len();
    if n <= 1 {
        return 0;
    }

    // Histogram all digits in one cache-blocked pass.
    let digits = T::KEY_BYTES;
    let mut hist = vec![0u32; BUCKETS * digits];
    count_all_digits(data, &mut hist);

    let mut passes = 0usize;
    let mut src_is_data = true;
    for d in 0..digits {
        let h = &hist[d * BUCKETS..(d + 1) * BUCKETS];
        // Skip digits where every key shares one byte value.
        if h.iter().any(|&c| c as usize == n) {
            continue;
        }
        // Exclusive prefix sum → bucket start offsets.
        let mut offsets = [0usize; BUCKETS];
        let mut sum = 0usize;
        for (o, &c) in offsets.iter_mut().zip(h.iter()) {
            *o = sum;
            sum += c as usize;
        }
        let (src, dst): (&[T], &mut [T]) = if src_is_data {
            (&*data, &mut *scratch)
        } else {
            (&*scratch, &mut *data)
        };
        for &x in src.iter() {
            let byte = ((x.radix_key() >> (8 * d)) & 0xFF) as usize;
            dst[offsets[byte]] = x;
            offsets[byte] += 1;
        }
        src_is_data = !src_is_data;
        passes += 1;
    }
    passes
}

/// Convenience: sort and return the number of permute passes that an
/// out-of-place radix sorter would execute (used by the device cost
/// model to attribute work).
pub fn radix_pass_count<T: RadixKey>(data: &[T]) -> usize {
    let n = data.len();
    if n <= 1 {
        return 0;
    }
    let digits = T::KEY_BYTES;
    let mut hist = vec![0u32; BUCKETS * digits];
    count_all_digits(data, &mut hist);
    (0..digits)
        .filter(|d| {
            !hist[d * BUCKETS..(d + 1) * BUCKETS]
                .iter()
                .any(|&c| c as usize == n)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::introsort::introsort;
    use crate::verify::{fingerprint_f64, is_sorted};

    fn lcg(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x
            })
            .collect()
    }

    #[test]
    fn sorts_u64() {
        let mut v = lcg(42, 10_000);
        radix_sort(&mut v);
        assert!(is_sorted(&v));
    }

    #[test]
    fn matches_introsort_on_f64() {
        let mut v: Vec<f64> = lcg(7, 5000)
            .into_iter()
            .map(|b| f64::from_bits(b & !(0x7FF << 52)) - 0.5) // finite
            .collect();
        let fp = fingerprint_f64(&v);
        let mut expect = v.clone();
        introsort(&mut expect);
        radix_sort(&mut v);
        assert_eq!(
            v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(fp, fingerprint_f64(&v), "radix must be a permutation");
    }

    #[test]
    fn sorts_negative_floats_and_specials() {
        let mut v = vec![
            3.5f64,
            -2.0,
            f64::INFINITY,
            -0.0,
            0.0,
            f64::NEG_INFINITY,
            f64::NAN,
            -1e308,
        ];
        radix_sort(&mut v);
        assert_eq!(v[0], f64::NEG_INFINITY);
        assert_eq!(v[1], -1e308);
        assert_eq!(v[2], -2.0);
        assert!(v[3] == 0.0 && v[3].is_sign_negative());
        assert!(v[4] == 0.0 && v[4].is_sign_positive());
        assert_eq!(v[5], 3.5);
        assert_eq!(v[6], f64::INFINITY);
        assert!(v[7].is_nan());
    }

    #[test]
    fn sorts_signed_ints() {
        let mut v: Vec<i64> = lcg(9, 3000).into_iter().map(|x| x as i64).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_u32_with_4_byte_keys() {
        let mut v: Vec<u32> = lcg(11, 3000).into_iter().map(|x| x as u32).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn empty_single_constant() {
        let mut v: Vec<u64> = vec![];
        radix_sort(&mut v);
        let mut v = vec![5u64];
        radix_sort(&mut v);
        assert_eq!(v, vec![5]);
        let mut v = vec![7u64; 100];
        radix_sort(&mut v);
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn constant_high_bytes_skip_passes() {
        // Values < 256: only digit 0 varies → exactly 1 permute pass.
        let v: Vec<u64> = (0..100).map(|i| (i * 37) % 256).collect();
        assert_eq!(radix_pass_count(&v), 1);
        // Uniform value → zero passes.
        assert_eq!(radix_pass_count(&vec![9u64; 50]), 0);
        // Full-range u64 → 8 passes (with overwhelming probability).
        assert_eq!(radix_pass_count(&lcg(3, 4096)), 8);
    }

    #[test]
    fn scratch_variant_reports_parity() {
        let mut v: Vec<u64> = (0..1000).rev().collect();
        let mut scratch = v.clone();
        let passes = radix_sort_with_scratch(&mut v, &mut scratch);
        let sorted: &[u64] = if passes % 2 == 1 { &scratch } else { &v };
        assert!(is_sorted(sorted));
    }

    #[test]
    #[should_panic(expected = "scratch must match")]
    fn mismatched_scratch_panics() {
        let mut v = vec![1u64, 2];
        let mut s = vec![0u64; 3];
        radix_sort_with_scratch(&mut v, &mut s);
    }

    #[test]
    fn already_sorted_stays_sorted() {
        let mut v: Vec<u64> = (0..5000).collect();
        radix_sort(&mut v);
        assert!(is_sorted(&v));
        assert_eq!(v[0], 0);
        assert_eq!(v[4999], 4999);
    }
}
