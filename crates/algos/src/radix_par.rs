//! Parallel LSD radix sort — the Thrust device sort modeled faithfully.
//!
//! Thrust's radix sort is a sequence of count → scan → scatter passes
//! over thousands of GPU threads. This is the CPU translation: each
//! pass computes per-chunk digit histograms in parallel, prefix-scans
//! them into disjoint per-(bucket, chunk) output blocks, and scatters
//! in parallel. Stability is preserved (chunks own contiguous input
//! ranges, scanned in order), so the pass sequence sorts exactly like
//! the sequential [`crate::radix`] — verified bit-for-bit by tests.
//!
//! Histogram counts are [`HistCount`] (`u64`): the paper's headline run
//! sorts n = 4.9×10⁹ elements, and a `u32` count wraps exactly there
//! when one worker chunk holds ≥ 2³² equal-digit elements.
//!
//! The scatter writes through a raw pointer because each chunk's
//! targets interleave globally while remaining *pairwise disjoint* —
//! the canonical counting-sort partition. See the `SAFETY` notes.

use crate::keys::RadixKey;
use crate::par::{par_parts_with, split_evenly, SchedCfg};

const BUCKETS: usize = 256;

/// Histogram count type. `u64`, never `u32`: a chunk with ≥ 2³²
/// equal-digit elements (paper scale) must not wrap silently.
pub type HistCount = u64;

/// Smallest per-chunk slice the sort will hand to the scheduler, in
/// elements — bounds histogram memory (one `BUCKETS × digits` table
/// per chunk) and keeps queue overhead negligible.
const MIN_RADIX_CHUNK: usize = 4 * 1024;

/// Elements per cache block of [`count_digits`] — see
/// `radix::count_all_digits` for the rationale (8 KiB of extracted keys
/// plus one 2 KiB counter row stay L1-resident).
const COUNT_BLOCK: usize = 1024;

/// Count digit occurrences of `chunk` into `hist` (layout
/// `[digit][bucket]`, `BUCKETS * digits` wide). This is the per-worker
/// counting kernel of every pass; extracted so overflow behaviour is
/// testable without allocating paper-scale inputs.
///
/// Cache-blocked: keys are extracted once per 1024-element block, then
/// each digit's counter row is filled from the resident block, instead
/// of striding across all `digits` rows per element. Counts are exactly
/// the element-major counts, accumulated in a different order.
fn count_digits<T: RadixKey>(chunk: &[T], digits: usize, hist: &mut [HistCount]) {
    let mut keys = [0u64; COUNT_BLOCK];
    for block in chunk.chunks(COUNT_BLOCK) {
        let keys = &mut keys[..block.len()];
        for (k, x) in keys.iter_mut().zip(block.iter()) {
            *k = x.radix_key();
        }
        for d in 0..digits {
            let row = &mut hist[d * BUCKETS..(d + 1) * BUCKETS];
            let shift = 8 * d;
            for &k in keys.iter() {
                row[((k >> shift) & 0xFF) as usize] += 1;
            }
        }
    }
}

/// Shared mutable output for the scatter phase.
///
/// SAFETY invariant: all concurrent writers write pairwise-disjoint
/// index sets (guaranteed by the exclusive scan over per-chunk bucket
/// counts), and the pointer outlives the scoped threads.
struct ScatterTarget<T>(*mut T);
// SAFETY: concurrent writers touch pairwise-disjoint index sets (the
// exclusive scan hands each chunk a private block per bucket) and the
// pointee outlives the scoped threads, so shared access cannot alias.
unsafe impl<T: Send> Sync for ScatterTarget<T> {}
// SAFETY: the wrapper is just a pointer to a `Send` buffer owned by the
// spawning scope; moving it to another thread moves no non-Send state.
unsafe impl<T: Send> Send for ScatterTarget<T> {}

/// Sort `data` with a parallel LSD radix sort on `threads` workers.
///
/// Falls back to the sequential radix sort for small inputs or one
/// thread. Allocates one scratch buffer of equal length.
pub fn par_radix_sort<T: RadixKey + Default>(threads: usize, data: &mut [T]) {
    par_radix_sort_cfg(&SchedCfg::default(), threads, data);
}

/// [`par_radix_sort`] with an explicit scheduling policy.
pub fn par_radix_sort_cfg<T: RadixKey + Default>(cfg: &SchedCfg, threads: usize, data: &mut [T]) {
    let threads = threads.max(1);
    let n = data.len();
    if threads == 1 || n < 8 * 1024 {
        crate::radix::radix_sort(data);
        return;
    }
    let mut scratch: Vec<T> = vec![T::default(); n];
    let passes = par_radix_with_scratch_cfg(cfg, threads, data, &mut scratch);
    if passes % 2 == 1 {
        data.copy_from_slice(&scratch);
    }
}

/// Parallel radix sort with a caller-provided scratch buffer; returns
/// the number of permute passes (odd → result lives in `scratch`).
pub fn par_radix_with_scratch<T: RadixKey>(
    threads: usize,
    data: &mut [T],
    scratch: &mut [T],
) -> usize {
    par_radix_with_scratch_cfg(&SchedCfg::default(), threads, data, scratch)
}

/// [`par_radix_with_scratch`] with an explicit scheduling policy. The
/// input is over-decomposed into [`SchedCfg::over_parts`] chunks (≥
/// [`MIN_RADIX_CHUNK`] elements each) claimed from the scheduler's
/// queue; the exclusive scan runs over (bucket, chunk) in chunk order,
/// so the permutation — and therefore stability — is identical under
/// every policy and thread count.
pub fn par_radix_with_scratch_cfg<T: RadixKey>(
    cfg: &SchedCfg,
    threads: usize,
    data: &mut [T],
    scratch: &mut [T],
) -> usize {
    assert_eq!(data.len(), scratch.len(), "scratch must match input length");
    let n = data.len();
    if n <= 1 {
        return 0;
    }
    let digits = T::KEY_BYTES;
    let nchunks = cfg.over_parts(threads, n.div_ceil(MIN_RADIX_CHUNK));
    let chunks = split_evenly(n, nchunks);

    // Global histograms for every digit in one parallel pass
    // (per-chunk local tables, reduced afterwards).
    let mut local_hists: Vec<Vec<HistCount>>;
    {
        let mut slots: Vec<Vec<HistCount>> =
            (0..nchunks).map(|_| vec![0; BUCKETS * digits]).collect();
        let parts: Vec<(std::ops::Range<usize>, &mut Vec<HistCount>)> =
            chunks.iter().cloned().zip(slots.iter_mut()).collect();
        let data_ref: &[T] = data;
        par_parts_with(cfg, threads, parts, |_, (range, hist)| {
            count_digits(&data_ref[range], digits, hist);
        });
        local_hists = slots;
    }
    let mut global = vec![0u64; BUCKETS * digits];
    for h in &local_hists {
        for (g, &c) in global.iter_mut().zip(h.iter()) {
            *g += c;
        }
    }

    let mut passes = 0usize;
    let mut src_is_data = true;
    for d in 0..digits {
        let g = &global[d * BUCKETS..(d + 1) * BUCKETS];
        if g.iter().any(|&c| c as usize == n) {
            continue; // constant digit, skip the permute
        }
        // Exclusive scan over (bucket, chunk): chunk c's block for
        // bucket b starts at Σ_{b'<b} total[b'] + Σ_{c'<c} hist[c'][b].
        let mut bucket_starts = [0usize; BUCKETS];
        let mut sum = 0usize;
        for (b, s) in bucket_starts.iter_mut().enumerate() {
            *s = sum;
            sum += g[b] as usize;
        }
        let mut chunk_offsets: Vec<[usize; BUCKETS]> = vec![[0usize; BUCKETS]; nchunks];
        for b in 0..BUCKETS {
            let mut off = bucket_starts[b];
            for (c, co) in chunk_offsets.iter_mut().enumerate() {
                co[b] = off;
                off += local_hists[c][d * BUCKETS + b] as usize;
            }
        }

        let (src, dst): (&[T], &mut [T]) = if src_is_data {
            (&*data, &mut *scratch)
        } else {
            (&*scratch, &mut *data)
        };
        let target = ScatterTarget(dst.as_mut_ptr());
        let parts: Vec<(std::ops::Range<usize>, [usize; BUCKETS])> =
            chunks.iter().cloned().zip(chunk_offsets).collect();
        let target_ref = &target;
        par_parts_with(cfg, threads, parts, move |_, (range, mut offsets)| {
            for &x in &src[range] {
                let byte = ((x.radix_key() >> (8 * d)) & 0xFF) as usize;
                // SAFETY: `offsets[byte]` walks this chunk's private
                // block for `byte` (exclusive scan above): no two
                // chunks ever produce the same index, every index is
                // in-bounds (Σ blocks = n), and the scoped-thread join
                // sequences all writes before the next pass reads.
                unsafe {
                    *target_ref.0.add(offsets[byte]) = x;
                }
                offsets[byte] += 1;
            }
        });

        // Histograms stay valid across passes: counting-sort permutes,
        // never changes the multiset, but per-chunk *contents* change —
        // recompute local histograms for the remaining digits.
        if d + 1 < digits {
            let next_src: &[T] = if src_is_data { &*scratch } else { &*data };
            let mut slots: Vec<Vec<HistCount>> =
                (0..nchunks).map(|_| vec![0; BUCKETS * digits]).collect();
            let parts: Vec<(std::ops::Range<usize>, &mut Vec<HistCount>)> =
                chunks.iter().cloned().zip(slots.iter_mut()).collect();
            par_parts_with(cfg, threads, parts, |_, (range, hist)| {
                count_digits(&next_src[range], digits, hist);
            });
            local_hists = slots;
        }

        src_is_data = !src_is_data;
        passes += 1;
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix::radix_sort;
    use crate::verify::{fingerprint, is_sorted};

    fn lcg(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x
            })
            .collect()
    }

    #[test]
    fn matches_sequential_radix_u64() {
        for n in [0usize, 1, 100, 8 * 1024, 50_000] {
            let base = lcg(3, n);
            let mut a = base.clone();
            let mut b = base;
            radix_sort(&mut a);
            par_radix_sort(4, &mut b);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn matches_sequential_radix_f64() {
        let base: Vec<f64> = lcg(7, 60_000)
            .into_iter()
            .map(|b| f64::from_bits(b & !(0x7FF << 52)) - 0.5)
            .collect();
        let mut a = base.clone();
        let mut b = base;
        radix_sort(&mut a);
        par_radix_sort(3, &mut b);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn preserves_multiset() {
        let v0 = lcg(11, 40_000);
        let fp = fingerprint(&v0);
        let mut v = v0;
        par_radix_sort(5, &mut v);
        assert!(is_sorted(&v));
        assert_eq!(fingerprint(&v), fp);
    }

    #[test]
    fn handles_signed_and_small_ranges() {
        let mut v: Vec<i64> = lcg(13, 30_000).into_iter().map(|x| x as i64).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        par_radix_sort(4, &mut v);
        assert_eq!(v, expect);
        // Low-entropy: only 1 active digit → 1 permute pass.
        let mut v: Vec<u64> = lcg(17, 20_000).into_iter().map(|x| x % 200).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        par_radix_sort(4, &mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn various_thread_counts_agree() {
        let base = lcg(19, 30_000);
        let mut expect = base.clone();
        radix_sort(&mut expect);
        for threads in [2usize, 3, 7, 16] {
            let mut v = base.clone();
            par_radix_sort(threads, &mut v);
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn cfg_policies_agree() {
        let base = lcg(29, 40_000);
        let mut expect = base.clone();
        radix_sort(&mut expect);
        for cfg in [SchedCfg::self_sched(), SchedCfg::round_robin_static()] {
            for threads in [2usize, 8, 16] {
                let mut v = base.clone();
                par_radix_sort_cfg(&cfg, threads, &mut v);
                assert_eq!(v, expect, "cfg={cfg:?} threads={threads}");
            }
        }
    }

    #[test]
    fn histogram_counts_cannot_wrap_at_paper_scale() {
        // Mock a chunk that has already counted u32::MAX elements whose
        // low digit is 0x00 (paper scale: n = 4.9e9 > 2³²) without
        // allocating them: seed the histogram, then run the real
        // counting kernel over 10 more such elements.
        let digits = <u64 as RadixKey>::KEY_BYTES;
        let mut hist: Vec<HistCount> = vec![0; BUCKETS * digits];
        hist[0] = u32::MAX as HistCount; // digit 0, bucket 0x00
        count_digits(&[0u64; 10], digits, &mut hist);
        assert_eq!(
            hist[0],
            u32::MAX as u64 + 10,
            "a u32 histogram wraps to 9 here and merges garbage silently"
        );
        // The wrap a u32 histogram would have produced is observable:
        assert_ne!(hist[0] as u32 as u64, hist[0]);
    }

    #[test]
    fn scratch_parity_reported() {
        let mut v = lcg(23, 20_000);
        let mut scratch = vec![0u64; v.len()];
        let passes = par_radix_with_scratch(4, &mut v, &mut scratch);
        let out: &[u64] = if passes % 2 == 1 { &scratch } else { &v };
        assert!(is_sorted(out));
    }

    #[test]
    #[should_panic(expected = "scratch must match")]
    fn scratch_mismatch_panics() {
        let mut v = vec![1u64, 2];
        let mut s = vec![0u64; 3];
        par_radix_with_scratch(2, &mut v, &mut s);
    }
}
