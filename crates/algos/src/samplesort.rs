//! Parallel samplesort — the TBB-flavored comparison sort baseline.
//!
//! Figure 4 of the paper also benchmarks Intel TBB's parallel sort,
//! which (like most task-parallel quicksort descendants) partitions by
//! value rather than by position. This samplesort captures that shape:
//! sample splitters, bucket every chunk by binary search against the
//! splitters, concatenate buckets, and sort each bucket independently.
//! Distribution-sensitive — on heavily skewed inputs the buckets
//! imbalance, which is the classic reason the GNU multiway mergesort
//! wins at large `n` (the paper's reason for choosing GNU as the
//! reference implementation).

use crate::introsort::introsort;
use crate::keys::SortOrd;
use crate::multiway::upper_bound;
use crate::par::{par_parts_with, split_evenly, split_ranges_mut, SchedCfg};

/// Oversampling factor for splitter selection.
const OVERSAMPLE: usize = 32;

/// Sort `data` with `threads` workers using samplesort.
pub fn par_samplesort<T: SortOrd + Default>(threads: usize, data: &mut [T]) {
    par_samplesort_cfg(&SchedCfg::default(), threads, data);
}

/// [`par_samplesort`] with an explicit scheduling policy. The bucket
/// count is over-decomposed ([`SchedCfg::over_parts`]) so that on
/// skewed inputs — where value-based buckets imbalance badly — an
/// oversized bucket occupies one worker while the rest drain the queue,
/// instead of stalling a statically-assigned peer.
pub fn par_samplesort_cfg<T: SortOrd + Default>(cfg: &SchedCfg, threads: usize, data: &mut [T]) {
    let threads = threads.max(1);
    let n = data.len();
    if threads == 1 || n < 4 * threads * OVERSAMPLE {
        introsort(data);
        return;
    }

    // 1. Choose p-1 splitters from an oversampled, evenly spaced sample.
    //    (The fallback above guarantees n / (4·OVERSAMPLE) ≥ threads, so
    //    the sample never exceeds a quarter of the input.)
    let p = cfg.over_parts(threads, n / (4 * OVERSAMPLE));
    let sample_len = p * OVERSAMPLE;
    let mut sample: Vec<T> = (0..sample_len)
        .map(|i| data[i * (n / sample_len)])
        .collect();
    introsort(&mut sample);
    let splitters: Vec<T> = (1..p).map(|i| sample[i * OVERSAMPLE]).collect();

    // 2. Bucket each chunk locally (parallel): per-chunk vector of
    //    p buckets, classified by binary search against the splitters.
    let chunk_ranges = split_evenly(n, p);
    let chunks: Vec<&[T]> = chunk_ranges.iter().map(|r| &data[r.clone()]).collect();
    let local: Vec<parking::Slot<Vec<Vec<T>>>> = (0..p).map(|_| parking::Slot::new()).collect();
    {
        let parts: Vec<(usize, &[T])> = chunks.iter().copied().enumerate().collect();
        let local_ref = &local;
        let splitters_ref = &splitters;
        par_parts_with(cfg, threads, parts, move |_, (c, chunk)| {
            let mut buckets: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
            for &x in chunk {
                let b = upper_bound(splitters_ref, &x);
                buckets[b].push(x);
            }
            local_ref[c].put(buckets);
        });
    }
    let local: Vec<Vec<Vec<T>>> = local.into_iter().map(parking::Slot::take).collect();

    // 3. Bucket sizes → output ranges.
    let mut bucket_sizes = vec![0usize; p];
    for chunk_buckets in &local {
        for (b, v) in chunk_buckets.iter().enumerate() {
            bucket_sizes[b] += v.len();
        }
    }
    let mut bucket_ranges = Vec::with_capacity(p);
    let mut start = 0usize;
    for &sz in &bucket_sizes {
        bucket_ranges.push(start..start + sz);
        start += sz;
    }
    debug_assert_eq!(start, n);

    // 4. Concatenate each bucket's chunk-local pieces and sort it, in
    //    parallel over buckets (disjoint output ranges).
    let out_chunks = split_ranges_mut(data, &bucket_ranges);
    let parts: Vec<(usize, &mut [T])> = out_chunks.into_iter().enumerate().collect();
    let local_ref = &local;
    par_parts_with(cfg, threads, parts, move |_, (b, out)| {
        let mut off = 0usize;
        for chunk_buckets in local_ref {
            let piece = &chunk_buckets[b];
            out[off..off + piece.len()].copy_from_slice(piece);
            off += piece.len();
        }
        introsort(out);
    });
}

/// Tiny once-cell used to pass owned results out of scoped workers
/// without locks on the hot path.
mod parking {
    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// A write-once slot: one writer thread calls [`put`](Slot::put),
    /// the owner later calls [`take`](Slot::take) after all writers have
    /// joined (the scoped-thread join provides the happens-before edge;
    /// the atomic flag makes misuse detectable).
    pub struct Slot<T> {
        full: AtomicBool,
        val: UnsafeCell<Option<T>>,
    }

    // SAFETY: at most one writer puts (enforced by the swap), and take
    // happens after all writers joined.
    unsafe impl<T: Send> Sync for Slot<T> {}
    unsafe impl<T: Send> Send for Slot<T> {}

    impl<T> Slot<T> {
        pub fn new() -> Self {
            Slot {
                full: AtomicBool::new(false),
                val: UnsafeCell::new(None),
            }
        }

        /// Store the value. Panics on double-put.
        pub fn put(&self, v: T) {
            assert!(
                !self.full.swap(true, Ordering::AcqRel),
                "Slot::put called twice"
            );
            // SAFETY: the swap above made this thread the unique writer.
            unsafe { *self.val.get() = Some(v) };
        }

        /// Consume the value. Panics if never put.
        pub fn take(self) -> T {
            assert!(self.full.load(Ordering::Acquire), "Slot::take before put");
            self.val.into_inner().expect("slot value missing")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{fingerprint, is_sorted};

    fn lcg(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_introsort() {
        let base = lcg(5, 20_000);
        let mut expect = base.clone();
        introsort(&mut expect);
        for threads in [2usize, 4, 8] {
            let mut v = base.clone();
            par_samplesort(threads, &mut v);
            assert_eq!(
                v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn cfg_policies_agree() {
        let base = lcg(6, 25_000);
        let mut expect = base.clone();
        introsort(&mut expect);
        let expect: Vec<u64> = expect.iter().map(|x| x.to_bits()).collect();
        for cfg in [SchedCfg::self_sched(), SchedCfg::round_robin_static()] {
            for threads in [2usize, 8] {
                let mut v = base.clone();
                par_samplesort_cfg(&cfg, threads, &mut v);
                assert_eq!(
                    v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    expect,
                    "cfg={cfg:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn small_inputs_fall_back_to_introsort() {
        let mut v = lcg(9, 100);
        par_samplesort(8, &mut v);
        assert!(is_sorted(&v));
    }

    #[test]
    fn preserves_multiset() {
        let v0 = lcg(31, 15_000);
        let fp = fingerprint(&v0);
        let mut v = v0;
        par_samplesort(4, &mut v);
        assert!(is_sorted(&v));
        assert_eq!(fingerprint(&v), fp);
    }

    #[test]
    fn skewed_input_still_sorts() {
        // 90% identical values: buckets imbalance but output is correct.
        let mut v: Vec<f64> = vec![1.0; 18_000];
        v.extend(lcg(77, 2_000));
        let fp = fingerprint(&v);
        par_samplesort(4, &mut v);
        assert!(is_sorted(&v));
        assert_eq!(fingerprint(&v), fp);
    }

    #[test]
    fn sorted_input() {
        let mut v: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
        par_samplesort(4, &mut v);
        assert!(is_sorted(&v));
        assert_eq!(v[0], 0.0);
        assert_eq!(v[19_999], 19_999.0);
    }

    #[test]
    fn slot_roundtrip() {
        let s = parking::Slot::new();
        s.put(42);
        assert_eq!(s.take(), 42);
    }

    #[test]
    #[should_panic(expected = "put called twice")]
    fn slot_double_put_panics() {
        let s = parking::Slot::new();
        s.put(1);
        s.put(2);
    }

    #[test]
    #[should_panic(expected = "take before put")]
    fn slot_take_before_put_panics() {
        let s: parking::Slot<i32> = parking::Slot::new();
        s.take();
    }
}
