//! Sortedness checks and multiset fingerprints.
//!
//! A correct sort is (a) sorted and (b) a permutation of its input.
//! Checking (b) exactly needs O(n) extra memory; instead we use an
//! order-independent multiset fingerprint (sum + xor + rotated-sum of
//! key bits), which is cheap, streaming, and collision-resistant enough
//! for test purposes.

use crate::keys::{RadixKey, SortOrd};

/// Is the slice non-decreasing under the crate's total order?
pub fn is_sorted<T: SortOrd>(data: &[T]) -> bool {
    data.windows(2).all(|w| w[0].le(&w[1]))
}

/// Order-independent multiset fingerprint of arbitrary radix-keyable
/// elements. Equal multisets give equal fingerprints; differing
/// multisets collide with negligible probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Wrapping sum of mixed keys.
    pub sum: u64,
    /// Xor of mixed keys.
    pub xor: u64,
    /// Wrapping sum of squared mixed keys (catches xor/sum collisions).
    pub sq: u64,
    /// Element count.
    pub count: u64,
}

/// Strong 64-bit mixer (splitmix64 finalizer).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Compute the fingerprint of any radix-keyable slice.
pub fn fingerprint<T: RadixKey>(data: &[T]) -> Fingerprint {
    let mut sum = 0u64;
    let mut xor = 0u64;
    let mut sq = 0u64;
    for &x in data {
        let m = mix(x.radix_key());
        sum = sum.wrapping_add(m);
        xor ^= m;
        sq = sq.wrapping_add(m.wrapping_mul(m));
    }
    Fingerprint {
        sum,
        xor,
        sq,
        count: data.len() as u64,
    }
}

/// Fingerprint specialized for `f64` (the paper's datatype).
pub fn fingerprint_f64(data: &[f64]) -> Fingerprint {
    fingerprint(data)
}

/// Combine fingerprints of disjoint pieces (multiset union).
pub fn combine(a: Fingerprint, b: Fingerprint) -> Fingerprint {
    Fingerprint {
        sum: a.sum.wrapping_add(b.sum),
        xor: a.xor ^ b.xor,
        sq: a.sq.wrapping_add(b.sq),
        count: a.count + b.count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_sorted_basic() {
        assert!(is_sorted::<i32>(&[]));
        assert!(is_sorted(&[1]));
        assert!(is_sorted(&[1, 1, 2, 3]));
        assert!(!is_sorted(&[2, 1]));
    }

    #[test]
    fn is_sorted_floats_total_order() {
        assert!(is_sorted(&[f64::NEG_INFINITY, -0.0, 0.0, 1.0, f64::NAN]));
        assert!(!is_sorted(&[0.0, -0.0])); // -0.0 sorts before +0.0
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let a = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let b = [9u64, 6, 5, 4, 3, 2, 1, 1];
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn fingerprint_detects_changes() {
        let a = [3u64, 1, 4, 1, 5];
        let mut b = a;
        b[2] = 7;
        assert_ne!(fingerprint(&a), fingerprint(&b));
        // Dropping an element changes count.
        assert_ne!(fingerprint(&a), fingerprint(&a[..4]));
        // Duplicating one element while removing another is caught by sum/sq.
        let c = [3u64, 1, 4, 1, 1];
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn combine_matches_concatenation() {
        let a = [1.5f64, -2.0, 0.0];
        let b = [7.25f64, f64::INFINITY];
        let whole = [1.5f64, -2.0, 0.0, 7.25, f64::INFINITY];
        assert_eq!(
            combine(fingerprint(&a), fingerprint(&b)),
            fingerprint(&whole)
        );
    }

    #[test]
    fn distinguishes_pos_and_neg_zero() {
        assert_ne!(fingerprint(&[0.0f64]), fingerprint(&[-0.0f64]));
    }
}
