//! Adversarial differential tests for the optimized host merge kernels.
//!
//! The branchless `merge_into`, the software-prefetched loser tree, and
//! the parallel wrappers must reproduce the straightforward reference
//! kernels **bit for bit** — including on inputs chosen to break
//! float-comparison shortcuts: NaNs with distinct payloads, signed
//! zeros, infinities, and constant keys (where stability is the only
//! thing distinguishing correct from wrong output).

use hetsort_algos::keys::SortOrd;
use hetsort_algos::merge::{merge_into, merge_into_reference, par_merge_into};
use hetsort_algos::multiway::{multiway_merge_into, par_multiway_merge_into_cfg};
use hetsort_algos::SchedCfg;
use hetsort_prng::{prop_assert_eq, run_cases, Rng};

/// Adversarial f64 pool: every IEEE-754 special the total order must
/// rank, with two distinct NaN payloads so bit-identity (not just
/// value-identity) is observable.
const SPECIALS: [f64; 8] = [
    f64::NEG_INFINITY,
    -1.5,
    -0.0,
    0.0,
    1.5,
    f64::INFINITY,
    f64::NAN,
    f64::MIN_POSITIVE,
];

fn adversarial_sorted(rng: &mut Rng, max_len: usize) -> Vec<f64> {
    let mut v = rng.vec_with(max_len, |r| {
        let pick = r.usize_in(0, 9);
        if pick < SPECIALS.len() {
            SPECIALS[pick]
        } else if pick == SPECIALS.len() {
            // A second NaN payload, distinguishable only by bits.
            f64::from_bits(0x7FF8_0000_0000_0001)
        } else {
            r.f64_unit() * 200.0 - 100.0
        }
    });
    v.sort_by(|a, b| a.total_order(b));
    v
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Left fold of the two-way *reference* merge: the stability oracle for
/// every k-way variant (earlier lists win ties).
fn fold_reference(lists: &[&[f64]]) -> Vec<f64> {
    let mut acc: Vec<f64> = Vec::new();
    for l in lists {
        let mut merged = vec![0.0f64; acc.len() + l.len()];
        merge_into_reference(&acc, l, &mut merged);
        acc = merged;
    }
    acc
}

#[test]
fn branchless_merge_matches_reference_on_specials() {
    run_cases(
        "branchless_merge_matches_reference_on_specials",
        200,
        |rng| {
            let a = adversarial_sorted(rng, 300);
            let b = adversarial_sorted(rng, 300);
            let mut expect = vec![0.0f64; a.len() + b.len()];
            merge_into_reference(&a, &b, &mut expect);
            let mut got = vec![0.0f64; expect.len()];
            merge_into(&a, &b, &mut got);
            prop_assert_eq!(bits(&got), bits(&expect));
            for threads in [1usize, 2, 8] {
                let mut par = vec![0.0f64; expect.len()];
                par_merge_into(threads, &a, &b, &mut par);
                prop_assert_eq!((threads, bits(&par)), (threads, bits(&expect)));
            }
            Ok(())
        },
    );
}

#[test]
fn constant_keys_merge_stably_and_bit_identically() {
    // All keys equal: every output position is decided purely by the
    // tie rule. -0.0 vs +0.0 would surface any a/b swap as a sign-bit
    // difference even though the values compare equal under ==.
    let a = vec![-0.0f64; 513];
    let b = vec![0.0f64; 257];
    let mut expect = vec![1.0f64; a.len() + b.len()];
    merge_into_reference(&a, &b, &mut expect);
    let mut got = vec![1.0f64; expect.len()];
    merge_into(&a, &b, &mut got);
    assert_eq!(bits(&got), bits(&expect));
    for threads in [1usize, 2, 8] {
        let mut par = vec![1.0f64; expect.len()];
        par_merge_into(threads, &a, &b, &mut par);
        assert_eq!(bits(&par), bits(&expect), "threads={threads}");
    }
    // Same discipline through the loser tree: list index breaks ties.
    let lists: Vec<&[f64]> = vec![&a, &b, &a];
    let expect = fold_reference(&lists);
    let mut got = vec![1.0f64; expect.len()];
    multiway_merge_into(&lists, &mut got);
    assert_eq!(bits(&got), bits(&expect));
}

#[test]
fn prefetched_loser_tree_matches_fold_oracle() {
    run_cases("prefetched_loser_tree_matches_fold_oracle", 120, |rng| {
        let k = rng.usize_in(3, 9);
        let lists: Vec<Vec<f64>> = (0..k).map(|_| adversarial_sorted(rng, 150)).collect();
        let refs: Vec<&[f64]> = lists.iter().map(|l| l.as_slice()).collect();
        let expect = fold_reference(&refs);
        let mut got = vec![0.0f64; expect.len()];
        multiway_merge_into(&refs, &mut got);
        prop_assert_eq!(bits(&got), bits(&expect));
        for threads in [1usize, 2, 8] {
            let mut par = vec![0.0f64; expect.len()];
            par_multiway_merge_into_cfg(&SchedCfg::default(), threads, &refs, &mut par);
            prop_assert_eq!((threads, bits(&par)), (threads, bits(&expect)));
        }
        Ok(())
    });
}

#[test]
fn merge_tail_copy_handles_disjoint_ranges() {
    // One input entirely precedes the other: the branchless loop exits
    // after the first few iterations and the bulk goes through the tail
    // copy_from_slice — exercise both orders, with specials at edges.
    let lo = {
        let mut v = vec![f64::NEG_INFINITY, -3.0, -2.0, -1.0, -0.0];
        v.sort_by(|a, b| a.total_order(b));
        v
    };
    let hi = vec![0.0f64, 1.0, 2.0, f64::INFINITY, f64::NAN];
    for (a, b) in [(&lo, &hi), (&hi, &lo)] {
        let mut expect = vec![0.0f64; a.len() + b.len()];
        merge_into_reference(a, b, &mut expect);
        let mut got = vec![0.0f64; expect.len()];
        merge_into(a, b, &mut got);
        assert_eq!(bits(&got), bits(&expect));
    }
}
