//! Property tests for the merge machinery: co-rank invariants, merge
//! path partitioning, multisequence selection, and parallel/sequential
//! agreement of every merge variant.

use hetsort_algos::merge::{co_rank, merge_into, par_merge_into};
use hetsort_algos::multiway::{
    multiway_cuts, multiway_merge_into, par_multiway_merge_into,
};
use hetsort_algos::verify::{combine, fingerprint, is_sorted, Fingerprint};
use proptest::prelude::*;

fn sorted_vec(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..1000, 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    #[test]
    fn merge_is_sorted_permutation(a in sorted_vec(200), b in sorted_vec(200)) {
        let mut out = vec![0u32; a.len() + b.len()];
        merge_into(&a, &b, &mut out);
        prop_assert!(is_sorted(&out));
        prop_assert_eq!(
            fingerprint(&out),
            combine(fingerprint(&a), fingerprint(&b))
        );
    }

    #[test]
    fn co_rank_defines_exact_prefix(
        a in sorted_vec(100),
        b in sorted_vec(100),
        kf in 0.0f64..=1.0,
    ) {
        let total = a.len() + b.len();
        let k = ((total as f64) * kf) as usize;
        let (i, j) = co_rank(k, &a, &b);
        prop_assert_eq!(i + j, k);
        // Merge-path invariants: everything in the prefix ≤ everything
        // in the suffix, with stability (a wins ties at the boundary):
        if i > 0 && j < b.len() {
            prop_assert!(a[i - 1] <= b[j], "a-prefix must be ≤ b-suffix");
        }
        if j > 0 && i < a.len() {
            prop_assert!(b[j - 1] < a[i], "b-prefix must be < a-suffix (stability)");
        }
    }

    #[test]
    fn par_merge_equals_seq_merge(
        a in sorted_vec(300),
        b in sorted_vec(300),
        threads in 1usize..6,
    ) {
        let mut seq = vec![0u32; a.len() + b.len()];
        merge_into(&a, &b, &mut seq);
        let mut par = vec![0u32; a.len() + b.len()];
        par_merge_into(threads, &a, &b, &mut par);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn multiway_is_sorted_permutation(
        lists in prop::collection::vec(sorted_vec(80), 0..8),
    ) {
        let refs: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();
        let total: usize = refs.iter().map(|l| l.len()).sum();
        let mut out = vec![0u32; total];
        multiway_merge_into(&refs, &mut out);
        prop_assert!(is_sorted(&out));
        let mut fp = Fingerprint { sum: 0, xor: 0, sq: 0, count: 0 };
        for l in &refs {
            fp = combine(fp, fingerprint(l));
        }
        prop_assert_eq!(fingerprint(&out), fp);
    }

    #[test]
    fn multiway_equals_iterated_pairwise(
        lists in prop::collection::vec(sorted_vec(60), 1..7),
    ) {
        let refs: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();
        let total: usize = refs.iter().map(|l| l.len()).sum();
        let mut out = vec![0u32; total];
        multiway_merge_into(&refs, &mut out);
        // Oracle: fold with stable pairwise merges left-to-right.
        let mut acc: Vec<u32> = Vec::new();
        for l in &refs {
            let mut next = vec![0u32; acc.len() + l.len()];
            merge_into(&acc, l, &mut next);
            acc = next;
        }
        prop_assert_eq!(out, acc);
    }

    #[test]
    fn multiway_cuts_partition_prefix(
        lists in prop::collection::vec(sorted_vec(50), 1..6),
        kf in 0.0f64..=1.0,
    ) {
        let refs: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();
        let total: usize = refs.iter().map(|l| l.len()).sum();
        let k = ((total as f64) * kf) as usize;
        let cuts = multiway_cuts(&refs, k);
        prop_assert_eq!(cuts.iter().sum::<usize>(), k);
        // Prefix multiset equals the first k of the true merge.
        let mut out = vec![0u32; total];
        multiway_merge_into(&refs, &mut out);
        let mut expect = out[..k].to_vec();
        expect.sort_unstable();
        let mut prefix: Vec<u32> = Vec::new();
        for (t, &c) in cuts.iter().enumerate() {
            prefix.extend_from_slice(&refs[t][..c]);
        }
        prefix.sort_unstable();
        prop_assert_eq!(prefix, expect);
    }

    #[test]
    fn par_multiway_equals_seq(
        lists in prop::collection::vec(sorted_vec(100), 1..7),
        threads in 1usize..6,
    ) {
        let refs: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();
        let total: usize = refs.iter().map(|l| l.len()).sum();
        let mut seq = vec![0u32; total];
        multiway_merge_into(&refs, &mut seq);
        let mut par = vec![0u32; total];
        par_multiway_merge_into(threads, &refs, &mut par);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn merges_handle_float_specials(
        mut a in prop::collection::vec(any::<f64>(), 0..100),
        mut b in prop::collection::vec(any::<f64>(), 0..100),
    ) {
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        let mut out = vec![0.0f64; a.len() + b.len()];
        par_merge_into(3, &a, &b, &mut out);
        prop_assert!(is_sorted(&out));
        prop_assert_eq!(
            fingerprint(&out),
            combine(fingerprint(&a), fingerprint(&b))
        );
    }
}
