//! Property tests for the merge machinery: co-rank invariants, merge
//! path partitioning, multisequence selection, and parallel/sequential
//! agreement of every merge variant.

use hetsort_algos::merge::{co_rank, merge_into, par_merge_into};
use hetsort_algos::multiway::{multiway_cuts, multiway_merge_into, par_multiway_merge_into};
use hetsort_algos::verify::{combine, fingerprint, is_sorted, Fingerprint};
use hetsort_prng::{prop_assert, prop_assert_eq, run_cases, Rng};

fn sorted_vec(rng: &mut Rng, max_len: usize) -> Vec<u32> {
    let mut v = rng.vec_with(max_len, |r| r.u32_in(0, 1000));
    v.sort_unstable();
    v
}

fn sorted_lists(rng: &mut Rng, max_lists: usize, max_len: usize) -> Vec<Vec<u32>> {
    let k = rng.usize_in(1, max_lists);
    (0..k).map(|_| sorted_vec(rng, max_len)).collect()
}

#[test]
fn merge_is_sorted_permutation() {
    run_cases("merge_is_sorted_permutation", 250, |rng| {
        let a = sorted_vec(rng, 200);
        let b = sorted_vec(rng, 200);
        let mut out = vec![0u32; a.len() + b.len()];
        merge_into(&a, &b, &mut out);
        prop_assert!(is_sorted(&out));
        prop_assert_eq!(fingerprint(&out), combine(fingerprint(&a), fingerprint(&b)));
        Ok(())
    });
}

#[test]
fn co_rank_defines_exact_prefix() {
    run_cases("co_rank_defines_exact_prefix", 250, |rng| {
        let a = sorted_vec(rng, 100);
        let b = sorted_vec(rng, 100);
        let total = a.len() + b.len();
        let k = ((total as f64) * rng.f64_unit()) as usize;
        let (i, j) = co_rank(k, &a, &b);
        prop_assert_eq!(i + j, k);
        // Merge-path invariants: everything in the prefix ≤ everything
        // in the suffix, with stability (a wins ties at the boundary):
        if i > 0 && j < b.len() {
            prop_assert!(a[i - 1] <= b[j], "a-prefix must be ≤ b-suffix");
        }
        if j > 0 && i < a.len() {
            prop_assert!(b[j - 1] < a[i], "b-prefix must be < a-suffix (stability)");
        }
        Ok(())
    });
}

#[test]
fn par_merge_equals_seq_merge() {
    run_cases("par_merge_equals_seq_merge", 250, |rng| {
        let a = sorted_vec(rng, 300);
        let b = sorted_vec(rng, 300);
        let threads = rng.usize_in(1, 6);
        let mut seq = vec![0u32; a.len() + b.len()];
        merge_into(&a, &b, &mut seq);
        let mut par = vec![0u32; a.len() + b.len()];
        par_merge_into(threads, &a, &b, &mut par);
        prop_assert_eq!(par, seq);
        Ok(())
    });
}

#[test]
fn multiway_is_sorted_permutation() {
    run_cases("multiway_is_sorted_permutation", 250, |rng| {
        let lists = if rng.bool() {
            sorted_lists(rng, 8, 80)
        } else {
            Vec::new() // zero lists is a legal input
        };
        let refs: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();
        let total: usize = refs.iter().map(|l| l.len()).sum();
        let mut out = vec![0u32; total];
        multiway_merge_into(&refs, &mut out);
        prop_assert!(is_sorted(&out));
        let mut fp = Fingerprint {
            sum: 0,
            xor: 0,
            sq: 0,
            count: 0,
        };
        for l in &refs {
            fp = combine(fp, fingerprint(l));
        }
        prop_assert_eq!(fingerprint(&out), fp);
        Ok(())
    });
}

#[test]
fn multiway_equals_iterated_pairwise() {
    run_cases("multiway_equals_iterated_pairwise", 250, |rng| {
        let lists = sorted_lists(rng, 7, 60);
        let refs: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();
        let total: usize = refs.iter().map(|l| l.len()).sum();
        let mut out = vec![0u32; total];
        multiway_merge_into(&refs, &mut out);
        // Oracle: fold with stable pairwise merges left-to-right.
        let mut acc: Vec<u32> = Vec::new();
        for l in &refs {
            let mut next = vec![0u32; acc.len() + l.len()];
            merge_into(&acc, l, &mut next);
            acc = next;
        }
        prop_assert_eq!(out, acc);
        Ok(())
    });
}

#[test]
fn multiway_cuts_partition_prefix() {
    run_cases("multiway_cuts_partition_prefix", 250, |rng| {
        let lists = sorted_lists(rng, 6, 50);
        let refs: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();
        let total: usize = refs.iter().map(|l| l.len()).sum();
        let k = ((total as f64) * rng.f64_unit()) as usize;
        let cuts = multiway_cuts(&refs, k);
        prop_assert_eq!(cuts.iter().sum::<usize>(), k);
        // Prefix multiset equals the first k of the true merge.
        let mut out = vec![0u32; total];
        multiway_merge_into(&refs, &mut out);
        let mut expect = out[..k].to_vec();
        expect.sort_unstable();
        let mut prefix: Vec<u32> = Vec::new();
        for (t, &c) in cuts.iter().enumerate() {
            prefix.extend_from_slice(&refs[t][..c]);
        }
        prefix.sort_unstable();
        prop_assert_eq!(prefix, expect);
        Ok(())
    });
}

#[test]
fn par_multiway_equals_seq() {
    run_cases("par_multiway_equals_seq", 250, |rng| {
        let lists = sorted_lists(rng, 7, 100);
        let threads = rng.usize_in(1, 6);
        let refs: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();
        let total: usize = refs.iter().map(|l| l.len()).sum();
        let mut seq = vec![0u32; total];
        multiway_merge_into(&refs, &mut seq);
        let mut par = vec![0u32; total];
        par_multiway_merge_into(threads, &refs, &mut par);
        prop_assert_eq!(par, seq);
        Ok(())
    });
}

#[test]
fn merges_handle_float_specials() {
    run_cases("merges_handle_float_specials", 250, |rng| {
        let mut a = rng.vec_with(100, Rng::any_f64);
        let mut b = rng.vec_with(100, Rng::any_f64);
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        let mut out = vec![0.0f64; a.len() + b.len()];
        par_merge_into(3, &a, &b, &mut out);
        prop_assert!(is_sorted(&out));
        prop_assert_eq!(fingerprint(&out), combine(fingerprint(&a), fingerprint(&b)));
        Ok(())
    });
}
