//! Property tests for the self-scheduling runtime under adversarial
//! skew: for every scheduling policy and thread count, the parallel
//! merge and radix sort must be *identical* to their sequential
//! references — across pathological list-length ratios (one list 10⁴×
//! longer than its siblings), constant keys (every comparison ties),
//! and float special values (NaN, ±0.0, ±∞).

use hetsort_algos::introsort::introsort;
use hetsort_algos::keys::SortOrd;
use hetsort_algos::multiway::{multiway_merge_into, par_multiway_merge_into_cfg};
use hetsort_algos::par::SchedCfg;
use hetsort_algos::radix_par::par_radix_sort_cfg;
use hetsort_algos::verify::is_sorted;
use hetsort_prng::{prop_assert, prop_assert_eq, run_cases, Rng};

const THREADS: [usize; 5] = [1, 2, 3, 8, 16];

fn policies() -> [SchedCfg; 2] {
    [SchedCfg::self_sched(), SchedCfg::round_robin_static()]
}

/// One long list plus a handful of tiny ones — the 10⁴× length-skew
/// shape that degenerates a static per-thread partition.
fn skewed_lists(rng: &mut Rng) -> Vec<Vec<u64>> {
    let long_len = rng.usize_in(10_000, 20_000);
    let k_short = rng.usize_in(1, 6);
    let mut lists = Vec::with_capacity(1 + k_short);
    let mut long: Vec<u64> = (0..long_len).map(|_| rng.u64_in(0, 5_000)).collect();
    long.sort_unstable();
    lists.push(long);
    for _ in 0..k_short {
        let mut s: Vec<u64> = (0..rng.usize_in(0, long_len / 10_000).max(1))
            .map(|_| rng.u64_in(0, 5_000))
            .collect();
        s.sort_unstable();
        lists.push(s);
    }
    lists
}

#[test]
fn skewed_merge_identical_across_policies_and_threads() {
    run_cases("skewed_merge_identical", 40, |rng| {
        let lists = skewed_lists(rng);
        let views: Vec<&[u64]> = lists.iter().map(|l| l.as_slice()).collect();
        let total: usize = views.iter().map(|l| l.len()).sum();
        let mut seq = vec![0u64; total];
        multiway_merge_into(&views, &mut seq);
        for cfg in policies() {
            for threads in THREADS {
                let mut out = vec![0u64; total];
                par_multiway_merge_into_cfg(&cfg, threads, &views, &mut out);
                prop_assert_eq!(&out, &seq);
            }
        }
        Ok(())
    });
}

#[test]
fn constant_keys_merge_is_stable_concatenation() {
    run_cases("constant_keys_merge", 30, |rng| {
        // Every key equal: ties resolve by list index, so the stable
        // merge is exactly the concatenation of the input lists.
        let key = rng.u64();
        let k = rng.usize_in(2, 40);
        let lists: Vec<Vec<u64>> = (0..k).map(|_| vec![key; rng.usize_in(0, 400)]).collect();
        let views: Vec<&[u64]> = lists.iter().map(|l| l.as_slice()).collect();
        let total: usize = views.iter().map(|l| l.len()).sum();
        let expect: Vec<u64> = lists.concat();
        for cfg in policies() {
            for threads in THREADS {
                let mut out = vec![0u64; total];
                par_multiway_merge_into_cfg(&cfg, threads, &views, &mut out);
                prop_assert_eq!(&out, &expect);
            }
        }
        Ok(())
    });
}

#[test]
fn float_specials_merge_identical_across_policies() {
    run_cases("float_specials_merge", 30, |rng| {
        let mk = |rng: &mut Rng, len: usize| -> Vec<f64> {
            let mut v: Vec<f64> = (0..len).map(|_| rng.any_f64()).collect();
            introsort(&mut v);
            v
        };
        // Length-skewed float lists seeded with NaN/±0.0/±∞ via any_f64.
        let long_len = rng.usize_in(2_000, 8_000);
        let short_a = rng.usize_in(0, 3);
        let short_b = rng.usize_in(0, 3);
        let lists = [mk(rng, long_len), mk(rng, short_a), mk(rng, short_b)];
        let views: Vec<&[f64]> = lists.iter().map(|l| l.as_slice()).collect();
        let total: usize = views.iter().map(|l| l.len()).sum();
        let mut seq = vec![0.0f64; total];
        multiway_merge_into(&views, &mut seq);
        let seq_bits: Vec<u64> = seq.iter().map(|x| x.to_bits()).collect();
        for cfg in policies() {
            for threads in THREADS {
                let mut out = vec![0.0f64; total];
                par_multiway_merge_into_cfg(&cfg, threads, &views, &mut out);
                let bits: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(&bits, &seq_bits);
            }
        }
        Ok(())
    });
}

#[test]
fn radix_identical_across_policies_and_threads() {
    run_cases("radix_identical", 30, |rng| {
        // Mix of uniform, constant, and special floats.
        let n = rng.usize_in(1, 10_000);
        let constant = rng.bool();
        let data: Vec<f64> = if constant {
            vec![rng.any_f64(); n]
        } else {
            (0..n).map(|_| rng.any_f64()).collect()
        };
        let mut expect = data.clone();
        introsort(&mut expect);
        let expect_bits: Vec<u64> = expect.iter().map(|x| x.to_bits()).collect();
        for cfg in policies() {
            for threads in THREADS {
                let mut v = data.clone();
                par_radix_sort_cfg(&cfg, threads, &mut v);
                prop_assert!(is_sorted(&v), "threads={} cfg={:?}", threads, cfg);
                let bits: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(&bits, &expect_bits);
            }
        }
        Ok(())
    });
}

/// The SortOrd total order puts NaN last; a tiny deterministic spot
/// check that the property tests' oracle agrees with the documented
/// order (guards against the oracle itself drifting).
#[test]
fn total_order_spot_check() {
    let vals = [f64::NAN, -0.0, 0.0, f64::NEG_INFINITY, 1.0];
    let mut v = vals.to_vec();
    introsort(&mut v);
    assert_eq!(v[0].to_bits(), f64::NEG_INFINITY.to_bits());
    assert_eq!(v[1].to_bits(), (-0.0f64).to_bits());
    assert_eq!(v[2].to_bits(), 0.0f64.to_bits());
    assert!(v[4].is_nan());
    assert!(SortOrd::lt(&-0.0f64, &0.0f64), "-0.0 orders before +0.0");
}
