//! Property tests: every sort in the crate is (a) sorted output under
//! the total order and (b) a multiset permutation of its input — for
//! arbitrary inputs including NaNs, infinities, and signed zeros — and
//! all sorts agree bit-for-bit with the introsort oracle.

use hetsort_algos::introsort::{heapsort, introsort};
use hetsort_algos::mergesort::par_mergesort;
use hetsort_algos::qsort::{cmp_f64, qsort};
use hetsort_algos::radix::radix_sort;
use hetsort_algos::radix_par::par_radix_sort;
use hetsort_algos::samplesort::par_samplesort;
use hetsort_algos::verify::{fingerprint, is_sorted};
use hetsort_prng::{prop_assert, prop_assert_eq, run_cases, Rng};

fn arb_f64_vec(rng: &mut Rng, max_len: usize) -> Vec<f64> {
    rng.vec_with(max_len, Rng::any_f64)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn introsort_correct() {
    run_cases("introsort_correct", 200, |rng| {
        let v = arb_f64_vec(rng, 500);
        let fp = fingerprint(&v);
        let mut s = v.clone();
        introsort(&mut s);
        prop_assert!(is_sorted(&s));
        prop_assert_eq!(fingerprint(&s), fp);
        Ok(())
    });
}

#[test]
fn heapsort_matches_introsort() {
    run_cases("heapsort_matches_introsort", 200, |rng| {
        let v = arb_f64_vec(rng, 300);
        let mut a = v.clone();
        let mut b = v;
        introsort(&mut a);
        heapsort(&mut b);
        prop_assert_eq!(bits(&a), bits(&b));
        Ok(())
    });
}

#[test]
fn radix_matches_introsort() {
    run_cases("radix_matches_introsort", 200, |rng| {
        let v = arb_f64_vec(rng, 500);
        let mut a = v.clone();
        let mut b = v;
        introsort(&mut a);
        radix_sort(&mut b);
        prop_assert_eq!(bits(&a), bits(&b));
        Ok(())
    });
}

#[test]
fn radix_u64_matches_std() {
    run_cases("radix_u64_matches_std", 200, |rng| {
        let v = rng.vec_with(500, Rng::u64);
        let mut a = v.clone();
        let mut b = v;
        a.sort_unstable();
        radix_sort(&mut b);
        prop_assert_eq!(a, b);
        Ok(())
    });
}

#[test]
fn radix_i64_matches_std() {
    run_cases("radix_i64_matches_std", 200, |rng| {
        let v = rng.vec_with(500, |r| r.u64() as i64);
        let mut a = v.clone();
        let mut b = v;
        a.sort_unstable();
        radix_sort(&mut b);
        prop_assert_eq!(a, b);
        Ok(())
    });
}

#[test]
fn par_radix_matches_serial_radix() {
    run_cases("par_radix_matches_serial_radix", 100, |rng| {
        let v = arb_f64_vec(rng, 9000);
        let threads = rng.usize_in(2, 6);
        let mut a = v.clone();
        let mut b = v;
        radix_sort(&mut a);
        par_radix_sort(threads, &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
        Ok(())
    });
}

#[test]
fn qsort_matches_introsort() {
    run_cases("qsort_matches_introsort", 200, |rng| {
        let v = arb_f64_vec(rng, 400);
        let mut a = v.clone();
        let mut b = v;
        introsort(&mut a);
        qsort(&mut b, cmp_f64);
        prop_assert_eq!(bits(&a), bits(&b));
        Ok(())
    });
}

#[test]
fn par_mergesort_matches_introsort() {
    run_cases("par_mergesort_matches_introsort", 200, |rng| {
        let v = arb_f64_vec(rng, 600);
        let threads = rng.usize_in(1, 6);
        let mut a = v.clone();
        let mut b = v;
        introsort(&mut a);
        par_mergesort(threads, &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
        Ok(())
    });
}

#[test]
fn par_samplesort_matches_introsort() {
    run_cases("par_samplesort_matches_introsort", 200, |rng| {
        let v = arb_f64_vec(rng, 2000);
        let threads = rng.usize_in(1, 5);
        let mut a = v.clone();
        let mut b = v;
        introsort(&mut a);
        par_samplesort(threads, &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
        Ok(())
    });
}
