//! Property tests: every sort in the crate is (a) sorted output under
//! the total order and (b) a multiset permutation of its input — for
//! arbitrary inputs including NaNs, infinities, and signed zeros — and
//! all sorts agree bit-for-bit with the introsort oracle.

use hetsort_algos::introsort::{heapsort, introsort};
use hetsort_algos::mergesort::par_mergesort;
use hetsort_algos::qsort::{cmp_f64, qsort};
use hetsort_algos::radix::radix_sort;
use hetsort_algos::radix_par::par_radix_sort;
use hetsort_algos::samplesort::par_samplesort;
use hetsort_algos::verify::{fingerprint, is_sorted};
use proptest::prelude::*;

/// Arbitrary f64 including specials, from raw bit patterns.
fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => any::<f64>(),
        1 => prop::sample::select(vec![
            0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN, -f64::NAN,
            f64::MIN_POSITIVE, -f64::MIN_POSITIVE, 1.0, -1.0,
        ]),
        1 => any::<u64>().prop_map(f64::from_bits),
    ]
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn introsort_correct(v in prop::collection::vec(arb_f64(), 0..500)) {
        let fp = fingerprint(&v);
        let mut s = v.clone();
        introsort(&mut s);
        prop_assert!(is_sorted(&s));
        prop_assert_eq!(fingerprint(&s), fp);
    }

    #[test]
    fn heapsort_matches_introsort(v in prop::collection::vec(arb_f64(), 0..300)) {
        let mut a = v.clone();
        let mut b = v;
        introsort(&mut a);
        heapsort(&mut b);
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn radix_matches_introsort(v in prop::collection::vec(arb_f64(), 0..500)) {
        let mut a = v.clone();
        let mut b = v;
        introsort(&mut a);
        radix_sort(&mut b);
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn radix_u64_matches_std(v in prop::collection::vec(any::<u64>(), 0..500)) {
        let mut a = v.clone();
        let mut b = v;
        a.sort_unstable();
        radix_sort(&mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn radix_i64_matches_std(v in prop::collection::vec(any::<i64>(), 0..500)) {
        let mut a = v.clone();
        let mut b = v;
        a.sort_unstable();
        radix_sort(&mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn par_radix_matches_serial_radix(
        v in prop::collection::vec(arb_f64(), 0..9000),
        threads in 2usize..6,
    ) {
        let mut a = v.clone();
        let mut b = v;
        radix_sort(&mut a);
        par_radix_sort(threads, &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn qsort_matches_introsort(v in prop::collection::vec(arb_f64(), 0..400)) {
        let mut a = v.clone();
        let mut b = v;
        introsort(&mut a);
        qsort(&mut b, cmp_f64);
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn par_mergesort_matches_introsort(
        v in prop::collection::vec(arb_f64(), 0..600),
        threads in 1usize..6,
    ) {
        let mut a = v.clone();
        let mut b = v;
        introsort(&mut a);
        par_mergesort(threads, &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn par_samplesort_matches_introsort(
        v in prop::collection::vec(arb_f64(), 0..2000),
        threads in 1usize..5,
    ) {
        let mut a = v.clone();
        let mut b = v;
        introsort(&mut a);
        par_samplesort(threads, &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
    }
}
