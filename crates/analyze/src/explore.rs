//! Stateless model checking of scheduler state spaces with dynamic
//! partial-order reduction.
//!
//! The happens-before checker ([`crate::hb`]) validates the *one*
//! interleaving a trace records. This module explores **every**
//! reachable interleaving of a small configuration: a [`SchedModel`]
//! exposes the scheduler state as deterministic per-thread next
//! actions behind an `enabled()`/`step()` interface (CDSChecker-style
//! stateless model checking — the model is replayed from `reset()`
//! along each schedule prefix, so no state is ever hashed or stored),
//! and [`explore`] drives a depth-first search over schedule choices.
//!
//! Exhaustive enumeration is factorial in trace length, so the search
//! applies **persistent-set DPOR** (Flanagan & Godefroid, POPL 2005)
//! with **sleep sets**: a backtrack point is added only where two
//! *dependent* actions of different threads actually met (their
//! [`Footprint`]s conflict), and sleep sets prune interleavings that
//! merely commute independent actions. Event record/wait pairs are
//! ordered by blocking semantics — a wait is enabled only after its
//! record executed — so they are never co-enabled and need no
//! backtrack point (see [`Footprint::conflicts_reversible`]); they
//! still participate in sleep-set filtering, which keeps the
//! reduction sound when a step enables a sleeping thread.
//!
//! Three invariant classes ride on the exploration, surfaced as
//! ordinary [`Finding`]s:
//!
//! * **reachable deadlock** — the enabled set goes empty before the
//!   schedule completes (engine-level, every model gets it for free);
//! * **budget safety** — no interleaving of
//!   reserve/release/lose/join overcommits a device or pinned cap
//!   ([`FindingClass::Budget`], checked by the serve admission model);
//! * **replan cover** — every device-loss interleaving yields
//!   recovery plans whose batches exactly partition the unfinished
//!   work ([`FindingClass::ReplanCover`], checked by
//!   [`crate::replan_model`]).
//!
//! The search is bounded by [`ExploreConfig::max_ops`] (total `step`
//! calls, replays included). Hitting the bound sets
//! [`ExploreReport::truncated`] and the report's summary says so —
//! a truncated exploration proves nothing about the unexplored
//! suffix, it only reports what was seen.

use std::collections::{BTreeMap, BTreeSet};

use hetsort_sim::Buffer;

use crate::finding::{Finding, FindingClass};

/// A scheduler-visible resource two pending actions can conflict on.
#[derive(Debug, Clone, PartialEq)]
pub enum Res {
    /// A traced buffer; conflict is overlap-aware (host ranges clash
    /// only when their element ranges intersect).
    Buf(Buffer),
    /// An event identity (record/wait discipline).
    Event(usize),
    /// A physical device: its liveness flag and budget counter.
    Gpu(usize),
    /// The shared pinned-staging budget pool.
    Pinned,
    /// Conflicts with everything (barriers, whole-state scans).
    Global,
}

impl Res {
    fn overlaps(&self, other: &Res) -> bool {
        match (self, other) {
            (Res::Global, _) | (_, Res::Global) => true,
            (Res::Buf(a), Res::Buf(b)) => a.overlaps(b),
            (Res::Event(a), Res::Event(b)) => a == b,
            (Res::Gpu(a), Res::Gpu(b)) => a == b,
            (Res::Pinned, Res::Pinned) => true,
            _ => false,
        }
    }
}

/// One resource an action touches, read or write.
#[derive(Debug, Clone)]
pub struct ResAccess {
    /// What is touched.
    pub res: Res,
    /// Whether the action mutates it.
    pub write: bool,
}

/// The complete resource footprint of one pending action. Two actions
/// are *dependent* (their order can matter) iff their footprints
/// conflict.
#[derive(Debug, Clone, Default)]
pub struct Footprint(pub Vec<ResAccess>);

impl Footprint {
    /// A footprint reading one resource.
    pub fn read(res: Res) -> Footprint {
        Footprint(vec![ResAccess { res, write: false }])
    }

    /// A footprint writing one resource.
    pub fn write(res: Res) -> Footprint {
        Footprint(vec![ResAccess { res, write: true }])
    }

    /// A footprint conflicting with everything.
    pub fn global() -> Footprint {
        Footprint::write(Res::Global)
    }

    /// Add a read access.
    pub fn and_read(mut self, res: Res) -> Footprint {
        self.0.push(ResAccess { res, write: false });
        self
    }

    /// Add a write access.
    pub fn and_write(mut self, res: Res) -> Footprint {
        self.0.push(ResAccess { res, write: true });
        self
    }

    /// Dependence: some overlapping resource with at least one writer.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        self.0.iter().any(|a| {
            other
                .0
                .iter()
                .any(|b| (a.write || b.write) && a.res.overlaps(&b.res))
        })
    }

    /// Dependence restricted to *reversible* pairs. Record/wait pairs
    /// on the same event are dependent but can never be co-enabled
    /// (the wait blocks until the record executed), so reversing them
    /// is impossible and they need no backtrack point. Everything
    /// else falls through to [`Footprint::conflicts`].
    pub fn conflicts_reversible(&self, other: &Footprint) -> bool {
        self.0.iter().any(|a| {
            other.0.iter().any(|b| {
                if matches!((&a.res, &b.res), (Res::Event(_), Res::Event(_))) {
                    return false;
                }
                (a.write || b.write) && a.res.overlaps(&b.res)
            })
        })
    }
}

/// A deterministic-per-thread scheduler state the explorer can drive.
///
/// Threads have at most one pending action each; `step(t)` executes
/// thread `t`'s pending action. The model must be *replayable*: after
/// `reset()`, the same sequence of `step` calls reaches the same
/// state (models must not consult ambient nondeterminism).
pub trait SchedModel {
    /// Human-readable model identity for findings and summaries.
    fn name(&self) -> String;

    /// Number of schedulable threads.
    fn n_threads(&self) -> usize;

    /// Return to the initial state.
    fn reset(&mut self);

    /// May thread `t` execute its pending action now? `false` for
    /// blocked *and* finished threads.
    fn enabled(&self, thread: usize) -> bool;

    /// Has the whole schedule completed?
    fn is_done(&self) -> bool;

    /// The resource footprint of thread `t`'s pending action. Only
    /// called while `enabled(t)`.
    fn next_footprint(&self, thread: usize) -> Footprint;

    /// Execute thread `t`'s pending action. Only called while
    /// `enabled(t)`.
    fn step(&mut self, thread: usize);

    /// Invariants checked after every step (return violations).
    fn check_state(&self) -> Vec<Finding> {
        Vec::new()
    }

    /// Invariants checked once a schedule completes.
    fn check_final(&self) -> Vec<Finding> {
        Vec::new()
    }

    /// Describe what blocked threads are waiting on, for deadlock
    /// findings.
    fn blocked_describe(&self) -> String;
}

/// Exploration bounds and strategy.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Total `step` budget (replays included); exceeding it truncates
    /// the exploration and sets [`ExploreReport::truncated`].
    pub max_ops: usize,
    /// `true` = persistent-set DPOR + sleep sets; `false` = naive
    /// full enumeration (for measuring the reduction).
    pub dpor: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_ops: 1_000_000,
            dpor: true,
        }
    }
}

impl ExploreConfig {
    /// Default DPOR exploration under a custom op budget.
    pub fn with_max_ops(max_ops: usize) -> ExploreConfig {
        ExploreConfig {
            max_ops,
            ..ExploreConfig::default()
        }
    }

    /// Naive enumeration (no reduction) under the same budget.
    pub fn naive(self) -> ExploreConfig {
        ExploreConfig {
            dpor: false,
            ..self
        }
    }
}

/// What an exploration covered and found.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Model identity.
    pub model: String,
    /// Maximal interleavings executed to completion or deadlock.
    pub traces: usize,
    /// Interleavings abandoned by sleep sets as redundant.
    pub pruned: usize,
    /// Total `step` calls, replays included.
    pub steps: usize,
    /// The op budget was hit; coverage is partial and a clean report
    /// proves nothing about the unexplored suffix.
    pub truncated: bool,
    /// Deduplicated findings across all explored interleavings.
    pub findings: Vec<Finding>,
}

impl ExploreReport {
    /// No findings? (A truncated exploration can still be "clean" —
    /// callers deciding pass/fail should also consult
    /// [`ExploreReport::truncated`].)
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One-line human summary, truncation called out explicitly.
    pub fn summary(&self) -> String {
        let verdict = if self.findings.is_empty() {
            "no findings".to_string()
        } else {
            format!("{} finding(s)", self.findings.len())
        };
        let bound = if self.truncated {
            " — TRUNCATED at op budget, coverage is partial"
        } else {
            ""
        };
        format!(
            "{}: {} interleaving(s) explored, {} pruned, {} step(s): {verdict}{bound}",
            self.model, self.traces, self.pruned, self.steps
        )
    }
}

/// One schedule-choice point on the current DFS path.
struct Node {
    /// Thread chosen at this state (the currently-executing branch).
    chosen: usize,
    /// Sleep set on entry to this state.
    sleep: BTreeSet<usize>,
    /// Choices already fully explored from this state.
    done: BTreeSet<usize>,
    /// Persistent set: choices that must be explored from this state.
    backtrack: BTreeSet<usize>,
    /// Threads enabled at this state.
    enabled: Vec<usize>,
    /// Footprints of the enabled threads' pending actions here.
    fps: BTreeMap<usize, Footprint>,
}

/// Order-insensitive dedup key so the same defect reported from two
/// interleavings (or with the racing pair named in either order)
/// counts once.
fn finding_key(f: &Finding) -> String {
    let mut ops = f.ops.clone();
    ops.sort();
    format!("{}|{}|{}", f.class.name(), f.code, ops.join("|"))
}

/// The engine-level deadlock finding: the enabled set went empty
/// before the schedule completed.
fn deadlock_finding(model: &dyn SchedModel, depth: usize) -> Finding {
    Finding {
        class: FindingClass::Deadlock,
        code: "reachable-deadlock",
        message: format!(
            "{}: reachable deadlock — after {depth} step(s) no thread is enabled \
             but the schedule is incomplete; {}",
            model.name(),
            model.blocked_describe()
        ),
        ops: Vec::new(),
    }
}

/// Flanagan–Godefroid race detection: when node `j`'s chosen action
/// is dependent with an earlier different-thread action, register a
/// backtrack point at the latest such node.
fn add_backtracks(path: &mut [Node], j: usize) {
    let p = path[j].chosen;
    let Some(pf) = path[j].fps.get(&p).cloned() else {
        return;
    };
    for i in (0..j).rev() {
        if path[i].chosen == p {
            continue;
        }
        let dependent = path[i]
            .fps
            .get(&path[i].chosen)
            .is_some_and(|cf| cf.conflicts_reversible(&pf));
        if dependent {
            if path[i].enabled.contains(&p) {
                path[i].backtrack.insert(p);
            } else {
                // `p` was not schedulable there; conservatively try
                // everything that was.
                let all: Vec<usize> = path[i].enabled.clone();
                path[i].backtrack.extend(all);
            }
            break;
        }
    }
}

/// Sleep set handed to the successor state after executing `chosen`
/// at `node`: previously-explored siblings stay asleep only while
/// independent of the executed action.
fn successor_sleep(node: &Node, chosen: usize) -> BTreeSet<usize> {
    let Some(cf) = node.fps.get(&chosen) else {
        return BTreeSet::new();
    };
    node.sleep
        .iter()
        .chain(node.done.iter())
        .copied()
        .filter(|&q| q != chosen && node.fps.get(&q).is_some_and(|qf| !qf.conflicts(cf)))
        .collect()
}

/// Explore every reachable interleaving of `model` (up to the op
/// budget), running its invariant hooks along the way.
pub fn explore(model: &mut dyn SchedModel, cfg: &ExploreConfig) -> ExploreReport {
    let mut rep = ExploreReport {
        model: model.name(),
        traces: 0,
        pruned: 0,
        steps: 0,
        truncated: false,
        findings: Vec::new(),
    };
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut push = |rep: &mut ExploreReport, f: Finding| {
        if seen.insert(finding_key(&f)) {
            rep.findings.push(f);
        }
    };

    model.reset();
    let mut path: Vec<Node> = Vec::new();
    // Sleep set for the state the model currently sits in.
    let mut sleep_next: BTreeSet<usize> = BTreeSet::new();

    'explore: loop {
        // Forward extension: run the current interleaving out.
        loop {
            if model.is_done() {
                for f in model.check_final() {
                    push(&mut rep, f);
                }
                rep.traces += 1;
                break;
            }
            let enabled: Vec<usize> = (0..model.n_threads())
                .filter(|&t| model.enabled(t))
                .collect();
            if enabled.is_empty() {
                push(&mut rep, deadlock_finding(model, path.len()));
                rep.traces += 1;
                break;
            }
            let fps: BTreeMap<usize, Footprint> = enabled
                .iter()
                .map(|&t| (t, model.next_footprint(t)))
                .collect();
            let sleep = if cfg.dpor {
                sleep_next.clone()
            } else {
                BTreeSet::new()
            };
            let Some(&t) = enabled.iter().find(|t| !sleep.contains(t)) else {
                // Every enabled thread is asleep: this interleaving
                // only commutes independent actions of one already
                // explored.
                rep.pruned += 1;
                break;
            };
            path.push(Node {
                chosen: t,
                sleep,
                done: BTreeSet::new(),
                backtrack: BTreeSet::from([t]),
                enabled,
                fps,
            });
            let j = path.len() - 1;
            if cfg.dpor {
                add_backtracks(&mut path, j);
            }
            if rep.steps >= cfg.max_ops {
                rep.truncated = true;
                break 'explore;
            }
            model.step(t);
            rep.steps += 1;
            for f in model.check_state() {
                push(&mut rep, f);
            }
            sleep_next = if cfg.dpor {
                successor_sleep(&path[j], t)
            } else {
                BTreeSet::new()
            };
        }

        // Backtrack to the deepest node with an unexplored mandatory
        // choice, replay the prefix, and branch.
        loop {
            let Some(j) = path.len().checked_sub(1) else {
                break 'explore;
            };
            let chosen = path[j].chosen;
            path[j].done.insert(chosen);
            let next = {
                let n = &path[j];
                let pool: Vec<usize> = if cfg.dpor {
                    n.backtrack.iter().copied().collect()
                } else {
                    n.enabled.clone()
                };
                pool.into_iter()
                    .find(|q| !n.done.contains(q) && !n.sleep.contains(q) && n.fps.contains_key(q))
            };
            let Some(q) = next else {
                path.pop();
                continue;
            };
            // Replay the prefix up to (not including) node j.
            model.reset();
            for node in path.iter().take(j) {
                if rep.steps >= cfg.max_ops {
                    rep.truncated = true;
                    break 'explore;
                }
                model.step(node.chosen);
                rep.steps += 1;
            }
            path[j].chosen = q;
            if cfg.dpor {
                add_backtracks(&mut path, j);
            }
            if rep.steps >= cfg.max_ops {
                rep.truncated = true;
                break 'explore;
            }
            model.step(q);
            rep.steps += 1;
            for f in model.check_state() {
                push(&mut rep, f);
            }
            sleep_next = if cfg.dpor {
                successor_sleep(&path[j], q)
            } else {
                BTreeSet::new()
            };
            continue 'explore;
        }
    }
    rep
}

/// A seeded defect in the serve admission model — declared here so
/// the mutation vocabulary lives with the explorer, implemented by
/// `hetsort-serve`'s admission model (the dependency points
/// serve → analyze, so the model itself cannot live in this crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDefect {
    /// `release` subtracts the reservation's footprint twice — the
    /// controller under-accounts and later admissions overcommit.
    DoubleRelease,
    /// The empty-controller round-off reset is skipped — f64 residue
    /// accumulates and boundary-sized jobs can block forever.
    NoDrainReset,
    /// Reservations displaced by `lose_gpu` are re-queued without
    /// being released — the controller leaks the dead reservation.
    SkipDisplaceRelease,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: each thread runs `per_thread` ops against its own
    /// resource (`shared == false`) or one shared resource
    /// (`shared == true`).
    struct Counters {
        threads: usize,
        per_thread: usize,
        shared: bool,
        pc: Vec<usize>,
    }

    impl Counters {
        fn new(threads: usize, per_thread: usize, shared: bool) -> Counters {
            Counters {
                threads,
                per_thread,
                shared,
                pc: vec![0; threads],
            }
        }
    }

    impl SchedModel for Counters {
        fn name(&self) -> String {
            "counters".into()
        }
        fn n_threads(&self) -> usize {
            self.threads
        }
        fn reset(&mut self) {
            self.pc = vec![0; self.threads];
        }
        fn enabled(&self, t: usize) -> bool {
            self.pc[t] < self.per_thread
        }
        fn is_done(&self) -> bool {
            self.pc.iter().all(|&p| p == self.per_thread)
        }
        fn next_footprint(&self, t: usize) -> Footprint {
            let g = if self.shared { 0 } else { t };
            Footprint::write(Res::Gpu(g))
        }
        fn step(&mut self, t: usize) {
            self.pc[t] += 1;
        }
        fn blocked_describe(&self) -> String {
            "counters never block".into()
        }
    }

    /// Thread 1 waits forever on a flag thread 0 never raises.
    struct Stuck {
        stepped: bool,
    }

    impl SchedModel for Stuck {
        fn name(&self) -> String {
            "stuck".into()
        }
        fn n_threads(&self) -> usize {
            2
        }
        fn reset(&mut self) {
            self.stepped = false;
        }
        fn enabled(&self, t: usize) -> bool {
            t == 0 && !self.stepped
        }
        fn is_done(&self) -> bool {
            false
        }
        fn next_footprint(&self, _t: usize) -> Footprint {
            Footprint::global()
        }
        fn step(&mut self, _t: usize) {
            self.stepped = true;
        }
        fn blocked_describe(&self) -> String {
            "thread 1 waits on a flag nobody raises".into()
        }
    }

    #[test]
    fn independent_threads_collapse_to_one_trace() {
        let mut m = Counters::new(3, 2, false);
        let dpor = explore(&mut m, &ExploreConfig::default());
        assert!(dpor.is_clean(), "{:?}", dpor.findings);
        assert!(!dpor.truncated);
        assert_eq!(dpor.traces, 1, "independent ops need one interleaving");
        let naive = explore(&mut m, &ExploreConfig::default().naive());
        // 6 ops, 2 per thread: 6!/(2!·2!·2!) = 90 interleavings.
        assert_eq!(naive.traces, 90);
        assert!(dpor.traces < naive.traces, "the reduction must be real");
    }

    #[test]
    fn dependent_threads_still_explore_both_orders() {
        let mut m = Counters::new(2, 1, true);
        let dpor = explore(&mut m, &ExploreConfig::default());
        assert_eq!(dpor.traces, 2, "conflicting writes: both orders matter");
        let naive = explore(&mut m, &ExploreConfig::default().naive());
        assert_eq!(naive.traces, 2);
    }

    #[test]
    fn deadlock_is_reported_once() {
        let mut m = Stuck { stepped: false };
        let rep = explore(&mut m, &ExploreConfig::default());
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].class, FindingClass::Deadlock);
        assert_eq!(rep.findings[0].code, "reachable-deadlock");
        assert!(rep.findings[0].message.contains("nobody raises"));
    }

    #[test]
    fn op_budget_truncates_with_a_report() {
        let mut m = Counters::new(3, 3, true);
        let rep = explore(&mut m, &ExploreConfig::with_max_ops(10));
        assert!(rep.truncated);
        assert!(rep.steps <= 10);
        assert!(rep.summary().contains("TRUNCATED"));
    }

    #[test]
    fn footprint_conflicts_and_reversibility() {
        let w = Footprint::write(Res::Event(3));
        let r = Footprint::read(Res::Event(3));
        assert!(w.conflicts(&r), "record/wait are dependent for sleep sets");
        assert!(
            !w.conflicts_reversible(&r),
            "but never co-enabled, so not backtrack-worthy"
        );
        let a = Footprint::write(Res::Buf(Buffer::Host {
            region: 1,
            start: 0,
            len: 10,
        }));
        let b = Footprint::read(Res::Buf(Buffer::Host {
            region: 1,
            start: 5,
            len: 10,
        }));
        let c = Footprint::write(Res::Buf(Buffer::Host {
            region: 1,
            start: 20,
            len: 10,
        }));
        assert!(a.conflicts(&b), "overlapping ranges conflict");
        assert!(!a.conflicts(&c), "disjoint ranges commute");
        assert!(Footprint::global().conflicts(&c));
        assert!(!Footprint::read(Res::Pinned).conflicts(&Footprint::read(Res::Pinned)));
        assert!(Footprint::read(Res::Pinned).conflicts(&Footprint::write(Res::Pinned)));
    }
}
