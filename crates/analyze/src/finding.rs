//! Findings: what the analyzer reports instead of letting a schedule
//! bug surface as silent data corruption at run time.

use std::fmt;

/// The hazard class a finding belongs to. Mutation tests key off these:
/// each seeded defect class must map to the matching finding class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingClass {
    /// Two conflicting accesses with no happens-before edge between
    /// them (a data race the executors could interleave either way).
    MissingSync,
    /// A buffer identity hazard: double allocation of a live buffer, a
    /// staging buffer shared by two streams, or a free while an async
    /// op on the buffer is still un-synchronized.
    Aliasing,
    /// A wait that can never be satisfied: waiting on an event that is
    /// never recorded, or recorded only after the wait was submitted
    /// (which is how every stream/event wait cycle manifests in a
    /// single-host-thread submission order).
    Deadlock,
    /// Statically guaranteed out-of-memory: peak device residency
    /// exceeds GPU capacity, or a staged chunk exceeds its pinned
    /// buffer.
    Oom,
    /// Structural plan defects: invariant violations, merge-tree
    /// malformation, pair-count heuristic mismatch.
    Malformed,
    /// A buffer is accessed after it was freed (and not re-allocated).
    UseAfterFree,
    /// A live-then-freed buffer is freed a second time.
    DoubleFree,
    /// A device or pinned allocation is never freed by a trace that
    /// otherwise releases its buffers.
    Leak,
    /// An interleaving of reserve/release/lose/join overcommits a
    /// device or pinned budget, strands a reservation on a dead
    /// device, or leaks reservations past quiescence.
    Budget,
    /// A device-loss recovery round fails to exactly partition the
    /// unfinished work: a batch is dropped, double-sorted, or the
    /// survivor plan re-tiles the checkpointed runs.
    ReplanCover,
}

impl FindingClass {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            FindingClass::MissingSync => "missing-sync",
            FindingClass::Aliasing => "aliasing",
            FindingClass::Deadlock => "deadlock",
            FindingClass::Oom => "oom",
            FindingClass::Malformed => "malformed",
            FindingClass::UseAfterFree => "use-after-free",
            FindingClass::DoubleFree => "double-free",
            FindingClass::Leak => "leak",
            FindingClass::Budget => "budget",
            FindingClass::ReplanCover => "replan-cover",
        }
    }
}

/// One verified problem with a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Hazard class.
    pub class: FindingClass,
    /// Stable machine-readable code (`race`, `unrecorded-event-wait`,
    /// `device-over-capacity`, ...).
    pub code: &'static str,
    /// Human-readable explanation naming the offending ops, their
    /// streams, and (for races) the missing happens-before edge.
    pub message: String,
    /// Labels of the trace records or plan steps involved.
    pub ops: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}] {}", self.class.name(), self.code, self.message)
    }
}

/// The result of analyzing one plan or trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// All findings, in detection order.
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    /// No findings?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings of a given class.
    pub fn of_class(&self, class: FindingClass) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.class == class)
    }

    /// Does the report contain at least one finding of this class?
    pub fn has_class(&self, class: FindingClass) -> bool {
        self.of_class(class).next().is_some()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return writeln!(f, "analysis clean: no findings");
        }
        writeln!(f, "{} finding(s):", self.findings.len())?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_and_queries() {
        let mut r = AnalysisReport::default();
        assert!(r.is_clean());
        assert!(r.to_string().contains("clean"));
        r.findings.push(Finding {
            class: FindingClass::MissingSync,
            code: "race",
            message: "A vs B".into(),
            ops: vec!["A".into(), "B".into()],
        });
        assert!(!r.is_clean());
        assert!(r.has_class(FindingClass::MissingSync));
        assert!(!r.has_class(FindingClass::Oom));
        assert!(r.to_string().contains("missing-sync/race"));
    }
}
