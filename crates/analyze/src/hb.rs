//! Happens-before race detection over an [`OpTrace`].
//!
//! Vector-clock analysis in the style of FastTrack (Flanagan & Freund,
//! PLDI 2009), adapted to the CUDA stream model the executors use:
//!
//! * each trace *thread* (a stream, or the submitting host) carries a
//!   vector clock advanced by its own records in program order;
//! * [`TraceKind::EventRecord`] snapshots the recording thread's clock;
//!   [`TraceKind::StreamWaitEvent`] joins that snapshot into the waiting
//!   thread — the only cross-thread edges streams have;
//! * [`TraceKind::DeviceSync`] joins every thread into every other
//!   (a full barrier at its submission point).
//!
//! Two accesses *race* when their buffers overlap, at least one writes,
//! and neither op happens-before the other. Each race finding names both
//! ops, their threads, and the happens-before edge that would fix it.
//!
//! Deadlock freedom falls out of submission order: all records are
//! submitted by one host thread, so any cycle in the stream→event wait
//! graph must contain a wait submitted *before* the record it waits on —
//! which is exactly what [`check_trace`] flags (along with waits on
//! events never recorded at all).

use std::collections::HashMap;

use hetsort_sim::{Access, Buffer, OpTrace, TraceKind};

use crate::finding::{Finding, FindingClass};

/// Comparison bucket: exact identity for device/pinned buffers, the
/// region for host ranges (ranges inside a region are compared by
/// overlap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CoarseKey {
    Dev(usize, usize),
    Pinned(usize),
    Host(usize),
}

/// Exact allocation identity (host regions are never allocated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ExactKey {
    Dev(usize, usize),
    Pinned(usize),
}

fn coarse(buf: &Buffer) -> CoarseKey {
    match buf {
        Buffer::Dev { gpu, id } => CoarseKey::Dev(*gpu, *id),
        Buffer::Pinned { id } => CoarseKey::Pinned(*id),
        Buffer::Host { region, .. } => CoarseKey::Host(*region),
    }
}

fn exact(buf: &Buffer) -> Option<ExactKey> {
    match buf {
        Buffer::Dev { gpu, id } => Some(ExactKey::Dev(*gpu, *id)),
        Buffer::Pinned { id } => Some(ExactKey::Pinned(*id)),
        Buffer::Host { .. } => None,
    }
}

/// One remembered access: which record made it, on which thread, at
/// which point of that thread's own clock.
struct Past {
    rec: usize,
    thread: usize,
    clock: u64,
    access: Access,
}

/// Did `past` happen before the op whose thread clock is `cur`?
fn ordered(past: &Past, cur: &[u64]) -> bool {
    cur[past.thread] >= past.clock
}

fn rw(write: bool) -> &'static str {
    if write {
        "writes"
    } else {
        "reads"
    }
}

/// Check a trace for races, event-discipline violations, aliasing
/// hazards, and (when GPU capacities are given) device-memory
/// over-subscription.
pub fn check_trace(trace: &OpTrace, gpu_capacity: Option<&[f64]>) -> Vec<Finding> {
    let n = trace.n_threads.max(1);
    let mut findings = Vec::new();
    let mut clocks: Vec<Vec<u64>> = vec![vec![0; n]; n];
    let mut event_vcs: HashMap<usize, Vec<u64>> = HashMap::new();
    // Submission index of each event's first record, for diagnosing
    // waits that precede their record (the deadlock shape).
    let mut first_record: HashMap<usize, usize> = HashMap::new();
    for (i, r) in trace.records.iter().enumerate() {
        if let TraceKind::EventRecord { event } = r.kind {
            first_record.entry(event).or_insert(i);
        }
    }
    let mut live: HashMap<ExactKey, (usize, f64)> = HashMap::new();
    // Freed (and not since re-allocated) buffers: key → freeing record.
    let mut freed: HashMap<ExactKey, usize> = HashMap::new();
    let mut saw_free = false;
    let mut dev_used: HashMap<usize, f64> = HashMap::new();
    let mut history: HashMap<CoarseKey, Vec<Past>> = HashMap::new();

    for (i, r) in trace.records.iter().enumerate() {
        let t = r.thread;
        match &r.kind {
            TraceKind::EventRecord { event } => {
                clocks[t][t] += 1;
                event_vcs.insert(*event, clocks[t].clone());
            }
            TraceKind::StreamWaitEvent { event } => {
                if let Some(vc) = event_vcs.get(event) {
                    for (c, v) in clocks[t].iter_mut().zip(vc) {
                        *c = (*c).max(*v);
                    }
                } else {
                    match first_record.get(event) {
                        Some(&ri) => findings.push(Finding {
                            class: FindingClass::Deadlock,
                            code: "wait-before-record",
                            message: format!(
                                "`{}` (thread {t}) waits on event {event} before `{}` \
                                 (thread {}) records it; the wait captures nothing and \
                                 any stream/event wait cycle reduces to this shape",
                                r.label, trace.records[ri].label, trace.records[ri].thread
                            ),
                            ops: vec![r.label.clone(), trace.records[ri].label.clone()],
                        }),
                        None => findings.push(Finding {
                            class: FindingClass::Deadlock,
                            code: "unrecorded-event-wait",
                            message: format!(
                                "`{}` (thread {t}) waits on event {event}, which no \
                                 record in the trace ever records — the stream stalls \
                                 forever",
                                r.label
                            ),
                            ops: vec![r.label.clone()],
                        }),
                    }
                }
            }
            TraceKind::DeviceSync => {
                // Full barrier: every thread joins every other, and all
                // earlier accesses are ordered before all later records.
                let mut joined = vec![0u64; n];
                for c in &clocks {
                    for (j, v) in c.iter().enumerate() {
                        joined[j] = joined[j].max(*v);
                    }
                }
                for c in clocks.iter_mut() {
                    c.clone_from(&joined);
                }
                history.clear();
            }
            TraceKind::Alloc { buf, bytes } => {
                clocks[t][t] += 1;
                if let Some(key) = exact(buf) {
                    // Re-allocation makes the identity live again.
                    freed.remove(&key);
                    if let Some((prev, _)) = live.insert(key, (i, *bytes)) {
                        findings.push(Finding {
                            class: FindingClass::Aliasing,
                            code: "double-alloc",
                            message: format!(
                                "`{}` (thread {t}) allocates {} while `{}` (thread {}) \
                                 still holds it — two owners alias one buffer",
                                r.label,
                                buf.short(),
                                trace.records[prev].label,
                                trace.records[prev].thread
                            ),
                            ops: vec![r.label.clone(), trace.records[prev].label.clone()],
                        });
                    }
                    if let ExactKey::Dev(gpu, _) = key {
                        let used = dev_used.entry(gpu).or_insert(0.0);
                        *used += bytes;
                        if let Some(cap) = gpu_capacity.and_then(|c| c.get(gpu)) {
                            if *used > *cap {
                                findings.push(Finding {
                                    class: FindingClass::Oom,
                                    code: "device-over-capacity",
                                    message: format!(
                                        "`{}` brings GPU {gpu} residency to {used:.3e} B, \
                                         over its {cap:.3e} B capacity — statically \
                                         guaranteed OOM",
                                        r.label
                                    ),
                                    ops: vec![r.label.clone()],
                                });
                            }
                        }
                    }
                }
            }
            TraceKind::Free { buf } => {
                clocks[t][t] += 1;
                saw_free = true;
                match exact(buf).map(|key| (key, live.remove(&key))) {
                    Some((key, Some((_, bytes)))) => {
                        freed.insert(key, i);
                        if let ExactKey::Dev(gpu, _) = key {
                            if let Some(used) = dev_used.get_mut(&gpu) {
                                *used -= bytes;
                            }
                        }
                        // An un-synchronized async op on a freed buffer
                        // is a use-after-free in waiting.
                        if let Some(past) = history.get(&coarse(buf)) {
                            for p in past {
                                if p.access.buf.overlaps(buf) && !ordered(p, &clocks[t]) {
                                    findings.push(Finding {
                                        class: FindingClass::Aliasing,
                                        code: "free-outstanding",
                                        message: format!(
                                            "`{}` (thread {t}) frees {} while `{}` \
                                             (thread {}) is not ordered before the free",
                                            r.label,
                                            buf.short(),
                                            trace.records[p.rec].label,
                                            p.thread
                                        ),
                                        ops: vec![
                                            r.label.clone(),
                                            trace.records[p.rec].label.clone(),
                                        ],
                                    });
                                }
                            }
                        }
                    }
                    Some((key, None)) => match freed.get(&key) {
                        Some(&fi) => findings.push(Finding {
                            class: FindingClass::DoubleFree,
                            code: "double-free",
                            message: format!(
                                "`{}` (thread {t}) frees {} again — `{}` (thread {}) \
                                 already freed it",
                                r.label,
                                buf.short(),
                                trace.records[fi].label,
                                trace.records[fi].thread
                            ),
                            ops: vec![r.label.clone(), trace.records[fi].label.clone()],
                        }),
                        None => findings.push(Finding {
                            class: FindingClass::Malformed,
                            code: "free-dead",
                            message: format!(
                                "`{}` (thread {t}) frees {}, which was never allocated",
                                r.label,
                                buf.short()
                            ),
                            ops: vec![r.label.clone()],
                        }),
                    },
                    None => findings.push(Finding {
                        class: FindingClass::Malformed,
                        code: "free-dead",
                        message: format!(
                            "`{}` (thread {t}) frees {}, which is not an allocation",
                            r.label,
                            buf.short()
                        ),
                        ops: vec![r.label.clone()],
                    }),
                }
            }
            TraceKind::Op { accesses } => {
                clocks[t][t] += 1;
                for a in accesses {
                    if let Some(fi) = exact(&a.buf).and_then(|k| freed.get(&k)) {
                        findings.push(Finding {
                            class: FindingClass::UseAfterFree,
                            code: "use-after-free",
                            message: format!(
                                "`{}` (thread {t}) {} {} after `{}` (thread {}) freed it",
                                r.label,
                                rw(a.write),
                                a.buf.short(),
                                trace.records[*fi].label,
                                trace.records[*fi].thread
                            ),
                            ops: vec![r.label.clone(), trace.records[*fi].label.clone()],
                        });
                    }
                    let key = coarse(&a.buf);
                    let entry = history.entry(key).or_default();
                    // At most one race report per conflicting thread per
                    // op — chunked pipelines would otherwise flood.
                    let mut reported: Vec<usize> = Vec::new();
                    for p in entry.iter() {
                        let conflict = p.access.buf.overlaps(&a.buf) && (p.access.write || a.write);
                        if conflict && !ordered(p, &clocks[t]) && !reported.contains(&p.thread) {
                            reported.push(p.thread);
                            let class = if matches!(key, CoarseKey::Pinned(_)) {
                                FindingClass::Aliasing
                            } else {
                                FindingClass::MissingSync
                            };
                            findings.push(Finding {
                                class,
                                code: "race",
                                message: format!(
                                    "data race on {}: `{}` (thread {}) {} it and `{}` \
                                     (thread {t}) {} it with no happens-before edge; \
                                     record an event on thread {} after the former and \
                                     stream-wait on it in thread {t} before the latter \
                                     (or synchronize the device between them)",
                                    a.buf.short(),
                                    trace.records[p.rec].label,
                                    p.thread,
                                    rw(p.access.write),
                                    r.label,
                                    rw(a.write),
                                    p.thread,
                                ),
                                ops: vec![trace.records[p.rec].label.clone(), r.label.clone()],
                            });
                        }
                    }
                    // A write that happens-after an identical-buffer
                    // access supersedes it for all future ordering
                    // questions — prune to keep history bounded.
                    if a.write {
                        let cur = &clocks[t];
                        entry.retain(|p| !(p.access.buf == a.buf && ordered(p, cur)));
                    }
                    entry.push(Past {
                        rec: i,
                        thread: t,
                        clock: clocks[t][t],
                        access: *a,
                    });
                }
            }
        }
    }
    // Leak check, gated on the trace actually releasing buffers:
    // plan-lowered and executor traces free what they allocate, so a
    // survivor in `live` is a leak there; recorder-style traces with
    // no Free records at all (e.g. VirtualCuda logs) opt out.
    if saw_free {
        let mut leaked: Vec<&(usize, f64)> = live.values().collect();
        leaked.sort_by_key(|(rec, _)| *rec);
        for (rec, _) in leaked {
            let r = &trace.records[*rec];
            findings.push(Finding {
                class: FindingClass::Leak,
                code: "leaked-alloc",
                message: format!(
                    "`{}` (thread {}) is never freed, though the trace frees its \
                     other buffers — the allocation outlives the schedule",
                    r.label, r.thread
                ),
                ops: vec![r.label.clone()],
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_sim::Access;

    fn dev(id: usize) -> Buffer {
        Buffer::Dev { gpu: 0, id }
    }

    #[test]
    fn ordered_ops_are_clean() {
        let mut tr = OpTrace::new(3);
        tr.push(
            1,
            "write",
            TraceKind::Op {
                accesses: vec![Access::write(dev(0))],
            },
        );
        tr.push(1, "record", TraceKind::EventRecord { event: 7 });
        tr.push(2, "wait", TraceKind::StreamWaitEvent { event: 7 });
        tr.push(
            2,
            "read",
            TraceKind::Op {
                accesses: vec![Access::read(dev(0))],
            },
        );
        assert!(check_trace(&tr, None).is_empty());
    }

    #[test]
    fn unordered_conflict_is_a_race() {
        let mut tr = OpTrace::new(3);
        tr.push(
            1,
            "writer",
            TraceKind::Op {
                accesses: vec![Access::write(dev(0))],
            },
        );
        tr.push(
            2,
            "reader",
            TraceKind::Op {
                accesses: vec![Access::read(dev(0))],
            },
        );
        let fs = check_trace(&tr, None);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].class, FindingClass::MissingSync);
        assert!(fs[0].message.contains("writer"));
        assert!(fs[0].message.contains("reader"));
        assert!(fs[0].message.contains("happens-before"));
    }

    #[test]
    fn device_sync_orders_everything() {
        let mut tr = OpTrace::new(3);
        tr.push(
            1,
            "writer",
            TraceKind::Op {
                accesses: vec![Access::write(dev(0))],
            },
        );
        tr.push(0, "sync", TraceKind::DeviceSync);
        tr.push(
            2,
            "reader",
            TraceKind::Op {
                accesses: vec![Access::read(dev(0))],
            },
        );
        assert!(check_trace(&tr, None).is_empty());
    }

    #[test]
    fn wait_on_unrecorded_event_is_deadlock() {
        let mut tr = OpTrace::new(2);
        tr.push(1, "wait", TraceKind::StreamWaitEvent { event: 3 });
        let fs = check_trace(&tr, None);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].class, FindingClass::Deadlock);
        assert_eq!(fs[0].code, "unrecorded-event-wait");
    }

    #[test]
    fn wait_before_record_is_deadlock() {
        let mut tr = OpTrace::new(3);
        tr.push(1, "early wait", TraceKind::StreamWaitEvent { event: 3 });
        tr.push(2, "late record", TraceKind::EventRecord { event: 3 });
        let fs = check_trace(&tr, None);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].code, "wait-before-record");
        assert!(fs[0].message.contains("late record"));
    }

    #[test]
    fn double_alloc_is_aliasing_and_capacity_is_oom() {
        let mut tr = OpTrace::new(1);
        tr.push(
            0,
            "alloc a",
            TraceKind::Alloc {
                buf: dev(0),
                bytes: 6.0,
            },
        );
        tr.push(
            0,
            "alloc a again",
            TraceKind::Alloc {
                buf: dev(0),
                bytes: 6.0,
            },
        );
        let fs = check_trace(&tr, Some(&[10.0]));
        assert!(fs.iter().any(|f| f.code == "double-alloc"));
        assert!(fs.iter().any(|f| f.code == "device-over-capacity"));
    }

    #[test]
    fn free_dead_buffer_is_malformed() {
        let mut tr = OpTrace::new(1);
        tr.push(0, "free", TraceKind::Free { buf: dev(0) });
        let fs = check_trace(&tr, None);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].class, FindingClass::Malformed);
    }

    #[test]
    fn use_after_free_double_free_and_leak_are_typed() {
        // alloc a, alloc b, free a, read a (UAF), free a (double),
        // b never freed (leak).
        let mut tr = OpTrace::new(1);
        tr.push(
            0,
            "alloc a",
            TraceKind::Alloc {
                buf: dev(0),
                bytes: 1.0,
            },
        );
        tr.push(
            0,
            "alloc b",
            TraceKind::Alloc {
                buf: dev(1),
                bytes: 1.0,
            },
        );
        tr.push(0, "free a", TraceKind::Free { buf: dev(0) });
        tr.push(
            0,
            "stale read",
            TraceKind::Op {
                accesses: vec![Access::read(dev(0))],
            },
        );
        tr.push(0, "free a again", TraceKind::Free { buf: dev(0) });
        let fs = check_trace(&tr, None);
        assert!(
            fs.iter()
                .any(|f| f.class == FindingClass::UseAfterFree && f.code == "use-after-free"),
            "{fs:?}"
        );
        assert!(
            fs.iter()
                .any(|f| f.class == FindingClass::DoubleFree && f.code == "double-free"),
            "{fs:?}"
        );
        assert!(
            fs.iter().any(|f| f.class == FindingClass::Leak
                && f.code == "leaked-alloc"
                && f.ops == vec!["alloc b".to_string()]),
            "{fs:?}"
        );
    }

    #[test]
    fn realloc_after_free_is_clean_and_freeless_traces_skip_leak_lint() {
        let mut tr = OpTrace::new(1);
        tr.push(
            0,
            "alloc",
            TraceKind::Alloc {
                buf: dev(0),
                bytes: 1.0,
            },
        );
        tr.push(0, "free", TraceKind::Free { buf: dev(0) });
        tr.push(
            0,
            "realloc",
            TraceKind::Alloc {
                buf: dev(0),
                bytes: 1.0,
            },
        );
        tr.push(
            0,
            "use",
            TraceKind::Op {
                accesses: vec![Access::write(dev(0))],
            },
        );
        tr.push(0, "free 2", TraceKind::Free { buf: dev(0) });
        assert!(check_trace(&tr, None).is_empty());

        // A trace that never frees anything (recorder-style) is not a
        // leak — the lint is gated on the trace releasing buffers.
        let mut rec = OpTrace::new(1);
        rec.push(
            0,
            "alloc",
            TraceKind::Alloc {
                buf: dev(0),
                bytes: 1.0,
            },
        );
        assert!(check_trace(&rec, None).is_empty());
    }

    #[test]
    fn same_thread_reuse_is_program_ordered() {
        let pin = Buffer::Pinned { id: 0 };
        let mut tr = OpTrace::new(2);
        for c in 0..4 {
            tr.push(
                1,
                format!("chunk {c}"),
                TraceKind::Op {
                    accesses: vec![Access::write(pin)],
                },
            );
        }
        assert!(check_trace(&tr, None).is_empty());
    }
}
