//! # hetsort-analyze — static plan verifier + happens-before race detector
//!
//! The executors in `hetsort-core` interpret a static [`Plan`] DAG over
//! streams, events, and staging buffers. A schedule bug — a missing
//! wait, an aliased staging buffer, an over-budget allocation — would
//! surface as silent data corruption or a hang at run time. This crate
//! rejects such schedules *before* execution:
//!
//! 1. **Static linter** ([`static_lint`]): plan-level checks — peak
//!    device residency per GPU vs capacity, staging chunks vs the
//!    pinned buffer, merge-tree well-formedness, the PIPEMERGE
//!    pair-count heuristic (`⌊(n_b−1)/2^n_GPU⌋`, §III-D3).
//! 2. **Happens-before checker** ([`hb`]): vector-clock race detection
//!    over a structured [`OpTrace`] — stream program order plus
//!    `event_record`/`stream_wait_event`/`device_synchronize` edges —
//!    reporting any conflicting access pair the schedule leaves
//!    unordered, plus event-discipline violations (waits on unrecorded
//!    or not-yet-recorded events, i.e. wait-graph cycles), buffer
//!    lifetimes (use-after-free, double-free, leaked allocations),
//!    and (with capacities) device over-subscription.
//! 3. **Schedule-space explorer** ([`explore`]): stateless model
//!    checking with persistent-set DPOR + sleep sets over
//!    `enabled()`/`step()` scheduler models — every reachable
//!    interleaving of a lowered trace ([`trace_model`]), of the MT
//!    coordinator's checkpoint/re-plan recovery ([`replan_model`]),
//!    and (via `hetsort-serve`) of the admission state machine. The
//!    HB checker runs on every explored linearization, plus three
//!    interleaving-only invariants: reachable deadlock, budget
//!    safety, and replan cover.
//!
//! Traces come from two producers: [`lower_plan`](hetsort_core::optrace)
//! derives the static trace from a plan; the executors (with
//! `record_trace` set) and `hetsort-vgpu`'s `VirtualCuda` record the
//! trace of what actually ran, recovery detours included.
//!
//! The analyzer's recall is mutation-tested: [`Mutant`] seeds the
//! trace/plan defect classes, [`ExploreMutant`] the model-level ones,
//! and the suites in `tests/` fail if any goes unreported with the
//! right [`FindingClass`].

// Library code must surface failures as typed errors, never panic
// paths; tests are free to unwrap. No unsafe anywhere in this crate.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
// Truncating `as` casts hide overflow bugs at paper-scale inputs;
// insist on checked conversions.
#![warn(clippy::cast_possible_truncation)]

pub mod explore;
pub mod finding;
pub mod hb;
pub mod mutate;
pub mod replan_model;
pub mod residency;
pub mod static_lint;
pub mod trace_model;

pub use explore::{explore, AdmissionDefect, ExploreConfig, ExploreReport, SchedModel};
pub use finding::{AnalysisReport, Finding, FindingClass};
pub use mutate::{ExploreMutant, Mutant};
pub use replan_model::{ReplanDefect, ReplanModel};
pub use residency::Residency;
pub use trace_model::{explore_plan, explore_plan_trace, TraceModel};

use hetsort_core::optrace::{lower_dag, lower_plan};
use hetsort_core::plan::Plan;
use hetsort_core::PlanDag;
use hetsort_sim::OpTrace;

/// Analyze a plan: static lint plus happens-before over its lowered
/// static trace.
pub fn analyze_plan(plan: &Plan) -> AnalysisReport {
    analyze_plan_with_trace(plan, &lower_plan(plan))
}

/// Analyze an op dag: structural validation (every named
/// [`PlanDag::validate`] rule becomes a [`FindingClass::Malformed`]
/// finding instead of an error), then the full plan analysis — static
/// lint, residency re-check, and happens-before over the trace lowered
/// from the *dag's* edges. A dag whose dependency edges were mutated
/// loses exactly those sync edges in the lowered trace, so the HB
/// checker reports the race even when the structural validator is
/// blind to it.
pub fn analyze_dag(dag: &PlanDag) -> AnalysisReport {
    let mut findings = Vec::new();
    if let Err(e) = dag.validate() {
        findings.push(Finding {
            class: FindingClass::Malformed,
            code: "dag-validate",
            message: e.to_string(),
            ops: Vec::new(),
        });
    }
    let mut report = analyze_plan_with_trace(&dag.plan, &lower_dag(dag));
    findings.append(&mut report.findings);
    AnalysisReport { findings }
}

/// Analyze a plan against a specific trace — the lowered static trace,
/// a mutated one, or the executed trace an executor recorded (which
/// re-checks recovery detours the static schedule never had).
pub fn analyze_plan_with_trace(plan: &Plan, trace: &OpTrace) -> AnalysisReport {
    let mut findings = static_lint::lint_plan(plan);
    let caps: Vec<f64> = plan
        .config
        .platform
        .gpus
        .iter()
        .map(|g| g.global_mem_bytes)
        .collect();
    findings.extend(hb::check_trace(trace, Some(&caps)));
    AnalysisReport { findings }
}

/// Happens-before analysis of a bare trace (no plan, no capacity
/// model) — for traces recorded by `VirtualCuda`.
pub fn analyze_trace(trace: &OpTrace) -> AnalysisReport {
    AnalysisReport {
        findings: hb::check_trace(trace, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_core::{Approach, HetSortConfig};
    use hetsort_vgpu::platform1;

    #[test]
    fn shipped_plan_analyzes_clean() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
            .with_batch_elems(1000)
            .with_pinned_elems(250);
        let plan = Plan::build(cfg, 6000).unwrap();
        let report = analyze_plan(&plan);
        assert!(report.is_clean(), "{report}");
    }
}
