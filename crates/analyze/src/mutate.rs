//! Seeded schedule defects for mutation-testing the analyzer.
//!
//! Each [`Mutant`] breaks a correct plan/trace pair in one specific way
//! and declares the [`FindingClass`] the analyzer must report for it.
//! The mutation suite (`tests/mutation.rs`) applies every mutant to
//! every shipped configuration and fails if any goes undetected — the
//! analyzer's recall is tested, not assumed.
//!
//! Sync mutants edit the lowered trace (dropping or misplacing the
//! event edges an executor could plausibly forget); structural mutants
//! edit the plan in place (the hand-mutated-plan shapes
//! `Plan::check_invariants` and the static linter exist to catch).

use hetsort_core::config::PairStrategy;
use hetsort_core::plan::{Plan, StepKind};
use hetsort_sim::{Buffer, OpTrace, TraceKind};
use hetsort_vgpu::{platform1, platform2};

use crate::finding::FindingClass;

/// One seeded defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// Remove the last `stream_wait_event` — the consumer runs
    /// unordered with its producer.
    DropWait,
    /// Remove the first `event_record` — its waiters wait on an event
    /// that no longer exists.
    DropEventRecord,
    /// Collapse every stream's pinned staging buffers onto stream 0's —
    /// two streams share one staging buffer.
    AliasPinned,
    /// Point one stream's HtoD at another stream's device buffer.
    RetargetHtoD,
    /// Insert a cross-stream wait cycle (each stream waits on an event
    /// the other records only later).
    WaitCycle,
    /// Inflate `b_s` past device capacity after planning.
    OversizeBatch,
    /// Shrink `p_s` below the planned chunk sizes after planning.
    UndersizeStaging,
    /// Feed one batch into the final merge twice.
    DuplicateMergeInput,
    /// Drop one input from the final merge.
    DropMergeInput,
    /// Break the PIPEMERGE pair-count heuristic (the plan no longer
    /// matches `⌊(n_b−1)/2^n_GPU⌋` for its platform).
    BreakPairCount,
    /// Remove one buffer's epilogue free — the allocation leaks.
    DropFree,
    /// Free the same buffer twice.
    DoubleFree,
    /// Hoist a free above later uses of its buffer.
    UseAfterFree,
}

impl Mutant {
    /// Every mutant, in a stable order.
    pub const ALL: [Mutant; 13] = [
        Mutant::DropWait,
        Mutant::DropEventRecord,
        Mutant::AliasPinned,
        Mutant::RetargetHtoD,
        Mutant::WaitCycle,
        Mutant::OversizeBatch,
        Mutant::UndersizeStaging,
        Mutant::DuplicateMergeInput,
        Mutant::DropMergeInput,
        Mutant::BreakPairCount,
        Mutant::DropFree,
        Mutant::DoubleFree,
        Mutant::UseAfterFree,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Mutant::DropWait => "drop-wait",
            Mutant::DropEventRecord => "drop-event-record",
            Mutant::AliasPinned => "alias-pinned",
            Mutant::RetargetHtoD => "retarget-htod",
            Mutant::WaitCycle => "wait-cycle",
            Mutant::OversizeBatch => "oversize-batch",
            Mutant::UndersizeStaging => "undersize-staging",
            Mutant::DuplicateMergeInput => "duplicate-merge-input",
            Mutant::DropMergeInput => "drop-merge-input",
            Mutant::BreakPairCount => "break-pair-count",
            Mutant::DropFree => "drop-free",
            Mutant::DoubleFree => "double-free",
            Mutant::UseAfterFree => "use-after-free",
        }
    }

    /// The finding class the analyzer must report for this defect.
    pub fn expected_class(&self) -> FindingClass {
        match self {
            Mutant::DropWait | Mutant::RetargetHtoD => FindingClass::MissingSync,
            Mutant::AliasPinned => FindingClass::Aliasing,
            Mutant::DropEventRecord | Mutant::WaitCycle => FindingClass::Deadlock,
            Mutant::OversizeBatch | Mutant::UndersizeStaging => FindingClass::Oom,
            Mutant::DuplicateMergeInput | Mutant::DropMergeInput | Mutant::BreakPairCount => {
                FindingClass::Malformed
            }
            Mutant::DropFree => FindingClass::Leak,
            Mutant::DoubleFree => FindingClass::DoubleFree,
            Mutant::UseAfterFree => FindingClass::UseAfterFree,
        }
    }

    /// Apply the defect to a plan/trace pair. Returns `false` when the
    /// plan's shape does not support it (e.g. no pair merges to break).
    pub fn apply(&self, plan: &mut Plan, trace: &mut OpTrace) -> bool {
        match self {
            Mutant::DropWait => {
                let Some(i) = trace
                    .records
                    .iter()
                    .rposition(|r| matches!(r.kind, TraceKind::StreamWaitEvent { .. }))
                else {
                    return false;
                };
                trace.records.remove(i);
                true
            }
            Mutant::DropEventRecord => {
                let Some(i) = trace
                    .records
                    .iter()
                    .position(|r| matches!(r.kind, TraceKind::EventRecord { .. }))
                else {
                    return false;
                };
                trace.records.remove(i);
                true
            }
            Mutant::AliasPinned => {
                if !plan.asynchronous || plan.total_streams < 2 {
                    return false;
                }
                for r in trace.records.iter_mut() {
                    let remap = |buf: &mut Buffer| {
                        if let Buffer::Pinned { id } = buf {
                            *id %= 2;
                        }
                    };
                    match &mut r.kind {
                        TraceKind::Alloc { buf, .. } | TraceKind::Free { buf } => remap(buf),
                        TraceKind::Op { accesses } => {
                            accesses.iter_mut().for_each(|a| remap(&mut a.buf))
                        }
                        _ => {}
                    }
                }
                true
            }
            Mutant::RetargetHtoD => {
                // Another allocation on the same GPU to collide with.
                let mut dev_ids: Vec<(usize, usize)> = Vec::new();
                for r in &trace.records {
                    if let TraceKind::Alloc {
                        buf: Buffer::Dev { gpu, id },
                        ..
                    } = r.kind
                    {
                        dev_ids.push((gpu, id));
                    }
                }
                for r in trace.records.iter_mut() {
                    if let TraceKind::Op { accesses } = &mut r.kind {
                        for a in accesses.iter_mut() {
                            if let Buffer::Dev { gpu, id } = a.buf {
                                if !a.write {
                                    continue;
                                }
                                let Some(&(_, other)) =
                                    dev_ids.iter().find(|&&(g, i)| g == gpu && i != id)
                                else {
                                    return false;
                                };
                                a.buf = Buffer::Dev { gpu, id: other };
                                return true;
                            }
                        }
                    }
                }
                false
            }
            Mutant::WaitCycle => {
                let recs: Vec<(usize, usize, usize)> = trace
                    .records
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| match r.kind {
                        TraceKind::EventRecord { event } => Some((i, r.thread, event)),
                        _ => None,
                    })
                    .collect();
                let Some(&(i1, t1, e1)) = recs.first() else {
                    return false;
                };
                let Some(&(i2, t2, e2)) = recs.iter().find(|&&(_, t, _)| t != t1) else {
                    return false;
                };
                // Each thread now waits on the event the other records
                // only later: a cycle in the wait graph.
                trace.records.insert(
                    i1,
                    hetsort_sim::TraceRecord {
                        thread: t1,
                        label: format!("seeded wait on ev{e2}"),
                        kind: TraceKind::StreamWaitEvent { event: e2 },
                    },
                );
                trace.records.insert(
                    i2 + 1,
                    hetsort_sim::TraceRecord {
                        thread: t2,
                        label: format!("seeded wait on ev{e1}"),
                        kind: TraceKind::StreamWaitEvent { event: e1 },
                    },
                );
                true
            }
            Mutant::OversizeBatch => {
                plan.config.batch_elems = usize::MAX / 1024;
                true
            }
            Mutant::UndersizeStaging => {
                plan.config.pinned_elems = 1;
                true
            }
            Mutant::DuplicateMergeInput => {
                for s in plan.steps.iter_mut() {
                    if let StepKind::MultiwayMerge { inputs } = &mut s.kind {
                        let Some(&first) = inputs.first() else {
                            return false;
                        };
                        inputs.push(first);
                        return true;
                    }
                }
                false
            }
            Mutant::DropMergeInput => {
                for s in plan.steps.iter_mut() {
                    if let StepKind::MultiwayMerge { inputs } = &mut s.kind {
                        return inputs.pop().is_some();
                    }
                }
                false
            }
            Mutant::BreakPairCount => {
                // The pair-count heuristic only governs the paper
                // strategy; the rejected strategies schedule freely.
                if plan.config.pair_strategy != PairStrategy::PaperHeuristic {
                    return false;
                }
                let nb = plan.nb();
                let before = plan.config.pipelined_pair_merges(nb);
                plan.config.platform = if plan.config.platform.n_gpus() == 1 {
                    platform2()
                } else {
                    platform1()
                };
                let after = plan.config.pipelined_pair_merges(nb);
                before != after
            }
            Mutant::DropFree => {
                // Removing the *only* free would also disable the leak
                // lint (freeless traces opt out), so require two.
                let frees: Vec<usize> = trace
                    .records
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| matches!(r.kind, TraceKind::Free { .. }))
                    .map(|(i, _)| i)
                    .collect();
                if frees.len() < 2 {
                    return false;
                }
                trace.records.remove(frees[0]);
                true
            }
            Mutant::DoubleFree => {
                let Some(i) = trace
                    .records
                    .iter()
                    .position(|r| matches!(r.kind, TraceKind::Free { .. }))
                else {
                    return false;
                };
                let dup = trace.records[i].clone();
                trace.records.insert(i + 1, dup);
                true
            }
            Mutant::UseAfterFree => {
                // Move some buffer's free to just after its first use,
                // so every later use touches freed memory.
                let frees: Vec<(usize, Buffer)> = trace
                    .records
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| match &r.kind {
                        TraceKind::Free { buf } => Some((i, *buf)),
                        _ => None,
                    })
                    .collect();
                for (fi, buf) in frees {
                    let uses: Vec<usize> = trace
                        .records
                        .iter()
                        .enumerate()
                        .take(fi)
                        .filter(|(_, r)| match &r.kind {
                            TraceKind::Op { accesses } => accesses.iter().any(|a| a.buf == buf),
                            _ => false,
                        })
                        .map(|(i, _)| i)
                        .collect();
                    if uses.len() < 2 {
                        continue;
                    }
                    let rec = trace.records.remove(fi);
                    trace.records.insert(uses[0] + 1, rec);
                    return true;
                }
                false
            }
        }
    }
}

/// A seeded defect in the *models* the schedule-space explorer drives
/// (recovery coordinator, admission state machine) rather than in a
/// plan/trace pair. The explorer-targeted half of the kill-suite: each
/// variant names the [`FindingClass`] exploration must report.
///
/// The recovery-side variants build on [`crate::replan_model`]; the
/// admission-side variants carry an [`AdmissionDefect`] that
/// `hetsort-serve`'s admission model implements (serve depends on this
/// crate, so the model lives there). `tests/explore_mutation.rs` kills
/// the former, serve's `tests/explore_admission.rs` the latter; the
/// two subsets partition [`ExploreMutant::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMutant {
    /// The coordinator re-plans without reading the checkpoint:
    /// completed batches are sorted again.
    DropCheckpoint,
    /// The first unfinished batch is dropped from the recovery set.
    DropRecoveryBatch,
    /// The recovery path loses a `stream_wait_event`: the survivor
    /// plan's consumer runs unordered with its producer.
    DropRecoveryWait,
    /// `release` subtracts a reservation's footprint twice.
    DoubleRelease,
    /// The controller skips its empty-state round-off reset.
    NoDrainReset,
    /// Displaced reservations are re-queued without being released.
    SkipDisplaceRelease,
}

impl ExploreMutant {
    /// Every explorer-targeted mutant, in a stable order.
    pub const ALL: [ExploreMutant; 6] = [
        ExploreMutant::DropCheckpoint,
        ExploreMutant::DropRecoveryBatch,
        ExploreMutant::DropRecoveryWait,
        ExploreMutant::DoubleRelease,
        ExploreMutant::NoDrainReset,
        ExploreMutant::SkipDisplaceRelease,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ExploreMutant::DropCheckpoint => "drop-checkpoint",
            ExploreMutant::DropRecoveryBatch => "drop-recovery-batch",
            ExploreMutant::DropRecoveryWait => "drop-recovery-wait",
            ExploreMutant::DoubleRelease => "double-release",
            ExploreMutant::NoDrainReset => "no-drain-reset",
            ExploreMutant::SkipDisplaceRelease => "skip-displace-release",
        }
    }

    /// The finding class exploration must report for this defect.
    pub fn expected_class(&self) -> FindingClass {
        match self {
            ExploreMutant::DropCheckpoint | ExploreMutant::DropRecoveryBatch => {
                FindingClass::ReplanCover
            }
            ExploreMutant::DropRecoveryWait => FindingClass::MissingSync,
            ExploreMutant::DoubleRelease | ExploreMutant::SkipDisplaceRelease => {
                FindingClass::Budget
            }
            ExploreMutant::NoDrainReset => FindingClass::Deadlock,
        }
    }

    /// The recovery-coordinator defect this mutant seeds, if any.
    pub fn replan_defect(&self) -> Option<crate::replan_model::ReplanDefect> {
        match self {
            ExploreMutant::DropCheckpoint => {
                Some(crate::replan_model::ReplanDefect::DropCheckpoint)
            }
            ExploreMutant::DropRecoveryBatch => {
                Some(crate::replan_model::ReplanDefect::DropRecoveryBatch)
            }
            _ => None,
        }
    }

    /// The admission-controller defect this mutant seeds, if any
    /// (implemented by `hetsort-serve`'s admission model).
    pub fn admission_defect(&self) -> Option<crate::explore::AdmissionDefect> {
        match self {
            ExploreMutant::DoubleRelease => Some(crate::explore::AdmissionDefect::DoubleRelease),
            ExploreMutant::NoDrainReset => Some(crate::explore::AdmissionDefect::NoDrainReset),
            ExploreMutant::SkipDisplaceRelease => {
                Some(crate::explore::AdmissionDefect::SkipDisplaceRelease)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_is_covered() {
        use FindingClass::*;
        for class in [
            MissingSync,
            Aliasing,
            Deadlock,
            Oom,
            Malformed,
            UseAfterFree,
            DoubleFree,
            Leak,
        ] {
            assert!(
                Mutant::ALL.iter().any(|m| m.expected_class() == class),
                "no mutant seeds {class:?}"
            );
        }
        // The interleaving-only classes are seeded by the explorer
        // mutants instead.
        for class in [Budget, ReplanCover, Deadlock, MissingSync] {
            assert!(
                ExploreMutant::ALL
                    .iter()
                    .any(|m| m.expected_class() == class),
                "no explorer mutant seeds {class:?}"
            );
        }
        assert!(Mutant::ALL.len() >= 8);
    }

    #[test]
    fn explorer_mutants_partition_between_replan_and_admission() {
        // The analyze-side kill test handles every mutant without an
        // admission defect; serve's kill test handles the rest. Make
        // sure nothing falls through the crack between the two suites.
        let (serve, analyze): (Vec<&ExploreMutant>, Vec<&ExploreMutant>) = ExploreMutant::ALL
            .iter()
            .partition(|m| m.admission_defect().is_some());
        assert_eq!(serve.len(), 3, "{serve:?}");
        assert_eq!(analyze.len(), 3, "{analyze:?}");
        assert!(analyze
            .iter()
            .all(|m| m.replan_defect().is_some() || **m == ExploreMutant::DropRecoveryWait));
    }
}
