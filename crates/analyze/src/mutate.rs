//! Seeded schedule defects for mutation-testing the analyzer.
//!
//! Each [`Mutant`] breaks a correct plan/trace pair in one specific way
//! and declares the [`FindingClass`] the analyzer must report for it.
//! The mutation suite (`tests/mutation.rs`) applies every mutant to
//! every shipped configuration and fails if any goes undetected — the
//! analyzer's recall is tested, not assumed.
//!
//! Sync mutants edit the lowered trace (dropping or misplacing the
//! event edges an executor could plausibly forget); structural mutants
//! edit the plan in place (the hand-mutated-plan shapes
//! `Plan::check_invariants` and the static linter exist to catch).

use hetsort_core::config::PairStrategy;
use hetsort_core::plan::{Plan, StepKind};
use hetsort_sim::{Buffer, OpTrace, TraceKind};
use hetsort_vgpu::{platform1, platform2};

use crate::finding::FindingClass;

/// One seeded defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// Remove the last `stream_wait_event` — the consumer runs
    /// unordered with its producer.
    DropWait,
    /// Remove the first `event_record` — its waiters wait on an event
    /// that no longer exists.
    DropEventRecord,
    /// Collapse every stream's pinned staging buffers onto stream 0's —
    /// two streams share one staging buffer.
    AliasPinned,
    /// Point one stream's HtoD at another stream's device buffer.
    RetargetHtoD,
    /// Insert a cross-stream wait cycle (each stream waits on an event
    /// the other records only later).
    WaitCycle,
    /// Inflate `b_s` past device capacity after planning.
    OversizeBatch,
    /// Shrink `p_s` below the planned chunk sizes after planning.
    UndersizeStaging,
    /// Feed one batch into the final merge twice.
    DuplicateMergeInput,
    /// Drop one input from the final merge.
    DropMergeInput,
    /// Break the PIPEMERGE pair-count heuristic (the plan no longer
    /// matches `⌊(n_b−1)/2^n_GPU⌋` for its platform).
    BreakPairCount,
}

impl Mutant {
    /// Every mutant, in a stable order.
    pub const ALL: [Mutant; 10] = [
        Mutant::DropWait,
        Mutant::DropEventRecord,
        Mutant::AliasPinned,
        Mutant::RetargetHtoD,
        Mutant::WaitCycle,
        Mutant::OversizeBatch,
        Mutant::UndersizeStaging,
        Mutant::DuplicateMergeInput,
        Mutant::DropMergeInput,
        Mutant::BreakPairCount,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Mutant::DropWait => "drop-wait",
            Mutant::DropEventRecord => "drop-event-record",
            Mutant::AliasPinned => "alias-pinned",
            Mutant::RetargetHtoD => "retarget-htod",
            Mutant::WaitCycle => "wait-cycle",
            Mutant::OversizeBatch => "oversize-batch",
            Mutant::UndersizeStaging => "undersize-staging",
            Mutant::DuplicateMergeInput => "duplicate-merge-input",
            Mutant::DropMergeInput => "drop-merge-input",
            Mutant::BreakPairCount => "break-pair-count",
        }
    }

    /// The finding class the analyzer must report for this defect.
    pub fn expected_class(&self) -> FindingClass {
        match self {
            Mutant::DropWait | Mutant::RetargetHtoD => FindingClass::MissingSync,
            Mutant::AliasPinned => FindingClass::Aliasing,
            Mutant::DropEventRecord | Mutant::WaitCycle => FindingClass::Deadlock,
            Mutant::OversizeBatch | Mutant::UndersizeStaging => FindingClass::Oom,
            Mutant::DuplicateMergeInput | Mutant::DropMergeInput | Mutant::BreakPairCount => {
                FindingClass::Malformed
            }
        }
    }

    /// Apply the defect to a plan/trace pair. Returns `false` when the
    /// plan's shape does not support it (e.g. no pair merges to break).
    pub fn apply(&self, plan: &mut Plan, trace: &mut OpTrace) -> bool {
        match self {
            Mutant::DropWait => {
                let Some(i) = trace
                    .records
                    .iter()
                    .rposition(|r| matches!(r.kind, TraceKind::StreamWaitEvent { .. }))
                else {
                    return false;
                };
                trace.records.remove(i);
                true
            }
            Mutant::DropEventRecord => {
                let Some(i) = trace
                    .records
                    .iter()
                    .position(|r| matches!(r.kind, TraceKind::EventRecord { .. }))
                else {
                    return false;
                };
                trace.records.remove(i);
                true
            }
            Mutant::AliasPinned => {
                if !plan.asynchronous || plan.total_streams < 2 {
                    return false;
                }
                for r in trace.records.iter_mut() {
                    let remap = |buf: &mut Buffer| {
                        if let Buffer::Pinned { id } = buf {
                            *id %= 2;
                        }
                    };
                    match &mut r.kind {
                        TraceKind::Alloc { buf, .. } | TraceKind::Free { buf } => remap(buf),
                        TraceKind::Op { accesses } => {
                            accesses.iter_mut().for_each(|a| remap(&mut a.buf))
                        }
                        _ => {}
                    }
                }
                true
            }
            Mutant::RetargetHtoD => {
                // Another allocation on the same GPU to collide with.
                let mut dev_ids: Vec<(usize, usize)> = Vec::new();
                for r in &trace.records {
                    if let TraceKind::Alloc {
                        buf: Buffer::Dev { gpu, id },
                        ..
                    } = r.kind
                    {
                        dev_ids.push((gpu, id));
                    }
                }
                for r in trace.records.iter_mut() {
                    if let TraceKind::Op { accesses } = &mut r.kind {
                        for a in accesses.iter_mut() {
                            if let Buffer::Dev { gpu, id } = a.buf {
                                if !a.write {
                                    continue;
                                }
                                let Some(&(_, other)) =
                                    dev_ids.iter().find(|&&(g, i)| g == gpu && i != id)
                                else {
                                    return false;
                                };
                                a.buf = Buffer::Dev { gpu, id: other };
                                return true;
                            }
                        }
                    }
                }
                false
            }
            Mutant::WaitCycle => {
                let recs: Vec<(usize, usize, usize)> = trace
                    .records
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| match r.kind {
                        TraceKind::EventRecord { event } => Some((i, r.thread, event)),
                        _ => None,
                    })
                    .collect();
                let Some(&(i1, t1, e1)) = recs.first() else {
                    return false;
                };
                let Some(&(i2, t2, e2)) = recs.iter().find(|&&(_, t, _)| t != t1) else {
                    return false;
                };
                // Each thread now waits on the event the other records
                // only later: a cycle in the wait graph.
                trace.records.insert(
                    i1,
                    hetsort_sim::TraceRecord {
                        thread: t1,
                        label: format!("seeded wait on ev{e2}"),
                        kind: TraceKind::StreamWaitEvent { event: e2 },
                    },
                );
                trace.records.insert(
                    i2 + 1,
                    hetsort_sim::TraceRecord {
                        thread: t2,
                        label: format!("seeded wait on ev{e1}"),
                        kind: TraceKind::StreamWaitEvent { event: e1 },
                    },
                );
                true
            }
            Mutant::OversizeBatch => {
                plan.config.batch_elems = usize::MAX / 1024;
                true
            }
            Mutant::UndersizeStaging => {
                plan.config.pinned_elems = 1;
                true
            }
            Mutant::DuplicateMergeInput => {
                for s in plan.steps.iter_mut() {
                    if let StepKind::MultiwayMerge { inputs } = &mut s.kind {
                        let Some(&first) = inputs.first() else {
                            return false;
                        };
                        inputs.push(first);
                        return true;
                    }
                }
                false
            }
            Mutant::DropMergeInput => {
                for s in plan.steps.iter_mut() {
                    if let StepKind::MultiwayMerge { inputs } = &mut s.kind {
                        return inputs.pop().is_some();
                    }
                }
                false
            }
            Mutant::BreakPairCount => {
                // The pair-count heuristic only governs the paper
                // strategy; the rejected strategies schedule freely.
                if plan.config.pair_strategy != PairStrategy::PaperHeuristic {
                    return false;
                }
                let nb = plan.nb();
                let before = plan.config.pipelined_pair_merges(nb);
                plan.config.platform = if plan.config.platform.n_gpus() == 1 {
                    platform2()
                } else {
                    platform1()
                };
                let after = plan.config.pipelined_pair_merges(nb);
                before != after
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_is_covered() {
        use FindingClass::*;
        for class in [MissingSync, Aliasing, Deadlock, Oom, Malformed] {
            assert!(
                Mutant::ALL.iter().any(|m| m.expected_class() == class),
                "no mutant seeds {class:?}"
            );
        }
        assert!(Mutant::ALL.len() >= 8);
    }
}
