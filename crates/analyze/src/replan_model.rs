//! [`SchedModel`] of the multi-threaded coordinator's device-loss
//! recovery: workers sorting their batches, a fault script killing
//! devices, and a coordinator that checkpoints completed batches and
//! re-plans the rest on the survivors (CPU fallback when none
//! survive).
//!
//! The model abstracts *op timing* away: the fault thread's next loss
//! can land between any two scheduler actions, so exploring the model
//! covers every "the GPU died after batch k, before batch k+1"
//! alignment a `FaultInjector` op-count schedule could produce —
//! plus every worker interleaving around it.
//!
//! The **replan-cover invariant** is checked on every interleaving:
//! each recovery round's batch set must *exactly partition* the
//! unfinished work (no completed batch re-sorted, no unfinished batch
//! dropped), the survivor plan must keep the base plan's batch
//! tiling, and at quiescence every batch is sorted exactly once.
//! Violations surface as [`FindingClass::ReplanCover`] findings;
//! [`ReplanDefect`] seeds the two defect modes the mutation suite
//! uses to prove the explorer actually catches them.

use std::collections::BTreeSet;

use hetsort_core::plan::Plan;
use hetsort_core::recover::survivor_plan;

use crate::explore::{Footprint, Res, SchedModel};
use crate::finding::{Finding, FindingClass};

/// Host-side sorted-runs region (mirrors `optrace::REGION_W`).
const REGION_W: usize = 1;

/// A seeded defect in the recovery coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanDefect {
    /// The checkpoint read is dropped: the coordinator re-plans *all*
    /// batches, re-sorting work that already completed.
    DropCheckpoint,
    /// The first unfinished batch is dropped from the recovery set:
    /// its data is silently never sorted.
    DropRecoveryBatch,
}

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Waiting for workers / ready to re-plan unfinished work.
    Idle,
    /// Executing a recovery plan one batch at a time.
    Recover {
        batches: Vec<usize>,
        gpus: Vec<usize>,
        idx: usize,
    },
    /// A recovery round completed with nothing left.
    Done,
}

/// Exhaustive-interleaving model of checkpoint/re-plan recovery.
///
/// Threads `0..total_streams` are workers (each owns its plan batches
/// in submission order), thread `total_streams` is the fault script,
/// and thread `total_streams + 1` is the coordinator.
pub struct ReplanModel {
    base: Plan,
    /// Physical GPUs the fault script kills, in order.
    faults: Vec<usize>,
    defect: Option<ReplanDefect>,
    worker_batches: Vec<Vec<usize>>,
    // Mutable schedule state:
    sorted_count: Vec<usize>,
    worker_next: Vec<usize>,
    worker_failed: Vec<bool>,
    fault_pc: usize,
    dead: BTreeSet<usize>,
    phase: Phase,
    /// Batches a defective replan dropped — reported when abandoned,
    /// excluded from "unfinished" so the model still terminates.
    abandoned: BTreeSet<usize>,
    findings: Vec<Finding>,
}

impl ReplanModel {
    /// Model `base`'s workers under a script of physical-GPU losses.
    pub fn new(base: Plan, faults: Vec<usize>, defect: Option<ReplanDefect>) -> ReplanModel {
        let mut worker_batches = vec![Vec::new(); base.total_streams];
        for b in &base.batches {
            if b.stream < worker_batches.len() {
                worker_batches[b.stream].push(b.index);
            }
        }
        let nb = base.nb();
        let streams = base.total_streams;
        ReplanModel {
            base,
            faults,
            defect,
            worker_batches,
            sorted_count: vec![0; nb],
            worker_next: vec![0; streams],
            worker_failed: vec![false; streams],
            fault_pc: 0,
            dead: BTreeSet::new(),
            phase: Phase::Idle,
            abandoned: BTreeSet::new(),
            findings: Vec::new(),
        }
    }

    fn workers(&self) -> usize {
        self.worker_batches.len()
    }

    fn fault_thread(&self) -> usize {
        self.workers()
    }

    fn workers_finished(&self) -> bool {
        (0..self.workers())
            .all(|w| self.worker_failed[w] || self.worker_next[w] == self.worker_batches[w].len())
    }

    fn unfinished(&self) -> Vec<usize> {
        (0..self.sorted_count.len())
            .filter(|&b| self.sorted_count[b] == 0 && !self.abandoned.contains(&b))
            .collect()
    }

    fn cover_finding(&mut self, code: &'static str, batch: usize, message: String) {
        self.findings.push(Finding {
            class: FindingClass::ReplanCover,
            code,
            message,
            ops: vec![format!("batch{batch}")],
        });
    }

    fn mark_sorted(&mut self, batch: usize, by: &str) {
        self.sorted_count[batch] += 1;
        if self.sorted_count[batch] > 1 {
            self.cover_finding(
                "double-sorted",
                batch,
                format!(
                    "{}: batch {batch} sorted {} times (re-sorted by {by}) — recovery \
                     does not partition the unfinished work",
                    self.name(),
                    self.sorted_count[batch]
                ),
            );
        }
    }

    /// Batch's host sorted-run range in the base plan.
    fn batch_footprint(&self, batch: usize, gpu: usize) -> Footprint {
        let info = &self.base.batches[batch];
        Footprint::read(Res::Gpu(gpu)).and_write(Res::Buf(hetsort_sim::Buffer::Host {
            region: REGION_W,
            start: info.start,
            len: info.len,
        }))
    }

    /// One coordinator re-plan action: checkpoint, survivor plan (or
    /// CPU fallback), cover check, enter recovery.
    fn replan(&mut self) {
        let true_missing = self.unfinished();
        let observed: Vec<usize> = if self.defect == Some(ReplanDefect::DropCheckpoint) {
            (0..self.sorted_count.len())
                .filter(|b| !self.abandoned.contains(b))
                .collect()
        } else {
            true_missing.clone()
        };
        let mut recovery: Vec<usize> = observed;
        if self.defect == Some(ReplanDefect::DropRecoveryBatch) && !recovery.is_empty() {
            recovery.remove(0);
        }

        // Cover invariant, checked *before* the round runs: the
        // recovery set must equal the unfinished set.
        for &b in &recovery {
            if !true_missing.contains(&b) {
                self.cover_finding(
                    "replan-cover-extra",
                    b,
                    format!(
                        "{}: recovery set re-sorts batch {b} which already completed \
                         (stale checkpoint)",
                        self.name()
                    ),
                );
            }
        }
        for &b in &true_missing {
            if !recovery.contains(&b) {
                self.cover_finding(
                    "replan-cover-missing",
                    b,
                    format!(
                        "{}: unfinished batch {b} is missing from the recovery set — \
                         its data would never be sorted",
                        self.name()
                    ),
                );
                self.abandoned.insert(b);
            }
        }

        // Plan-local GPU indices whose physical device died.
        let lost: BTreeSet<usize> = (0..self.base.config.platform.n_gpus())
            .filter(|&g| self.dead.contains(&self.base.physical_gpu(g)))
            .collect();
        match survivor_plan(&self.base, &lost) {
            Err(e) => {
                self.findings.push(Finding {
                    class: FindingClass::Malformed,
                    code: "replan-build-failed",
                    message: format!("{}: survivor plan failed to build: {e}", self.name()),
                    ops: Vec::new(),
                });
                for b in recovery {
                    self.abandoned.insert(b);
                }
                self.phase = Phase::Done;
            }
            Ok(None) => {
                // CPU fallback: the host sorts the recovery set in one
                // blocking pass.
                for b in recovery {
                    self.mark_sorted(b, "CPU fallback");
                }
                self.phase = if self.unfinished().is_empty() {
                    Phase::Done
                } else {
                    Phase::Idle
                };
            }
            Ok(Some(rp)) => {
                // Tiling invariant: the survivor plan must keep the
                // base plan's batch set verbatim.
                let tiling_ok = rp.nb() == self.base.nb()
                    && rp
                        .batches
                        .iter()
                        .zip(&self.base.batches)
                        .all(|(a, b)| (a.start, a.len) == (b.start, b.len));
                if !tiling_ok {
                    self.findings.push(Finding {
                        class: FindingClass::ReplanCover,
                        code: "replan-tiling",
                        message: format!(
                            "{}: survivor plan re-tiles batches ({} vs {}) — checkpointed \
                             runs no longer align",
                            self.name(),
                            rp.nb(),
                            self.base.nb()
                        ),
                        ops: Vec::new(),
                    });
                }
                let gpus = recovery
                    .iter()
                    .map(|&b| rp.physical_gpu(rp.batches[b].gpu))
                    .collect();
                self.phase = Phase::Recover {
                    batches: recovery,
                    gpus,
                    idx: 0,
                };
            }
        }
    }
}

impl SchedModel for ReplanModel {
    fn name(&self) -> String {
        format!(
            "replan {} n={} faults={:?}",
            self.base.config.approach.name(),
            self.base.n,
            self.faults
        )
    }

    fn n_threads(&self) -> usize {
        self.workers() + 2
    }

    fn reset(&mut self) {
        self.sorted_count = vec![0; self.base.nb()];
        self.worker_next = vec![0; self.workers()];
        self.worker_failed = vec![false; self.workers()];
        self.fault_pc = 0;
        self.dead.clear();
        self.phase = Phase::Idle;
        self.abandoned.clear();
        self.findings.clear();
    }

    fn enabled(&self, thread: usize) -> bool {
        if thread < self.workers() {
            return !self.worker_failed[thread]
                && self.worker_next[thread] < self.worker_batches[thread].len();
        }
        if thread == self.fault_thread() {
            return self.fault_pc < self.faults.len();
        }
        self.workers_finished()
            && match self.phase {
                Phase::Idle => !self.unfinished().is_empty(),
                Phase::Recover { .. } => true,
                Phase::Done => false,
            }
    }

    fn is_done(&self) -> bool {
        self.workers_finished()
            && self.fault_pc == self.faults.len()
            && self.unfinished().is_empty()
            && !matches!(self.phase, Phase::Recover { .. })
    }

    fn next_footprint(&self, thread: usize) -> Footprint {
        if thread < self.workers() {
            let b = self.worker_batches[thread][self.worker_next[thread]];
            let g = self.base.physical_gpu(self.base.batches[b].gpu);
            return self.batch_footprint(b, g);
        }
        if thread == self.fault_thread() {
            return Footprint::write(Res::Gpu(self.faults[self.fault_pc]));
        }
        match &self.phase {
            // Re-planning reads the whole checkpoint and device map.
            Phase::Idle | Phase::Done => Footprint::global(),
            Phase::Recover { batches, gpus, idx } => match batches.get(*idx) {
                Some(&b) => self.batch_footprint(b, gpus[*idx]),
                None => Footprint::global(),
            },
        }
    }

    fn step(&mut self, thread: usize) {
        if thread < self.workers() {
            let b = self.worker_batches[thread][self.worker_next[thread]];
            let g = self.base.physical_gpu(self.base.batches[b].gpu);
            if self.dead.contains(&g) {
                // The device died under this worker: its remaining
                // batches stay unfinished for the coordinator.
                self.worker_failed[thread] = true;
            } else {
                self.mark_sorted(b, &format!("worker {thread}"));
                self.worker_next[thread] += 1;
            }
            return;
        }
        if thread == self.fault_thread() {
            let g = self.faults[self.fault_pc];
            self.fault_pc += 1;
            self.dead.insert(g);
            return;
        }
        match self.phase.clone() {
            Phase::Idle | Phase::Done => self.replan(),
            Phase::Recover { batches, gpus, idx } => {
                if idx >= batches.len() {
                    self.phase = if self.unfinished().is_empty() {
                        Phase::Done
                    } else {
                        Phase::Idle
                    };
                    return;
                }
                let (b, g) = (batches[idx], gpus[idx]);
                if self.dead.contains(&g) {
                    // Recovery device died too: re-plan the rest.
                    self.phase = Phase::Idle;
                    return;
                }
                self.mark_sorted(b, "recovery");
                self.phase = if idx + 1 < batches.len() {
                    Phase::Recover {
                        batches,
                        gpus,
                        idx: idx + 1,
                    }
                } else if self.unfinished().is_empty() {
                    Phase::Done
                } else {
                    Phase::Idle
                };
            }
        }
    }

    fn check_state(&self) -> Vec<Finding> {
        self.findings.clone()
    }

    fn check_final(&self) -> Vec<Finding> {
        let mut out = self.findings.clone();
        for b in 0..self.sorted_count.len() {
            if self.sorted_count[b] == 0 {
                out.push(Finding {
                    class: FindingClass::ReplanCover,
                    code: "batch-dropped",
                    message: format!(
                        "{}: batch {b} was never sorted by any worker or recovery round",
                        self.name()
                    ),
                    ops: vec![format!("batch{b}")],
                });
            }
        }
        out
    }

    fn blocked_describe(&self) -> String {
        format!(
            "workers finished={}, {} unfinished batch(es), phase={:?}, {} fault(s) pending",
            self.workers_finished(),
            self.unfinished().len(),
            self.phase,
            self.faults.len() - self.fault_pc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};
    use hetsort_core::{Approach, HetSortConfig};
    use hetsort_vgpu::platform2;

    fn base_plan(n: usize) -> Plan {
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(1000)
            .with_pinned_elems(500);
        Plan::build(cfg, n).unwrap()
    }

    #[test]
    fn clean_recovery_covers_every_loss_interleaving() {
        let mut m = ReplanModel::new(base_plan(4500), vec![1], None);
        let rep = explore(&mut m, &ExploreConfig::default());
        assert!(rep.is_clean(), "{:?}", rep.findings);
        assert!(!rep.truncated);
        assert!(rep.traces > 1, "the loss must actually interleave");
    }

    #[test]
    fn losing_every_gpu_falls_back_to_cpu_and_stays_covered() {
        let mut m = ReplanModel::new(base_plan(2500), vec![1, 0], None);
        let rep = explore(&mut m, &ExploreConfig::default());
        assert!(rep.is_clean(), "{:?}", rep.findings);
        assert!(!rep.truncated);
    }

    #[test]
    fn dropped_checkpoint_is_caught_as_double_sort() {
        let mut m = ReplanModel::new(base_plan(4500), vec![1], Some(ReplanDefect::DropCheckpoint));
        let rep = explore(&mut m, &ExploreConfig::default());
        assert!(
            rep.findings
                .iter()
                .any(|f| f.class == FindingClass::ReplanCover
                    && (f.code == "replan-cover-extra" || f.code == "double-sorted")),
            "{:?}",
            rep.findings
        );
    }

    #[test]
    fn dropped_recovery_batch_is_caught_as_uncovered_work() {
        let mut m = ReplanModel::new(
            base_plan(4500),
            vec![1],
            Some(ReplanDefect::DropRecoveryBatch),
        );
        let rep = explore(&mut m, &ExploreConfig::default());
        assert!(
            rep.findings
                .iter()
                .any(|f| f.class == FindingClass::ReplanCover
                    && (f.code == "replan-cover-missing" || f.code == "batch-dropped")),
            "{:?}",
            rep.findings
        );
    }
}
