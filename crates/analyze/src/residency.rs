//! Peak-residency accounting as a reusable API.
//!
//! A built [`Plan`] pins two kinds of memory for its entire run:
//!
//! * **device**: every stream scheduled on a GPU keeps one
//!   `mem_factor · elem_bytes · b_s` batch buffer resident from its
//!   first `HtoD` until its last `DtoH` — with round-robin batch
//!   rotation the buffers never free between batches, so the peak per
//!   GPU is simply `streams_on_gpu × dev_bytes`;
//! * **pinned host**: every `PinnedAlloc` step's staging buffer lives
//!   until the run ends (piped approaches allocate an inbound and an
//!   outbound buffer per stream).
//!
//! The static linter uses this to flag statically-guaranteed OOM, and
//! the `hetsort-serve` admission controller sums it across concurrent
//! jobs to keep the aggregate footprint under a budget.

use std::collections::{BTreeMap, BTreeSet};

use hetsort_core::plan::{Plan, StepKind};

/// The peak memory footprint a plan keeps resident for its whole run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Residency {
    /// Peak resident bytes per *physical* GPU index
    /// ([`Plan::physical_gpu`]) — a recovery re-plan built on surviving
    /// devices accounts against the original platform's device numbers,
    /// so pool bookkeeping stays consistent across plan generations.
    pub device_bytes: BTreeMap<usize, f64>,
    /// Total pinned host staging bytes (sum over `PinnedAlloc` steps).
    pub pinned_bytes: f64,
}

impl Residency {
    /// Compute the peak residency of a built plan.
    pub fn of_plan(plan: &Plan) -> Residency {
        let cfg = &plan.config;
        let dev_bytes = cfg.device_sort.mem_factor() * cfg.elem_bytes * cfg.batch_elems as f64;
        let mut streams_on: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for b in &plan.batches {
            streams_on
                .entry(plan.physical_gpu(b.gpu))
                .or_default()
                .insert(b.stream);
        }
        let device_bytes = streams_on
            .into_iter()
            .map(|(gpu, streams)| (gpu, dev_bytes * streams.len() as f64))
            .collect();
        let pinned_bytes = plan
            .steps
            .iter()
            .map(|s| match s.kind {
                StepKind::PinnedAlloc { bytes, .. } => bytes,
                _ => 0.0,
            })
            .sum();
        Residency {
            device_bytes,
            pinned_bytes,
        }
    }

    /// Total device bytes across every GPU.
    pub fn device_total(&self) -> f64 {
        self.device_bytes.values().sum()
    }

    /// Largest single-GPU residency (0 when no batches are scheduled).
    pub fn device_peak(&self) -> f64 {
        self.device_bytes.values().fold(0.0, |a, &b| a.max(b))
    }

    /// Fold another footprint into this one (per-GPU sums).
    pub fn add(&mut self, other: &Residency) {
        for (gpu, b) in &other.device_bytes {
            *self.device_bytes.entry(*gpu).or_insert(0.0) += b;
        }
        self.pinned_bytes += other.pinned_bytes;
    }

    /// Remove a previously-added footprint (per-GPU differences,
    /// clamped at zero against f64 round-off).
    pub fn sub(&mut self, other: &Residency) {
        for (gpu, b) in &other.device_bytes {
            if let Some(cur) = self.device_bytes.get_mut(gpu) {
                *cur = (*cur - b).max(0.0);
            }
        }
        self.pinned_bytes = (self.pinned_bytes - other.pinned_bytes).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_core::{Approach, HetSortConfig, StagingMode};
    use hetsort_vgpu::{platform1, platform2};

    fn plan_staged(approach: Approach, staging: StagingMode) -> Plan {
        let cfg = HetSortConfig::paper_defaults(platform1(), approach)
            .with_batch_elems(1000)
            .with_pinned_elems(250)
            .with_staging(staging);
        Plan::build(cfg, 6000).unwrap()
    }

    fn plan(approach: Approach) -> Plan {
        plan_staged(approach, StagingMode::default())
    }

    #[test]
    fn piped_residency_counts_streams_and_double_buffers() {
        // Double-buffered staging pins two inbound halves plus the
        // outbound buffer per stream; the paper's protocol pins one of
        // each. The footprint increase is the price of the overlap and
        // must be visible to admission control.
        let p = plan_staged(Approach::PipeData, StagingMode::DoubleBuffered);
        let r = Residency::of_plan(&p);
        // Platform 1 has one GPU; every scheduled stream holds one
        // 2 × 8 B × b_s buffer.
        let streams = p.total_streams as f64;
        assert_eq!(r.device_bytes.len(), 1);
        assert_eq!(r.device_total(), streams * 2.0 * 8.0 * 1000.0);
        assert_eq!(r.device_peak(), r.device_total());
        assert_eq!(r.pinned_bytes, streams * 3.0 * 8.0 * 250.0);
        let paper = Residency::of_plan(&plan_staged(Approach::PipeData, StagingMode::Paper));
        assert_eq!(paper.pinned_bytes, streams * 2.0 * 8.0 * 250.0);
    }

    #[test]
    fn blocking_residency_is_single_buffered() {
        // Blocking + double-buffered: two inbound halves, outbound
        // elided (DtoH drains from batch storage). Paper protocol: one
        // buffer per stream, period.
        let p = plan_staged(Approach::BLineMulti, StagingMode::DoubleBuffered);
        let r = Residency::of_plan(&p);
        let streams = p.total_streams as f64;
        assert_eq!(r.pinned_bytes, streams * 2.0 * 8.0 * 250.0, "two halves");
        let paper = Residency::of_plan(&plan_staged(Approach::BLineMulti, StagingMode::Paper));
        assert_eq!(paper.pinned_bytes, streams * 8.0 * 250.0, "one buffer");
    }

    #[test]
    fn multi_gpu_residency_splits_per_device() {
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(1000)
            .with_pinned_elems(250);
        let p = Plan::build(cfg, 20_000).unwrap();
        let r = Residency::of_plan(&p);
        assert!(r.device_bytes.len() > 1, "{:?}", r.device_bytes);
        assert!(r.device_peak() < r.device_total());
    }

    #[test]
    fn add_sub_round_trips() {
        let a = Residency::of_plan(&plan(Approach::PipeData));
        let b = Residency::of_plan(&plan(Approach::BLineMulti));
        let mut agg = Residency::default();
        agg.add(&a);
        agg.add(&b);
        assert_eq!(agg.device_total(), a.device_total() + b.device_total());
        assert_eq!(agg.pinned_bytes, a.pinned_bytes + b.pinned_bytes);
        agg.sub(&a);
        assert_eq!(agg.device_total(), b.device_total());
        agg.sub(&b);
        assert_eq!(agg.device_total(), 0.0);
        assert_eq!(agg.pinned_bytes, 0.0);
    }
}
