//! The static plan linter: everything checkable from a [`Plan`] alone,
//! before a single byte moves.
//!
//! * structural invariants (delegates to [`Plan::check_invariants`]):
//!   backward deps, chunk tiling, merge-tree well-formedness — every
//!   batch produced once and consumed exactly once;
//! * the PIPEMERGE pair-count heuristic: `⌊(n_b−1)/2^n_GPU⌋` pipelined
//!   pair merges (§III-D3) when the paper strategy is selected;
//! * peak device residency per GPU against its capacity — each stream
//!   keeps one `mem_factor·elem_bytes·b_s` buffer resident for the whole
//!   run, so over-subscription is a statically guaranteed OOM;
//! * staging-chunk sizes against the pinned buffer `p_s` — a chunk
//!   larger than the buffer it is staged through cannot be copied.

use std::collections::BTreeMap;

use hetsort_core::config::{Approach, PairStrategy};
use hetsort_core::optrace::step_label;
use hetsort_core::plan::{Plan, StepKind};

use crate::finding::{Finding, FindingClass};
use crate::residency::Residency;

/// Lint a plan; returns all findings (empty = clean).
pub fn lint_plan(plan: &Plan) -> Vec<Finding> {
    let mut findings = Vec::new();
    let cfg = &plan.config;

    if let Err(e) = plan.check_invariants() {
        findings.push(Finding {
            class: FindingClass::Malformed,
            code: "invariant",
            message: format!("plan invariant violated: {e}"),
            ops: Vec::new(),
        });
    }

    if cfg.approach == Approach::PipeMerge && cfg.pair_strategy == PairStrategy::PaperHeuristic {
        let expected = cfg.pipelined_pair_merges(plan.nb());
        if plan.pairs.len() != expected {
            findings.push(Finding {
                class: FindingClass::Malformed,
                code: "pair-count",
                message: format!(
                    "PIPEMERGE schedules {} pipelined pair merge(s) but the paper \
                     heuristic gives ⌊(n_b−1)/2^n_GPU⌋ = {expected} for n_b = {} on \
                     {} GPU(s)",
                    plan.pairs.len(),
                    plan.nb(),
                    cfg.platform.n_gpus()
                ),
                ops: Vec::new(),
            });
        }
    }

    // Peak device residency per GPU ([`Residency`] — the same math the
    // serve-layer admission controller budgets with).
    let residency = Residency::of_plan(plan);
    let dev_bytes = cfg.device_sort.mem_factor() * cfg.elem_bytes * cfg.batch_elems as f64;
    for (gpu, need) in &residency.device_bytes {
        match cfg.platform.gpus.get(*gpu) {
            None => findings.push(Finding {
                class: FindingClass::Malformed,
                code: "no-such-gpu",
                message: format!(
                    "plan schedules batches on GPU {gpu} but the platform has only {}",
                    cfg.platform.n_gpus()
                ),
                ops: Vec::new(),
            }),
            Some(g) => {
                if *need > g.global_mem_bytes {
                    findings.push(Finding {
                        class: FindingClass::Oom,
                        code: "device-over-capacity",
                        message: format!(
                            "GPU {gpu} holds {:.0} resident stream buffer(s) of \
                             {dev_bytes:.3e} B each ({need:.3e} B peak) but has only \
                             {:.3e} B — statically guaranteed OOM",
                            need / dev_bytes.max(f64::MIN_POSITIVE),
                            g.global_mem_bytes
                        ),
                        ops: Vec::new(),
                    });
                }
            }
        }
    }

    // Staging chunks vs the pinned buffer, one finding per stream.
    let mut over: BTreeMap<usize, (usize, String, usize)> = BTreeMap::new();
    for (si, step) in plan.steps.iter().enumerate() {
        let len = match &step.kind {
            StepKind::StageIn { len, .. }
            | StepKind::HtoD { len, .. }
            | StepKind::DtoH { len, .. }
            | StepKind::StageOut { len, .. } => *len,
            _ => continue,
        };
        if len > cfg.pinned_elems {
            let stream = step.stream.unwrap_or(0);
            over.entry(stream)
                .or_insert_with(|| (0, step_label(plan, si), len))
                .0 += 1;
        }
    }
    for (stream, (count, label, len)) in &over {
        findings.push(Finding {
            class: FindingClass::Oom,
            code: "staging-overflow",
            message: format!(
                "stream {stream}: {count} chunk op(s) exceed the pinned staging buffer \
                 (p_s = {} elems); first is `{label}` with {len} elems",
                cfg.pinned_elems
            ),
            ops: vec![label.clone()],
        });
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_core::{Approach, HetSortConfig, Plan};
    use hetsort_vgpu::platform1;

    fn plan(approach: Approach, n: usize) -> Plan {
        let cfg = HetSortConfig::paper_defaults(platform1(), approach)
            .with_batch_elems(1000)
            .with_pinned_elems(250);
        Plan::build(cfg, n).unwrap()
    }

    #[test]
    fn built_plans_are_clean() {
        for a in [
            Approach::BLineMulti,
            Approach::PipeData,
            Approach::PipeMerge,
        ] {
            let p = plan(a, 6000);
            assert!(lint_plan(&p).is_empty(), "{a:?}: {:?}", lint_plan(&p));
        }
    }

    #[test]
    fn oversized_batch_is_flagged_oom() {
        let mut p = plan(Approach::PipeData, 6000);
        p.config.batch_elems = usize::MAX / 1024;
        let fs = lint_plan(&p);
        assert!(
            fs.iter().any(|f| f.code == "device-over-capacity"),
            "{fs:?}"
        );
    }

    #[test]
    fn undersized_staging_is_flagged_per_stream() {
        let mut p = plan(Approach::PipeData, 6000);
        p.config.pinned_elems = 1;
        let fs = lint_plan(&p);
        let staging: Vec<_> = fs.iter().filter(|f| f.code == "staging-overflow").collect();
        assert_eq!(staging.len(), p.total_streams);
        assert!(staging[0].message.contains("chunk op(s) exceed"));
    }

    #[test]
    fn broken_merge_coverage_is_malformed() {
        let mut p = plan(Approach::BLineMulti, 6000);
        for s in p.steps.iter_mut() {
            if let StepKind::MultiwayMerge { inputs } = &mut s.kind {
                inputs.pop();
            }
        }
        let fs = lint_plan(&p);
        assert!(fs.iter().any(|f| f.class == FindingClass::Malformed));
    }
}
