//! [`SchedModel`] over a structured [`OpTrace`]: explore every
//! linearization of a trace's thread programs.
//!
//! Each trace thread (stream or host) becomes a model thread whose
//! program is its records in submission order. Blocking semantics are
//! exactly the event discipline the executors rely on: a
//! `StreamWaitEvent` is enabled only once its `EventRecord` has
//! executed, so an interleaving that cannot finish (a wait whose
//! record is unreachable, i.e. a wait cycle) manifests as the
//! engine's *reachable deadlock* — the enabled set goes empty with
//! records outstanding.
//!
//! On every completed interleaving the vector-clock happens-before
//! checker ([`crate::hb`]) runs over the executed linearization, so
//! races, event-discipline violations, capacity overshoot, and the
//! buffer-lifetime lints are checked in *every* reachable order, not
//! just the submission order a recorded trace happens to have.
//!
//! `DeviceSync` is modeled as an always-enabled host action whose
//! footprint conflicts with everything. Lowered plan traces only use
//! it where every stream op is already event-ordered before it, so
//! its linearization position is fixed; hand-built traces that lean
//! on a mid-trace sync for ordering will (correctly) see the orders
//! where other threads' work slides past the sync.

use std::collections::BTreeSet;

use hetsort_core::optrace::lower_plan;
use hetsort_core::plan::Plan;
use hetsort_sim::{OpTrace, TraceKind};

use crate::explore::{explore, ExploreConfig, ExploreReport, Footprint, Res, SchedModel};
use crate::finding::Finding;
use crate::hb;

/// Exhaustive-interleaving model of one [`OpTrace`].
pub struct TraceModel {
    trace: OpTrace,
    caps: Option<Vec<f64>>,
    label: String,
    /// Record indices per thread, in submission order.
    queues: Vec<Vec<usize>>,
    /// Next queue position per thread.
    pc: Vec<usize>,
    /// Events whose `EventRecord` has executed.
    recorded: BTreeSet<usize>,
    /// Record indices in execution order.
    executed: Vec<usize>,
}

impl TraceModel {
    /// Model `trace`, optionally checking device capacities (bytes per
    /// GPU, as for [`hb::check_trace`]).
    pub fn new(trace: OpTrace, caps: Option<Vec<f64>>, label: impl Into<String>) -> TraceModel {
        let mut queues = vec![Vec::new(); trace.n_threads];
        for (i, rec) in trace.records.iter().enumerate() {
            if rec.thread < queues.len() {
                queues[rec.thread].push(i);
            }
        }
        let pc = vec![0; queues.len()];
        TraceModel {
            caps,
            label: label.into(),
            pc,
            queues,
            recorded: BTreeSet::new(),
            executed: Vec::new(),
            trace,
        }
    }

    /// The record a thread would execute next.
    fn pending(&self, thread: usize) -> Option<usize> {
        self.queues[thread].get(self.pc[thread]).copied()
    }

    /// The executed prefix as a trace in execution order.
    fn linearized(&self) -> OpTrace {
        let mut lin = OpTrace::new(self.trace.n_threads);
        for &i in &self.executed {
            lin.records.push(self.trace.records[i].clone());
        }
        lin
    }
}

impl SchedModel for TraceModel {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn n_threads(&self) -> usize {
        self.queues.len()
    }

    fn reset(&mut self) {
        self.pc = vec![0; self.queues.len()];
        self.recorded.clear();
        self.executed.clear();
    }

    fn enabled(&self, thread: usize) -> bool {
        match self.pending(thread) {
            None => false,
            Some(i) => match &self.trace.records[i].kind {
                TraceKind::StreamWaitEvent { event } => self.recorded.contains(event),
                _ => true,
            },
        }
    }

    fn is_done(&self) -> bool {
        self.pc.iter().zip(&self.queues).all(|(&p, q)| p == q.len())
    }

    fn next_footprint(&self, thread: usize) -> Footprint {
        let Some(i) = self.pending(thread) else {
            return Footprint::default();
        };
        match &self.trace.records[i].kind {
            TraceKind::Op { accesses } => Footprint(
                accesses
                    .iter()
                    .map(|a| crate::explore::ResAccess {
                        res: Res::Buf(a.buf),
                        write: a.write,
                    })
                    .collect(),
            ),
            TraceKind::Alloc { buf, .. } | TraceKind::Free { buf } => {
                Footprint::write(Res::Buf(*buf))
            }
            TraceKind::EventRecord { event } => Footprint::write(Res::Event(*event)),
            TraceKind::StreamWaitEvent { event } => Footprint::read(Res::Event(*event)),
            TraceKind::DeviceSync => Footprint::global(),
        }
    }

    fn step(&mut self, thread: usize) {
        if let Some(i) = self.pending(thread) {
            if let TraceKind::EventRecord { event } = &self.trace.records[i].kind {
                self.recorded.insert(*event);
            }
            self.executed.push(i);
            self.pc[thread] += 1;
        }
    }

    fn check_final(&self) -> Vec<Finding> {
        hb::check_trace(&self.linearized(), self.caps.as_deref())
    }

    fn blocked_describe(&self) -> String {
        let stuck: Vec<String> = (0..self.n_threads())
            .filter_map(|t| {
                let i = self.pending(t)?;
                match &self.trace.records[i].kind {
                    TraceKind::StreamWaitEvent { event } if !self.recorded.contains(event) => {
                        Some(format!(
                            "thread {t} blocked on ev{event} at '{}'",
                            self.trace.records[i].label
                        ))
                    }
                    _ => None,
                }
            })
            .collect();
        if stuck.is_empty() {
            "no thread reports a wait (model-internal block)".to_string()
        } else {
            stuck.join("; ")
        }
    }
}

/// Explore every interleaving of a plan's lowered static trace,
/// checking happens-before (races, event discipline, capacity,
/// buffer lifetimes) on each.
pub fn explore_plan(plan: &Plan, cfg: &ExploreConfig) -> ExploreReport {
    explore_plan_trace(plan, lower_plan(plan), cfg)
}

/// Explore a specific trace under a plan's capacity model (the
/// lowered trace, a mutated one, or a recorded execution).
pub fn explore_plan_trace(plan: &Plan, trace: OpTrace, cfg: &ExploreConfig) -> ExploreReport {
    let caps: Vec<f64> = plan
        .config
        .platform
        .gpus
        .iter()
        .map(|g| g.global_mem_bytes)
        .collect();
    let label = format!(
        "{} n={} gpus={} streams={}",
        plan.config.approach.name(),
        plan.n,
        plan.config.platform.n_gpus(),
        plan.total_streams,
    );
    let mut model = TraceModel::new(trace, Some(caps), label);
    explore(&mut model, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_core::{Approach, HetSortConfig};
    use hetsort_vgpu::platform1;

    fn small_plan(approach: Approach, n: usize) -> Plan {
        let cfg = HetSortConfig::paper_defaults(platform1(), approach)
            .with_batch_elems(1000)
            .with_pinned_elems(500);
        Plan::build(cfg, n).unwrap()
    }

    #[test]
    fn single_batch_plan_explores_clean() {
        let rep = explore_plan(
            &small_plan(Approach::BLine, 1000),
            &ExploreConfig::default(),
        );
        assert!(rep.is_clean(), "{:?}", rep.findings);
        assert!(!rep.truncated);
        assert!(rep.traces >= 1);
    }

    #[test]
    fn tiny_budget_reports_truncation() {
        let rep = explore_plan(
            &small_plan(Approach::PipeData, 2000),
            &ExploreConfig::with_max_ops(5),
        );
        assert!(rep.truncated);
        assert!(rep.summary().contains("TRUNCATED"));
    }
}
