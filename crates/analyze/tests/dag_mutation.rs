//! DAG mutation kill suite: every seeded [`DagMutant`] must be killed
//! by exactly the check its contract names — a structural validator
//! rule (`validator:<rule>`), an analyzer finding class over the
//! dag-lowered trace (`analyzer:<class>`), or a differential
//! comparison (`differential:<check>`). A mutant that no check
//! catches, or that a *different* check catches than the one named,
//! fails the build: the battery has a hole or the contract is stale.

use std::sync::Arc;

use hetsort_analyze::analyze_plan_with_trace;
use hetsort_core::dag::mutate::DagMutant;
use hetsort_core::optrace::lower_dag;
use hetsort_core::{
    execute_dag, execute_dag_opts, Approach, DagExecOptions, HetSortConfig, Plan, PlanDag,
};
use hetsort_vgpu::{platform1, platform2, FaultInjector};

/// The base dag every structural/trace mutant is applied to: PIPEMERGE
/// on PLATFORM1 with several batches, pair merges, and two streams, so
/// every mutant has a site.
fn base_dag() -> PlanDag {
    let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
        .with_batch_elems(1_000)
        .with_pinned_elems(300);
    PlanDag::from_plan(Plan::build(cfg, 7_000).unwrap())
}

fn lcg_data(n: usize, seed: u64) -> Vec<f64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Kill a structural mutant: [`PlanDag::validate`] must reject the
/// mutated dag *with the named rule* in its reason.
fn kill_structural(m: DagMutant, rule: &str) {
    let mut dag = base_dag();
    assert!(dag.validate().is_ok(), "base dag must be valid");
    assert!(m.apply(&mut dag), "{}: no site in the base dag", m.name());
    let err = dag
        .validate()
        .expect_err(&format!("{}: mutant survived the validator", m.name()));
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("{rule}:")),
        "{}: killed by the wrong rule — expected '{rule}:', got: {msg}",
        m.name()
    );
}

/// Kill a trace-level mutant: the base trace analyzes clean, the
/// mutated trace yields a finding of the named class.
fn kill_trace(m: DagMutant, class: &str) {
    let dag = base_dag();
    let base = lower_dag(&dag);
    assert!(
        analyze_plan_with_trace(&dag.plan, &base).is_clean(),
        "{}: base trace must be clean for the kill to be attributable",
        m.name()
    );
    let mut trace = base.clone();
    assert!(
        m.apply_trace(&mut trace),
        "{}: no site in the lowered trace",
        m.name()
    );
    let report = analyze_plan_with_trace(&dag.plan, &trace);
    assert!(
        report.findings.iter().any(|f| f.class.name() == class),
        "{}: expected a '{class}' finding, got: {report}",
        m.name()
    );
}

/// Kill the engine defect differentially: under a device-loss fault
/// schedule, skipping the per-batch checkpoint recomputes every batch
/// instead of only the unfinished ones — the output stays bitwise
/// correct, so only the [`RecoveryStats`] comparison can see it.
///
/// [`RecoveryStats`]: hetsort_core::RecoveryStats
fn kill_skip_checkpoint() {
    let n = 40_000;
    let data = lcg_data(n, 0x5C1);
    let mk = || {
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(5_000)
            .with_pinned_elems(1_000)
            // The loss lands after GPU 1 has fully emitted two batches,
            // so the honest checkpoint recomputes strictly fewer than
            // the mutant's "everything" re-plan.
            .with_faults(Arc::new(FaultInjector::new().lose_device(1, 25)));
        PlanDag::from_plan(Plan::build(cfg, n).unwrap())
    };
    let healthy = execute_dag(&mk(), &data).unwrap();
    let mutated = execute_dag_opts(
        &mk(),
        &data,
        DagExecOptions {
            skip_checkpoint: true,
            ..DagExecOptions::default()
        },
    )
    .unwrap();

    // The defect is invisible to output verification...
    assert!(healthy.verified && mutated.verified);
    assert_eq!(
        healthy
            .sorted
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        mutated
            .sorted
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        "skip-checkpoint must not corrupt data (that would be a different bug)"
    );
    // ...and killed by the recovery-stats differential.
    assert_ne!(
        healthy.recovery, mutated.recovery,
        "skip-checkpoint survived the recovery-stats differential"
    );
    assert!(
        mutated.recovery.batches_recomputed > healthy.recovery.batches_recomputed,
        "skipping the checkpoint must recompute strictly more batches \
         (healthy {}, mutated {})",
        healthy.recovery.batches_recomputed,
        mutated.recovery.batches_recomputed
    );
}

#[test]
fn every_mutant_is_killed_by_its_named_check() {
    let mut kills = 0usize;
    for m in DagMutant::ALL {
        let contract = m.expected_kill();
        if let Some(rule) = contract.strip_prefix("validator:") {
            kill_structural(m, rule);
        } else if let Some(class) = contract.strip_prefix("analyzer:") {
            kill_trace(m, class);
        } else if contract == "differential:recovery-stats" {
            kill_skip_checkpoint();
        } else {
            panic!("{}: unknown kill contract '{contract}'", m.name());
        }
        kills += 1;
    }
    assert!(
        kills >= 8,
        "acceptance floor: ≥8 killed mutants, got {kills}"
    );
}

#[test]
fn structural_mutants_leave_no_other_rule_masked() {
    // Applying a structural mutant and then *repairing* nothing else:
    // the dag must not also trip unrelated rules, i.e. each mutant is a
    // minimal defect and the named rule is genuinely what catches it.
    for m in DagMutant::ALL {
        let Some(rule) = m.expected_kill().strip_prefix("validator:") else {
            continue;
        };
        let mut dag = base_dag();
        assert!(m.apply(&mut dag));
        let msg = dag.validate().unwrap_err().to_string();
        // The first (and only) reported rule is the named one.
        assert!(
            msg.contains(&format!("{rule}:")),
            "{}: reason '{msg}' does not name '{rule}:'",
            m.name()
        );
    }
}
