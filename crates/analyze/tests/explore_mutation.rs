//! Mutation kill-suite for the analyze half of the schedule-space
//! explorer: every [`ExploreMutant`] without an admission defect
//! (those live in `hetsort-serve`'s suite) must be caught by
//! exploration with its declared [`FindingClass`]. The suite fails if
//! the explorer misses any.

use std::collections::BTreeSet;

use hetsort_analyze::explore::{explore, ExploreConfig};
use hetsort_analyze::{explore_plan_trace, ExploreMutant, FindingClass, ReplanModel};
use hetsort_core::optrace::lower_plan;
use hetsort_core::plan::Plan;
use hetsort_core::recover::survivor_plan;
use hetsort_core::{Approach, HetSortConfig};
use hetsort_sim::TraceKind;
use hetsort_vgpu::platform2;

fn pinned_plan() -> Plan {
    let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
        .with_batch_elems(1000)
        .with_pinned_elems(500);
    Plan::build(cfg, 4500).unwrap()
}

/// Run one analyze-side mutant through the explorer and return the
/// resulting findings' classes.
fn explore_mutant(mutant: ExploreMutant) -> Vec<FindingClass> {
    if let Some(defect) = mutant.replan_defect() {
        let mut model = ReplanModel::new(pinned_plan(), vec![1], Some(defect));
        let report = explore(&mut model, &ExploreConfig::default());
        assert!(
            !report.truncated,
            "{}: must explore exhaustively",
            mutant.name()
        );
        return report.findings.iter().map(|f| f.class).collect();
    }
    assert_eq!(
        mutant,
        ExploreMutant::DropRecoveryWait,
        "unknown analyze-side mutant"
    );
    // Model the recovery path forgetting a cross-stream wait: build
    // the survivor plan the coordinator would re-plan onto after
    // losing GPU 0, lower it, and drop its last stream_wait_event.
    let base = pinned_plan();
    let lost: BTreeSet<usize> = [0].into_iter().collect();
    let survivor = survivor_plan(&base, &lost)
        .unwrap()
        .expect("one GPU survives");
    let mut trace = lower_plan(&survivor);
    let wait = trace
        .records
        .iter()
        .rposition(|r| matches!(r.kind, TraceKind::StreamWaitEvent { .. }))
        .expect("survivor plan has cross-stream waits");
    trace.records.remove(wait);
    let report = explore_plan_trace(&survivor, trace, &ExploreConfig::default());
    assert!(!report.truncated, "{}", report.summary());
    report.findings.iter().map(|f| f.class).collect()
}

#[test]
fn every_analyze_side_explorer_mutant_is_killed_with_its_declared_class() {
    let analyze_mutants: Vec<ExploreMutant> = ExploreMutant::ALL
        .iter()
        .copied()
        .filter(|m| m.admission_defect().is_none())
        .collect();
    assert_eq!(
        analyze_mutants.len(),
        3,
        "analyze-side kill-suite must cover every non-admission mutant"
    );
    for mutant in analyze_mutants {
        let classes = explore_mutant(mutant);
        let expected = mutant.expected_class();
        assert!(
            classes.contains(&expected),
            "{}: explorer missed the seeded defect — expected {}, got {:?}",
            mutant.name(),
            expected.name(),
            classes
        );
    }
}

#[test]
fn clean_recovery_baseline_stays_clean() {
    // The kill assertions above only mean something if the same
    // pinned plan explores clean without the seeded defects.
    let mut model = ReplanModel::new(pinned_plan(), vec![1], None);
    let report = explore(&mut model, &ExploreConfig::default());
    assert!(report.is_clean(), "{}", report.summary());

    let lost: BTreeSet<usize> = [0].into_iter().collect();
    let survivor = survivor_plan(&pinned_plan(), &lost)
        .unwrap()
        .expect("one GPU survives");
    let trace = lower_plan(&survivor);
    let report = explore_plan_trace(&survivor, trace, &ExploreConfig::default());
    assert!(report.is_clean(), "{}", report.summary());
}
