//! Exhaustive schedule-space sweep: every shipped approach, on both
//! paper platforms, with an uneven final batch, must explore **every**
//! reachable interleaving of its lowered trace with zero findings and
//! no budget truncation. The recovery coordinator gets the same
//! treatment over single- and double-loss fault schedules.
//!
//! Also pinned here: the DPOR-reduction guarantee (persistent sets +
//! sleep sets must explore strictly fewer traces than naive
//! enumeration on a real plan) and bound-truncation reporting.

use hetsort_analyze::explore::{explore, ExploreConfig};
use hetsort_analyze::{explore_plan, explore_plan_trace, Mutant, ReplanModel, TraceModel};
use hetsort_core::optrace::lower_plan;
use hetsort_core::plan::Plan;
use hetsort_core::{Approach, HetSortConfig};
use hetsort_vgpu::{platform1, platform2};

/// The five shipped schedule shapes (PIPEMERGE ships with and without
/// parallel-memcpy splitting).
fn shipped_configs(platform: hetsort_vgpu::PlatformSpec) -> Vec<(String, HetSortConfig)> {
    let base = |a: Approach| {
        HetSortConfig::paper_defaults(platform.clone(), a)
            .with_batch_elems(1000)
            .with_pinned_elems(500)
    };
    vec![
        ("bline".into(), base(Approach::BLine)),
        ("bline-multi".into(), base(Approach::BLineMulti)),
        ("pipedata".into(), base(Approach::PipeData)),
        ("pipemerge".into(), base(Approach::PipeMerge)),
        (
            "pipemerge+parmemcpy".into(),
            base(Approach::PipeMerge).with_par_memcpy(),
        ),
    ]
}

#[test]
fn every_approach_explores_clean_on_both_platforms() {
    // n is deliberately NOT a multiple of batch_elems: the last batch
    // is a 500-element runt, exercising the uneven tail the paper's
    // batch math must handle.
    for platform in [platform1(), platform2()] {
        for (name, cfg) in shipped_configs(platform) {
            // BLINE is defined on a single batch; everyone else gets a
            // 3-batch split with a runt tail.
            let n = if cfg.approach == Approach::BLine {
                700
            } else {
                2500
            };
            let plan = Plan::build(cfg, n).unwrap();
            let report = explore_plan(&plan, &ExploreConfig::default());
            assert!(
                report.is_clean(),
                "{name}: schedule-space findings on a shipped plan:\n{}",
                report.summary()
            );
            assert!(!report.truncated, "{name}: {}", report.summary());
            assert!(report.traces >= 1, "{name}");
        }
    }
}

#[test]
fn recovery_coordinator_explores_clean_under_loss_schedules() {
    let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
        .with_batch_elems(1000)
        .with_pinned_elems(500);
    let plan = Plan::build(cfg, 4500).unwrap();
    // Single loss of either GPU, and the lose-everything schedule
    // (ends in the CPU std-sort fallback).
    for faults in [vec![0], vec![1], vec![1, 0]] {
        let mut model = ReplanModel::new(plan.clone(), faults.clone(), None);
        let report = explore(&mut model, &ExploreConfig::default());
        assert!(report.is_clean(), "faults {faults:?}: {}", report.summary());
        assert!(!report.truncated, "faults {faults:?}");
        assert!(
            report.traces > 1,
            "faults {faults:?} must race the workers: {}",
            report.summary()
        );
    }
}

#[test]
fn dpor_explores_fewer_traces_than_naive_enumeration() {
    // Pinned config: PIPEMERGE on PLATFORM2 losing GPU 1 mid-run —
    // small enough that naive enumeration terminates, so both counts
    // are exact and exhaustive. DPOR's persistent sets must prune the
    // commuting worker interleavings naive visits one by one.
    let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
        .with_batch_elems(1000)
        .with_pinned_elems(500);
    let plan = Plan::build(cfg, 2500).unwrap();

    let mut m = ReplanModel::new(plan.clone(), vec![1], None);
    let dpor = explore(&mut m, &ExploreConfig::default());
    let mut m = ReplanModel::new(plan, vec![1], None);
    let naive = explore(&mut m, &ExploreConfig::default().naive());
    assert!(dpor.is_clean(), "{}", dpor.summary());
    assert!(naive.is_clean(), "{}", naive.summary());
    assert!(!dpor.truncated && !naive.truncated);
    assert!(
        dpor.traces < naive.traces,
        "DPOR must prune: {} DPOR traces vs {} naive",
        dpor.traces,
        naive.traces
    );
}

#[test]
fn dpor_finishes_trace_spaces_naive_cannot() {
    // On a real lowered trace the gap is qualitative, not just a
    // ratio: DPOR completes the whole schedule space of the smallest
    // multi-stream plan while naive enumeration cannot finish within
    // a 200k-op budget — and has already visited more traces than
    // DPOR needed in total.
    let cfg = HetSortConfig::paper_defaults(platform2(), Approach::BLineMulti)
        .with_batch_elems(1000)
        .with_pinned_elems(500);
    let plan = Plan::build(cfg, 2000).unwrap();

    let dpor = explore_plan(&plan, &ExploreConfig::default());
    assert!(dpor.is_clean() && !dpor.truncated, "{}", dpor.summary());

    let naive = explore_plan(&plan, &ExploreConfig::with_max_ops(200_000).naive());
    assert!(
        naive.truncated,
        "naive should not finish: {}",
        naive.summary()
    );
    assert!(
        naive.traces > dpor.traces,
        "naive visited {} traces before truncation, DPOR needed {} total",
        naive.traces,
        dpor.traces
    );
}

#[test]
fn op_budget_truncation_is_reported_not_silent() {
    let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeData)
        .with_batch_elems(1000)
        .with_pinned_elems(500);
    let plan = Plan::build(cfg, 2500).unwrap();
    let report = explore_plan(&plan, &ExploreConfig::with_max_ops(10));
    assert!(report.truncated);
    assert!(
        report.summary().contains("TRUNCATED"),
        "{}",
        report.summary()
    );
}

#[test]
fn seeded_wait_cycle_is_a_reachable_deadlock_in_every_interleaving_engine() {
    // The HB checker flags the cycle on the static linearization; the
    // explorer must *also* find it as an empty-enabled-set state —
    // the two detectors agree on this defect class.
    let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
        .with_batch_elems(1000)
        .with_pinned_elems(500);
    let mut plan = Plan::build(cfg, 2500).unwrap();
    let mut trace = lower_plan(&plan);
    assert!(Mutant::WaitCycle.apply(&mut plan, &mut trace));
    let report = explore_plan_trace(&plan, trace, &ExploreConfig::default());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.class == hetsort_analyze::FindingClass::Deadlock),
        "{}",
        report.summary()
    );
}

#[test]
fn explored_interleavings_rerun_the_hb_checker_per_trace() {
    // Drop the last wait: the race is order-dependent, so only some
    // linearizations exhibit the unordered conflicting pair. The
    // explorer must rerun HB on every trace and still catch it.
    let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeData)
        .with_batch_elems(1000)
        .with_pinned_elems(500);
    let mut plan = Plan::build(cfg, 2500).unwrap();
    let mut trace = lower_plan(&plan);
    assert!(Mutant::DropWait.apply(&mut plan, &mut trace));
    let report = explore_plan_trace(&plan, trace, &ExploreConfig::default());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.class == hetsort_analyze::FindingClass::MissingSync),
        "{}",
        report.summary()
    );
}

#[test]
fn trace_model_thread_count_matches_plan_streams() {
    let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
        .with_batch_elems(1000)
        .with_pinned_elems(500);
    let plan = Plan::build(cfg, 2500).unwrap();
    let trace = lower_plan(&plan);
    let model = TraceModel::new(trace, None, "pinned");
    use hetsort_analyze::SchedModel;
    // Streams plus the host thread.
    assert_eq!(model.n_threads(), plan.total_streams + 1);
}
