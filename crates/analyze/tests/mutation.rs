//! The analyzer's acceptance contract, both directions:
//!
//! * **zero findings** on every shipped configuration (all approaches ×
//!   pair strategies × platforms, and the executors' recorded traces);
//! * **100% mutant kill rate**: every seeded defect in [`Mutant::ALL`]
//!   is reported, with the finding class matching the defect class and
//!   the message naming the offending ops.

use hetsort_analyze::{analyze_plan, analyze_plan_with_trace, analyze_trace, Mutant};
use hetsort_core::optrace::lower_plan;
use hetsort_core::plan::Plan;
use hetsort_core::{exec_real, exec_real_mt, Approach, HetSortConfig, PairStrategy};
use hetsort_vgpu::{platform1, platform2, PlatformSpec, TransferDir, VirtualCuda};

fn scaled(platform: PlatformSpec, approach: Approach) -> HetSortConfig {
    // Laptop-scale sizes with the paper's structure: multiple batches,
    // multiple chunks per batch, two streams per GPU.
    HetSortConfig::paper_defaults(platform, approach)
        .with_batch_elems(1000)
        .with_pinned_elems(250)
}

fn shipped_plans() -> Vec<Plan> {
    let mut plans = Vec::new();
    for platform in [platform1(), platform2()] {
        for n in [1000, 5000, 6000, 9500] {
            for approach in [
                Approach::BLineMulti,
                Approach::PipeData,
                Approach::PipeMerge,
            ] {
                let cfg = scaled(platform.clone(), approach);
                plans.push(Plan::build(cfg, n).expect("shipped config must plan"));
            }
        }
        // BLine is single-batch by definition.
        plans.push(Plan::build(scaled(platform.clone(), Approach::BLine), 1000).expect("bline"));
        // The rejected pair strategies still have to be *correct*.
        for strategy in [PairStrategy::Online, PairStrategy::MergeTree] {
            let cfg = scaled(platform.clone(), Approach::PipeMerge).with_pair_strategy(strategy);
            plans.push(Plan::build(cfg, 6000).expect("strategy must plan"));
        }
    }
    plans
}

#[test]
fn every_shipped_config_is_clean() {
    for plan in shipped_plans() {
        let report = analyze_plan(&plan);
        assert!(
            report.is_clean(),
            "{} {:?} n={} flagged:\n{report}",
            plan.config.approach.name(),
            plan.config.pair_strategy,
            plan.n
        );
    }
}

#[test]
fn every_mutant_is_killed_with_the_right_class() {
    assert!(Mutant::ALL.len() >= 8, "acceptance floor: 8 mutants");
    let base = Plan::build(scaled(platform1(), Approach::PipeMerge), 6000).unwrap();
    for mutant in Mutant::ALL {
        let mut plan = base.clone();
        let mut trace = lower_plan(&plan);
        assert!(
            mutant.apply(&mut plan, &mut trace),
            "{} must apply to the base plan",
            mutant.name()
        );
        let report = analyze_plan_with_trace(&plan, &trace);
        assert!(
            report.has_class(mutant.expected_class()),
            "{} expected a {:?} finding, got:\n{report}",
            mutant.name(),
            mutant.expected_class()
        );
    }
}

#[test]
fn race_findings_name_both_ops_and_the_missing_edge() {
    let mut plan = Plan::build(scaled(platform1(), Approach::PipeMerge), 6000).unwrap();
    let mut trace = lower_plan(&plan);
    assert!(Mutant::DropWait.apply(&mut plan, &mut trace));
    let report = analyze_plan_with_trace(&plan, &trace);
    let race = report
        .findings
        .iter()
        .find(|f| f.code == "race")
        .expect("dropped wait must produce a race");
    assert_eq!(race.ops.len(), 2, "{race}");
    assert!(race.ops.iter().all(|op| op.contains("step")), "{race}");
    assert!(race.message.contains("record an event"), "{race}");
    assert!(race.message.contains("stream-wait"), "{race}");
}

#[test]
fn executor_recorded_traces_are_clean() {
    let data: Vec<u64> = (0..6000u64)
        .rev()
        .map(|x| x.wrapping_mul(2654435761))
        .collect();
    for approach in [
        Approach::BLineMulti,
        Approach::PipeData,
        Approach::PipeMerge,
    ] {
        let cfg = scaled(platform1(), approach).with_trace_recording();
        let plan = Plan::build(cfg, data.len()).unwrap();
        for (name, outcome) in [
            (
                "exec_real",
                exec_real::sort_real_plan(&plan, &data).unwrap(),
            ),
            (
                "exec_real_mt",
                exec_real_mt::sort_real_parallel(&plan, &data).unwrap(),
            ),
        ] {
            assert!(outcome.verified);
            let trace = outcome.trace.expect("record_trace was on");
            let report = analyze_plan_with_trace(&plan, &trace);
            assert!(
                report.is_clean(),
                "{name} {} executed trace flagged:\n{report}",
                plan.config.approach.name()
            );
        }
    }
}

#[test]
fn virtual_cuda_trace_with_events_is_clean() {
    let mut cu = VirtualCuda::new(platform1());
    let dev = cu.malloc(2e9).unwrap();
    let pin_in = cu.malloc_host(8e8);
    let pin_out = cu.malloc_host(8e8);
    let s1 = cu.stream_create();
    let s2 = cu.stream_create();
    cu.memcpy_async(TransferDir::HtoD, 8e8, dev, pin_in, s1)
        .unwrap();
    cu.thrust_sort(1e8, dev, s1);
    // s2 drains the sorted buffer only after s1's event.
    let done = cu.event_record(s1);
    cu.stream_wait_event(s2, done);
    cu.memcpy_async(TransferDir::DtoH, 8e8, dev, pin_out, s2)
        .unwrap();
    cu.device_synchronize();
    let run = cu.run().unwrap();
    let report = analyze_trace(run.trace());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn virtual_cuda_trace_without_events_races() {
    let mut cu = VirtualCuda::new(platform1());
    let dev = cu.malloc(2e9).unwrap();
    let pin_in = cu.malloc_host(8e8);
    let pin_out = cu.malloc_host(8e8);
    let s1 = cu.stream_create();
    let s2 = cu.stream_create();
    cu.memcpy_async(TransferDir::HtoD, 8e8, dev, pin_in, s1)
        .unwrap();
    cu.thrust_sort(1e8, dev, s1);
    // Missing stream_wait_event: s2 reads while s1 may still write.
    cu.memcpy_async(TransferDir::DtoH, 8e8, dev, pin_out, s2)
        .unwrap();
    cu.device_synchronize();
    let run = cu.run().unwrap();
    let report = analyze_trace(run.trace());
    assert!(!report.is_clean());
    let race = report.findings.iter().find(|f| f.code == "race").unwrap();
    assert!(race.message.contains("happens-before"), "{race}");
}
