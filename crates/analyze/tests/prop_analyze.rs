//! Property tests: the analyzer has zero false positives on anything
//! `Plan::build` produces, and rejects every applicable mutant of any
//! such plan — not just the hand-picked base in the mutation suite.

use hetsort_analyze::{analyze_plan, analyze_plan_with_trace, Mutant};
use hetsort_core::optrace::lower_plan;
use hetsort_core::plan::Plan;
use hetsort_core::{Approach, HetSortConfig, PairStrategy};
use hetsort_prng::{prop_assert, run_cases, Rng};
use hetsort_vgpu::platform1;
use hetsort_vgpu::platform2;

fn arb_plan(rng: &mut Rng) -> Plan {
    let approach = *rng.pick(&[
        Approach::BLineMulti,
        Approach::PipeData,
        Approach::PipeMerge,
    ]);
    let strategy = *rng.pick(&[
        PairStrategy::PaperHeuristic,
        PairStrategy::Online,
        PairStrategy::MergeTree,
    ]);
    let plat = if rng.bool() { platform2() } else { platform1() };
    let n = rng.usize_in(1, 8_000);
    let bs = ((n as f64 * rng.f64_in(0.05, 1.0)) as usize).max(1);
    let ps = ((bs as f64 * rng.f64_in(0.05, 1.0)) as usize).max(1);
    let cfg = HetSortConfig::paper_defaults(plat, approach)
        .with_batch_elems(bs)
        .with_pinned_elems(ps)
        .with_streams(rng.usize_in(1, 3))
        .with_pair_strategy(strategy);
    Plan::build(cfg, n).expect("valid geometry must plan")
}

#[test]
fn analyzer_accepts_every_built_plan() {
    run_cases("analyzer_accepts_every_built_plan", 60, |rng| {
        let plan = arb_plan(rng);
        let report = analyze_plan(&plan);
        prop_assert!(
            report.is_clean(),
            "false positive on {} {:?} n={} b_s={} p_s={} streams={}:\n{report}",
            plan.config.approach.name(),
            plan.config.pair_strategy,
            plan.n,
            plan.config.batch_elems,
            plan.config.pinned_elems,
            plan.config.streams_per_gpu
        );
        Ok(())
    });
}

#[test]
fn analyzer_rejects_every_applicable_mutant() {
    run_cases("analyzer_rejects_every_applicable_mutant", 30, |rng| {
        let base = arb_plan(rng);
        for mutant in Mutant::ALL {
            let mut plan = base.clone();
            let mut trace = lower_plan(&plan);
            if !mutant.apply(&mut plan, &mut trace) {
                continue; // shape doesn't support this defect
            }
            let report = analyze_plan_with_trace(&plan, &trace);
            prop_assert!(
                report.has_class(mutant.expected_class()),
                "{} survived on {} {:?} n={} b_s={} p_s={} streams={}:\n{report}",
                mutant.name(),
                plan.config.approach.name(),
                plan.config.pair_strategy,
                plan.n,
                plan.config.batch_elems,
                plan.config.pinned_elems,
                plan.config.streams_per_gpu
            );
        }
        Ok(())
    });
}
