//! Property tests for the DAG engine contract:
//!
//! 1. Every dag lowered from a buildable plan validates, executes to a
//!    verified bitwise-stable output under *any* worker count and
//!    either tie-break order — scheduling freedom can never change the
//!    data.
//! 2. Deleting any single dependency edge is never silent: either the
//!    structural validator rejects the dag, or the happens-before
//!    checker reports the race in the trace lowered from the mutated
//!    edges. (Lowering deduplicates dependency lists, so every
//!    remaining edge is load-bearing — this property is the proof.)

use hetsort_analyze::analyze_dag;
use hetsort_core::{
    execute_dag, execute_dag_opts, execute_dag_pooled_opts, Approach, DagExecOptions,
    HetSortConfig, PairStrategy, Plan, PlanDag, TieBreak,
};
use hetsort_prng::{prop_assert, run_cases, Rng};
use hetsort_vgpu::{platform1, platform2};

fn arb_dag(rng: &mut Rng) -> PlanDag {
    let approach = *rng.pick(&[
        Approach::BLineMulti,
        Approach::PipeData,
        Approach::PipeMerge,
    ]);
    let strategy = *rng.pick(&[
        PairStrategy::PaperHeuristic,
        PairStrategy::Online,
        PairStrategy::MergeTree,
    ]);
    let plat = if rng.bool() { platform2() } else { platform1() };
    let n = rng.usize_in(1, 6_000);
    let bs = ((n as f64 * rng.f64_in(0.05, 1.0)) as usize).max(1);
    let ps = ((bs as f64 * rng.f64_in(0.05, 1.0)) as usize).max(1);
    let mut cfg = HetSortConfig::paper_defaults(plat, approach)
        .with_batch_elems(bs)
        .with_pinned_elems(ps)
        .with_streams(rng.usize_in(1, 4))
        .with_pair_strategy(strategy);
    if rng.bool() {
        cfg = cfg.with_par_memcpy();
    }
    let plan = Plan::build(cfg, n).expect("valid geometry must plan");
    PlanDag::from_plan(plan)
}

fn lcg_data(n: usize, seed: u64) -> Vec<f64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn any_worker_count_and_tiebreak_agree() {
    run_cases("any_worker_count_and_tiebreak_agree", 25, |rng| {
        let dag = arb_dag(rng);
        prop_assert!(
            dag.validate().is_ok(),
            "lowered dag of {} n={} fails validation: {:?}",
            dag.plan.config.approach.name(),
            dag.plan.n,
            dag.validate()
        );
        let data = lcg_data(dag.plan.n, rng.u64());

        let base = execute_dag(&dag, &data).map_err(|e| format!("seq MinId: {e}"))?;
        prop_assert!(base.verified, "sequential MinId output not verified");
        let want = bits(&base.sorted);

        let max_id = execute_dag_opts(
            &dag,
            &data,
            DagExecOptions {
                tie: TieBreak::MaxId,
                ..DagExecOptions::default()
            },
        )
        .map_err(|e| format!("seq MaxId: {e}"))?;
        prop_assert!(
            bits(&max_id.sorted) == want,
            "MaxId tie-break changed the output"
        );

        for workers in [1usize, 2, 3, 8] {
            for tie in [TieBreak::MinId, TieBreak::MaxId] {
                let out = execute_dag_pooled_opts(
                    &dag,
                    &data,
                    workers,
                    DagExecOptions {
                        tie,
                        ..DagExecOptions::default()
                    },
                )
                .map_err(|e| format!("pooled workers={workers} {tie:?}: {e}"))?;
                prop_assert!(
                    out.verified && bits(&out.sorted) == want,
                    "pooled workers={workers} {tie:?} diverged from sequential"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn single_edge_deletion_never_silent() {
    run_cases("single_edge_deletion_never_silent", 40, |rng| {
        let dag = arb_dag(rng);
        let with_deps: Vec<usize> = (0..dag.nodes.len())
            .filter(|&i| !dag.nodes[i].deps.is_empty())
            .collect();
        prop_assert!(!with_deps.is_empty(), "dag has no edges at all");
        // Delete one random edge from one random node.
        let node = with_deps[rng.usize_in(0, with_deps.len())];
        let edge = rng.usize_in(0, dag.nodes[node].deps.len());
        let dropped = dag.nodes[node].deps[edge];
        let mut mutated = dag.clone();
        mutated.nodes[node].deps.remove(edge);

        let validator = mutated.validate();
        if validator.is_ok() {
            // The structural rules are blind to this edge — the race it
            // leaves behind must show up in the lowered trace.
            let report = analyze_dag(&mutated);
            prop_assert!(
                !report.is_clean(),
                "silent pass: deleting edge {dropped}→{node} ({} dep of {}) \
                 satisfied the validator AND the analyzer",
                dag.nodes[dropped].op.class_name(),
                dag.nodes[node].op.class_name()
            );
        }
        Ok(())
    });
}
