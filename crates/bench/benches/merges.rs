//! Criterion benches for the merge machinery (Figure 6's real-machine
//! counterpart): sequential merge, merge-path parallel merge, loser-tree
//! multiway merge at several fan-ins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsort_algos::merge::{merge_into, par_merge_into};
use hetsort_algos::multiway::{multiway_merge_into, par_multiway_merge_into};
use hetsort_workloads::generate_batch_sorted;
use hetsort_workloads::Distribution;

const N: usize = 200_000;

fn bench_pair_merge(c: &mut Criterion) {
    let w = generate_batch_sorted(Distribution::Uniform, N / 2, 2, 7);
    let (a, b) = w.split_at(N / 2);
    let mut g = c.benchmark_group("pair_merge");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("sequential", |bch| {
        let mut out = vec![0.0f64; N];
        bch.iter(|| merge_into(a, b, &mut out));
    });
    for threads in [2usize, 4] {
        g.bench_function(BenchmarkId::new("merge_path", threads), |bch| {
            let mut out = vec![0.0f64; N];
            bch.iter(|| par_merge_into(threads, a, b, &mut out));
        });
    }
    g.finish();
}

fn bench_multiway(c: &mut Criterion) {
    let mut g = c.benchmark_group("multiway_merge");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(N as u64));
    for k in [2usize, 4, 10, 16] {
        let w = generate_batch_sorted(Distribution::Uniform, N / k, k, 11);
        let lists: Vec<&[f64]> = (0..k).map(|i| &w[i * (N / k)..(i + 1) * (N / k)]).collect();
        let total: usize = lists.iter().map(|l| l.len()).sum();
        g.bench_function(BenchmarkId::new("loser_tree", k), |bch| {
            let mut out = vec![0.0f64; total];
            bch.iter(|| multiway_merge_into(&lists, &mut out));
        });
        g.bench_function(BenchmarkId::new("parallel", k), |bch| {
            let mut out = vec![0.0f64; total];
            bch.iter(|| par_multiway_merge_into(4, &lists, &mut out));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pair_merge, bench_multiway);
criterion_main!(benches);
