//! Wall-clock benches for the merge machinery (Figure 6's real-machine
//! counterpart): sequential merge, merge-path parallel merge, loser-tree
//! multiway merge at several fan-ins.

use hetsort_algos::merge::{merge_into, par_merge_into};
use hetsort_algos::multiway::{
    multiway_merge_into, par_multiway_merge_into, par_multiway_merge_into_cfg,
};
use hetsort_algos::par::SchedCfg;
use hetsort_prng::bench::bench_throughput;
use hetsort_workloads::generate_batch_sorted;
use hetsort_workloads::Distribution;

const N: usize = 200_000;
const SAMPLES: usize = 10;

fn main() {
    let w = generate_batch_sorted(Distribution::Uniform, N / 2, 2, 7).expect("valid workload");
    let (a, b) = w.split_at(N / 2);
    bench_throughput("pair_merge/sequential", SAMPLES, N, || {
        let mut out = vec![0.0f64; N];
        merge_into(a, b, &mut out);
        out
    });
    for threads in [2usize, 4] {
        bench_throughput(
            &format!("pair_merge/merge_path/{threads}"),
            SAMPLES,
            N,
            || {
                let mut out = vec![0.0f64; N];
                par_merge_into(threads, a, b, &mut out);
                out
            },
        );
    }

    for k in [2usize, 4, 10, 16] {
        let w = generate_batch_sorted(Distribution::Uniform, N / k, k, 11).expect("valid workload");
        let lists: Vec<&[f64]> = (0..k).map(|i| &w[i * (N / k)..(i + 1) * (N / k)]).collect();
        let total: usize = lists.iter().map(|l| l.len()).sum();
        bench_throughput(
            &format!("multiway_merge/loser_tree/{k}"),
            SAMPLES,
            total,
            || {
                let mut out = vec![0.0f64; total];
                multiway_merge_into(&lists, &mut out);
                out
            },
        );
        bench_throughput(
            &format!("multiway_merge/parallel/{k}"),
            SAMPLES,
            total,
            || {
                let mut out = vec![0.0f64; total];
                par_multiway_merge_into(4, &lists, &mut out);
                out
            },
        );
    }

    // Skewed fan-in: one long list plus many tiny ones, self-scheduling
    // vs the static round-robin partitioning (sched_microbench has the
    // committed CSV version of this comparison).
    let long = generate_batch_sorted(Distribution::Uniform, N, 1, 17).expect("valid workload");
    let shorts = generate_batch_sorted(Distribution::Uniform, 4, 16, 19).expect("valid workload");
    let mut lists: Vec<&[f64]> = vec![&long];
    lists.extend((0..16).map(|i| &shorts[i * 4..(i + 1) * 4]));
    let total: usize = lists.iter().map(|l| l.len()).sum();
    for (name, cfg) in [
        ("rr", SchedCfg::round_robin_static()),
        ("self", SchedCfg::self_sched()),
    ] {
        bench_throughput(
            &format!("multiway_merge/skewed_{name}/8"),
            SAMPLES,
            total,
            || {
                let mut out = vec![0.0f64; total];
                par_multiway_merge_into_cfg(&cfg, 8, &lists, &mut out);
                out
            },
        );
    }
}
