//! Wall-clock benches for the *functional* heterogeneous pipeline: the
//! real data path (staging copies → radix sort → merges) at host scale,
//! across the paper's approaches.

use hetsort_core::{sort_real, Approach, HetSortConfig};
use hetsort_prng::bench::bench_throughput;
use hetsort_vgpu::platform1;
use hetsort_workloads::{generate, Distribution};

const N: usize = 200_000;
const SAMPLES: usize = 10;

fn main() {
    let data = generate(Distribution::Uniform, N, 123)
        .expect("valid workload")
        .data;
    for (label, approach) in [
        ("BLineMulti", Approach::BLineMulti),
        ("PipeData", Approach::PipeData),
        ("PipeMerge", Approach::PipeMerge),
    ] {
        bench_throughput(
            &format!("functional_pipeline/{label}/{N}"),
            SAMPLES,
            N,
            || {
                let cfg = HetSortConfig::paper_defaults(platform1(), approach)
                    .with_batch_elems(25_000)
                    .with_pinned_elems(5_000);
                let out = sort_real(cfg, &data).unwrap();
                assert!(out.verified);
                out.sorted.len()
            },
        );
    }
    // The CPU reference (GNU-style parallel mergesort) for comparison.
    bench_throughput(
        &format!("functional_pipeline/reference_mergesort/{N}"),
        SAMPLES,
        N,
        || {
            let mut v = data.clone();
            hetsort_algos::par_mergesort(2, &mut v);
            v
        },
    );
}
