//! Criterion benches for the *functional* heterogeneous pipeline: the
//! real data path (staging copies → radix sort → merges) at host scale,
//! across the paper's approaches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsort_core::{sort_real, Approach, HetSortConfig};
use hetsort_vgpu::platform1;
use hetsort_workloads::{generate, Distribution};

const N: usize = 200_000;

fn bench_pipeline(c: &mut Criterion) {
    let data = generate(Distribution::Uniform, N, 123).data;
    let mut g = c.benchmark_group("functional_pipeline");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(N as u64));
    for (label, approach) in [
        ("BLineMulti", Approach::BLineMulti),
        ("PipeData", Approach::PipeData),
        ("PipeMerge", Approach::PipeMerge),
    ] {
        g.bench_function(BenchmarkId::new(label, N), |b| {
            b.iter(|| {
                let cfg = HetSortConfig::paper_defaults(platform1(), approach)
                    .with_batch_elems(25_000)
                    .with_pinned_elems(5_000);
                let out = sort_real(cfg, &data).unwrap();
                assert!(out.verified);
                out.sorted.len()
            })
        });
    }
    // The CPU reference (GNU-style parallel mergesort) for comparison.
    g.bench_function(BenchmarkId::new("reference_mergesort", N), |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| hetsort_algos::par_mergesort(2, &mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
