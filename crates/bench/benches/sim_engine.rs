//! Wall-clock benches for the simulation kernel itself: solver and
//! end-to-end plan simulations (the cost of regenerating each figure).

use hetsort_core::{simulate, Approach, HetSortConfig};
use hetsort_prng::bench::bench;
use hetsort_sim::{max_min_rates, Flow};
use hetsort_vgpu::platform1;

fn main() {
    for nf in [4usize, 16, 64] {
        let flows: Vec<Flow> = (0..nf)
            .map(|i| Flow {
                weight: 1.0 + (i % 5) as f64,
                cap: if i % 3 == 0 {
                    Some(10.0 + i as f64)
                } else {
                    None
                },
                demands: vec![(i % 4, 0.5 + (i % 7) as f64)],
            })
            .collect();
        let caps = [50.0, 80.0, 120.0, 60.0];
        bench(&format!("fairshare/solve/{nf}"), 20, || {
            max_min_rates(&flows, &caps).unwrap()
        });
    }

    // The full Figure 9 largest point: n = 5e9, ~20k ops.
    bench("plan_simulation/pipemerge_5e9_platform1", 10, || {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
            .with_batch_elems(500_000_000);
        simulate(cfg, 5_000_000_000).unwrap().total_s
    });
    bench("plan_simulation/blinemulti_5e9_platform1", 10, || {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLineMulti);
        simulate(cfg, 5_000_000_000).unwrap().total_s
    });
}
