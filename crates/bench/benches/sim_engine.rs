//! Criterion benches for the simulation kernel itself: solver and
//! end-to-end plan simulations (the cost of regenerating each figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsort_core::{simulate, Approach, HetSortConfig};
use hetsort_sim::{max_min_rates, Flow};
use hetsort_vgpu::platform1;

fn bench_fairshare(c: &mut Criterion) {
    let mut g = c.benchmark_group("fairshare");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    for nf in [4usize, 16, 64] {
        let flows: Vec<Flow> = (0..nf)
            .map(|i| Flow {
                weight: 1.0 + (i % 5) as f64,
                cap: if i % 3 == 0 { Some(10.0 + i as f64) } else { None },
                demands: vec![(i % 4, 0.5 + (i % 7) as f64)],
            })
            .collect();
        let caps = [50.0, 80.0, 120.0, 60.0];
        g.bench_function(BenchmarkId::new("solve", nf), |b| {
            b.iter(|| max_min_rates(&flows, &caps).unwrap())
        });
    }
    g.finish();
}

fn bench_plan_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_simulation");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    // The full Figure 9 largest point: n = 5e9, ~20k ops.
    g.bench_function("pipemerge_5e9_platform1", |b| {
        b.iter(|| {
            let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
                .with_batch_elems(500_000_000);
            simulate(cfg, 5_000_000_000).unwrap().total_s
        })
    });
    g.bench_function("blinemulti_5e9_platform1", |b| {
        b.iter(|| {
            let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLineMulti);
            simulate(cfg, 5_000_000_000).unwrap().total_s
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fairshare, bench_plan_simulation);
criterion_main!(benches);
