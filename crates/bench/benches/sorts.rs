//! Wall-clock benches for the real CPU sorting algorithms (host-scale).
//!
//! These measure the from-scratch implementations on the build machine —
//! complementary to the calibrated paper-scale simulations. Shapes to
//! look for: radix ≫ comparison sorts on f64; qsort ≈ 2× introsort
//! (Figure 4's `std::qsort` observation); parallel sorts ≈ sequential
//! on a 1-core container but scaling on real multicore hosts.

use hetsort_algos::introsort::introsort;
use hetsort_algos::mergesort::par_mergesort;
use hetsort_algos::qsort::{cmp_f64, qsort};
use hetsort_algos::radix::radix_sort;
use hetsort_algos::radix_par::par_radix_sort;
use hetsort_algos::samplesort::par_samplesort;
use hetsort_prng::bench::bench_throughput;
use hetsort_workloads::{generate, Distribution};

const N: usize = 100_000;
const SAMPLES: usize = 10;

fn main() {
    let base = generate(Distribution::Uniform, N, 42)
        .expect("valid workload")
        .data;

    bench_throughput("cpu_sorts/introsort", SAMPLES, N, || {
        let mut v = base.clone();
        introsort(&mut v);
        v
    });
    bench_throughput("cpu_sorts/qsort", SAMPLES, N, || {
        let mut v = base.clone();
        qsort(&mut v, cmp_f64);
        v
    });
    bench_throughput("cpu_sorts/radix", SAMPLES, N, || {
        let mut v = base.clone();
        radix_sort(&mut v);
        v
    });
    for threads in [2usize, 4] {
        bench_throughput(
            &format!("cpu_sorts/par_radix/{threads}"),
            SAMPLES,
            N,
            || {
                let mut v = base.clone();
                par_radix_sort(threads, &mut v);
                v
            },
        );
    }
    for threads in [1usize, 2, 4] {
        bench_throughput(
            &format!("cpu_sorts/par_mergesort/{threads}"),
            SAMPLES,
            N,
            || {
                let mut v = base.clone();
                par_mergesort(threads, &mut v);
                v
            },
        );
        bench_throughput(
            &format!("cpu_sorts/par_samplesort/{threads}"),
            SAMPLES,
            N,
            || {
                let mut v = base.clone();
                par_samplesort(threads, &mut v);
                v
            },
        );
    }
}
