//! Criterion benches for the real CPU sorting algorithms (host-scale).
//!
//! These measure the from-scratch implementations on the build machine —
//! complementary to the calibrated paper-scale simulations. Shapes to
//! look for: radix ≫ comparison sorts on f64; qsort ≈ 2× introsort
//! (Figure 4's `std::qsort` observation); parallel sorts ≈ sequential
//! on a 1-core container but scaling on real multicore hosts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsort_algos::introsort::introsort;
use hetsort_algos::mergesort::par_mergesort;
use hetsort_algos::qsort::{cmp_f64, qsort};
use hetsort_algos::radix::radix_sort;
use hetsort_algos::radix_par::par_radix_sort;
use hetsort_algos::samplesort::par_samplesort;
use hetsort_workloads::{generate, Distribution};

const N: usize = 100_000;

fn input() -> Vec<f64> {
    generate(Distribution::Uniform, N, 42).data
}

fn bench_sorts(c: &mut Criterion) {
    let base = input();
    let mut g = c.benchmark_group("cpu_sorts");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(N as u64));

    g.bench_function(BenchmarkId::new("introsort", N), |b| {
        b.iter_batched(
            || base.clone(),
            |mut v| introsort(&mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function(BenchmarkId::new("qsort", N), |b| {
        b.iter_batched(
            || base.clone(),
            |mut v| qsort(&mut v, cmp_f64),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function(BenchmarkId::new("radix", N), |b| {
        b.iter_batched(
            || base.clone(),
            |mut v| radix_sort(&mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    for threads in [2usize, 4] {
        g.bench_function(BenchmarkId::new("par_radix", threads), |b| {
            b.iter_batched(
                || base.clone(),
                |mut v| par_radix_sort(threads, &mut v),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    for threads in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::new("par_mergesort", threads), |b| {
            b.iter_batched(
                || base.clone(),
                |mut v| par_mergesort(threads, &mut v),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_function(BenchmarkId::new("par_samplesort", threads), |b| {
            b.iter_batched(
                || base.clone(),
                |mut v| par_samplesort(threads, &mut v),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sorts);
criterion_main!(benches);
