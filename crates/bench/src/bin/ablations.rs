//! Extension experiments beyond the paper's figures:
//!
//! 1. **Batch-size / stream-count trade-off** (§IV-F text): more streams
//!    allow more transfer overlap but force smaller batches → more
//!    batches → more CPU merge work.
//! 2. **Pinned-buffer-size sweep** (§IV-E text): tiny buffers pay
//!    per-chunk sync; a whole-input buffer pays the 2.2 s allocation.
//! 3. **NVLink what-if** (§V discussion): raising link bandwidth ~6×
//!    leaves total time dominated by the CPU merge — the paper's closing
//!    claim that "the CPU merging bottleneck" worsens in the NVLink era.
//! 4. **Pageable vs pinned transfers** (§V: pinned ≈ 2×).
//!
//! Usage: `cargo run --release -p hetsort-bench --bin ablations`

use hetsort_bench::write_csv;
use hetsort_core::{simulate, Approach, HetSortConfig};
use hetsort_vgpu::platform1;

fn main() {
    let n = 4_000_000_000usize;
    let plat = platform1();

    // ---------------- 1. batch size / stream count --------------------
    println!("=== Ablation 1: b_s × n_s trade-off (PipeMerge, n = 4e9, PLATFORM1) ===");
    println!(
        "{:>6} {:>12} {:>6} {:>10} {:>8}",
        "n_s", "b_s", "n_b", "total(s)", "merge(s)"
    );
    let mut rows = Vec::new();
    for ns in [1usize, 2, 4, 8] {
        let bs = plat.max_batch_elems(ns);
        let bs = (bs / 1_000_000) * 1_000_000;
        let cfg = HetSortConfig::paper_defaults(plat.clone(), Approach::PipeMerge)
            .with_streams(ns)
            .with_batch_elems(bs);
        let r = simulate(cfg, n).expect("ablation sim");
        println!(
            "{:>6} {:>12} {:>6} {:>10.3} {:>8.3}",
            ns,
            bs,
            r.nb,
            r.total_s,
            r.component("MultiwayMerge").unwrap_or(0.0)
        );
        rows.push(format!(
            "{ns},{bs},{},{:.4},{:.4}",
            r.nb,
            r.total_s,
            r.component("MultiwayMerge").unwrap_or(0.0)
        ));
    }
    write_csv(
        "ablation_batch_streams.csv",
        "n_s,b_s,n_b,total_s,multiway_s",
        &rows,
    );

    // ---------------- 2. pinned buffer size ---------------------------
    println!("\n=== Ablation 2: pinned buffer size p_s (PipeData, n = 2e9) ===");
    println!(
        "{:>12} {:>10} {:>10} {:>10}",
        "p_s", "total(s)", "alloc(s)", "sync ops"
    );
    let mut rows = Vec::new();
    for ps in [
        100_000usize,
        1_000_000,
        10_000_000,
        100_000_000,
        500_000_000,
    ] {
        let cfg = HetSortConfig::paper_defaults(plat.clone(), Approach::PipeData)
            .with_batch_elems(500_000_000)
            .with_pinned_elems(ps);
        let r = simulate(cfg, 2_000_000_000).expect("ablation sim");
        let syncs = (r.sync_s / plat.pcie.chunk_sync_s).round();
        println!(
            "{:>12} {:>10.3} {:>10.3} {:>10}",
            ps,
            r.total_s,
            r.component("PinnedAlloc").unwrap_or(0.0),
            syncs
        );
        rows.push(format!(
            "{ps},{:.4},{:.4},{syncs}",
            r.total_s,
            r.component("PinnedAlloc").unwrap_or(0.0)
        ));
    }
    write_csv(
        "ablation_pinned_size.csv",
        "p_s,total_s,alloc_s,sync_chunks",
        &rows,
    );

    // ---------------- 3. NVLink what-if -------------------------------
    println!("\n=== Ablation 3: NVLink what-if (PipeMerge+ParMemCpy, n = 5e9) ===");
    println!(
        "{:>12} {:>10} {:>12} {:>16}",
        "link GB/s", "total(s)", "multiway(s)", "multiway share %"
    );
    let n_nvlink = 5_000_000_000usize;
    let mut rows = Vec::new();
    for link_gbs in [12.0f64, 25.0, 50.0, 75.0, 150.0] {
        let mut p = platform1();
        p.pcie.pinned_bps = link_gbs * 1e9;
        p.pcie.bidir_total_bps = 2.0 * link_gbs * 1e9 * 0.55;
        let cfg = HetSortConfig::paper_defaults(p, Approach::PipeMerge)
            .with_batch_elems(500_000_000)
            .with_par_memcpy();
        let r = simulate(cfg, n_nvlink).expect("ablation sim");
        // The final multiway merge never overlaps anything, so its busy
        // time is an honest share of the makespan.
        let merge = r.component("MultiwayMerge").unwrap_or(0.0);
        println!(
            "{:>12.0} {:>10.3} {:>12.3} {:>16.1}",
            link_gbs,
            r.total_s,
            merge,
            100.0 * merge / r.total_s
        );
        rows.push(format!("{link_gbs},{:.4},{:.4}", r.total_s, merge));
    }
    write_csv("ablation_nvlink.csv", "link_gbs,total_s,merge_s", &rows);
    println!("(the CPU merge share grows as the link speeds up — §V's closing claim)");

    // ---------------- 3b. pair-merge thread budget ---------------------
    println!("\n=== Ablation 3b: pair-merge thread budget (PipeMerge, n = 5e9) ===");
    println!("{:>8} {:>10}", "threads", "total(s)");
    let mut rows = Vec::new();
    for t in [2u32, 4, 8, 12, 16] {
        let mut cfg = HetSortConfig::paper_defaults(plat.clone(), Approach::PipeMerge)
            .with_batch_elems(500_000_000);
        cfg.pair_merge_threads = t;
        let r = simulate(cfg, 5_000_000_000).expect("ablation sim");
        println!("{t:>8} {:>10.3}", r.total_s);
        rows.push(format!("{t},{:.4}", r.total_s));
    }
    write_csv("ablation_pair_merge_threads.csv", "threads,total_s", &rows);
    println!("(too few threads → merges lag the pipeline; too many → they starve");
    println!(" the staging copies — the load-imbalance §III-D3 warns about)");

    // ---------------- 4. pageable vs pinned ---------------------------
    println!("\n=== Ablation 4: pageable cudaMemcpy vs pinned staging (BLine, n = 8e8) ===");
    let cfg = HetSortConfig::paper_defaults(plat.clone(), Approach::BLine);
    let pinned = simulate(cfg, 800_000_000).expect("sim");
    // Pageable path: model as transfers at the pageable rate with no
    // staging copies (the driver stages internally).
    let mut m = hetsort_vgpu::Machine::new(plat.clone());
    let h = m.transfer(
        hetsort_vgpu::TransferDir::HtoD,
        0,
        6.4e9,
        false,
        false,
        None,
        &[],
        None,
        0,
    );
    let s = m.gpu_sort(0, 8e8, None, &[h], None, 0);
    let _d = m.transfer(
        hetsort_vgpu::TransferDir::DtoH,
        0,
        6.4e9,
        false,
        false,
        None,
        &[s],
        None,
        0,
    );
    let tl = m.run().expect("sim");
    println!(
        "pinned staging: {:.3} s   plain pageable cudaMemcpy: {:.3} s",
        pinned.total_s,
        tl.makespan()
    );
    println!(
        "(raw link rates: pinned {:.0} GB/s vs pageable {:.0} GB/s — the paper's ~2x;\n the serial chunked staging of the blocking baseline gives some of it back,\n which is exactly the overhead argument of §IV-E — the piped approaches\n recover it by overlapping the staging copies across streams)",
        plat.pcie.pinned_bps / 1e9,
        plat.pcie.pageable_bps / 1e9
    );
    write_csv(
        "ablation_pageable.csv",
        "variant,total_s",
        &[
            format!("pinned_staging,{:.4}", pinned.total_s),
            format!("pageable,{:.4}", tl.makespan()),
        ],
    );
}
