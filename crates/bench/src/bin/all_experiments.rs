//! Run every reproduced experiment and write all CSVs under `results/`.
//!
//! `cargo run --release -p hetsort-bench --bin all_experiments`

use hetsort_bench::experiments as ex;
use hetsort_bench::write_csv;
use hetsort_vgpu::platform1;

fn main() {
    let t0 = std::time::Instant::now();

    println!("[1/9] Figures 1-3 (schedules)");
    let (f1, f2, f3) = ex::fig01_03();
    write_csv(
        "fig01_03_gantt.txt",
        "ascii gantt renderings",
        &[f1, f2, f3],
    );

    println!("[2/9] Figure 4 (CPU sort scalability)");
    let rows = ex::fig04(&platform1());
    write_csv(
        "fig04_cpu_sort_scalability.csv",
        "n,threads,gnu_s,tbb_s,std_sort_s,qsort_s",
        &rows.iter().map(|r| r.csv()).collect::<Vec<_>>(),
    );

    println!("[3/9] Figure 5 (BLine vs reference)");
    let rows = ex::fig05();
    write_csv(
        "fig05_bline_vs_ref.csv",
        "n,bline_s,ref_s,ratio",
        &rows.iter().map(|r| r.csv()).collect::<Vec<_>>(),
    );

    println!("[4/9] Figure 6 (merge scalability)");
    let rows = ex::fig06();
    write_csv(
        "fig06_merge_scalability.csv",
        "threads,time_s,speedup",
        &rows.iter().map(|r| r.csv()).collect::<Vec<_>>(),
    );

    println!("[5/9] Figures 7+8 (missing overhead)");
    let d = ex::fig07();
    write_csv(
        "fig07_components.csv",
        "component,ours_s,related_s",
        &[
            format!("HtoD,{:.4},{:.4}", d.ours.0, d.related.0),
            format!("DtoH,{:.4},{:.4}", d.ours.1, d.related.1),
            format!("GPUSort,{:.4},{:.4}", d.ours.2, d.related.2),
            format!("literature_total,{:.4},", d.report.literature_total_s),
            format!("full_total,{:.4},", d.report.total_s),
        ],
    );
    let rows = ex::fig08();
    write_csv(
        "fig08_missing_overhead.csv",
        "n,htod_s,dtoh_s,sort_s,literature_total_s,full_total_s",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                    r.n, r.htod_s, r.dtoh_s, r.sort_s, r.literature_total_s, r.full_total_s
                )
            })
            .collect::<Vec<_>>(),
    );

    println!("[6/9] Figure 9 (PLATFORM1 approaches)");
    let rows = ex::fig09();
    write_csv(
        "fig09_platform1_approaches.csv",
        "n,n_gpus,blinemulti_s,pipedata_s,pipemerge_s,pipemerge_parmemcpy_s,reference_s",
        &rows.iter().map(|r| r.csv()).collect::<Vec<_>>(),
    );

    println!("[7/9] Figure 10 (PLATFORM2 multi-GPU)");
    let (one, two) = ex::fig10();
    let mut csv: Vec<String> = one.iter().map(|r| r.csv()).collect();
    csv.extend(two.iter().map(|r| r.csv()));
    write_csv(
        "fig10_platform2_multi_gpu.csv",
        "n,n_gpus,blinemulti_s,pipedata_s,pipemerge_s,pipemerge_parmemcpy_s,reference_s",
        &csv,
    );

    println!("[8/9] Figure 11 (lower bounds)");
    let d = ex::fig11();
    write_csv(
        "fig11_lower_bound.csv",
        "n,model1_s,pipedata1_s,model2_s,pipedata2_s",
        &d.points
            .iter()
            .map(|&(n, t1, t2)| {
                format!(
                    "{},{:.4},{:.4},{:.4},{:.4}",
                    n,
                    d.model1.predict(n),
                    t1,
                    d.model2.predict(n),
                    t2
                )
            })
            .collect::<Vec<_>>(),
    );

    println!("[9/9] span-level trace of the flagship run");
    let cfg =
        hetsort_core::HetSortConfig::paper_defaults(platform1(), hetsort_core::Approach::PipeMerge)
            .with_batch_elems(500_000_000)
            .with_par_memcpy();
    let r = hetsort_core::simulate(cfg, 5_000_000_000).expect("flagship sim");
    std::fs::write(
        hetsort_bench::results_dir().join("fig09_pipemerge_spans.csv"),
        r.timeline.spans_csv(),
    )
    .expect("write spans");

    println!("done in {:.1} s", t0.elapsed().as_secs_f64());
    println!(
        "CSVs written under {}",
        hetsort_bench::results_dir().display()
    );
}
