//! `bench_gate` — the benchmark regression gate.
//!
//! Replays the pinned scenario matrix ([`hetsort_bench::gate`]) through
//! the deterministic simulator, writes a dated `BENCH_<date>.json` under
//! `results/`, and compares against the committed `BENCH.json` baseline
//! with the default tolerance bands. Exit codes: 0 = pass, 1 = gate
//! failure (regression or missing scenario), 2 = usage/I-O error.
//!
//! ```text
//! bench_gate                       # compare against ./BENCH.json
//! bench_gate --baseline OTHER.json # compare against another baseline
//! bench_gate --write-baseline      # (re)freeze BENCH.json from current
//! bench_gate --out CUR.json        # also write the current doc here
//! ```

use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use hetsort_bench::gate::{civil_date, run_matrix};
use hetsort_bench::results_dir;
use hetsort_obs::{compare, BenchDoc, Tolerance};

/// Committed baseline location: `<workspace root>/BENCH.json`.
fn default_baseline() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH.json")
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_gate: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut write_baseline = false;
    let mut baseline_path = default_baseline();
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--write-baseline" => write_baseline = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = PathBuf::from(p),
                None => fail("--baseline needs a path"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => fail("--out needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: bench_gate [--write-baseline] [--baseline PATH] [--out PATH]");
                return;
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let date = civil_date(now);

    eprintln!("bench_gate: replaying pinned scenario matrix (simulated)...");
    let current = match run_matrix(&date) {
        Ok(doc) => doc,
        Err(e) => fail(&format!("matrix run failed: {e}")),
    };
    for s in &current.scenarios {
        eprintln!(
            "  {:<22} n_b={:<4} total {:>9.3} s  literature {:>9.3} s  overlap {:.3}",
            s.id, s.nb, s.total_s, s.literature_total_s, s.overlap_ratio
        );
    }

    // Always archive the dated document under results/.
    let dated = results_dir().join(format!("BENCH_{date}.json"));
    if let Err(e) = std::fs::write(&dated, current.to_json()) {
        fail(&format!("cannot write {}: {e}", dated.display()));
    }
    eprintln!("bench_gate: wrote {}", dated.display());
    if let Some(p) = &out_path {
        if let Err(e) = std::fs::write(p, current.to_json()) {
            fail(&format!("cannot write {}: {e}", p.display()));
        }
    }

    if write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, current.to_json()) {
            fail(&format!("cannot write {}: {e}", baseline_path.display()));
        }
        println!("bench_gate: baseline frozen at {}", baseline_path.display());
        return;
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => fail(&format!(
            "cannot read baseline {} ({e}); run with --write-baseline first",
            baseline_path.display()
        )),
    };
    let baseline = match BenchDoc::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!(
            "baseline {} is not schema-valid: {e}",
            baseline_path.display()
        )),
    };

    let report = compare(&baseline, &current, Tolerance::default());
    print!("{}", report.summary());
    if !report.pass() {
        std::process::exit(1);
    }
}
