//! Calibration report: every headline number the paper states, next to
//! what the simulator currently produces. Used to tune the platform
//! constants; re-run after any change to `hetsort-vgpu`.
//!
//! Usage: `cargo run --release -p hetsort-bench --bin calibrate`

use hetsort_core::reference::reference_time_full;
use hetsort_core::{simulate, Approach, HetSortConfig};
use hetsort_vgpu::{platform1, platform2};

fn row(name: &str, paper: f64, ours: f64) {
    let err = if paper != 0.0 {
        100.0 * (ours - paper) / paper
    } else {
        0.0
    };
    println!("{name:<58} {paper:>9.3} {ours:>9.3} {err:>+7.1}%");
}

fn main() {
    if std::env::args().any(|a| a == "--components") {
        dump_components();
        return;
    }
    println!(
        "{:<58} {:>9} {:>9} {:>8}",
        "target (paper value)", "paper", "model", "err"
    );
    println!("{}", "-".repeat(88));

    let p1 = platform1();
    let p2 = platform2();

    // --- Figure 4 (PLATFORM1 CPU reference) -------------------------
    let t1 = reference_time(&p1, 1_000_000_000, 1);
    let t16 = reference_time(&p1, 1_000_000_000, 16);
    row("Fig4a ref sort n=1e9 1 thread (s)", 140.0, t1);
    row("Fig4b speedup n=1e9, 16t", 10.12, t1 / t16);
    let s6 = reference_time(&p1, 1_000_000, 1) / reference_time(&p1, 1_000_000, 16);
    row("Fig4b speedup n=1e6, 16t", 3.17, s6);

    // --- Figure 5 (PLATFORM2, BLine vs ref) -------------------------
    for &n in &[200_000_000usize, 400_000_000, 700_000_000] {
        let cfg = HetSortConfig::paper_defaults(p2.clone(), Approach::BLine);
        let r = simulate(cfg, n).unwrap();
        let ref_t = reference_time_full(&p2, n);
        row(
            &format!("Fig5 ratio CPU/GPU at n={:.0e} (1.22..1.32)", n as f64),
            1.27,
            ref_t / r.total_s,
        );
        if n == 700_000_000 {
            row(
                "Fig5/IV-G BLine n=7e8 total (6.278 ns/elem → s)",
                6.278e-9 * n as f64,
                r.total_s,
            );
        }
    }

    // --- Figure 7 (PLATFORM1, n=8e8 components) ---------------------
    let cfg = HetSortConfig::paper_defaults(p1.clone(), Approach::BLine);
    let r7 = simulate(cfg, 800_000_000).unwrap();
    row("Fig7 HtoD (s)", 0.536, r7.component("HtoD").unwrap_or(0.0));
    row("Fig7 DtoH (s)", 0.484, r7.component("DtoH").unwrap_or(0.0));
    row(
        "Fig7 GPUSort ~ (s)",
        0.42,
        r7.component("GPUSort").unwrap_or(0.0),
    );
    row(
        "Fig8 literature total @8e8 (s)",
        1.44,
        r7.literature_total_s,
    );
    println!(
        "{:<58} {:>9} {:>9.3}",
        "Fig8 full total @8e8 (s, paper shows 'much larger')", "> 2.5", r7.total_s
    );

    // --- Figure 9 (PLATFORM1, b_s=5e8, n_s=2) -----------------------
    let n9 = 5_000_000_000usize;
    let mk = |a: Approach, pm: bool| {
        let mut c = HetSortConfig::paper_defaults(p1.clone(), a).with_batch_elems(500_000_000);
        if pm {
            c = c.with_par_memcpy();
        }
        simulate(c, n9).unwrap().total_s
    };
    let blm = mk(Approach::BLineMulti, false);
    let pd = mk(Approach::PipeData, false);
    let pmg = mk(Approach::PipeMerge, false);
    let pmc = mk(Approach::PipeMerge, true);
    let refi = reference_time_full(&p1, n9);
    row("Fig9 BLineMulti n=5e9 (s)", 31.2, blm);
    row("Fig9 PipeData n=5e9 (s)", 25.55, pd);
    row(
        "Fig9 PipeData gain over BLineMulti (22%)",
        0.22,
        (blm - pd) / blm,
    );
    row("Fig9 PipeMerge n=5e9 (s, ≲ PipeData)", 25.0, pmg);
    row(
        "Fig9 ParMemCpy gain over PipeMerge (13%)",
        0.13,
        (pmg - pmc) / pmg,
    );
    row("Fig9 speedup fastest vs ref @5e9", 3.21, refi / pmc);
    let n1 = 1_000_000_000usize;
    let pmc1 = {
        let c = HetSortConfig::paper_defaults(p1.clone(), Approach::PipeMerge)
            .with_batch_elems(500_000_000)
            .with_par_memcpy();
        simulate(c, n1).unwrap().total_s
    };
    row(
        "Fig9 speedup fastest vs ref @1e9",
        3.47,
        reference_time_full(&p1, n1) / pmc1,
    );

    // --- Figure 10 (PLATFORM2, b_s=3.5e8, 1 vs 2 GPUs) ---------------
    let n10 = 4_900_000_000usize;
    let mk2 = |plat: hetsort_vgpu::PlatformSpec, a: Approach, pm: bool, n: usize| {
        let mut c = HetSortConfig::paper_defaults(plat, a).with_batch_elems(350_000_000);
        if pm {
            c = c.with_par_memcpy();
        }
        simulate(c, n).unwrap().total_s
    };
    let mut p2_1g = p2.clone();
    p2_1g.gpus.truncate(1);
    let pmc2_big = mk2(p2.clone(), Approach::PipeMerge, true, n10);
    let ref2_big = reference_time_full(&p2, n10);
    row(
        "Fig10 speedup fastest(2gpu) vs ref @4.9e9",
        2.02,
        ref2_big / pmc2_big,
    );
    let n10s = 1_400_000_000usize;
    let pmc2_small = mk2(p2.clone(), Approach::PipeMerge, true, n10s);
    row(
        "Fig10 speedup fastest(2gpu) vs ref @1.4e9",
        1.89,
        reference_time_full(&p2, n10s) / pmc2_small,
    );

    // --- Figure 11 (lower-bound models) ------------------------------
    // 1-GPU model slope from BLine at n=7e8 (must be 6.278 ns/elem).
    let cfg = HetSortConfig::paper_defaults(p2_1g.clone(), Approach::BLine);
    let slope1 = simulate(cfg, 700_000_000).unwrap().total_s / 7e8;
    row("Fig11 1-GPU model slope (ns/elem)", 6.278, slope1 * 1e9);
    // 2-GPU model: BLineMulti, n=1.4e9, b_s = n/2 per GPU.
    let cfg = HetSortConfig::paper_defaults(p2.clone(), Approach::BLineMulti)
        .with_batch_elems(700_000_000);
    let slope2 = simulate(cfg, 1_400_000_000).unwrap().total_s / 1.4e9;
    row("Fig11 2-GPU model slope (ns/elem)", 3.706, slope2 * 1e9);
    // PipeData vs model at n=4.9e9.
    let pd2_1g = mk2(p2_1g.clone(), Approach::PipeData, false, n10);
    let pd2_2g = mk2(p2.clone(), Approach::PipeData, false, n10);
    row(
        "Fig11 PipeData/model 1 GPU @4.9e9 (slowdown 0.93x)",
        1.0 / 0.93,
        pd2_1g / (slope1 * n10 as f64),
    );
    row(
        "Fig11 PipeData/model 2 GPU @4.9e9 (slowdown 0.88x)",
        1.0 / 0.88,
        pd2_2g / (slope2 * n10 as f64),
    );
}

fn reference_time(plat: &hetsort_vgpu::PlatformSpec, n: usize, threads: u32) -> f64 {
    hetsort_core::reference::reference_time(plat, n, threads)
}

fn dump_components() {
    let p1 = platform1();
    let n = 5_000_000_000usize;
    for (a, pm) in [
        (Approach::BLineMulti, false),
        (Approach::PipeData, false),
        (Approach::PipeMerge, false),
        (Approach::PipeMerge, true),
    ] {
        let mut c = HetSortConfig::paper_defaults(p1.clone(), a).with_batch_elems(500_000_000);
        if pm {
            c = c.with_par_memcpy();
        }
        let r = simulate(c, n).unwrap();
        println!("par_memcpy={pm}\n{}", r.summary());
        // Window of the multiway merge: when did it start vs end?
        if let Some(tag) = r.timeline.find_tag("MultiwayMerge") {
            if let Some((s, e)) = r.timeline.window(tag) {
                println!("  multiway window: {s:.2} .. {e:.2}\n");
            }
        }
    }
}
