//! Figures 1–3: illustrative schedules rendered as ASCII Gantt charts.
//!
//! * Figure 1 — BLINEMULTI with n_b = 6: the multiway merge (`M` in the
//!   CPU lane) starts only after every batch is sorted.
//! * Figure 2 — PIPEDATA: staging copies (`M...` = MCpy) interleave with
//!   transfers (`H`/`D`) inside each stream, and the two streams overlap.
//! * Figure 3 — PIPEMERGE: pair merges (`P` in the CPU lane) run while
//!   the GPU is still sorting later batches.

use hetsort_bench::experiments::fig01_03;
use hetsort_bench::write_csv;

fn main() {
    let (f1, f2, f3) = fig01_03();
    println!("=== Figure 1: BLineMulti, n_b = 6 (merge after all batches) ===\n{f1}");
    println!("=== Figure 2: PipeData stream interleave ===\n{f2}");
    println!("=== Figure 3: PipeMerge pipelined pair merges ===\n{f3}");
    let rows = vec![
        format!("\"fig1\"\n{f1}"),
        format!("\"fig2\"\n{f2}"),
        format!("\"fig3\"\n{f3}"),
    ];
    let p = write_csv("fig01_03_gantt.txt", "ascii gantt renderings", &rows);
    println!("wrote {}", p.display());
}
