//! Figure 4: CPU sorting scalability on PLATFORM1 — (a) response time
//! vs threads for the GNU parallel sort and a TBB-like sort at four
//! input sizes, with sequential `std::sort` / `qsort` reference lines;
//! (b) GNU speedup vs threads.

use hetsort_bench::experiments::{fig04, THREAD_SWEEP};
use hetsort_bench::write_csv;
use hetsort_vgpu::platform1;

fn main() {
    let rows = fig04(&platform1());
    println!("=== Figure 4a: response time (s) vs threads, PLATFORM1 ===");
    println!(
        "{:>12} {:>4} {:>10} {:>10} {:>10} {:>10}",
        "n", "thr", "GNU", "TBB", "std::sort", "qsort"
    );
    for r in &rows {
        println!(
            "{:>12} {:>4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            r.n, r.threads, r.gnu_s, r.tbb_s, r.std_sort_s, r.qsort_s
        );
    }

    println!("\n=== Figure 4b: GNU speedup vs threads ===");
    print!("{:>12}", "n");
    for t in THREAD_SWEEP {
        print!(" {t:>6}");
    }
    println!();
    for n in [1_000_000usize, 10_000_000, 100_000_000, 1_000_000_000] {
        let one = rows
            .iter()
            .find(|r| r.n == n && r.threads == 1)
            .expect("1-thread row");
        print!("{n:>12}");
        for t in THREAD_SWEEP {
            let r = rows.iter().find(|r| r.n == n && r.threads == t).unwrap();
            print!(" {:>6.2}", r.speedup_vs(one));
        }
        println!();
    }

    let csv: Vec<String> = rows.iter().map(|r| r.csv()).collect();
    let p = write_csv(
        "fig04_cpu_sort_scalability.csv",
        "n,threads,gnu_s,tbb_s,std_sort_s,qsort_s",
        &csv,
    );
    println!("\nwrote {}", p.display());
}
