//! Figure 5: BLINE (single batch) vs the 20-thread reference
//! implementation on PLATFORM2, with the CPU/GPU time ratio on the
//! right axis (the paper reports 1.22–1.32).

use hetsort_bench::experiments::fig05;
use hetsort_bench::write_csv;

fn main() {
    let rows = fig05();
    println!("=== Figure 5: BLine vs reference, PLATFORM2 (n_b = 1) ===");
    println!(
        "{:>12} {:>10} {:>10} {:>7}",
        "n", "BLine(s)", "Ref(s)", "ratio"
    );
    for r in &rows {
        println!(
            "{:>12} {:>10.3} {:>10.3} {:>7.3}",
            r.n,
            r.bline_s,
            r.ref_s,
            r.ratio()
        );
    }
    let csv: Vec<String> = rows.iter().map(|r| r.csv()).collect();
    let p = write_csv("fig05_bline_vs_ref.csv", "n,bline_s,ref_s,ratio", &csv);
    println!("\nwrote {}", p.display());
}
