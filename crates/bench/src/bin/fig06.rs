//! Figure 6: pairwise-merge scalability on PLATFORM1 (two sorted
//! sublists of 0.5·10⁹ elements, 1–16 threads; the paper reports an
//! 8.14× speedup on 16 cores).

use hetsort_bench::experiments::fig06;
use hetsort_bench::write_csv;

fn main() {
    let rows = fig06();
    println!("=== Figure 6: pair-merge scalability, PLATFORM1, n = 1e9 ===");
    println!("{:>4} {:>10} {:>8}", "thr", "time(s)", "speedup");
    for r in &rows {
        println!("{:>4} {:>10.3} {:>8.2}", r.threads, r.time_s, r.speedup);
    }
    let csv: Vec<String> = rows.iter().map(|r| r.csv()).collect();
    let p = write_csv(
        "fig06_merge_scalability.csv",
        "threads,time_s,speedup",
        &csv,
    );
    println!("\nwrote {}", p.display());
}
