//! Figure 7: the end-to-end components at n = 8·10⁸ (5.96 GiB) on
//! PLATFORM1 next to the values the paper estimates from \[5\]'s CUB bar
//! — plus the components the literature's accounting omits.

use hetsort_bench::experiments::fig07;
use hetsort_bench::write_csv;

fn main() {
    let d = fig07();
    println!("=== Figure 7: components at n = 8e8 (5.96 GiB), PLATFORM1 ===");
    println!(
        "{:<10} {:>10} {:>14}",
        "component", "our work", "related work"
    );
    println!("{:<10} {:>10.3} {:>14.3}", "HtoD", d.ours.0, d.related.0);
    println!("{:<10} {:>10.3} {:>14.3}", "DtoH", d.ours.1, d.related.1);
    println!("{:<10} {:>10.3} {:>14.3}", "GPUSort", d.ours.2, d.related.2);
    println!("\nComponents the related work omits:");
    for tag in hetsort_vgpu::tags::OMITTED_COMPONENTS {
        if let Some(t) = d.report.component(tag).filter(|t| *t > 0.0) {
            println!("  {tag:<12} {t:>8.3} s");
        }
    }
    println!(
        "\nliterature end-to-end: {:>7.3} s\nfull end-to-end:       {:>7.3} s\nmissing overhead:      {:>7.3} s ({:.0}% of the truth)",
        d.report.literature_total_s,
        d.report.total_s,
        d.report.missing_overhead_s(),
        100.0 * d.report.missing_overhead_s() / d.report.total_s
    );
    let rows = vec![
        format!("HtoD,{:.4},{:.4}", d.ours.0, d.related.0),
        format!("DtoH,{:.4},{:.4}", d.ours.1, d.related.1),
        format!("GPUSort,{:.4},{:.4}", d.ours.2, d.related.2),
        format!("literature_total,{:.4},", d.report.literature_total_s),
        format!("full_total,{:.4},", d.report.total_s),
    ];
    let p = write_csv("fig07_components.csv", "component,ours_s,related_s", &rows);
    println!("\nwrote {}", p.display());
}
