//! Figure 8: the missing-overhead sweep — component times, the
//! literature's "end-to-end" (1+2+3), and the full total with all
//! overheads, vs input size (BLINE, PLATFORM1).

use hetsort_bench::experiments::fig08;
use hetsort_bench::write_csv;

fn main() {
    let rows = fig08();
    println!("=== Figure 8: BLine components vs n, PLATFORM1 ===");
    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>10} {:>10} {:>9}",
        "n", "HtoD", "DtoH", "Sort", "lit(1+2+3)", "full", "missing"
    );
    for r in &rows {
        println!(
            "{:>12} {:>8.3} {:>8.3} {:>8.3} {:>10.3} {:>10.3} {:>9.3}",
            r.n,
            r.htod_s,
            r.dtoh_s,
            r.sort_s,
            r.literature_total_s,
            r.full_total_s,
            r.missing_s()
        );
    }
    println!(
        "\nAt the largest size the literature's method misses {:.0}% of the true time.",
        100.0 * rows.last().unwrap().missing_fraction()
    );
    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                r.n, r.htod_s, r.dtoh_s, r.sort_s, r.literature_total_s, r.full_total_s
            )
        })
        .collect();
    let p = write_csv(
        "fig08_missing_overhead.csv",
        "n,htod_s,dtoh_s,sort_s,literature_total_s,full_total_s",
        &csv,
    );
    println!("wrote {}", p.display());
}
