//! Figure 9: response time vs n for every approach on PLATFORM1
//! (b_s = 5·10⁸, n_s = 2) against the 16-thread reference.

use hetsort_bench::experiments::fig09;
use hetsort_bench::write_csv;

const LABELS: [&str; 5] = [
    "BLineMulti",
    "PipeData",
    "PipeMerge",
    "PipeMerge+ParMemCpy",
    "Reference",
];

fn main() {
    let rows = fig09();
    println!("=== Figure 9: approaches vs n, PLATFORM1 (b_s=5e8, n_s=2) ===");
    print!("{:>12}", "n");
    for l in LABELS {
        print!(" {l:>20}");
    }
    println!();
    for r in &rows {
        print!("{:>12}", r.n);
        for l in LABELS {
            print!(" {:>20.3}", r.total(l).unwrap());
        }
        println!();
    }
    let last = rows.last().unwrap();
    let first = rows.first().unwrap();
    println!(
        "\nspeedup of fastest vs reference: {:.2}x at n={:.0e}, {:.2}x at n={:.0e} (paper: 3.47x / 3.21x)",
        first.total("Reference").unwrap() / first.total("PipeMerge+ParMemCpy").unwrap(),
        first.n as f64,
        last.total("Reference").unwrap() / last.total("PipeMerge+ParMemCpy").unwrap(),
        last.n as f64,
    );
    let csv: Vec<String> = rows.iter().map(|r| r.csv()).collect();
    let p = write_csv(
        "fig09_platform1_approaches.csv",
        "n,n_gpus,blinemulti_s,pipedata_s,pipemerge_s,pipemerge_parmemcpy_s,reference_s",
        &csv,
    );
    println!("wrote {}", p.display());
}
