//! Figure 10: response time vs n on PLATFORM2 with 1 GPU (solid lines
//! in the paper) and 2 GPUs (dashed), b_s = 3.5·10⁸.

use hetsort_bench::experiments::fig10;
use hetsort_bench::write_csv;

const LABELS: [&str; 5] = [
    "BLineMulti",
    "PipeData",
    "PipeMerge",
    "PipeMerge+ParMemCpy",
    "Reference",
];

fn main() {
    let (one, two) = fig10();
    for (name, rows) in [("1 GPU", &one), ("2 GPUs", &two)] {
        println!("=== Figure 10 ({name}): PLATFORM2, b_s=3.5e8 ===");
        print!("{:>12}", "n");
        for l in LABELS {
            print!(" {l:>20}");
        }
        println!();
        for r in rows {
            print!("{:>12}", r.n);
            for l in LABELS {
                print!(" {:>20.3}", r.total(l).unwrap());
            }
            println!();
        }
        println!();
    }
    let f2 = two.first().unwrap();
    let l2 = two.last().unwrap();
    println!(
        "speedup of fastest (2 GPUs) vs reference: {:.2}x at n={:.1e}, {:.2}x at n={:.1e} (paper: 1.89x / 2.02x)",
        f2.total("Reference").unwrap() / f2.total("PipeMerge+ParMemCpy").unwrap(),
        f2.n as f64,
        l2.total("Reference").unwrap() / l2.total("PipeMerge+ParMemCpy").unwrap(),
        l2.n as f64,
    );
    let mut csv: Vec<String> = one.iter().map(|r| r.csv()).collect();
    csv.extend(two.iter().map(|r| r.csv()));
    let p = write_csv(
        "fig10_platform2_multi_gpu.csv",
        "n,n_gpus,blinemulti_s,pipedata_s,pipemerge_s,pipemerge_parmemcpy_s,reference_s",
        &csv,
    );
    println!("wrote {}", p.display());
}
