//! Figure 11: the §IV-G lower-bound baseline models vs PIPEDATA on 1
//! and 2 GPUs (PLATFORM2). Reports the model slopes, the beats/trails
//! crossover, and the slowdown at the largest size (paper: 0.93× and
//! 0.88×).

use hetsort_bench::experiments::fig11;
use hetsort_bench::write_csv;

fn main() {
    let d = fig11();
    println!("=== Figure 11: lower-bound models vs PipeData, PLATFORM2 ===");
    println!(
        "1-GPU model: y = {:.3e}·n   (paper: y = 6.278e-9·n)",
        d.model1.slope
    );
    println!(
        "2-GPU model: y = {:.3e}·n   (paper: y = 3.706e-9·n)\n",
        d.model2.slope
    );
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "n", "model1(s)", "pipe1(s)", "model2(s)", "pipe2(s)"
    );
    for &(n, t1, t2) in &d.points {
        println!(
            "{:>12} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            n,
            d.model1.predict(n),
            t1,
            d.model2.predict(n),
            t2
        );
    }
    match d.crossover_1gpu() {
        Some(c) => println!(
            "\nPipeData (1 GPU) stops beating the model at n ≈ {:.1e} (paper: ≈ 2.1e9)",
            c as f64
        ),
        None => println!("\nno crossover in the sweep range"),
    }
    let n_big = d.points.last().unwrap().0;
    println!(
        "slowdown vs model at n={:.1e}: {:.2}x (1 GPU), {:.2}x (2 GPUs)  (paper: 0.93x / 0.88x)",
        n_big as f64,
        d.slowdown_1gpu(n_big).unwrap(),
        d.slowdown_2gpu(n_big).unwrap()
    );
    let csv: Vec<String> = d
        .points
        .iter()
        .map(|&(n, t1, t2)| {
            format!(
                "{},{:.4},{:.4},{:.4},{:.4}",
                n,
                d.model1.predict(n),
                t1,
                d.model2.predict(n),
                t2
            )
        })
        .collect();
    let p = write_csv(
        "fig11_lower_bound.csv",
        "n,model1_s,pipedata1_s,model2_s,pipedata2_s",
        &csv,
    );
    println!("wrote {}", p.display());
}
