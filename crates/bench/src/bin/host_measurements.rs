//! Real-machine counterpart of Figures 4 and 6: run the *actual*
//! from-scratch algorithms across thread counts on this host.
//!
//! On the paper's 16/20-core Xeons these curves reproduce Figure 4/6's
//! shapes directly; on a small CI container they mostly document
//! sequential costs (speedups ≈ 1). Either way the qualitative
//! relations the paper states — `qsort ≈ 2× std::sort`, radix ≫
//! comparison sorts on doubles — hold on real silicon, not just in the
//! calibrated model.
//!
//! Usage: `cargo run --release -p hetsort-bench --bin host_measurements [n]`

use std::time::Instant;

use hetsort_algos::introsort::introsort;
use hetsort_algos::merge::par_merge_into;
use hetsort_algos::mergesort::par_mergesort;
use hetsort_algos::qsort::{cmp_f64, qsort};
use hetsort_algos::radix::radix_sort;
use hetsort_algos::radix_par::par_radix_sort;
use hetsort_algos::samplesort::par_samplesort;
use hetsort_bench::write_csv;
use hetsort_workloads::{generate, generate_batch_sorted, Distribution};

fn time<F: FnMut()>(mut f: F) -> f64 {
    // Best of 3 (small, stable; criterion covers the rigorous version).
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    let host = hetsort_algos::par::default_threads();
    let threads: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= host.max(1) * 4)
        .collect();
    let base = generate(Distribution::Uniform, n, 42)
        .expect("valid workload")
        .data;

    println!("=== Figure 4 (real algorithms on this host, n = {n}, {host} hw threads) ===");
    let t_intro = time(|| {
        let mut v = base.clone();
        introsort(&mut v);
    });
    let t_qsort = time(|| {
        let mut v = base.clone();
        qsort(&mut v, cmp_f64);
    });
    let t_radix = time(|| {
        let mut v = base.clone();
        radix_sort(&mut v);
    });
    println!("introsort (std::sort):   {:.4} s", t_intro);
    println!(
        "qsort (fn-ptr cmp):      {:.4} s  ({:.2}x of introsort; paper: ~2x)",
        t_qsort,
        t_qsort / t_intro
    );
    println!(
        "LSD radix:               {:.4} s  ({:.2}x of introsort)",
        t_radix,
        t_radix / t_intro
    );
    let mut rows = vec![
        format!("introsort,1,{t_intro:.6}"),
        format!("qsort,1,{t_qsort:.6}"),
        format!("radix,1,{t_radix:.6}"),
    ];
    println!(
        "\n{:>8} {:>12} {:>12} {:>12}",
        "threads", "mergesort", "samplesort", "par_radix"
    );
    for &p in &threads {
        let tm = time(|| {
            let mut v = base.clone();
            par_mergesort(p, &mut v);
        });
        let ts = time(|| {
            let mut v = base.clone();
            par_samplesort(p, &mut v);
        });
        let tr = time(|| {
            let mut v = base.clone();
            par_radix_sort(p, &mut v);
        });
        println!("{p:>8} {tm:>12.4} {ts:>12.4} {tr:>12.4}");
        rows.push(format!("par_mergesort,{p},{tm:.6}"));
        rows.push(format!("par_samplesort,{p},{ts:.6}"));
        rows.push(format!("par_radix,{p},{tr:.6}"));
    }
    write_csv("host_fig04_sorts.csv", "algorithm,threads,seconds", &rows);

    println!("\n=== Figure 6 (real pair merge, two sorted halves of n = {n}) ===");
    let w = generate_batch_sorted(Distribution::Uniform, n / 2, 2, 7).expect("valid workload");
    let (a, b) = w.split_at(n / 2);
    let mut out = vec![0.0f64; a.len() + b.len()];
    let t1 = time(|| par_merge_into(1, a, b, &mut out));
    let mut rows = Vec::new();
    println!("{:>8} {:>12} {:>9}", "threads", "seconds", "speedup");
    for &p in &threads {
        let t = time(|| par_merge_into(p, a, b, &mut out));
        println!("{p:>8} {t:>12.4} {:>9.2}", t1 / t);
        rows.push(format!("{p},{t:.6},{:.4}", t1 / t));
    }
    write_csv("host_fig06_merge.csv", "threads,seconds,speedup", &rows);
}
