//! Key/value records: running \[5\]'s *actual* workload.
//!
//! Stehle & Jacobsen's Figure 8 sorts 6 GB of 64-bit key / 64-bit value
//! pairs (375 million 16-byte records); the paper's §IV-E reproduction
//! substitutes 8·10⁸ bare 8-byte keys of the same byte volume. With
//! generic element support we can run **both** and compare:
//!
//! * same byte volume → same transfer times (the paper's check), but
//! * the KV run moves half the *elements*, so the CPU merge work halves
//!   while per-element sort bandwidth doubles.
//!
//! Usage: `cargo run --release -p hetsort-bench --bin kv_records`

use hetsort_bench::write_csv;
use hetsort_core::{simulate, Approach, HetSortConfig};
use hetsort_vgpu::platform1;

fn main() {
    println!("=== [5]'s workload vs the paper's substitution (PLATFORM1, BLine) ===\n");

    // The paper's substitution: 8e8 bare keys = 5.96 GiB.
    let keys_cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLine);
    let keys = simulate(keys_cfg, 800_000_000).expect("keys sim");

    // [5]'s actual workload: 3.75e8 16-byte records = 5.59 GiB.
    let kv_cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLine)
        .with_elem_bytes(16.0)
        .with_batch_elems(500_000_000); // sizing is in elements; 2×16 B × 5e8 = 16 GB fits
    let kv = simulate(kv_cfg, 375_000_000).expect("kv sim");

    println!(
        "{:<28} {:>14} {:>14}",
        "", "8e8 keys (8B)", "3.75e8 KV (16B)"
    );
    for tag in ["HtoD", "DtoH", "GPUSort", "MCpyIn", "MCpyOut"] {
        println!(
            "{:<28} {:>14.3} {:>14.3}",
            tag,
            keys.component(tag).unwrap_or(0.0),
            kv.component(tag).unwrap_or(0.0)
        );
    }
    println!(
        "{:<28} {:>14.3} {:>14.3}",
        "literature total", keys.literature_total_s, kv.literature_total_s
    );
    println!(
        "{:<28} {:>14.3} {:>14.3}",
        "full total", keys.total_s, kv.total_s
    );
    println!(
        "\ntransfer times agree within {:.0}% (same byte volume — the paper's §IV-E check),\nwhile the KV run's sort moves the same bytes over half the elements.",
        100.0 * ((keys.component("HtoD").unwrap_or(0.0) - kv.component("HtoD").unwrap_or(0.0))
            / keys.component("HtoD").unwrap_or(f64::INFINITY))
        .abs()
    );

    // Out-of-core KV: the full pipeline on records.
    println!("\n=== Out-of-core KV sort (PipeMerge+ParMemCpy, 2.5e9 records = 37 GiB) ===");
    let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
        .with_elem_bytes(16.0)
        .with_batch_elems(250_000_000)
        .with_par_memcpy();
    let r = simulate(cfg, 2_500_000_000).expect("kv pipe sim");
    println!("{}", r.summary());

    write_csv(
        "ablation_kv_records.csv",
        "workload,n,elem_bytes,htod_s,dtoh_s,sort_s,lit_s,full_s",
        &[
            format!(
                "keys,800000000,8,{:.4},{:.4},{:.4},{:.4},{:.4}",
                keys.component("HtoD").unwrap_or(0.0),
                keys.component("DtoH").unwrap_or(0.0),
                keys.component("GPUSort").unwrap_or(0.0),
                keys.literature_total_s,
                keys.total_s
            ),
            format!(
                "kv,375000000,16,{:.4},{:.4},{:.4},{:.4},{:.4}",
                kv.component("HtoD").unwrap_or(0.0),
                kv.component("DtoH").unwrap_or(0.0),
                kv.component("GPUSort").unwrap_or(0.0),
                kv.literature_total_s,
                kv.total_s
            ),
        ],
    );
}
