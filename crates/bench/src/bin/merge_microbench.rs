//! Branchless merge kernel vs the reference element-wise merge.
//!
//! PR 10's host hot-path work replaces the sequential two-way merge's
//! per-element conditional with a branchless select + index-arithmetic
//! loop and a `copy_from_slice` tail ([`merge_into`] vs
//! [`merge_into_reference`]). On comparison-unpredictable data the
//! reference loop eats a branch mispredict roughly every other element;
//! the branchless loop turns the same decision into a conditional move.
//! This binary times both kernels on the three adversarial interleavings
//! and writes `results/merge_microbench.csv`.
//!
//! The acceptance bar for the kernel work: branchless ≥ 1.3× on the
//! `uniform` and `skewed` cases at full scale. `smoke` mode (CI) runs a
//! small scale and only asserts bit-identity, not speedups — container
//! runners are too noisy to gate on wall clock.
//!
//! Usage: `cargo run --release -p hetsort-bench --bin merge_microbench [smoke|SCALE]`

use std::time::Instant;

use hetsort_algos::merge::{merge_into, merge_into_reference};
use hetsort_algos::multiway::multiway_merge_into;
use hetsort_bench::write_csv;
use hetsort_workloads::{generate, Distribution};

/// Best of `reps` timed runs.
fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn sorted(n: usize, seed: u64) -> Vec<f64> {
    let mut v = generate(Distribution::Uniform, n, seed)
        .expect("valid workload")
        .data;
    hetsort_algos::introsort::introsort(&mut v);
    v
}

/// Equal-length uniform lists: the take-from-`a` decision is a coin
/// flip per element — the branch-mispredict worst case.
fn uniform(n: usize) -> (Vec<f64>, Vec<f64>) {
    (sorted(n / 2, 1), sorted(n / 2, 2))
}

/// Length-skewed lists (3:1) with matched key density: the short
/// list spans one third of the long list's range, so inside the
/// overlap the take-from-`a` decision is still a coin flip (branch
/// mispredict territory), and once the short list exhausts the long
/// tail drains through the `copy_from_slice` fast path.
fn skewed(n: usize) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = sorted(n * 3 / 4, 3).iter().map(|x| x * 3.0).collect();
    (a, sorted(n / 4, 4))
}

/// All keys equal: every decision is the tie rule (take `a` first).
fn constant_keys(n: usize) -> (Vec<f64>, Vec<f64>) {
    (vec![1.5f64; n / 2], vec![1.5f64; n / 2])
}

fn main() {
    let arg = std::env::args().nth(1);
    let smoke = arg.as_deref() == Some("smoke");
    let scale: usize = if smoke {
        1
    } else {
        arg.and_then(|s| s.parse().ok()).unwrap_or(16)
    };
    let n = 262_144 * scale;
    // Best-of-N: the skewed case's drain is DRAM-bandwidth-bound, and
    // VM bandwidth fluctuates — more reps lets best-of find a clean
    // window for both kernels.
    let reps = if smoke { 2 } else { 11 };
    let mut rows = Vec::new();

    println!("=== branchless vs reference sequential merge (n = {n}) ===");
    println!(
        "{:>14} {:>12} {:>12} {:>9}",
        "case", "ref_s", "branchless_s", "speedup"
    );
    for (case, (a, b)) in [
        ("uniform", uniform(n)),
        ("skewed", skewed(n)),
        ("constant_keys", constant_keys(n)),
    ] {
        let mut expect = vec![0.0f64; a.len() + b.len()];
        let mut out = vec![0.0f64; expect.len()];
        let t_ref = time(reps, || merge_into_reference(&a, &b, &mut expect));
        let t_opt = time(reps, || merge_into(&a, &b, &mut out));
        assert!(
            expect
                .iter()
                .zip(out.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "{case}: branchless merge diverged from reference"
        );
        let speedup = t_ref / t_opt;
        println!("{case:>14} {t_ref:>12.5} {t_opt:>12.5} {speedup:>8.2}x");
        rows.push(format!(
            "{case},{},{t_ref:.6},{t_opt:.6},{speedup:.3}",
            expect.len()
        ));
    }

    // Loser-tree throughput for the record (the prefetch change has no
    // reference twin to diff against — correctness is pinned by the
    // adversarial differential suite).
    let lists: Vec<Vec<f64>> = (0..8).map(|i| sorted(n / 8, 10 + i as u64)).collect();
    let views: Vec<&[f64]> = lists.iter().map(|l| l.as_slice()).collect();
    let total: usize = views.iter().map(|l| l.len()).sum();
    let mut out = vec![0.0f64; total];
    let t = time(reps, || multiway_merge_into(&views, &mut out));
    let meps = total as f64 / t / 1e6;
    println!("\nloser tree k=8: {total} elems in {t:.5} s ({meps:.1} M elem/s)");
    rows.push(format!("losertree_k8,{total},{t:.6},{t:.6},1.000"));

    // Smoke mode is a correctness gate, not a measurement — don't
    // clobber the committed full-scale results.
    if smoke {
        println!("smoke: bit-identity verified, results/ left untouched");
    } else {
        let path = write_csv(
            "merge_microbench.csv",
            "case,n,ref_s,branchless_s,speedup",
            &rows,
        );
        println!("wrote {}", path.display());
    }
}
