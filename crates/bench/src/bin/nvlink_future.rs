//! §V's closing research direction, prototyped: "Sorting in the NVLink
//! era using multi-GPU systems needs to address the problem of merging
//! using the GPUs, such that the CPU does not need to carry out all
//! merging tasks."
//!
//! Two hand-built pipelines on an NVLink-class platform (75 GB/s link,
//! V100-class device), n = 4·10⁹ over 8 batches in 2 streams:
//!
//! * **CPU-merge** (the paper's architecture): sort batches on the GPU,
//!   ship them back, pair-merge + multiway-merge on the CPU.
//! * **GPU-merge-assist**: after two consecutive batches of a stream
//!   pair are sorted, merge them *on the device* (bandwidth-bound, ~30
//!   G elem/s on HBM2 vs ~1.2 G elem/s for the CPU's bus-bound merge),
//!   ship the doubled runs back, and let the CPU multiway-merge half as
//!   many, longer runs.
//!
//! The device DAGs are built directly on [`hetsort_vgpu::Machine`] —
//! this is a forward-looking experiment, not one of the paper's
//! figures.
//!
//! Usage: `cargo run --release -p hetsort-bench --bin nvlink_future`

use hetsort_bench::write_csv;
use hetsort_core::{simulate, Approach, HetSortConfig};
use hetsort_vgpu::{platform1, Machine, PlatformSpec, TransferDir};

fn nvlink_platform() -> PlatformSpec {
    let mut p = platform1();
    p.name = "NVLINK-ERA".into();
    p.pcie.pinned_bps = 75.0e9;
    p.pcie.pageable_bps = 30.0e9;
    p.pcie.bidir_total_bps = 120.0e9;
    p.pcie.chunk_sync_s = 0.2e-3;
    p.gpus[0].global_mem_bytes = 32.0 * 1024.0 * 1024.0 * 1024.0;
    p.gpus[0].sort_keys_per_s = 3.2e9;
    p.gpus[0].mem_bw_bps = 900.0e9;
    p
}

/// GPU-merge-assist pipeline, hand-built with double buffering: two
/// buffer *sets* (A/B) of two streams each alternate between pairs, so
/// pair k+1 uploads and sorts in set B while pair k's device-merged run
/// drains to the host from set A. The 32 GiB device affords the four
/// slots (4 × 2·b_s·8 B = 16 GB at b_s = 2.5·10⁸).
fn gpu_merge_assist(plat: &PlatformSpec, n: usize, bs: usize, ps: usize) -> (f64, f64) {
    let nb = n / bs;
    assert_eq!(nb % 2, 0, "demo assumes even batch count");
    let mut m = Machine::new(plat.clone());
    let sets = [
        [m.stream("sA0"), m.stream("sA1")],
        [m.stream("sB0"), m.stream("sB1")],
    ];
    let elem_bytes = 8.0;
    let chunks = bs / ps;

    // One pinned buffer per stream.
    let mut allocs = [[None; 2]; 2];
    for (si, set) in sets.iter().enumerate() {
        let _ = set;
        for slot in allocs[si].iter_mut() {
            *slot = Some(m.pinned_alloc(elem_bytes * ps as f64, &[], None));
        }
    }

    let mut merged_outs = Vec::new();
    for k in 0..nb / 2 {
        let set = k % 2;
        let queues = sets[set];
        let mut sorts = Vec::new();
        for half in 0..2 {
            let q = queues[half];
            let mut last = allocs[set][half].expect("alloc");
            for c in 0..chunks {
                let key = (2 * k + half) as u64 * 10_000 + c as u64;
                let st =
                    m.host_memcpy(true, elem_bytes * ps as f64, 1, Some(q), &[last], None, key);
                last = m.transfer(
                    TransferDir::HtoD,
                    0,
                    elem_bytes * ps as f64,
                    true,
                    true,
                    Some(q),
                    &[st],
                    None,
                    key,
                );
            }
            sorts.push(m.gpu_sort(0, bs as f64, Some(q), &[last], None, (2 * k + half) as u64));
        }
        // Device merge of the two sorted runs (exclusive on the GPU).
        let gm = m.gpu_merge(
            0,
            2.0 * bs as f64,
            elem_bytes,
            Some(queues[0]),
            &sorts,
            None,
        );
        // Ship the merged run back through this set's first stream; the
        // other set's next pair proceeds concurrently.
        let mut last = gm;
        for c in 0..2 * chunks {
            let key = k as u64 * 100_000 + c as u64;
            let dt = m.transfer(
                TransferDir::DtoH,
                0,
                elem_bytes * ps as f64,
                true,
                true,
                Some(queues[0]),
                &[last],
                None,
                key,
            );
            last = m.host_memcpy(
                false,
                elem_bytes * ps as f64,
                1,
                Some(queues[0]),
                &[dt],
                None,
                key,
            );
        }
        merged_outs.push(last);
    }
    // CPU multiway merge of nb/2 double-length runs.
    let mw = m.multiway_merge(n as f64, nb / 2, plat.cpu.cores, &merged_outs, None);
    let tl = m.run().expect("gpu-merge-assist sim");
    (tl.makespan(), tl.span(mw).duration())
}

fn main() {
    let plat = nvlink_platform();
    let n = 4_000_000_000usize;
    let bs = 250_000_000usize; // 4 double-buffered slots fit in 32 GiB
    let ps = 1_000_000usize;

    // Baseline: the paper's architecture on the same platform.
    let cpu_arch = simulate(
        HetSortConfig::paper_defaults(plat.clone(), Approach::PipeMerge)
            .with_batch_elems(bs)
            .with_par_memcpy(),
        n,
    )
    .expect("baseline sim");
    let cpu_merge_time = cpu_arch.component("MultiwayMerge").unwrap_or(0.0)
        + cpu_arch.component("PairMerge").unwrap_or(0.0);

    let (assist_total, assist_mw) = gpu_merge_assist(&plat, n, bs, ps);

    println!(
        "=== §V prototype: who should merge in the NVLink era? (n = 4e9, {}) ===\n",
        plat.name
    );
    println!(
        "{:<34} {:>10} {:>16}",
        "architecture", "total(s)", "CPU merge (s)"
    );
    println!(
        "{:<34} {:>10.3} {:>16.3}",
        "paper (all merging on CPU)", cpu_arch.total_s, cpu_merge_time
    );
    println!(
        "{:<34} {:>10.3} {:>16.3}",
        "GPU-merge assist (pairs on GPU)", assist_total, assist_mw
    );
    println!(
        "\nDevice pair-merging shrinks the CPU's share and the end-to-end time by {:.0}% —\nexactly the paper's closing argument for GPU-side merging.",
        100.0 * (cpu_arch.total_s - assist_total) / cpu_arch.total_s
    );
    write_csv(
        "ablation_nvlink_gpu_merge.csv",
        "architecture,total_s,cpu_merge_s",
        &[
            format!("cpu_merge,{:.4},{:.4}", cpu_arch.total_s, cpu_merge_time),
            format!("gpu_merge_assist,{:.4},{:.4}", assist_total, assist_mw),
        ],
    );
}
