//! §III-D3's rejected alternatives, made testable.
//!
//! The paper: "We find that merging sublists in an 'online' fashion
//! (i.e., as they are produced on the GPU), or using a merge tree to
//! determine optimal merges, results in delaying the multiway merging
//! procedure, and thus degrades performance."
//!
//! This binary runs all three pipelined-merge strategies at Figure 9's
//! scale and shows the paper's heuristic winning.
//!
//! Usage: `cargo run --release -p hetsort-bench --bin rejected_strategies`

use hetsort_bench::write_csv;
use hetsort_core::{simulate, Approach, HetSortConfig, PairStrategy};
use hetsort_vgpu::platform1;

fn main() {
    println!("=== §III-D3 strategies, PipeMerge on PLATFORM1, b_s = 5e8 ===\n");
    println!(
        "{:>12} {:>16} {:>12} {:>12}",
        "n", "PaperHeuristic", "Online", "MergeTree"
    );
    let mut rows = Vec::new();
    for i in [2usize, 3, 4, 5] {
        let n = i * 1_000_000_000;
        let mut totals = Vec::new();
        for strategy in [
            PairStrategy::PaperHeuristic,
            PairStrategy::Online,
            PairStrategy::MergeTree,
        ] {
            let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
                .with_batch_elems(500_000_000)
                .with_pair_strategy(strategy);
            totals.push(simulate(cfg, n).expect("sim").total_s);
        }
        println!(
            "{:>12} {:>16.3} {:>12.3} {:>12.3}",
            n, totals[0], totals[1], totals[2]
        );
        rows.push(format!(
            "{n},{:.4},{:.4},{:.4}",
            totals[0], totals[1], totals[2]
        ));
    }
    println!(
        "\nThe heuristic wins at every size: the rejected strategies re-merge\n\
         data (Online) or replace the cache-efficient multiway merge with\n\
         giant pairwise merges whose upper tree levels cannot start until\n\
         lower levels finish (MergeTree) — both delay completion, exactly\n\
         as the paper reports."
    );
    write_csv(
        "ablation_rejected_strategies.csv",
        "n,paper_heuristic_s,online_s,merge_tree_s",
        &rows,
    );
}
