//! Self-scheduling vs round-robin on skewed merge workloads.
//!
//! The paper's CPU merge layer (GNU parallel-mode model) partitions each
//! parallel region statically: one co-rank part per thread. Under skew —
//! pathological list-length ratios or heavy key duplication — those
//! parts degenerate: every part still drags the full fan-in `k` through
//! the loser tree even when most of its input comes from one list. The
//! chunked self-scheduling runtime over-decomposes the region (default
//! 4 chunks per worker) so narrow parts intersect few lists, and the
//! merge kernel drops empty sublists before building the tree: fan-in 1
//! becomes a memcpy, fan-in 2 a pairwise merge.
//!
//! This binary times both policies on two adversarial workloads and
//! writes `results/sched_microbench.csv`. The acceptance bar for the
//! skew-resistance work: `self` ≥ 1.3× faster than `rr` on the skewed
//! merge at ≥ 8 threads.
//!
//! Usage: `cargo run --release -p hetsort-bench --bin sched_microbench [scale]`

use std::time::Instant;

use hetsort_algos::multiway::par_multiway_merge_into_cfg;
use hetsort_algos::par::SchedCfg;
use hetsort_algos::verify::is_sorted;
use hetsort_bench::write_csv;
use hetsort_workloads::{generate, Distribution};

/// Best of `reps` timed runs (adversarially small on CI containers).
fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn sorted(dist: Distribution, n: usize, seed: u64) -> Vec<f64> {
    let mut v = generate(dist, n, seed).expect("valid workload").data;
    hetsort_algos::introsort::introsort(&mut v);
    v
}

/// One list ~10⁴× longer than its siblings, short elements spread
/// uniformly: a coarse static part sees contributions from most of the
/// `k` lists, a narrow self-scheduled chunk from only a handful.
fn length_skew(scale: usize) -> Vec<Vec<f64>> {
    let long = 2_000_000 * scale;
    let mut lists = vec![sorted(Distribution::Uniform, long, 1)];
    for i in 0..32 {
        lists.push(sorted(Distribution::Uniform, long / 10_000 / 32, 2 + i));
    }
    lists
}

/// All keys equal across many equal lists: co-rank ties resolve by list
/// index, so the merged output is the concatenation — narrow chunks
/// intersect 1–2 lists (memcpy / pairwise), coarse parts drag the full
/// loser tree over constant comparisons.
fn constant_keys(scale: usize) -> Vec<Vec<f64>> {
    (0..64).map(|_| vec![1.5f64; 31_250 * scale]).collect()
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let self_cfg = SchedCfg::self_sched();
    let rr_cfg = SchedCfg::round_robin_static();
    let mut rows = Vec::new();

    println!(
        "=== self-scheduling vs round-robin on skewed merges (scale {scale}, {} hw threads) ===",
        hetsort_algos::par::default_threads()
    );
    for (case, lists) in [
        ("length_skew_1e4", length_skew(scale)),
        ("constant_keys", constant_keys(scale)),
    ] {
        let views: Vec<&[f64]> = lists.iter().map(|l| l.as_slice()).collect();
        let total: usize = views.iter().map(|l| l.len()).sum();
        let mut out = vec![0.0f64; total];
        println!("\n{case}: k = {}, total = {total} elements", views.len());
        println!(
            "{:>8} {:>12} {:>12} {:>9}",
            "threads", "rr_s", "self_s", "speedup"
        );
        for threads in [1usize, 2, 4, 8, 16] {
            let t_rr = time(5, || {
                par_multiway_merge_into_cfg(&rr_cfg, threads, &views, &mut out);
            });
            assert!(is_sorted(&out), "{case}: rr output unsorted");
            let t_self = time(5, || {
                par_multiway_merge_into_cfg(&self_cfg, threads, &views, &mut out);
            });
            assert!(is_sorted(&out), "{case}: self output unsorted");
            let speedup = t_rr / t_self;
            println!("{threads:>8} {t_rr:>12.5} {t_self:>12.5} {speedup:>8.2}x");
            rows.push(format!(
                "{case},{threads},{},{t_rr:.6},{t_self:.6},{speedup:.3}",
                views.len()
            ));
        }
    }

    let path = write_csv(
        "sched_microbench.csv",
        "case,threads,k,rr_s,self_s,speedup",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
