//! Table II: the hardware platforms, as modeled.

use hetsort_vgpu::{platform1, platform2};

fn main() {
    println!("=== Table II: hardware platforms (as modeled) ===");
    for p in [platform1(), platform2()] {
        println!("\n{}", p.name);
        println!("  CPU   cores: {}", p.cpu.cores);
        println!(
            "  CPU   memcpy/core: {:.1} GB/s, bus: {:.0} GB/s traffic",
            p.cpu.memcpy_core_bps / 1e9,
            p.cpu.bus_traffic_bps / 1e9
        );
        for g in &p.gpus {
            println!(
                "  GPU   {}: {:.0} GiB, sort {:.2e} keys/s",
                g.name,
                g.global_mem_bytes / (1024.0 * 1024.0 * 1024.0),
                g.sort_keys_per_s
            );
        }
        println!(
            "  PCIe  pinned {:.0} GB/s per dir, pageable {:.0} GB/s, bidir cap {:.0} GB/s, sync {:.1} ms/chunk",
            p.pcie.pinned_bps / 1e9,
            p.pcie.pageable_bps / 1e9,
            p.pcie.bidir_total_bps / 1e9,
            p.pcie.chunk_sync_s * 1e3
        );
        println!(
            "  Pinned alloc: {:.1} ms + {:.3} ns/B",
            p.pinned_alloc.cost.base_s * 1e3,
            p.pinned_alloc.cost.per_unit_s * 1e9
        );
        println!(
            "  Max b_s (n_s=2): {:.3e} elements",
            p.max_batch_elems(2) as f64
        );
    }
}
