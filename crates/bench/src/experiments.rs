//! The experiment implementations, one per reproduced table/figure.
//!
//! Every function is deterministic and pure-simulation (paper-scale);
//! the functional counterparts run in the test suite and the criterion
//! benches at host scale.

use hetsort_core::reference::reference_time;
use hetsort_core::{simulate, Approach, HetSortConfig, Plan, StagingMode, TimingReport};
use hetsort_model::{Efficiency, LowerBoundModel};
use hetsort_vgpu::calib::amdahl_speedup;
use hetsort_vgpu::{platform1, platform2, PlatformSpec};

/// Thread counts swept in Figures 4 and 6.
pub const THREAD_SWEEP: [u32; 9] = [1, 2, 3, 4, 6, 8, 10, 12, 16];

// ---------------------------------------------------------------- Fig 1-3

/// Figures 1–3: illustrative schedules as ASCII Gantt charts.
///
/// Returns `(fig1, fig2, fig3)` renderings: BLINEMULTI with n_b = 6
/// (merge after all batches), the PIPEDATA stream interleave, and
/// PIPEMERGE's pipelined pair merges.
pub fn fig01_03() -> (String, String, String) {
    let mk = |approach: Approach| {
        // Small scaled-down instance: 6 batches, chunky staging.
        let cfg = HetSortConfig::paper_defaults(platform1(), approach)
            .with_batch_elems(100_000_000)
            .with_pinned_elems(20_000_000);
        let plan = Plan::build(cfg, 600_000_000).expect("plan");
        let r = hetsort_core::exec_sim::simulate_plan(&plan).expect("sim");
        r.timeline.gantt(96)
    };
    (
        mk(Approach::BLineMulti),
        mk(Approach::PipeData),
        mk(Approach::PipeMerge),
    )
}

// ---------------------------------------------------------------- Fig 4

/// One Figure 4 row: library sort times at a given size and threads.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Input size.
    pub n: usize,
    /// Threads.
    pub threads: u32,
    /// GNU parallel sort (the reference implementation).
    pub gnu_s: f64,
    /// Intel-TBB-like parallel sort.
    pub tbb_s: f64,
    /// Sequential `std::sort` (introsort).
    pub std_sort_s: f64,
    /// Sequential `qsort` (opaque comparator ≈ 2×).
    pub qsort_s: f64,
}

impl Fig4Row {
    /// GNU speedup vs 1 thread at the same `n` (needs the 1-thread row).
    pub fn speedup_vs(&self, one_thread: &Fig4Row) -> f64 {
        one_thread.gnu_s / self.gnu_s
    }

    /// CSV row.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{:.6},{:.6},{:.6},{:.6}",
            self.n, self.threads, self.gnu_s, self.tbb_s, self.std_sort_s, self.qsort_s
        )
    }
}

/// Figure 4: CPU sorting scalability on PLATFORM1.
///
/// GNU times come from the calibrated reference model; the TBB-like
/// sort uses a slightly faster sequential constant but a lower parallel
/// fraction cap (value-partitioned sorts scale worse on big inputs —
/// exactly the paper's observation that TBB loses at large n).
pub fn fig04(plat: &PlatformSpec) -> Vec<Fig4Row> {
    let sizes = [1_000_000usize, 10_000_000, 100_000_000, 1_000_000_000];
    let mut rows = Vec::new();
    for &n in &sizes {
        let t_seq = plat.cpu.sort_ns_per_elem_level * 1e-9 * n as f64 * (n as f64).log2();
        for &p in &THREAD_SWEEP {
            let gnu = reference_time(plat, n, p);
            let phi_tbb = plat.cpu.sort_phi(n as f64).min(0.90);
            let tbb = 0.9 * t_seq / amdahl_speedup(phi_tbb, p as usize);
            rows.push(Fig4Row {
                n,
                threads: p,
                gnu_s: gnu,
                tbb_s: tbb,
                std_sort_s: t_seq,
                qsort_s: 2.0 * t_seq,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- Fig 5

/// One Figure 5 point: BLINE vs the 20-thread reference on PLATFORM2.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Input size (n_b = 1).
    pub n: usize,
    /// BLINE full end-to-end seconds.
    pub bline_s: f64,
    /// Reference implementation seconds.
    pub ref_s: f64,
}

impl Fig5Row {
    /// The right-axis ratio of Figure 5.
    pub fn ratio(&self) -> f64 {
        self.ref_s / self.bline_s
    }

    /// CSV row.
    pub fn csv(&self) -> String {
        format!(
            "{},{:.6},{:.6},{:.4}",
            self.n,
            self.bline_s,
            self.ref_s,
            self.ratio()
        )
    }
}

/// Figure 5: single-batch BLINE sweep on PLATFORM2.
pub fn fig05() -> Vec<Fig5Row> {
    let plat = platform2();
    let sizes = [
        100_000_000usize,
        200_000_000,
        300_000_000,
        400_000_000,
        500_000_000,
        600_000_000,
        700_000_000,
    ];
    sizes
        .iter()
        .map(|&n| {
            // Figure 5 reproduces the paper's measured BLINE, which
            // stages through the single-buffer pinned protocol.
            let cfg = HetSortConfig::paper_defaults(plat.clone(), Approach::BLine)
                .with_staging(StagingMode::Paper);
            let r = simulate(cfg, n).expect("fig5 sim");
            Fig5Row {
                n,
                bline_s: r.total_s,
                ref_s: reference_time(&plat, n, plat.cpu.cores),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig 6

/// One Figure 6 point: pair-merge of two 0.5·10⁹-element lists.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Threads.
    pub threads: u32,
    /// Merge seconds.
    pub time_s: f64,
    /// Speedup vs one thread.
    pub speedup: f64,
}

impl Fig6Row {
    /// CSV row.
    pub fn csv(&self) -> String {
        format!("{},{:.6},{:.4}", self.threads, self.time_s, self.speedup)
    }
}

/// Figure 6: pairwise-merge scalability on PLATFORM1 (n = 10⁹ total).
pub fn fig06() -> Vec<Fig6Row> {
    let plat = platform1();
    let probe = |threads: u32| {
        let mut m = hetsort_vgpu::Machine::new(plat.clone());
        let op = m.pair_merge(1e9, threads, &[], None);
        m.run().expect("fig6 sim").span(op).duration()
    };
    let t1 = probe(1);
    THREAD_SWEEP
        .iter()
        .map(|&p| {
            let t = probe(p);
            Fig6Row {
                threads: p,
                time_s: t,
                speedup: t1 / t,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig 7

/// Figure 7: the three "related-work" components at n = 8·10⁸ on
/// PLATFORM1, ours vs the values estimated from \[5\]'s Figure 8.
#[derive(Debug, Clone)]
pub struct Fig7Data {
    /// Our component seconds: (HtoD, DtoH, GPUSort).
    pub ours: (f64, f64, f64),
    /// Related work's components (HtoD, DtoH, GPUSort≈CUB estimate).
    pub related: (f64, f64, f64),
    /// The full report (for the omitted components).
    pub report: TimingReport,
}

/// Figure 7 experiment.
pub fn fig07() -> Fig7Data {
    // §IV-E measures the paper's single-buffer staging protocol.
    let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLine)
        .with_staging(StagingMode::Paper);
    let r = simulate(cfg, 800_000_000).expect("fig7 sim");
    Fig7Data {
        // BLINE always transfers and sorts; a missing line here means
        // the sim lowering broke, so zero is the honest render.
        ours: (
            r.component("HtoD").unwrap_or(0.0),
            r.component("DtoH").unwrap_or(0.0),
            r.component("GPUSort").unwrap_or(0.0),
        ),
        related: (
            hetsort_core::accounting::RELATED_WORK_HTOD_S,
            hetsort_core::accounting::RELATED_WORK_DTOH_S,
            0.43, // CUB sort bar of [5] Fig. 8, estimated like the paper does
        ),
        report: r,
    }
}

// ---------------------------------------------------------------- Fig 8

/// Figure 8: components and both end-to-end accountings vs n (BLINE,
/// PLATFORM1).
pub fn fig08() -> Vec<hetsort_core::accounting::OverheadRow> {
    let sizes = [
        200_000_000usize,
        400_000_000,
        600_000_000,
        800_000_000,
        1_000_000_000,
    ];
    sizes
        .iter()
        .map(|&n| {
            // Same single-buffer protocol as Figure 7 (§IV-E).
            let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLine)
                .with_staging(StagingMode::Paper);
            let r = simulate(cfg, n).expect("fig8 sim");
            hetsort_core::accounting::OverheadRow::from_report(&r)
        })
        .collect()
}

// ---------------------------------------------------------------- Fig 9/10

/// One multi-approach sweep point.
#[derive(Debug, Clone)]
pub struct ApproachSweepRow {
    /// Input size.
    pub n: usize,
    /// GPUs used.
    pub n_gpus: usize,
    /// `(approach label, total seconds)` per approach, plus the
    /// reference implementation.
    pub totals: Vec<(String, f64)>,
}

impl ApproachSweepRow {
    /// Total of a labeled series.
    pub fn total(&self, label: &str) -> Option<f64> {
        self.totals
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, t)| t)
    }

    /// CSV row (label order fixed by the caller's header).
    pub fn csv(&self) -> String {
        let mut s = format!("{},{}", self.n, self.n_gpus);
        for (_, t) in &self.totals {
            s.push_str(&format!(",{t:.6}"));
        }
        s
    }
}

/// The four approaches of §III-D4 in figure order.
fn approaches() -> Vec<(&'static str, Approach, bool)> {
    vec![
        ("BLineMulti", Approach::BLineMulti, false),
        ("PipeData", Approach::PipeData, false),
        ("PipeMerge", Approach::PipeMerge, false),
        ("PipeMerge+ParMemCpy", Approach::PipeMerge, true),
    ]
}

/// Shared sweep driver for Figures 9 and 10.
pub fn approach_sweep(
    plat: &PlatformSpec,
    batch_elems: usize,
    sizes: &[usize],
) -> Vec<ApproachSweepRow> {
    sizes
        .iter()
        .map(|&n| {
            let mut totals = Vec::new();
            for (label, a, pm) in approaches() {
                // Figure reproductions replay the paper's single-buffer
                // staging protocol (DESIGN.md § 19).
                let mut cfg = HetSortConfig::paper_defaults(plat.clone(), a)
                    .with_batch_elems(batch_elems)
                    .with_staging(StagingMode::Paper);
                if pm {
                    cfg = cfg.with_par_memcpy();
                }
                let r = simulate(cfg, n).expect("sweep sim");
                totals.push((label.to_string(), r.total_s));
            }
            totals.push((
                "Reference".to_string(),
                reference_time(plat, n, plat.cpu.cores),
            ));
            ApproachSweepRow {
                n,
                n_gpus: plat.n_gpus(),
                totals,
            }
        })
        .collect()
}

/// Figure 9: PLATFORM1, b_s = 5·10⁸, n = 10⁹..5·10⁹.
pub fn fig09() -> Vec<ApproachSweepRow> {
    let sizes: Vec<usize> = (1..=5).map(|i| i * 1_000_000_000).collect();
    approach_sweep(&platform1(), 500_000_000, &sizes)
}

/// Figure 10: PLATFORM2, b_s = 3.5·10⁸, multiples of b_s·n_s·n_GPU,
/// with both the 1-GPU (truncated platform) and 2-GPU variants.
pub fn fig10() -> (Vec<ApproachSweepRow>, Vec<ApproachSweepRow>) {
    let sizes: Vec<usize> = (1..=7).map(|i| i * 700_000_000).collect();
    let p2 = platform2();
    let mut p2_single = p2.clone();
    p2_single.gpus.truncate(1);
    (
        approach_sweep(&p2_single, 350_000_000, &sizes),
        approach_sweep(&p2, 350_000_000, &sizes),
    )
}

// ---------------------------------------------------------------- Fig 11

/// Figure 11 data: the two lower-bound models and PIPEDATA sweeps.
#[derive(Debug, Clone)]
pub struct Fig11Data {
    /// 1-GPU model.
    pub model1: LowerBoundModel,
    /// 2-GPU model.
    pub model2: LowerBoundModel,
    /// `(n, pipedata_1gpu_s, pipedata_2gpu_s)`.
    pub points: Vec<(usize, f64, f64)>,
}

impl Fig11Data {
    /// Efficiency (paper's "slowdown") of the 1-GPU run at `n`.
    pub fn slowdown_1gpu(&self, n: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(pn, _, _)| pn == n)
            .map(|&(pn, t, _)| Efficiency::new(&self.model1, pn, t).slowdown())
    }

    /// Efficiency of the 2-GPU run at `n`.
    pub fn slowdown_2gpu(&self, n: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(pn, _, _)| pn == n)
            .map(|&(pn, _, t)| Efficiency::new(&self.model2, pn, t).slowdown())
    }

    /// First sweep size at which the 1-GPU PIPEDATA stops beating the
    /// model (the paper's ≈ 2.1·10⁹ crossover).
    pub fn crossover_1gpu(&self) -> Option<usize> {
        self.points
            .iter()
            .find(|&&(n, t, _)| t > self.model1.predict(n))
            .map(|&(n, _, _)| n)
    }
}

/// Figure 11 experiment.
pub fn fig11() -> Fig11Data {
    let p2 = platform2();
    let mut p2_single = p2.clone();
    p2_single.gpus.truncate(1);
    let model1 = LowerBoundModel::one_gpu(&p2);
    let model2 = LowerBoundModel::two_gpu(&p2);
    let sizes: Vec<usize> = (2..=7).map(|i| i * 700_000_000).collect();
    let points = sizes
        .iter()
        .map(|&n| {
            let c1 = HetSortConfig::paper_defaults(p2_single.clone(), Approach::PipeData)
                .with_batch_elems(350_000_000)
                .with_staging(StagingMode::Paper);
            let c2 = HetSortConfig::paper_defaults(p2.clone(), Approach::PipeData)
                .with_batch_elems(350_000_000)
                .with_staging(StagingMode::Paper);
            (
                n,
                simulate(c1, n).expect("fig11 1gpu").total_s,
                simulate(c2, n).expect("fig11 2gpu").total_s,
            )
        })
        .collect();
    Fig11Data {
        model1,
        model2,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_shapes() {
        let rows = fig04(&platform1());
        assert_eq!(rows.len(), 4 * THREAD_SWEEP.len());
        // qsort ≈ 2× std::sort everywhere.
        for r in &rows {
            assert!((r.qsort_s / r.std_sort_s - 2.0).abs() < 1e-9);
        }
        // GNU at 1 thread ≈ std::sort (the paper's observation).
        for r in rows.iter().filter(|r| r.threads == 1) {
            assert!((r.gnu_s / r.std_sort_s - 1.0).abs() < 0.02, "{r:?}");
        }
        // TBB slower than GNU at n=1e9, 16 threads; not slower at 1e6.
        let big = rows
            .iter()
            .find(|r| r.n == 1_000_000_000 && r.threads == 16)
            .unwrap();
        assert!(big.tbb_s > big.gnu_s);
        let small = rows
            .iter()
            .find(|r| r.n == 1_000_000 && r.threads == 16)
            .unwrap();
        assert!(small.tbb_s < small.gnu_s * 1.05);
    }

    #[test]
    fn fig05_ratio_band() {
        let rows = fig05();
        for r in rows.iter().filter(|r| r.n >= 180_000_000) {
            let ratio = r.ratio();
            assert!((1.15..1.45).contains(&ratio), "n={} ratio={ratio}", r.n);
        }
    }

    #[test]
    fn fig06_saturates_near_8x() {
        let rows = fig06();
        let last = rows.last().unwrap();
        assert!((last.speedup - 8.14).abs() < 0.7, "{}", last.speedup);
        // Monotone nondecreasing speedups.
        for w in rows.windows(2) {
            assert!(w[1].speedup >= w[0].speedup - 1e-9);
        }
    }

    #[test]
    fn fig09_orderings() {
        let rows = fig09();
        for r in &rows {
            let bl = r.total("BLineMulti").unwrap();
            let pd = r.total("PipeData").unwrap();
            let pmc = r.total("PipeMerge+ParMemCpy").unwrap();
            let rf = r.total("Reference").unwrap();
            assert!(pd < bl, "n={}", r.n);
            assert!(pmc <= pd * 1.01, "n={}", r.n);
            assert!(pmc < rf, "hybrid must beat the CPU reference, n={}", r.n);
            // All approaches beat the reference (the paper's headline).
            assert!(bl < rf, "n={}", r.n);
        }
    }

    #[test]
    fn fig11_crossover_exists() {
        let d = fig11();
        let c = d.crossover_1gpu().expect("crossover expected");
        // Paper: performance degrades beyond ≈ 2.1e9.
        assert!(
            (1_400_000_000..=3_500_000_000).contains(&c),
            "crossover at {c}"
        );
        // Slowdown at 4.9e9 in the paper's ballpark (0.93 / 0.88).
        let s1 = d.slowdown_1gpu(4_900_000_000).unwrap();
        let s2 = d.slowdown_2gpu(4_900_000_000).unwrap();
        assert!((0.75..1.05).contains(&s1), "s1={s1}");
        assert!((0.75..1.15).contains(&s2), "s2={s2}");
    }
}
