//! The pinned scenario matrix behind `bench_gate` (the benchmark
//! regression gate).
//!
//! The matrix replays every paper approach on both platforms at fixed
//! sizes through the *simulated* executor — deterministic, so a result
//! drifts only when someone changes the cost model, the planner, or the
//! simulator itself. `bench_gate --write-baseline` freezes the current
//! numbers into `BENCH.json`; CI replays the matrix and fails when any
//! scenario exceeds the committed tolerance bands
//! ([`hetsort_obs::Tolerance`]).

use hetsort_core::exec_sim::simulate_plan;
use hetsort_core::{Approach, HetSortConfig, HetSortError, HybridMode, Plan};
use hetsort_obs::{BenchDoc, ScenarioResult};
use hetsort_serve::{synthetic_jobs, ServeBudget, ServeConfig, SortService, MIX_COALESCE_ELEMS};
use hetsort_vgpu::{platform1, platform2, PlatformSpec};

/// Paper-scale input for the multi-batch scenarios (§IV: 2×10⁹ keys).
pub const PAPER_N: usize = 2_000_000_000;

/// Input size of the pinned hybrid scenarios (5×10⁹ keys — large
/// enough that the pair-merge lane, not the GPUs, sets the pace).
pub const HYBRID_N: usize = 5_000_000_000;

/// Batch size of the pinned hybrid scenarios.
pub const HYBRID_BATCH: usize = 350_000_000;

/// Job count of the pinned serve-throughput scenario.
pub const SERVE_JOBS: usize = 150;

/// Mix seed of the pinned serve-throughput scenario.
pub const SERVE_SEED: u64 = 42;

/// How a scenario executes.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// One configuration through the simulated executor.
    Simulated,
    /// The multi-tenant service over the deterministic synthetic mix;
    /// `total_s` is the virtual makespan (all durations sim-backed, so
    /// the gate pins service throughput exactly like any other run).
    Serve {
        /// Jobs in the mix.
        jobs: usize,
        /// Mix seed.
        seed: u64,
    },
}

/// One pinned gate scenario: a fully determined simulated run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable id, e.g. `"p1/pipedata/n2e9"` — the gate's join key.
    pub id: String,
    /// Short platform key (`p1`/`p2`).
    pub platform_key: &'static str,
    /// Approach label as the paper spells it (`PIPEDATA`, `PARMEMCPY`...).
    pub label: &'static str,
    /// The full run configuration (for `Serve`, the platform carrier —
    /// the mix builds its own per-job configs).
    pub config: HetSortConfig,
    /// Input size in elements (for `Serve`, total elements submitted).
    pub n: usize,
    /// Execution mode.
    pub kind: ScenarioKind,
}

fn scenario(
    platform_key: &'static str,
    platform: &PlatformSpec,
    label: &'static str,
    approach: Approach,
    par_memcpy: bool,
    n: Option<usize>,
) -> Scenario {
    let mut config = HetSortConfig::paper_defaults(platform.clone(), approach);
    if par_memcpy {
        config = config.with_par_memcpy();
    }
    // BLINE is single-batch by definition: its input is one full batch.
    let n = n.unwrap_or(config.batch_elems);
    let ntag = if n == PAPER_N {
        "n2e9".to_string()
    } else {
        format!("n{n}")
    };
    Scenario {
        id: format!("{platform_key}/{}/{ntag}", label.to_lowercase()),
        platform_key,
        label,
        config,
        n,
        kind: ScenarioKind::Simulated,
    }
}

/// The hybrid scenario for one platform: PIPEMERGE with half the pair
/// merges routed to the full CPU merge pool ([`DagOp::CpuMerge`]
/// lowering).
///
/// The pinned pair shows the paper's §V trade-off from both sides: on
/// the two-GPU platform the devices outrun the reserved-core pair
/// lane, so draining trailing merges with every core beats the
/// GPU-only plan; on the single-GPU platform the heuristic's core
/// split already keeps up and the full pool only steals bandwidth
/// from staging. The gate pins both outcomes.
///
/// [`DagOp::CpuMerge`]: hetsort_core::DagOp::CpuMerge
fn hybrid_scenario(platform_key: &'static str, platform: &PlatformSpec) -> Scenario {
    let config = HetSortConfig::paper_defaults(platform.clone(), Approach::PipeMerge)
        .with_batch_elems(HYBRID_BATCH)
        .with_hybrid(HybridMode::Fraction(0.5));
    Scenario {
        id: format!("{platform_key}/hybrid/n5e9"),
        platform_key,
        label: "HYBRID",
        config,
        n: HYBRID_N,
        kind: ScenarioKind::Simulated,
    }
}

/// The serve-throughput scenario: the whole synthetic mix through the
/// admission-controlled service on platform 1.
fn serve_scenario() -> Scenario {
    let platform = platform1();
    let jobs = synthetic_jobs(&platform, SERVE_JOBS, SERVE_SEED);
    let n: usize = jobs.iter().map(|j| j.data.len()).sum();
    Scenario {
        id: format!("p1/serve/j{SERVE_JOBS}"),
        platform_key: "p1",
        label: "SERVE",
        config: HetSortConfig::paper_defaults(platform, Approach::PipeMerge),
        n,
        kind: ScenarioKind::Serve {
            jobs: SERVE_JOBS,
            seed: SERVE_SEED,
        },
    }
}

/// The service configuration the gate pins (mirrors the `serve-sim`
/// CLI defaults).
pub fn serve_gate_config() -> ServeConfig {
    ServeConfig::new(ServeBudget::new(1.0e6, 1.0e6))
        .with_queue_cap(24)
        .with_coalescing(MIX_COALESCE_ELEMS)
}

/// The pinned matrix: all five approaches on both platforms.
///
/// BLINE runs at its single-batch maximum (`n = b_s`, which differs per
/// platform); everything multi-batch runs at the paper's 2×10⁹.
pub fn scenario_matrix() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (key, platform) in [("p1", platform1()), ("p2", platform2())] {
        out.push(scenario(
            key,
            &platform,
            "BLINE",
            Approach::BLine,
            false,
            None,
        ));
        for (label, approach) in [
            ("BLINEMULTI", Approach::BLineMulti),
            ("PIPEDATA", Approach::PipeData),
            ("PIPEMERGE", Approach::PipeMerge),
        ] {
            out.push(scenario(
                key,
                &platform,
                label,
                approach,
                false,
                Some(PAPER_N),
            ));
        }
        // PARMEMCPY = PIPEMERGE + parallel host↔pinned staging copies.
        out.push(scenario(
            key,
            &platform,
            "PARMEMCPY",
            Approach::PipeMerge,
            true,
            Some(PAPER_N),
        ));
        // SKEWMERGE: ragged n — one element past a whole number of
        // batches leaves a single-element final batch, so the final
        // multiway merge sees maximally skewed list lengths (the
        // regression the self-scheduling runtime and skew-aware
        // partitioner guard against).
        let batch =
            HetSortConfig::paper_defaults(platform.clone(), Approach::PipeMerge).batch_elems;
        out.push(scenario(
            key,
            &platform,
            "SKEWMERGE",
            Approach::PipeMerge,
            false,
            Some((PAPER_N / batch) * batch + 1),
        ));
        // HYBRID: PIPEMERGE with CpuMerge routing (see hybrid_scenario).
        out.push(hybrid_scenario(key, &platform));
    }
    out.push(serve_scenario());
    out
}

/// Simulate one scenario and fold it into the `BENCH.json` shape.
pub fn run_scenario(s: &Scenario) -> Result<ScenarioResult, HetSortError> {
    if let ScenarioKind::Serve { jobs, seed } = s.kind {
        return run_serve_scenario(s, jobs, seed);
    }
    let plan = Plan::build(s.config.clone(), s.n)?;
    let report = simulate_plan(&plan)?;
    let reg = report.metrics();
    Ok(ScenarioResult {
        id: s.id.clone(),
        platform: s.platform_key.to_string(),
        approach: s.label.to_string(),
        n: s.n as u64,
        nb: plan.nb() as u64,
        total_s: report.total_s,
        literature_total_s: report.literature_total_s,
        overlap_ratio: reg.overlap_ratio(),
        bus_util: reg.bus_util(),
        components: reg
            .per_class()
            .into_iter()
            .map(|(name, stats)| (name.to_string(), stats.busy_s))
            .collect(),
        counters: reg.counters().clone(),
    })
}

/// Run the serve scenario: virtual makespan as `total_s`, completed
/// jobs as `nb`, service counters (completions, sheds, coalesces,
/// recoveries, bytes) pinned alongside.
fn run_serve_scenario(
    s: &Scenario,
    jobs: usize,
    seed: u64,
) -> Result<ScenarioResult, HetSortError> {
    let mix = synthetic_jobs(&s.config.platform, jobs, seed);
    let out = SortService::new(serve_gate_config()).run(mix);
    if let Some((id, e)) = out.failed.first() {
        return Err(HetSortError::Data {
            reason: format!("serve gate scenario: job {id} failed: {e}"),
        });
    }
    if let Some(bad) = out.completed.iter().find(|r| !r.verified) {
        return Err(HetSortError::Data {
            reason: format!("serve gate scenario: job {} unverified", bad.id),
        });
    }
    let reg = &out.metrics;
    let mut counters = reg.counters().clone();
    counters.insert("makespan_jobs_completed".into(), out.completed.len() as f64);
    counters.insert("jobs_shed".into(), out.shed.len() as f64);
    counters.insert("admission_decisions".into(), out.admission_log.len() as f64);
    Ok(ScenarioResult {
        id: s.id.clone(),
        platform: s.platform_key.to_string(),
        approach: s.label.to_string(),
        n: s.n as u64,
        nb: out.completed.len() as u64,
        total_s: out.makespan_s,
        literature_total_s: out.makespan_s,
        overlap_ratio: reg.overlap_ratio(),
        bus_util: reg.bus_util(),
        components: reg
            .per_class()
            .into_iter()
            .map(|(name, stats)| (name.to_string(), stats.busy_s))
            .collect(),
        counters,
    })
}

/// Run the whole matrix into a dated document.
pub fn run_matrix(generated: &str) -> Result<BenchDoc, HetSortError> {
    let results = scenario_matrix()
        .iter()
        .map(run_scenario)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(BenchDoc::new(generated, results))
}

/// `YYYY-MM-DD` from a Unix timestamp (civil-from-days, Howard Hinnant's
/// algorithm) — no date crate in the tree.
pub fn civil_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_fifteen_pinned_scenarios() {
        let m = scenario_matrix();
        assert_eq!(m.len(), 15);
        // Ids are unique and stable-keyed.
        let mut ids: Vec<&str> = m.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15);
        assert!(m.iter().any(|s| s.id == "p1/pipedata/n2e9"));
        assert!(m.iter().any(|s| s.id == "p2/parmemcpy/n2e9"));
        assert_eq!(
            m.iter().filter(|s| s.label == "SKEWMERGE").count(),
            2,
            "one SKEWMERGE per platform"
        );
        // BLINE scenarios are single-batch.
        for s in m.iter().filter(|s| s.label == "BLINE") {
            assert_eq!(s.config.n_batches(s.n), 1, "{}", s.id);
        }
        // PARMEMCPY is PIPEMERGE with parallel staging.
        for s in m.iter().filter(|s| s.label == "PARMEMCPY") {
            assert_eq!(s.config.approach, Approach::PipeMerge);
            assert!(s.config.par_memcpy);
        }
        // SKEWMERGE scenarios carry a one-element final batch (maximal
        // length skew in the final multiway merge).
        for s in m.iter().filter(|s| s.label == "SKEWMERGE") {
            assert!(s.config.n_batches(s.n) > 1, "{}", s.id);
            assert_eq!(s.n % s.config.batch_elems, 1, "{}: final batch len", s.id);
        }
        // One HYBRID scenario per platform, with CpuMerge routing on.
        let hybrid: Vec<&Scenario> = m.iter().filter(|s| s.label == "HYBRID").collect();
        assert_eq!(hybrid.len(), 2);
        for s in &hybrid {
            assert_eq!(s.config.hybrid, HybridMode::Fraction(0.5), "{}", s.id);
            assert_eq!(s.n, HYBRID_N, "{}", s.id);
        }
        // Exactly one serve-throughput scenario, on platform 1.
        let serve: Vec<&Scenario> = m.iter().filter(|s| s.label == "SERVE").collect();
        assert_eq!(serve.len(), 1);
        assert_eq!(serve[0].id, format!("p1/serve/j{SERVE_JOBS}"));
        assert_eq!(
            serve[0].kind,
            ScenarioKind::Serve {
                jobs: SERVE_JOBS,
                seed: SERVE_SEED
            }
        );
    }

    #[test]
    fn serve_scenario_runs_deterministically_under_the_gate() {
        let m = scenario_matrix();
        let s = m.iter().find(|s| s.label == "SERVE").expect("serve pinned");
        let a = run_scenario(s).expect("serve run a");
        let b = run_scenario(s).expect("serve run b");
        assert_eq!(a, b, "service makespan must reproduce bitwise");
        assert!(a.total_s > 0.0);
        assert!(a.nb > 0, "some jobs must complete");
        assert!(a.counters.get("jobs_completed").copied().unwrap_or(0.0) > 0.0);
        assert!(
            a.counters.get("jobs_coalesced").copied().unwrap_or(0.0) > 0.0,
            "gate mix must exercise coalescing"
        );
        // The doc round-trips through the BENCH.json schema.
        let doc = BenchDoc::new("2026-08-05", vec![a]);
        let parsed = BenchDoc::parse(&doc.to_json()).expect("schema-valid");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn scenario_runs_and_is_schema_valid() {
        let m = scenario_matrix();
        let s = m
            .iter()
            .find(|s| s.id == "p1/pipemerge/n2e9")
            .expect("pinned id");
        let r = run_scenario(s).expect("simulated run");
        assert!(r.total_s > 0.0);
        // Double-buffered staging lets the piped schedules overlap the
        // host bounce with DMA, so the true end-to-end can undercut the
        // literature's *serial* HtoD+sort+DtoH sum — the subset is a
        // comparison figure, not a lower bound.
        assert!(r.literature_total_s > 0.0);
        assert!((0.0..=1.0).contains(&r.overlap_ratio));
        assert!((0.0..=1.0).contains(&r.bus_util));
        assert!(r.components.contains_key("GPUSort"), "{:?}", r.components);
        assert!(r.nb > 1);
        // The whole-doc round trip stays schema-valid.
        let doc = BenchDoc::new("2026-08-05", vec![r]);
        let parsed = BenchDoc::parse(&doc.to_json()).expect("schema-valid");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn hybrid_trade_off_tracks_the_staging_protocol() {
        // The §V trade-off the hybrid scenarios pin is a function of
        // how expensive host staging is. Under the paper's
        // single-buffer protocol, platform 2's two GPUs outrun the
        // reserved-core pair lane, so routing the trailing half of the
        // merges to the full CPU pool wins there (and loses on p1,
        // where one GPU never gets ahead of the lane). Double-buffered
        // staging removes the host-side bottleneck that made the CPU
        // detour attractive: the GPU-only plan overlaps its inbound
        // bounce and drains StageOut straight from the transfer
        // buffer, while Fraction(0.5) CpuMerge routing now contends
        // with those overlapped staging copies for cores — routing
        // loses on both platforms. Both regimes are pinned so a cost-
        // model change that silently flips either is caught.
        use hetsort_core::StagingMode;
        let m = scenario_matrix();
        let totals = |key: &str, mode: StagingMode| {
            let s = m
                .iter()
                .find(|s| s.id == format!("{key}/hybrid/n5e9"))
                .unwrap();
            let cfg = s.config.clone().with_staging(mode);
            let hybrid = simulate_plan(&Plan::build(cfg.clone(), s.n).expect("plan"))
                .expect("sim")
                .total_s;
            let mut off_cfg = cfg;
            off_cfg.hybrid = HybridMode::Off;
            let off = simulate_plan(&Plan::build(off_cfg, s.n).expect("plan"))
                .expect("sim")
                .total_s;
            (hybrid, off)
        };
        // Paper staging: the published trade-off.
        let (hybrid, off) = totals("p2", StagingMode::Paper);
        assert!(
            hybrid < off,
            "paper staging: hybrid must beat GPU-only on p2: {hybrid} !< {off}"
        );
        let (hybrid, off) = totals("p1", StagingMode::Paper);
        assert!(
            hybrid > off,
            "paper staging: hybrid must lose on p1: {hybrid} vs {off}"
        );
        // Double-buffered staging (the default the gate scenarios now
        // run): GPU-only wins everywhere.
        for key in ["p1", "p2"] {
            let (hybrid, off) = totals(key, StagingMode::DoubleBuffered);
            assert!(
                hybrid > off,
                "double-buffered staging: GPU-only must win on {key}: {hybrid} vs {off}"
            );
        }
    }

    #[test]
    fn staging_copy_tax_reduced_on_bline_scenarios() {
        // PR 10's headline claim: double-buffered pinned staging halves
        // the StagingCopy component on the blocking scenarios (the
        // outbound pinned bounce is elided — StageOut drains straight
        // from the transfer buffer). These are the frozen StagingCopy
        // seconds of the single-buffer baseline (BENCH.json before the
        // refreeze); the component must stay *strictly* below them.
        const BASELINE_BLINE_STAGING_S: f64 = 2.6430567975385784;
        const BASELINE_BLINEMULTI_STAGING_S: f64 = 4.923076923077294;
        let m = scenario_matrix();
        let staging = |id: &str| {
            let s = m.iter().find(|s| s.id == id).expect("pinned id");
            let r = run_scenario(s).expect("simulated run");
            (r.components["StagingCopy"], r.total_s)
        };
        let (sc, total) = staging("p1/bline/n1073741824");
        assert!(
            sc < BASELINE_BLINE_STAGING_S,
            "BLINE StagingCopy must stay below the single-buffer baseline: {sc}"
        );
        // Inbound-only staging is half the old two-way bounce.
        assert!(sc < BASELINE_BLINE_STAGING_S * 0.55, "{sc}");
        assert!(total < 4.65, "BLINE total must keep the win: {total}");
        let (sc, total) = staging("p1/blinemulti/n2e9");
        assert!(
            sc < BASELINE_BLINEMULTI_STAGING_S,
            "BLINEMULTI StagingCopy must stay below the single-buffer baseline: {sc}"
        );
        assert!(sc < BASELINE_BLINEMULTI_STAGING_S * 0.55, "{sc}");
        assert!(total < 10.41, "BLINEMULTI total must keep the win: {total}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let m = scenario_matrix();
        let s = &m[0];
        let a = run_scenario(s).expect("run a");
        let b = run_scenario(s).expect("run b");
        assert_eq!(a, b, "same scenario must reproduce bitwise");
    }

    #[test]
    fn civil_date_known_values() {
        assert_eq!(civil_date(0), "1970-01-01");
        // 2026-08-05 00:00:00 UTC.
        assert_eq!(civil_date(1_785_888_000), "2026-08-05");
        // Leap day.
        assert_eq!(civil_date(951_782_400), "2000-02-29");
    }
}
