//! # hetsort-bench — the experiment harness
//!
//! One module per reproduced table/figure; each binary under `src/bin`
//! is a thin wrapper that prints the series and writes a CSV under
//! `results/`. `cargo run -p hetsort-bench --bin all_experiments`
//! regenerates everything.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig01_03` | Figures 1–3 (illustrative schedules, ASCII Gantt) |
//! | `fig04` | Figure 4 (CPU sort scalability + speedup) |
//! | `fig05` | Figure 5 (BLINE vs reference, PLATFORM2) |
//! | `fig06` | Figure 6 (pair-merge scalability) |
//! | `fig07` | Figure 7 (end-to-end components vs related work) |
//! | `fig08` | Figure 8 (the missing-overhead sweep) |
//! | `fig09` | Figure 9 (all approaches, PLATFORM1) |
//! | `fig10` | Figure 10 (1 vs 2 GPUs, PLATFORM2) |
//! | `fig11` | Figure 11 (lower-bound models vs PIPEDATA) |
//! | `table2` | Table II (platform inventory) |
//! | `calibrate` | calibration report (model vs paper headline numbers) |
//! | `ablations` | extension: b_s / n_s / p_s sweeps + distribution sensitivity |

// No unsafe anywhere in this crate — enforced, not assumed.
#![forbid(unsafe_code)]

pub mod experiments;
pub mod gate;
pub mod output;

pub use output::{results_dir, write_csv};
