//! CSV/console output helpers (hand-rolled; no serde dependency).

use std::io::Write;
use std::path::{Path, PathBuf};

/// The repository's `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HETSORT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            // crates/bench → workspace root.
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("results")
        });
    std::fs::create_dir_all(&dir).expect("cannot create results dir");
    dir
}

/// Write a CSV file into `results/` and return its path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("cannot create CSV");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    path
}

/// Format seconds with 3 decimals, right-aligned in 9 columns.
pub fn fmt_s(x: f64) -> String {
    format!("{x:>9.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        std::env::set_var(
            "HETSORT_RESULTS",
            std::env::temp_dir().join("hetsort_test_results"),
        );
        let p = write_csv("t.csv", "a,b", &["1,2".into(), "3,4".into()]);
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s, "a,b\n1,2\n3,4\n");
        std::env::remove_var("HETSORT_RESULTS");
    }

    #[test]
    fn fmt_has_width() {
        assert_eq!(fmt_s(1.5).len(), 9);
    }
}
