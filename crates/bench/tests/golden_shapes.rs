//! Golden-shape tests over the gate's pinned scenarios: structural
//! facts the paper fixes that must hold in every BENCH.json the matrix
//! can ever produce — independent of cost-model retuning, which only
//! moves the *magnitudes* the tolerance bands govern.

use hetsort_bench::gate::{run_scenario, scenario_matrix, Scenario, PAPER_N};
use hetsort_core::exec_sim::simulate_plan;
use hetsort_core::{Approach, HetSortConfig, Plan, StagingMode};
use hetsort_model::LowerBoundModel;
use hetsort_obs::OpClass;
use hetsort_vgpu::{platform2, Machine, TransferDir};

fn run(id: &str) -> (Scenario, hetsort_obs::ScenarioResult) {
    let s = scenario_matrix()
        .into_iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("pinned id {id} missing from matrix"));
    let r = run_scenario(&s).expect(id);
    (s, r)
}

#[test]
fn pipedata_stays_within_085x_of_the_lower_bound() {
    // §IV-G / Figure 11: at the paper's largest size the PIPEDATA
    // slowdown against the one-GPU lower-bound model "is only 0.93×";
    // the shape we freeze is efficiency ≥ 0.85 at the gate's geometry.
    let mut p2s = platform2();
    p2s.gpus.truncate(1);
    let model = LowerBoundModel::one_gpu(&p2s);
    // Same single-buffer staging protocol the model was fitted under
    // (DESIGN.md § 19) — efficiency compares like with like.
    let cfg = HetSortConfig::paper_defaults(p2s, Approach::PipeData)
        .with_batch_elems(350_000_000)
        .with_staging(StagingMode::Paper);
    let n = 4_900_000_000usize;
    let total = simulate_plan(&Plan::build(cfg, n).expect("plan"))
        .expect("sim")
        .total_s;
    let efficiency = model.predict(n) / total;
    assert!(
        efficiency >= 0.85,
        "PIPEDATA efficiency {efficiency:.3} fell below 0.85x the bound"
    );
    assert!(efficiency <= 1.05, "suspicious: beating the bound by >5%");
}

#[test]
fn pair_merge_span_count_matches_the_paper_formula() {
    // §III-D3: ⌊(n_b−1)/2⌋ pipelined pair merges on one GPU,
    // ⌊(n_b−1)/2^n_GPU⌋ on multi-GPU — counted as PairMerge *spans* in
    // the scenario's own metrics, not re-derived from the config.
    for id in ["p1/pipemerge/n2e9", "p2/pipemerge/n2e9"] {
        let (s, r) = run(id);
        let plan = Plan::build(s.config.clone(), s.n).expect(id);
        let reg = simulate_plan(&plan).expect(id).metrics();
        let want = s.config.pipelined_pair_merges(plan.nb());
        let got = reg.class_stats(OpClass::PairMerge).count as usize;
        assert_eq!(got, want, "{id}: PairMerge spans");
        assert!(
            r.components.contains_key("PairMerge") == (want > 0),
            "{id}: component presence must track the formula"
        );
    }
}

#[test]
fn pageable_transfers_run_at_half_pinned_bandwidth() {
    // §IV-E / §V: pageable copies go through the driver's hidden staging
    // copy at ~half the pinned DMA rate. Measured, not read off the
    // spec: one 1 GB blocking HtoD each way through the machine model.
    let bytes = 1e9;
    let time = |pinned: bool| {
        let mut m = Machine::new(platform2());
        let op = m.transfer(
            TransferDir::HtoD,
            0,
            bytes,
            pinned,
            false,
            None,
            &[],
            None,
            0,
        );
        m.run().expect("machine run").span(op).duration()
    };
    let ratio = time(false) / time(true);
    assert!(
        (1.8..=2.2).contains(&ratio),
        "pageable/pinned transfer-time ratio {ratio:.3}, expected ~2"
    );
}

#[test]
fn gate_scenarios_expose_the_missing_overhead() {
    // The reproduction's central finding must be visible in the gate
    // document itself. On the serial single-GPU platform the literature
    // accounting strictly underestimates the end-to-end time; on the
    // two-GPU platform busy sums over-count across overlapping GPUs, so
    // only the structural half of the claim (StagingCopy is recorded
    // but excluded from literature accounting) applies there.
    for id in ["p1/blinemulti/n2e9", "p2/blinemulti/n2e9"] {
        let (_, r) = run(id);
        assert_eq!(r.n, PAPER_N as u64);
        // Staging copies are the dominant omitted component.
        assert!(
            r.components.get("StagingCopy").copied().unwrap_or(0.0) > 0.0,
            "{id}: StagingCopy missing from components"
        );
    }
    let (_, r) = run("p1/blinemulti/n2e9");
    assert!(
        r.literature_total_s < r.total_s,
        "p1/blinemulti: literature {} !< total {}",
        r.literature_total_s,
        r.total_s
    );
}
