//! The missing-overhead analysis (§IV-E).
//!
//! Tools to compare the literature's end-to-end accounting (\[5\] Stehle &
//! Jacobsen's method: `HtoD + GPUSort + DtoH` only) with the full
//! response time, reproducing Figures 7 and 8.

use hetsort_vgpu::tags;

use crate::report::TimingReport;

/// One row of the Figure 8 sweep: the component decomposition of a
/// BLINE run at one input size.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Input size.
    pub n: usize,
    /// Pure HtoD transfer seconds (component 1 of \[5\]).
    pub htod_s: f64,
    /// Pure DtoH transfer seconds (component 2 of \[5\]).
    pub dtoh_s: f64,
    /// Sorting seconds (component 3 of \[5\]).
    pub sort_s: f64,
    /// The literature's "end-to-end": 1+2+3.
    pub literature_total_s: f64,
    /// The true end-to-end including staging copies, pinned allocation,
    /// and synchronization (the paper's green curve).
    pub full_total_s: f64,
}

impl OverheadRow {
    /// Decompose a BLINE report.
    pub fn from_report(r: &TimingReport) -> OverheadRow {
        OverheadRow {
            n: r.n,
            // Absent components decompose as zero seconds: a BLINE run
            // that never transferred has no HtoD line to adjust.
            htod_s: r.component(tags::HTOD).unwrap_or(0.0) - r.sync_s / 2.0,
            dtoh_s: r.component(tags::DTOH).unwrap_or(0.0) - r.sync_s / 2.0,
            sort_s: r.component(tags::GPU_SORT).unwrap_or(0.0) - r.launch_s,
            literature_total_s: r.literature_total_s,
            full_total_s: r.total_s,
        }
    }

    /// The overhead the literature omits at this size.
    pub fn missing_s(&self) -> f64 {
        self.full_total_s - self.literature_total_s
    }

    /// Fraction of the true total the literature's method misses.
    pub fn missing_fraction(&self) -> f64 {
        if self.full_total_s <= 0.0 {
            0.0
        } else {
            self.missing_s() / self.full_total_s
        }
    }
}

/// Figure 7's comparison values from the literature (\[5\] Figure 8, CUB
/// bar, estimated by the paper's authors): HtoD 0.542 s, DtoH 0.477 s
/// for 6 GB of key/value pairs.
pub const RELATED_WORK_HTOD_S: f64 = 0.542;
/// See [`RELATED_WORK_HTOD_S`].
pub const RELATED_WORK_DTOH_S: f64 = 0.477;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HetSortConfig, StagingMode};
    use crate::exec_sim::simulate;
    use hetsort_vgpu::platform1;

    // These tests reproduce the paper's §IV-E numbers, which measure
    // the *paper's* single-buffer pinned protocol — pin StagingMode
    // explicitly so the double-buffered default doesn't change the
    // accounting under them.

    #[test]
    fn figure7_transfer_times_consistent_with_related_work() {
        // The paper validates its setup by matching [5]'s transfer
        // times at n = 8e8 (5.96 GiB): ours must land within ~5%.
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLine)
            .with_staging(StagingMode::Paper);
        let r = simulate(cfg, 800_000_000).unwrap();
        let row = OverheadRow::from_report(&r);
        assert!(
            (row.htod_s - RELATED_WORK_HTOD_S).abs() / RELATED_WORK_HTOD_S < 0.05,
            "HtoD {} vs {}",
            row.htod_s,
            RELATED_WORK_HTOD_S
        );
        assert!(
            (row.dtoh_s - RELATED_WORK_DTOH_S).abs() / RELATED_WORK_DTOH_S < 0.15,
            "DtoH {} vs {}",
            row.dtoh_s,
            RELATED_WORK_DTOH_S
        );
    }

    #[test]
    fn missing_overhead_grows_with_n() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLine)
            .with_staging(StagingMode::Paper);
        let rows: Vec<OverheadRow> = [200_000_000usize, 400_000_000, 800_000_000]
            .iter()
            .map(|&n| OverheadRow::from_report(&simulate(cfg.clone(), n).unwrap()))
            .collect();
        for w in rows.windows(2) {
            assert!(w[1].missing_s() > w[0].missing_s());
        }
        // The omitted overhead is a substantial fraction of the truth
        // (the paper's headline point).
        assert!(
            rows[2].missing_fraction() > 0.4,
            "{}",
            rows[2].missing_fraction()
        );
    }

    #[test]
    fn one_big_pinned_buffer_is_worse() {
        // §IV-E: allocating ps = n pinned memory costs 2.2 s at
        // n = 8e8 — more than the literature's whole end-to-end.
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLine)
            .with_staging(StagingMode::Paper)
            .with_pinned_elems(800_000_000)
            .with_batch_elems(800_000_000);
        let r = simulate(cfg, 800_000_000).unwrap();
        let alloc = r
            .component(hetsort_vgpu::tags::PINNED_ALLOC)
            .expect("pinned alloc ran");
        assert!((alloc - 2.2).abs() < 0.05, "alloc={alloc}");
        assert!(alloc > r.literature_total_s);
    }
}
