//! Configuration: the paper's Table I notation as a typed struct.
//!
//! | Symbol | Field | Meaning |
//! |---|---|---|
//! | `n` | run argument | input size |
//! | `n_b` | derived | number of batches (⌈n / b_s⌉) |
//! | `n_GPU` | `platform.gpus.len()` | number of GPUs used |
//! | `n_s` | `streams_per_gpu` | streams per GPU |
//! | `b_s` | `batch_elems` | batch size |
//! | `p_s` | `pinned_elems` | pinned staging buffer size |
//! | `A` | input | unsorted list |
//! | `B` | output | sorted list |
//! | `W` | internal | working memory for sorted sublists |

use std::sync::Arc;

use hetsort_vgpu::{FaultInjector, PlatformSpec};

use crate::error::HetSortError;

/// The paper's heterogeneous sorting approaches (§III-D4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Single batch (`n_b = 1`), blocking copies, default stream.
    BLine,
    /// BLINE per batch plus a final CPU multiway merge.
    BLineMulti,
    /// Pinned-memory staging in `n_s` streams per GPU overlapping HtoD
    /// and DtoH transfers.
    PipeData,
    /// PIPEDATA plus pair-wise merges pipelined while the GPU sorts.
    PipeMerge,
}

impl Approach {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::BLine => "BLine",
            Approach::BLineMulti => "BLineMulti",
            Approach::PipeData => "PipeData",
            Approach::PipeMerge => "PipeMerge",
        }
    }

    /// Does this approach overlap transfers with streams?
    pub fn is_piped(&self) -> bool {
        matches!(self, Approach::PipeData | Approach::PipeMerge)
    }
}

/// Scheduling strategy for the pipelined two-way merges (§III-D3).
///
/// The paper evaluates PIPEMERGE with the batch-pair heuristic and
/// explicitly *rejects* the two alternatives: "We find that merging
/// sublists in an 'online' fashion (i.e., as they are produced on the
/// GPU), or using a merge tree to determine optimal merges, results in
/// delaying the multiway merging procedure, and thus degrades
/// performance." All three are implemented so the rejection is testable
/// (`cargo run -p hetsort-bench --bin rejected_strategies`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PairStrategy {
    /// The paper's heuristic: merge the first `⌊(n_b−1)/2⌋` (1 GPU) or
    /// `⌊(n_b−1)/2^n_GPU⌋` (multi-GPU) consecutive batch pairs, never
    /// re-merging a merge output; the rest go to the multiway merge.
    #[default]
    PaperHeuristic,
    /// Rejected: fold each arriving batch into one growing run.
    Online,
    /// Rejected: a full binary merge tree replacing the multiway merge.
    MergeTree,
}

/// Which sort runs on the (virtual) device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceSortKind {
    /// Thrust's radix sort: fastest, but out-of-place — each resident
    /// batch occupies `2·b_s` of global memory (§III-B).
    #[default]
    ThrustRadix,
    /// An in-place bitonic network (Peters et al. \[35\]): only `1·b_s`
    /// of global memory per batch — so batches can be twice as large
    /// and the CPU merges fewer sublists — but the sort itself is a
    /// few times slower. The ablation quantifies the trade.
    BitonicInPlace,
}

impl DeviceSortKind {
    /// Device-memory footprint per resident batch, in units of `b_s`.
    pub fn mem_factor(&self) -> f64 {
        match self {
            DeviceSortKind::ThrustRadix => 2.0,
            DeviceSortKind::BitonicInPlace => 1.0,
        }
    }

    /// Sort-throughput multiplier relative to the radix calibration
    /// (in-place bitonic runs ~5× slower at these sizes — the reason
    /// radix won historically, cf. \[35\] vs \[5\]).
    pub fn throughput_factor(&self) -> f64 {
        match self {
            DeviceSortKind::ThrustRadix => 1.0,
            DeviceSortKind::BitonicInPlace => 0.2,
        }
    }
}

/// How the executors react to GPU OOM, transfer faults, device-sort
/// failures, and worker panics.
///
/// The default policy retries transient transfer faults with a short
/// backoff, splits batches that overflow device memory into sub-runs
/// (halving the effective `b_s` for the affected remainder), and sorts
/// unrecoverable batches host-side (graceful degradation). Use
/// [`RecoveryPolicy::none`] to propagate every fault as a typed
/// [`HetSortError`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries after a failed DMA transfer (0 = fail on first fault).
    pub max_retries: usize,
    /// Milliseconds to back off before each retry.
    pub backoff_ms: u64,
    /// On GPU OOM, halve the device buffer and sort the batch in
    /// sub-runs merged host-side (instead of failing).
    pub split_on_oom: bool,
    /// Sort batches host-side when the GPU path is unrecoverable
    /// (exhausted retries, device-sort failure, dead worker).
    pub cpu_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_ms: 1,
            split_on_oom: true,
            cpu_fallback: true,
        }
    }
}

impl RecoveryPolicy {
    /// No recovery at all: every fault propagates as a typed error.
    pub fn none() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            backoff_ms: 0,
            split_on_oom: false,
            cpu_fallback: false,
        }
    }
}

/// Hybrid CPU/GPU merge routing: which pipelined pair merges are
/// lowered to [`DagOp::CpuMerge`] nodes instead of the default
/// GPU-adjacent pair-merge lane.
///
/// Routing happens at dag lowering (`PlanDag::from_plan`), so every
/// consumer of a plan — both functional executors, the simulator, the
/// bench gate, and the service — sees the same hybrid dag. The
/// decision is a pure function of the config and the plan, never of
/// runtime queue state, so hybrid runs stay deterministic and
/// replayable.
///
/// [`DagOp::CpuMerge`]: crate::dag::DagOp::CpuMerge
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum HybridMode {
    /// Every pair merge stays on the default pair-merge lane.
    #[default]
    Off,
    /// Route the *last* `frac` of the pair-merge slots (rounded to
    /// nearest, `0.0..=1.0`) to CPU merge nodes. Later slots depend on
    /// later batches, so they are the ones most likely to contend with
    /// the multiway-merge warm-up — exactly where the spare merge pool
    /// helps.
    Fraction(f64),
    /// Per-slot greedy earliest-finish routing between the pair-merge
    /// pool and the full CPU merge pool, using the platform's calibrated
    /// merge throughput and each pool's accumulated predicted busy time
    /// as the queue-depth proxy.
    Auto,
}

impl HybridMode {
    /// Is hybrid routing enabled at all?
    pub fn is_on(&self) -> bool {
        !matches!(self, HybridMode::Off)
    }

    /// Stable CLI/display name (`off`, a fraction, or `auto`).
    pub fn describe(&self) -> String {
        match self {
            HybridMode::Off => "off".into(),
            HybridMode::Fraction(f) => format!("{f}"),
            HybridMode::Auto => "auto".into(),
        }
    }

    /// Parse a CLI value: `off`, `auto`, or a fraction in `[0, 1]`.
    pub fn parse(s: &str) -> Result<HybridMode, String> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(HybridMode::Off),
            "auto" => Ok(HybridMode::Auto),
            other => other
                .parse::<f64>()
                .ok()
                .filter(|f| (0.0..=1.0).contains(f))
                .map(HybridMode::Fraction)
                .ok_or_else(|| {
                    format!("bad --hybrid value '{s}' (use off, auto, or a fraction in [0,1])")
                }),
        }
    }
}

/// How the host↔pinned staging path is organized.
///
/// The paper's executors bounce every chunk through a single pinned
/// staging buffer per stream per direction, serializing the host
/// memcpy against the DMA that consumes it. [`StagingMode::DoubleBuffered`]
/// splits the inbound buffer into two halves (chunk parity selects the
/// half) so the host→pinned bounce of chunk `c` overlaps the DMA of
/// chunk `c−1`, and — on the blocking approaches, where the sorted
/// batch is still device-resident when it is written out — *elides*
/// the outbound pinned bounce entirely, writing device→output in one
/// pageable copy instead of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StagingMode {
    /// One pinned buffer per stream per direction; every chunk bounces
    /// host↔pinned↔device exactly as §III-D2 describes.
    Paper,
    /// Two inbound halves per stream (parity-selected) overlapping the
    /// bounce with the previous chunk's DMA; outbound bounce elided on
    /// blocking approaches.
    #[default]
    DoubleBuffered,
}

impl StagingMode {
    /// Stable CLI/display name.
    pub fn name(&self) -> &'static str {
        match self {
            StagingMode::Paper => "paper",
            StagingMode::DoubleBuffered => "double",
        }
    }

    /// Parse a CLI name (`"paper"` / `"double"`).
    pub fn parse(s: &str) -> Option<StagingMode> {
        match s {
            "paper" | "single" => Some(StagingMode::Paper),
            "double" | "db" | "double-buffered" => Some(StagingMode::DoubleBuffered),
            _ => None,
        }
    }
}

/// CPU scheduling policy for parallel merges, sorts, and staging
/// copies (the `algos::par` runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CpuSched {
    /// Chunked self-scheduling: over-decomposed parts claimed from an
    /// atomic work queue. Skew-resistant; the default.
    #[default]
    SelfSched,
    /// Static round-robin assignment, one part per worker — the GNU
    /// parallel-mode model the paper benchmarks. Kept for A/B runs.
    RoundRobin,
}

impl CpuSched {
    /// Stable CLI/display name.
    pub fn name(&self) -> &'static str {
        match self {
            CpuSched::SelfSched => "self",
            CpuSched::RoundRobin => "rr",
        }
    }

    /// Parse a CLI name (`"self"` / `"rr"`).
    pub fn parse(s: &str) -> Option<CpuSched> {
        match s {
            "self" | "selfsched" | "self-sched" => Some(CpuSched::SelfSched),
            "rr" | "roundrobin" | "round-robin" => Some(CpuSched::RoundRobin),
            _ => None,
        }
    }
}

/// A fully specified heterogeneous sort configuration.
#[derive(Debug, Clone)]
pub struct HetSortConfig {
    /// Hardware model (Table II row).
    pub platform: PlatformSpec,
    /// Pipeline approach.
    pub approach: Approach,
    /// PARMEMCPY: parallelize host↔pinned staging copies.
    pub par_memcpy: bool,
    /// Batch size `b_s` in elements.
    pub batch_elems: usize,
    /// Streams per GPU `n_s` (piped approaches; blocking approaches use
    /// the single default stream regardless).
    pub streams_per_gpu: usize,
    /// Pinned staging buffer size `p_s` in elements.
    pub pinned_elems: usize,
    /// Threads for the final multiway merge; 0 = all cores.
    pub merge_threads: u32,
    /// Threads for *pipelined* pair-wise merges; 0 = half the cores.
    /// Pair merges run concurrently with the staging pipeline, so
    /// giving them every core would starve the staging copies and delay
    /// batches — the load imbalance §III-D3 warns about.
    pub pair_merge_threads: u32,
    /// Scheduling strategy for pipelined merges (PIPEMERGE only).
    pub pair_strategy: PairStrategy,
    /// Hybrid CPU/GPU merge routing: lower some pair merges to
    /// [`DagOp::CpuMerge`](crate::dag::DagOp::CpuMerge) nodes backed by
    /// the full CPU merge pool.
    pub hybrid: HybridMode,
    /// How CPU workers claim parts inside parallel merges/sorts/copies.
    pub cpu_sched: CpuSched,
    /// Host↔pinned staging organization (single-buffer paper shape or
    /// double-buffered halves with outbound elision).
    pub staging: StagingMode,
    /// Work-queue chunks created per CPU worker under
    /// [`CpuSched::SelfSched`]; `0` = auto (see [`Self::sched_chunks_eff`]).
    pub sched_chunks_per_thread: u32,
    /// Element size in bytes: 8 for the paper's `f64` keys, 16 for the
    /// key/value records of \[5\] (`hetsort_algos::keys::KeyValue`).
    /// Drives every transfer/staging volume and the GPU memory check.
    pub elem_bytes: f64,
    /// Which sort runs on the device.
    pub device_sort: DeviceSortKind,
    /// Reaction to faults (OOM, transfer, sort, panic).
    pub recovery: RecoveryPolicy,
    /// Fault schedule the executors consult (testing/chaos runs); `None`
    /// means no injected faults.
    pub faults: Option<Arc<FaultInjector>>,
    /// Record a structured op trace of the *executed* accesses (for the
    /// `hetsort-analyze` race detector); off by default.
    pub record_trace: bool,
}

/// Element widths the executors support: 8-byte `f64` keys and the
/// 16-byte `KeyValue` records of \[5\].
pub const SUPPORTED_ELEM_BYTES: [usize; 2] = [8, 16];

impl HetSortConfig {
    /// Paper defaults for a platform: all cores for merging, `n_s = 2`
    /// (§IV-F Experiment 1), `p_s = 10⁶` elements (§IV-E), and the
    /// largest batch that fits the streams on the smallest GPU.
    pub fn paper_defaults(platform: PlatformSpec, approach: Approach) -> Self {
        let streams_per_gpu = 2;
        // Blocking approaches keep one batch in flight, so the whole
        // device (minus the out-of-place scratch) is one batch.
        let sizing_streams = if approach.is_piped() {
            streams_per_gpu
        } else {
            1
        };
        let batch_elems = platform.max_batch_elems(sizing_streams);
        HetSortConfig {
            platform,
            approach,
            par_memcpy: false,
            batch_elems,
            streams_per_gpu,
            pinned_elems: 1_000_000,
            merge_threads: 0,
            pair_merge_threads: 0,
            pair_strategy: PairStrategy::default(),
            hybrid: HybridMode::default(),
            cpu_sched: CpuSched::default(),
            staging: StagingMode::default(),
            sched_chunks_per_thread: 0,
            elem_bytes: 8.0,
            device_sort: DeviceSortKind::default(),
            recovery: RecoveryPolicy::default(),
            faults: None,
            record_trace: false,
        }
    }

    /// Record executed-access traces for the race detector.
    pub fn with_trace_recording(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enable PARMEMCPY.
    pub fn with_par_memcpy(mut self) -> Self {
        self.par_memcpy = true;
        self
    }

    /// Set `b_s`.
    pub fn with_batch_elems(mut self, b: usize) -> Self {
        self.batch_elems = b;
        self
    }

    /// Set `n_s`.
    pub fn with_streams(mut self, s: usize) -> Self {
        self.streams_per_gpu = s;
        self
    }

    /// Set `p_s`.
    pub fn with_pinned_elems(mut self, p: usize) -> Self {
        self.pinned_elems = p;
        self
    }

    /// Select a pipelined-merge scheduling strategy (§III-D3).
    pub fn with_pair_strategy(mut self, s: PairStrategy) -> Self {
        self.pair_strategy = s;
        self
    }

    /// Select the hybrid CPU/GPU merge routing mode.
    pub fn with_hybrid(mut self, h: HybridMode) -> Self {
        self.hybrid = h;
        self
    }

    /// Select the CPU worker scheduling policy.
    pub fn with_cpu_sched(mut self, s: CpuSched) -> Self {
        self.cpu_sched = s;
        self
    }

    /// Select the staging organization.
    pub fn with_staging(mut self, s: StagingMode) -> Self {
        self.staging = s;
        self
    }

    /// Is the double-buffered staging path selected?
    pub fn double_buffered(&self) -> bool {
        self.staging == StagingMode::DoubleBuffered
    }

    /// Set the self-scheduling chunks-per-worker knob (`0` = auto).
    pub fn with_sched_chunks(mut self, chunks: u32) -> Self {
        self.sched_chunks_per_thread = chunks;
        self
    }

    /// Set the element size in bytes (8 = keys, 16 = key/value records).
    pub fn with_elem_bytes(mut self, b: f64) -> Self {
        self.elem_bytes = b;
        self
    }

    /// Select the device sort implementation.
    pub fn with_device_sort(mut self, k: DeviceSortKind) -> Self {
        self.device_sort = k;
        self
    }

    /// Set the recovery policy.
    pub fn with_recovery(mut self, r: RecoveryPolicy) -> Self {
        self.recovery = r;
        self
    }

    /// Attach a fault schedule (wraps it in an [`Arc`] so both the
    /// config and the test can observe the injected count).
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Effective multiway-merge thread count.
    pub fn merge_threads_eff(&self) -> u32 {
        if self.merge_threads == 0 {
            self.platform.cpu.cores
        } else {
            self.merge_threads
        }
    }

    /// Effective pipelined pair-merge thread count.
    pub fn pair_merge_threads_eff(&self) -> u32 {
        if self.pair_merge_threads == 0 {
            (self.platform.cpu.cores / 2).max(1)
        } else {
            self.pair_merge_threads
        }
    }

    /// Staging copy thread count (PARMEMCPY uses all cores, §III-D2).
    pub fn memcpy_threads_eff(&self) -> u32 {
        if self.par_memcpy {
            self.platform.cpu.cores
        } else {
            1
        }
    }

    /// Effective self-scheduling chunks per worker: the explicit knob,
    /// or the runtime default when `0`; always `1` under
    /// [`CpuSched::RoundRobin`] (static assignment never over-splits).
    pub fn sched_chunks_eff(&self) -> u32 {
        self.sched_cfg().chunks_eff()
    }

    /// The `algos::par` scheduling policy this config selects.
    pub fn sched_cfg(&self) -> hetsort_algos::par::SchedCfg {
        use hetsort_algos::par::{Sched, SchedCfg};
        match self.cpu_sched {
            CpuSched::SelfSched => SchedCfg {
                sched: Sched::SelfSched,
                chunks_per_thread: self.sched_chunks_per_thread,
            },
            CpuSched::RoundRobin => SchedCfg::round_robin_static(),
        }
    }

    /// Number of batches `n_b` for an input of `n` elements.
    pub fn n_batches(&self, n: usize) -> usize {
        n.div_ceil(self.batch_elems.max(1))
    }

    /// The paper's pair-merge count heuristic (§III-D3):
    /// `⌊(n_b−1)/2⌋` on one GPU, `⌊(n_b−1)/2^n_GPU⌋` on multi-GPU.
    pub fn pipelined_pair_merges(&self, nb: usize) -> usize {
        if self.approach != Approach::PipeMerge || nb < 2 {
            return 0;
        }
        let ngpu = u32::try_from(self.platform.n_gpus().max(1)).unwrap_or(u32::MAX);
        if ngpu == 1 {
            (nb - 1) / 2
        } else {
            // 2^n_GPU overflows usize from 64 GPUs up; the heuristic's
            // value there is ⌊(n_b−1)/2^huge⌋ = 0, not a panic.
            2usize.checked_pow(ngpu).map_or(0, |div| (nb - 1) / div)
        }
    }

    /// `elem_bytes` as the exact integer width it must be.
    ///
    /// The field stays `f64` because the cost model multiplies it into
    /// transfer volumes, but the *executors* compare it against
    /// `size_of::<T>()` — an exact-f64-equality check that silently
    /// never matches for fractional or unsupported widths. Validation
    /// therefore requires a positive integer in
    /// [`SUPPORTED_ELEM_BYTES`] and returns a typed error otherwise.
    pub fn elem_bytes_usize(&self) -> Result<usize, HetSortError> {
        let b = self.elem_bytes;
        if !b.is_finite() || b <= 0.0 || b.fract() != 0.0 {
            return Err(HetSortError::config(format!(
                "elem_bytes must be a positive integer number of bytes, got {b}"
            )));
        }
        // Float→int `as` saturates rather than truncates, and the
        // guard above already rejected non-integers; an absurd width
        // like 1e30 saturates to usize::MAX and fails the allow-list
        // check below with a typed error.
        let w = b as usize;
        if !SUPPORTED_ELEM_BYTES.contains(&w) {
            return Err(HetSortError::config(format!(
                "unsupported element width {w} B (supported: {SUPPORTED_ELEM_BYTES:?})"
            )));
        }
        Ok(w)
    }

    /// Validate against the hardware model and `n`.
    pub fn validate(&self, n: usize) -> Result<(), HetSortError> {
        if n == 0 {
            return Err(HetSortError::config("input size n must be positive"));
        }
        if self.batch_elems == 0 {
            return Err(HetSortError::config("batch_elems (b_s) must be positive"));
        }
        if self.pinned_elems == 0 {
            return Err(HetSortError::config("pinned_elems (p_s) must be positive"));
        }
        if self.pinned_elems > self.batch_elems {
            return Err(HetSortError::config(format!(
                "pinned buffer p_s={} exceeds batch size b_s={}",
                self.pinned_elems, self.batch_elems
            )));
        }
        if let HybridMode::Fraction(f) = self.hybrid {
            if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                return Err(HetSortError::config(format!(
                    "hybrid fraction must lie in [0, 1], got {f}"
                )));
            }
        }
        if self.approach.is_piped() && self.streams_per_gpu == 0 {
            return Err(HetSortError::config(
                "piped approaches need at least one stream",
            ));
        }
        // Thrust's 2× footprint per in-flight batch, per stream (§III-B).
        let streams = if self.approach.is_piped() {
            self.streams_per_gpu
        } else {
            1
        };
        self.elem_bytes_usize()?;
        let need = self.device_sort.mem_factor()
            * self.elem_bytes
            * self.batch_elems as f64
            * streams as f64;
        let min_mem = self
            .platform
            .gpus
            .iter()
            .map(|g| g.global_mem_bytes)
            .fold(f64::INFINITY, f64::min);
        if need > min_mem {
            return Err(HetSortError::config(format!(
                "b_s={} with {streams} stream(s) needs {need:.3e} B on the GPU but only {min_mem:.3e} B exist",
                self.batch_elems
            )));
        }
        if self.approach == Approach::BLine && self.n_batches(n) > 1 {
            return Err(HetSortError::config(format!(
                "BLine requires n_b = 1 but n={n} with b_s={} gives n_b={}; use BLineMulti",
                self.batch_elems,
                self.n_batches(n)
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_vgpu::{platform1, platform2};

    #[test]
    fn paper_defaults_platform1() {
        let c = HetSortConfig::paper_defaults(platform1(), Approach::PipeData);
        assert_eq!(c.streams_per_gpu, 2);
        assert_eq!(c.pinned_elems, 1_000_000);
        // b_s close to the paper's 5e8 (§IV-F Experiment 1).
        assert!(
            (4.8e8..5.5e8).contains(&(c.batch_elems as f64)),
            "{}",
            c.batch_elems
        );
        assert_eq!(c.merge_threads_eff(), 16);
        assert_eq!(c.memcpy_threads_eff(), 1);
        assert_eq!(c.clone().with_par_memcpy().memcpy_threads_eff(), 16);
    }

    #[test]
    fn sched_knob_defaults_and_parse() {
        use hetsort_algos::par::{Sched, SchedCfg};
        let c = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge);
        assert_eq!(c.cpu_sched, CpuSched::SelfSched);
        assert_eq!(c.sched_chunks_eff(), SchedCfg::DEFAULT_CHUNKS_PER_THREAD);
        assert_eq!(c.sched_cfg().sched, Sched::SelfSched);
        let c = c.clone().with_sched_chunks(8);
        assert_eq!(c.sched_chunks_eff(), 8);
        let rr = c.with_cpu_sched(CpuSched::RoundRobin);
        assert_eq!(rr.sched_cfg(), SchedCfg::round_robin_static());
        assert_eq!(rr.sched_chunks_eff(), 1, "static never over-splits");
        // CLI names round-trip.
        for s in [CpuSched::SelfSched, CpuSched::RoundRobin] {
            assert_eq!(CpuSched::parse(s.name()), Some(s));
        }
        assert_eq!(CpuSched::parse("nope"), None);
    }

    #[test]
    fn batch_count() {
        let c =
            HetSortConfig::paper_defaults(platform1(), Approach::BLineMulti).with_batch_elems(500);
        assert_eq!(c.n_batches(1000), 2);
        assert_eq!(c.n_batches(1001), 3);
        assert_eq!(c.n_batches(499), 1);
    }

    #[test]
    fn pair_merge_heuristic_matches_paper() {
        // Figure 3 example: n_b = 6 on one GPU → 2 pair merges.
        let c = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge);
        assert_eq!(c.pipelined_pair_merges(6), 2);
        // Odd n_b leaves the last batch unmerged: n_b=7 → 3.
        assert_eq!(c.pipelined_pair_merges(7), 3);
        assert_eq!(c.pipelined_pair_merges(1), 0);
        assert_eq!(c.pipelined_pair_merges(2), 0);
        // Two GPUs divide by 2^n_GPU = 4: n_b=10 → 2.
        let c2 = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge);
        assert_eq!(c2.pipelined_pair_merges(10), 2);
        // Non-PipeMerge approaches never pipeline merges.
        let c3 = HetSortConfig::paper_defaults(platform1(), Approach::PipeData);
        assert_eq!(c3.pipelined_pair_merges(10), 0);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let base = HetSortConfig::paper_defaults(platform1(), Approach::PipeData);
        assert!(base.validate(1000).is_ok());
        assert!(base.clone().with_batch_elems(0).validate(10).is_err());
        assert!(base.clone().with_pinned_elems(0).validate(10).is_err());
        // p_s > b_s.
        assert!(base
            .clone()
            .with_batch_elems(100)
            .with_pinned_elems(200)
            .validate(100)
            .is_err());
        // GPU memory overflow: 3 streams × 2 × 5e8 × 8 B = 24 GB > 16 GiB.
        assert!(base.clone().with_streams(3).validate(1000).is_err());
        // BLine with multiple batches.
        let bl = HetSortConfig::paper_defaults(platform1(), Approach::BLine)
            .with_batch_elems(100)
            .with_pinned_elems(10);
        assert!(bl.validate(150).is_err());
        assert!(bl.validate(100).is_ok());
        assert!(base.validate(0).is_err());
    }

    #[test]
    fn elem_bytes_must_be_supported_integer_width() {
        let base = HetSortConfig::paper_defaults(platform1(), Approach::PipeData);
        assert_eq!(base.elem_bytes_usize().expect("8 is supported"), 8);
        assert_eq!(
            base.clone()
                .with_elem_bytes(16.0)
                .elem_bytes_usize()
                .expect("16 is supported"),
            16
        );
        // Fractional, non-finite, non-positive, and unsupported widths
        // are typed Config errors — not a silently-never-equal f64
        // comparison deep in the executor.
        for bad in [8.5, 0.0, -8.0, f64::NAN, f64::INFINITY, 12.0, 4.0] {
            let c = base.clone().with_elem_bytes(bad);
            match c.elem_bytes_usize() {
                Err(HetSortError::Config { .. }) => {}
                other => panic!("elem_bytes={bad}: expected Config error, got {other:?}"),
            }
            assert!(c.validate(1000).is_err(), "validate must reject {bad}");
        }
    }

    #[test]
    fn validation_errors_are_typed() {
        let base = HetSortConfig::paper_defaults(platform1(), Approach::PipeData);
        match base.validate(0) {
            Err(HetSortError::Config { reason }) => {
                assert!(reason.contains("must be positive"), "{reason}")
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn recovery_policy_defaults_and_none() {
        let d = RecoveryPolicy::default();
        assert_eq!(d.max_retries, 2);
        assert!(d.split_on_oom && d.cpu_fallback);
        let n = RecoveryPolicy::none();
        assert_eq!(n.max_retries, 0);
        assert!(!n.split_on_oom && !n.cpu_fallback);
        let c = HetSortConfig::paper_defaults(platform1(), Approach::PipeData)
            .with_recovery(RecoveryPolicy::none());
        assert_eq!(c.recovery, RecoveryPolicy::none());
        assert!(c.faults.is_none());
    }

    #[test]
    fn hybrid_mode_parse_and_validate() {
        assert_eq!(HybridMode::parse("off"), Ok(HybridMode::Off));
        assert_eq!(HybridMode::parse("auto"), Ok(HybridMode::Auto));
        assert_eq!(HybridMode::parse("0.5"), Ok(HybridMode::Fraction(0.5)));
        assert_eq!(HybridMode::parse("1"), Ok(HybridMode::Fraction(1.0)));
        assert!(HybridMode::parse("1.5").is_err());
        assert!(HybridMode::parse("-0.1").is_err());
        assert!(HybridMode::parse("frob").is_err());
        assert!(!HybridMode::Off.is_on());
        assert!(HybridMode::Auto.is_on());
        assert_eq!(HybridMode::Fraction(0.5).describe(), "0.5");

        let base = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge);
        assert_eq!(base.hybrid, HybridMode::Off);
        assert!(base
            .clone()
            .with_hybrid(HybridMode::Fraction(1.0))
            .validate(1000)
            .is_ok());
        for bad in [1.5, -0.1, f64::NAN] {
            assert!(
                base.clone()
                    .with_hybrid(HybridMode::Fraction(bad))
                    .validate(1000)
                    .is_err(),
                "fraction {bad} must be rejected"
            );
        }
    }

    #[test]
    fn staging_mode_knob() {
        let c = HetSortConfig::paper_defaults(platform1(), Approach::PipeData);
        assert_eq!(c.staging, StagingMode::DoubleBuffered);
        assert!(c.double_buffered());
        let p = c.with_staging(StagingMode::Paper);
        assert!(!p.double_buffered());
        for m in [StagingMode::Paper, StagingMode::DoubleBuffered] {
            assert_eq!(StagingMode::parse(m.name()), Some(m));
        }
        assert_eq!(StagingMode::parse("nope"), None);
    }

    #[test]
    fn approach_names() {
        assert_eq!(Approach::BLine.name(), "BLine");
        assert_eq!(Approach::PipeMerge.name(), "PipeMerge");
        assert!(Approach::PipeData.is_piped());
        assert!(!Approach::BLineMulti.is_piped());
    }
}
