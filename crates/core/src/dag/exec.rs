//! The one DAG engine behind sequential and pooled functional
//! execution.
//!
//! Both entry points schedule the same [`PlanDag`] through the same
//! [`ReadySet`] and differ only in the resource model:
//!
//! * [`execute_dag`] — one host thread. Under the default
//!   [`TieBreak::MinId`] the ready order *is* the plan submission
//!   order, so outputs, spans, recovery statistics, fault-injection
//!   occurrence alignment and executed traces are bit-identical to the
//!   legacy sequential interpreter this engine replaced (the
//!   differential suite pins this).
//! * [`execute_dag_pooled`] — a pool of N workers pulls ready
//!   stream-bound nodes (stream exclusivity falls out of the FIFO
//!   edges: at most one node per stream is ever ready), while the
//!   calling thread coordinates merges, firing each pair merge the
//!   moment both inputs exist — the legacy multi-threaded executor's
//!   concurrency structure, now over an explicit graph.
//!
//! Both engines route the full failure model through the same code:
//! per-batch checkpointing, survivor re-planning on device loss
//! (lowered to fresh survivor dags), CPU-fallback degradation, and
//! panic-safe worker death with typed [`HetSortError::WorkerPanic`].

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

use hetsort_algos::keys::{RadixKey, SortOrd};
use hetsort_algos::merge::par_merge_into_cfg;
use hetsort_algos::multiway::par_multiway_merge_into_cfg;
use hetsort_algos::par::{par_copy, SchedCfg};
use hetsort_algos::radix_par::par_radix_sort_cfg;
use hetsort_algos::verify::{fingerprint, is_sorted};
use hetsort_obs::{MetricsRegistry, ObsSpan, OpClass};
use hetsort_sim::Access;

use crate::dag::{DagOp, PlanDag, ReadySet, TieBreak};
use crate::error::HetSortError;
use crate::exec_real::{assemble_trace, cpu_part_spans, RealOutcome};
use crate::exec_stream::StreamExec;
use crate::plan::{MergeInput, MergeSrc, Plan};
use crate::pool::PoolStats;
use crate::report::RecoveryStats;

/// Engine knobs. The default is the pinned determinism contract;
/// non-default values exist for the test battery.
#[derive(Debug, Clone, Copy, Default)]
pub struct DagExecOptions {
    /// Ready-node tie-break (see [`TieBreak`]).
    pub tie: TieBreak,
    /// Test-support defect ([`crate::dag::mutate::DagMutant::SkipCheckpoint`]):
    /// ignore the per-batch checkpoint when a device loss triggers a
    /// re-plan, recomputing *every* batch. Output stays correct; the
    /// differential check on [`RecoveryStats`] kills it.
    pub skip_checkpoint: bool,
    /// CPU/GPU work stealing in the pooled engine: ready pair/CPU
    /// merges are dispatched to dedicated steal workers the moment
    /// their inputs exist, overlapping merges with the staging pipeline
    /// instead of running them inline on the coordinator. `false` (the
    /// default) preserves the coordinator-inline path byte-for-byte —
    /// the deterministic twin the differential battery pins. Stolen
    /// merges are pure functions of their inputs, so output, span
    /// multisets and recovery stats are identical either way; only
    /// wall-clock interleaving differs. Ignored by the sequential
    /// engine.
    pub steal: bool,
}

/// Shared entry checks: data/plan agreement, element width, plan
/// invariants, dag validity.
fn check_inputs<T>(dag: &PlanDag, data: &[T]) -> Result<(), HetSortError> {
    let plan = &dag.plan;
    if data.len() != plan.n {
        return Err(HetSortError::data(format!(
            "data length {} does not match plan n = {}",
            data.len(),
            plan.n
        )));
    }
    let elem_bytes = plan.config.elem_bytes_usize()?;
    if std::mem::size_of::<T>() != elem_bytes {
        return Err(HetSortError::data(format!(
            "element type is {} bytes but the config models {} — call with_elem_bytes",
            std::mem::size_of::<T>(),
            elem_bytes
        )));
    }
    plan.check_invariants()?;
    dag.validate()?;
    if dag.nodes.len() != plan.steps.len() {
        return Err(HetSortError::Plan {
            reason: format!(
                "dag has {} nodes for {} plan steps",
                dag.nodes.len(),
                plan.steps.len()
            ),
        });
    }
    Ok(())
}

/// The sorted slice behind a merge source, if it exists yet.
pub(crate) fn src_slice<'x, T>(
    src: MergeSrc,
    batches: &'x [Option<Vec<T>>],
    pairs: &'x [Option<Vec<T>>],
) -> Option<&'x [T]> {
    match src {
        MergeSrc::Batch(b) => batches[b].as_deref(),
        MergeSrc::Merged(p) => pairs[p].as_deref(),
    }
}

/// Span class and label for a pair slot under the dag's (possibly
/// hybrid) node typing: slots hybrid lowering re-typed to
/// [`DagOp::CpuMerge`] record under their own class so pooled runs
/// emit the same span multiset as the sequential engine.
fn pair_class(cpu_slot: &[bool], slot: usize) -> (OpClass, String) {
    pair_class_of(cpu_slot.get(slot).copied().unwrap_or(false), slot)
}

/// As [`pair_class`], from an already-resolved typing flag.
fn pair_class_of(cpu: bool, slot: usize) -> (OpClass, String) {
    if cpu {
        (OpClass::CpuMerge, format!("CpuMerge p{slot}"))
    } else {
        (OpClass::PairMerge, format!("PairMerge p{slot}"))
    }
}

/// Which pair slots the dag types as [`DagOp::CpuMerge`], indexed by
/// slot — the pooled coordinator's view of hybrid lowering.
fn cpu_slots_of(dag: &PlanDag) -> Vec<bool> {
    let mut v = vec![false; dag.plan.pairs.len()];
    for node in &dag.nodes {
        if let DagOp::CpuMerge { slot } = node.op {
            if let Some(f) = v.get_mut(slot) {
                *f = true;
            }
        }
    }
    v
}

/// Render a lost-GPU set for failover span labels (`"0"`, `"0, 2"`).
fn gpu_list(lost: &BTreeSet<usize>) -> String {
    lost.iter()
        .map(|g| g.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Fire every pending pair merge whose inputs are ready, repeatedly
/// (an Online/MergeTree merge may unlock the next). Each fired merge is
/// recorded as a span on the run clock `t0` under the class the dag
/// assigned its slot (`cpu_slot`).
#[allow(clippy::too_many_arguments)] // internal helper: plan context + two buffer banks + clock + span sink
pub(crate) fn fire_ready_pairs<T>(
    plan: &Plan,
    sched: &SchedCfg,
    merge_threads: usize,
    cpu_slot: &[bool],
    sorted_batches: &[Option<Vec<T>>],
    pair_out: &mut [Option<Vec<T>>],
    pending: &mut Vec<usize>,
    t0: std::time::Instant,
    spans: &mut Vec<ObsSpan>,
) where
    T: RadixKey + SortOrd + Default,
{
    let mut fired = true;
    while fired {
        fired = false;
        let mut i = 0;
        while i < pending.len() {
            let slot = pending[i];
            let spec = plan.pairs[slot];
            let (Some(l), Some(r)) = (
                src_slice(spec.left, sorted_batches, pair_out),
                src_slice(spec.right, sorted_batches, pair_out),
            ) else {
                i += 1;
                continue;
            };
            let mut out = vec![T::default(); spec.out_elems];
            let m_start = t0.elapsed().as_secs_f64();
            let (class, label) = pair_class(cpu_slot, slot);
            let stats = par_merge_into_cfg(sched, merge_threads, l, r, &mut out);
            spans.push(
                ObsSpan::new(class, label.clone(), m_start, t0.elapsed().as_secs_f64())
                    .with_bytes(spec.out_elems as f64 * plan.config.elem_bytes),
            );
            spans.extend(cpu_part_spans(&label, m_start, &stats));
            pair_out[slot] = Some(out);
            pending.remove(i);
            fired = true;
        }
    }
}

/// A pair merge handed to a steal worker: inputs snapshotted, typing
/// resolved, everything the worker needs without touching coordinator
/// state.
struct MergeTask<T> {
    slot: usize,
    left: Vec<T>,
    right: Vec<T>,
    out_elems: usize,
    cpu: bool,
}

/// A finished stolen merge on its way back to the coordinator.
struct MergeDone<T> {
    slot: usize,
    out: Vec<T>,
    spans: Vec<ObsSpan>,
}

/// Dispatch every pending pair whose inputs are ready to the steal
/// pool (removing it from `pending`); returns how many were sent. The
/// counterpart of [`fire_ready_pairs`] for `steal=on`: the merge
/// itself happens on a steal worker, and the result re-enters through
/// the coordinator's done channel. A send failure (workers gone after
/// an abort) leaves the slot pending for the inline recovery paths.
fn dispatch_ready_pairs<T: Clone>(
    plan: &Plan,
    cpu_slot: &[bool],
    sorted_batches: &[Option<Vec<T>>],
    pair_out: &[Option<Vec<T>>],
    pending: &mut Vec<usize>,
    task_tx: &std::sync::mpsc::Sender<MergeTask<T>>,
) -> usize {
    let mut sent = 0usize;
    let mut i = 0;
    while i < pending.len() {
        let slot = pending[i];
        let spec = plan.pairs[slot];
        let (Some(l), Some(r)) = (
            src_slice(spec.left, sorted_batches, pair_out),
            src_slice(spec.right, sorted_batches, pair_out),
        ) else {
            i += 1;
            continue;
        };
        let task = MergeTask {
            slot,
            left: l.to_vec(),
            right: r.to_vec(),
            out_elems: spec.out_elems,
            cpu: cpu_slot.get(slot).copied().unwrap_or(false),
        };
        if task_tx.send(task).is_err() {
            i += 1;
            continue;
        }
        pending.remove(i);
        sent += 1;
    }
    sent
}

/// Execute one merge node of the sequential engine over the sorted runs
/// in `w`, writing pair outputs to `pair_out` and the multiway result
/// to `b_out`.
#[allow(clippy::too_many_arguments)] // merge context: inputs, outputs, sched, clock, span sink
fn run_merge_node<T>(
    plan: &Plan,
    op: &DagOp,
    sched: &SchedCfg,
    host_threads: usize,
    t0: std::time::Instant,
    w: &[T],
    b_out: &mut [T],
    pair_out: &mut Vec<Vec<T>>,
    merge_spans: &mut Vec<ObsSpan>,
    pair_merges_done: &mut usize,
) -> Result<(), HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    let cfg = &plan.config;
    match op {
        DagOp::PairMerge { slot } | DagOp::CpuMerge { slot } => {
            let spec = *plan.pairs.get(*slot).ok_or_else(|| HetSortError::Plan {
                reason: format!("merge references missing pair slot {slot}"),
            })?;
            let resolve = |src: MergeSrc, pair_out: &'_ Vec<Vec<T>>| -> Vec<T> {
                match src {
                    MergeSrc::Batch(b) => {
                        let bi = &plan.batches[b];
                        w[bi.start..bi.start + bi.len].to_vec()
                    }
                    MergeSrc::Merged(p) => pair_out[p].clone(),
                }
            };
            // Borrow discipline: snapshot inputs, then write the slot.
            let left = resolve(spec.left, pair_out);
            let right = resolve(spec.right, pair_out);
            let mut out = vec![T::default(); spec.out_elems];
            let m_start = t0.elapsed().as_secs_f64();
            let (class, label) = match op {
                DagOp::CpuMerge { .. } => (OpClass::CpuMerge, format!("CpuMerge p{slot}")),
                _ => (OpClass::PairMerge, format!("PairMerge p{slot}")),
            };
            let stats = par_merge_into_cfg(sched, host_threads, &left, &right, &mut out);
            merge_spans.push(
                ObsSpan::new(class, label.clone(), m_start, t0.elapsed().as_secs_f64())
                    .with_bytes(spec.out_elems as f64 * cfg.elem_bytes),
            );
            merge_spans.extend(cpu_part_spans(&label, m_start, &stats));
            pair_out[*slot] = out;
            *pair_merges_done += 1;
        }
        DagOp::MultiwayMerge { inputs } => {
            let lists: Vec<&[T]> = inputs
                .iter()
                .map(|inp| match *inp {
                    MergeInput::Batch(b) => {
                        let bi = &plan.batches[b];
                        &w[bi.start..bi.start + bi.len]
                    }
                    MergeInput::Pair(p) => pair_out[p].as_slice(),
                })
                .collect();
            let m_start = t0.elapsed().as_secs_f64();
            let label = format!("MultiwayMerge k{}", lists.len());
            let stats = par_multiway_merge_into_cfg(sched, host_threads, &lists, b_out);
            merge_spans.push(
                ObsSpan::new(
                    OpClass::MultiwayMerge,
                    label.clone(),
                    m_start,
                    t0.elapsed().as_secs_f64(),
                )
                .with_bytes(plan.n as f64 * cfg.elem_bytes),
            );
            merge_spans.extend(cpu_part_spans(&label, m_start, &stats));
        }
        other => {
            return Err(HetSortError::Plan {
                reason: format!(
                    "run_merge_node called on non-merge op {}",
                    other.class_name()
                ),
            })
        }
    }
    Ok(())
}

/// Execute the dag sequentially with default options (the pinned
/// [`TieBreak::MinId`] determinism contract).
///
/// # Errors
///
/// Everything [`crate::exec_real::sort_real_plan`] documents, plus
/// [`HetSortError::Plan`] when the dag fails [`PlanDag::validate`].
pub fn execute_dag<T>(dag: &PlanDag, data: &[T]) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    execute_dag_opts(dag, data, DagExecOptions::default())
}

/// Sequential engine with explicit [`DagExecOptions`].
///
/// # Errors
///
/// As [`execute_dag`].
pub fn execute_dag_opts<T>(
    dag: &PlanDag,
    data: &[T],
    opts: DagExecOptions,
) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    check_inputs(dag, data)?;
    let plan = &dag.plan;
    let cfg = &plan.config;
    let n = plan.n;
    let nb = plan.nb();
    let input_fp = fingerprint(data);
    let injected_before = cfg.faults.as_ref().map_or(0, |i| i.injected());
    let t0 = std::time::Instant::now();

    // Memory: A (borrowed), W (working memory for sorted sublists),
    // B (output), per-stream state (pinned + device buffers) in the
    // stream interpreters.
    let mut w = vec![T::default(); if nb > 1 { n } else { 0 }];
    let mut b_out = vec![T::default(); n];
    let mut pair_out: Vec<Vec<T>> = (0..plan.pairs.len()).map(|_| Vec::new()).collect();
    let merge_threads = usize::try_from(cfg.merge_threads_eff()).unwrap_or(usize::MAX);
    // Cap the functional thread count at this machine's parallelism ×4:
    // simulated platforms may have more cores than the host.
    let host_threads = merge_threads.min(4 * hetsort_algos::par::default_threads());
    let device_sort_threads = hetsort_algos::par::default_threads();
    let memcpy_threads = usize::try_from(cfg.memcpy_threads_eff())
        .unwrap_or(usize::MAX)
        .min(4 * hetsort_algos::par::default_threads());
    let sched = cfg.sched_cfg();

    // --- Phase 1: ready-order passes produce the sorted runs in `w`
    // (or `b_out` when n_b = 1). A device loss aborts the pass;
    // unfinished work is re-planned onto the survivors (or host-sorted
    // when none remain) and the next pass covers only batches not yet
    // staged out. Merge nodes execute inline only on the original dag
    // (batch tiling is identical across re-plans, so the *original*
    // dag's merge schedule stays valid); any still unexecuted after
    // recovery run in phase 2.
    let mut recovery = RecoveryStats::default();
    let mut pool_stats = PoolStats::default();
    let mut metrics = MetricsRegistry::new();
    let mut replans: Vec<Plan> = Vec::new();
    let mut lost_gpus: BTreeSet<usize> = Default::default();
    let mut emitted: Vec<usize> = vec![0usize; nb];
    let mut final_logs: Vec<Vec<(usize, Vec<Access>)>> = Vec::new();
    let mut merge_done: Vec<bool> = vec![false; dag.nodes.len()];
    let mut merge_spans: Vec<ObsSpan> = Vec::new();
    let mut pair_merges_done = 0usize;
    let mut cur_dag_owned: Option<PlanDag> = None;
    loop {
        let cur_dag: &PlanDag = cur_dag_owned.as_ref().unwrap_or(dag);
        let cur = &cur_dag.plan;
        let on_base = cur_dag_owned.is_none();
        let mut streams: Vec<StreamExec<T>> = (0..cur.total_streams)
            .map(|s| StreamExec::new(cur, data, s, host_threads, device_sort_threads, t0))
            .collect();
        let mut lost: Option<usize> = None;
        // Steps skipped because their batch already completed log empty
        // access lists: "no accesses this pass" must override the
        // static derivation in the assembled trace.
        let mut skipped_log: Vec<(usize, Vec<Access>)> = Vec::new();
        // The original dag schedules everything; survivor dags schedule
        // stream nodes only (their merges are never executed).
        let mut ready = ReadySet::new(
            cur_dag,
            |i| on_base || !cur_dag.nodes[i].op.is_merge(),
            opts.tie,
        );
        while let Some(si) = ready.pop() {
            let node = &cur_dag.nodes[si];
            if node.op.is_merge() {
                run_merge_node(
                    plan,
                    &node.op,
                    &sched,
                    host_threads,
                    t0,
                    &w,
                    &mut b_out,
                    &mut pair_out,
                    &mut merge_spans,
                    &mut pair_merges_done,
                )?;
                merge_done[si] = true;
                ready.complete(si);
                continue;
            }
            if let Some(bi) = node.op.batch() {
                if emitted[bi] >= cur.batches[bi].len {
                    if cur.config.record_trace {
                        skipped_log.push((si, Vec::new()));
                    }
                    ready.complete(si);
                    continue;
                }
            }
            let s = node.stream.ok_or_else(|| HetSortError::Plan {
                reason: format!("node {si} has no stream"),
            })?;
            let dst = if nb > 1 { &mut w } else { &mut b_out };
            let r = streams[s].step(si, &mut |batch, start, chunk| {
                par_copy(memcpy_threads, chunk, &mut dst[start..start + chunk.len()]);
                emitted[batch] += chunk.len();
            });
            match r {
                Ok(()) => ready.complete(si),
                Err(HetSortError::DeviceLost { gpu }) => {
                    lost = Some(gpu);
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        for sx in &mut streams {
            recovery.retries += sx.stats.retries;
            recovery.degraded_batches += sx.stats.degraded_batches;
            recovery.oom_replans += sx.stats.oom_replans;
            pool_stats.absorb(sx.pool.stats);
            metrics.record_all(std::mem::take(&mut sx.span_log));
        }
        if cur.config.record_trace {
            // The trace covers the final pass; earlier aborted passes'
            // logs reference a different plan's step indices.
            final_logs = streams.iter().map(|sx| sx.access_log.clone()).collect();
            final_logs.push(skipped_log);
        }
        let Some(gpu) = lost else { break };

        // Device fault domain: checkpoint what finished, re-plan the
        // rest over the survivors.
        recovery.device_lost += 1;
        recovery.record_lost_gpu(gpu);
        lost_gpus.insert(gpu);
        let unfinished: Vec<usize> = (0..nb)
            .filter(|&b| opts.skip_checkpoint || emitted[b] < plan.batches[b].len)
            .collect();
        recovery.batches_recomputed += unfinished
            .iter()
            .filter(|&&b| cur.physical_gpu(cur.batches[b].gpu) == gpu)
            .count();
        // Partially staged-out batches are recomputed whole.
        for &b in &unfinished {
            emitted[b] = 0;
        }
        let t_fail = t0.elapsed().as_secs_f64();
        match crate::recover::survivor_plan(plan, &lost_gpus)? {
            Some(rp) => {
                recovery.replans += 1;
                metrics.record(ObsSpan::new(
                    OpClass::Other,
                    format!(
                        "failover: GPU {gpu} lost → re-plan {} batch(es) on {} device(s)",
                        unfinished.len(),
                        rp.device_ids.len()
                    ),
                    t_fail,
                    t0.elapsed().as_secs_f64(),
                ));
                replans.push(rp.clone());
                cur_dag_owned = Some(PlanDag::from_plan(rp));
            }
            None => {
                if !cfg.recovery.cpu_fallback {
                    return Err(HetSortError::DeviceLost { gpu });
                }
                // Every device is gone: sort the unfinished batches
                // host-side straight from `A`.
                for &b in &unfinished {
                    let bi = plan.batches[b];
                    let dst = if nb > 1 { &mut w } else { &mut b_out };
                    let seg = &mut dst[bi.start..bi.start + bi.len];
                    par_copy(memcpy_threads, &data[bi.start..bi.start + bi.len], seg);
                    hetsort_algos::radix_par::par_radix_sort_cfg(&sched, host_threads, seg);
                    emitted[b] = bi.len;
                    recovery.degraded_batches += 1;
                }
                metrics.record(ObsSpan::new(
                    OpClass::Other,
                    format!(
                        "failover: GPU(s) {} lost, no survivors → host sort of {} batch(es)",
                        gpu_list(&lost_gpus),
                        unfinished.len()
                    ),
                    t_fail,
                    t0.elapsed().as_secs_f64(),
                ));
                break;
            }
        }
    }
    debug_assert!(
        (0..nb).all(|b| emitted[b] == plan.batches[b].len),
        "every batch must be staged out before merging"
    );

    // --- Phase 2: the original dag's merge schedule over the sorted
    // runs in `w` — only nodes phase 1 did not already execute.
    let mut merges = ReadySet::new(dag, |i| dag.nodes[i].op.is_merge(), opts.tie);
    while let Some(si) = merges.pop() {
        if !merge_done[si] {
            run_merge_node(
                plan,
                &dag.nodes[si].op,
                &sched,
                host_threads,
                t0,
                &w,
                &mut b_out,
                &mut pair_out,
                &mut merge_spans,
                &mut pair_merges_done,
            )?;
        }
        merges.complete(si);
    }

    recovery.faults_injected = cfg.faults.as_ref().map_or(0, |i| i.injected()) - injected_before;

    // With re-plans, the executed trace covers the final pass (the plan
    // that actually finished the run).
    let trace = cfg.record_trace.then(|| {
        let trace_plan = replans.last().unwrap_or(plan);
        assemble_trace(trace_plan, &final_logs)
    });

    metrics.record_all(merge_spans);
    recovery.fold_into(&mut metrics);
    pool_stats.fold_into(&mut metrics);

    let wall_s = t0.elapsed().as_secs_f64();
    let verified = is_sorted(&b_out) && fingerprint(&b_out) == input_fp;
    Ok(RealOutcome {
        sorted: b_out,
        wall_s,
        verified,
        nb,
        pair_merges: pair_merges_done,
        recovery,
        trace,
        metrics,
        replans,
    })
}

/// What ended a stream that did not finish cleanly.
enum StreamFail {
    Lost(usize),
    Typed(HetSortError),
    Panicked(String),
}

/// Pool scheduler state shared by the workers.
struct PoolSched {
    ready: BTreeSet<usize>,
    indegree: Vec<usize>,
    inflight: usize,
    dead: Vec<bool>,
}

/// Per-stream interpreter state a worker locks while executing one of
/// the stream's nodes (FIFO edges guarantee at most one ready node per
/// stream, so the lock is uncontended in practice).
struct StreamSlot<'p, T> {
    sx: StreamExec<'p, T>,
    assembling: Option<(usize, Vec<T>)>,
}

/// Lock a mutex, recovering the guard from a poisoned lock (a worker
/// panic is already recorded as a [`StreamFail`]; the data is not
/// touched again for dead streams).
fn lock_any<G>(m: &Mutex<G>) -> std::sync::MutexGuard<'_, G> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Execute the dag with a pool of `workers` threads over the stream
/// subgraph, the calling thread coordinating merges — the parallel
/// engine behind [`crate::exec_real_mt::sort_real_parallel`].
///
/// Produces bit-identical output to [`execute_dag`] (the data path is
/// deterministic; only wall-clock interleaving differs). With a fault
/// injector armed, global occurrence counters are still exact, but
/// *which* stream observes an occurrence depends on interleaving —
/// concurrent fault tests should use single-stream configs or
/// worker-addressed panics.
///
/// # Errors
///
/// As [`crate::exec_real_mt::sort_real_parallel`].
pub fn execute_dag_pooled<T>(
    dag: &PlanDag,
    data: &[T],
    workers: usize,
) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    execute_dag_pooled_opts(dag, data, workers, DagExecOptions::default())
}

/// Pooled engine with explicit [`DagExecOptions`] (`skip_checkpoint`
/// applies to the sequential recovery mini-pass only and is ignored
/// here).
///
/// # Errors
///
/// As [`execute_dag_pooled`].
pub fn execute_dag_pooled_opts<T>(
    dag: &PlanDag,
    data: &[T],
    workers: usize,
    opts: DagExecOptions,
) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    check_inputs(dag, data)?;
    let plan = &dag.plan;
    let nb = plan.nb();
    let input_fp = fingerprint(data);
    let injected_before = plan.config.faults.as_ref().map_or(0, |i| i.injected());
    let t0 = std::time::Instant::now();
    let merge_threads = usize::try_from(plan.config.merge_threads_eff())
        .unwrap_or(usize::MAX)
        .min(4 * hetsort_algos::par::default_threads());
    let device_sort_threads = hetsort_algos::par::default_threads();
    let sched = plan.config.sched_cfg();
    let n_workers = workers.max(1);
    // Hybrid typing per pair slot, as lowered into the dag.
    let cpu_slot = cpu_slots_of(dag);

    // Steal channels live outside the scope so the steal workers'
    // borrow of the task receiver satisfies the `'scope` bound; the
    // task sender is moved into the coordinator closure and dropped
    // there once no more merges can be dispatched, which is what lets
    // idle steal workers drain and exit before the scope joins.
    let (task_tx, task_rx) = std::sync::mpsc::channel::<MergeTask<T>>();
    let task_rx = Mutex::new(task_rx);
    let (done_tx, done_rx) = std::sync::mpsc::channel::<MergeDone<T>>();

    // Stream-subgraph scheduling state (merges belong to the
    // coordinator, not the pool).
    let stream_scope: Vec<bool> = dag.nodes.iter().map(|n| !n.op.is_merge()).collect();
    let mut indegree = vec![0usize; dag.nodes.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); dag.nodes.len()];
    for (i, node) in dag.nodes.iter().enumerate() {
        if !stream_scope[i] {
            continue;
        }
        for &d in &node.deps {
            if stream_scope[d] {
                indegree[i] += 1;
                dependents[d].push(i);
            }
        }
    }
    let ready: BTreeSet<usize> = (0..dag.nodes.len())
        .filter(|&i| stream_scope[i] && indegree[i] == 0)
        .collect();

    let sched_mx = Mutex::new(PoolSched {
        ready,
        indegree,
        inflight: 0,
        dead: vec![false; plan.total_streams],
    });
    let cond = Condvar::new();
    let slots: Vec<Mutex<StreamSlot<T>>> = (0..plan.total_streams)
        .map(|s| {
            Mutex::new(StreamSlot {
                sx: StreamExec::new(plan, data, s, merge_threads, device_sort_threads, t0),
                assembling: None,
            })
        })
        .collect();
    let fails_mx: Mutex<Vec<Option<StreamFail>>> =
        Mutex::new((0..plan.total_streams).map(|_| None).collect());

    let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<T>)>();

    let mut sorted_batches: Vec<Option<Vec<T>>> = (0..nb).map(|_| None).collect();
    let mut pair_out: Vec<Option<Vec<T>>> = (0..plan.pairs.len()).map(|_| None).collect();
    let mut b_out: Vec<T> = Vec::new();
    let mut recovery = RecoveryStats::default();
    let mut pool_stats = PoolStats::default();
    let mut stream_logs: Vec<Vec<(usize, Vec<Access>)>> = Vec::new();
    let mut metrics = MetricsRegistry::new();
    let mut merge_spans: Vec<ObsSpan> = Vec::new();
    let mut replans: Vec<Plan> = Vec::new();

    std::thread::scope(|scope| -> Result<(), HetSortError> {
        // ---- worker pool over ready stream nodes --------------------
        let mut handles = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let tx = tx.clone();
            let (sched_mx, cond, slots, fails_mx, dependents) =
                (&sched_mx, &cond, &slots, &fails_mx, &dependents);
            handles.push(scope.spawn(move || {
                loop {
                    // Acquire the next ready node under the tie-break.
                    let next = {
                        let mut g = lock_any(sched_mx);
                        loop {
                            let pick = match opts.tie {
                                TieBreak::MinId => g.ready.iter().next().copied(),
                                TieBreak::MaxId => g.ready.iter().next_back().copied(),
                            };
                            if let Some(id) = pick {
                                g.ready.remove(&id);
                                g.inflight += 1;
                                break Some(id);
                            }
                            if g.inflight == 0 {
                                break None;
                            }
                            g = match cond.wait(g) {
                                Ok(g) => g,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                        }
                    };
                    let Some(id) = next else {
                        // Drained (or permanently stuck behind a dead
                        // stream): wake any peers still waiting.
                        cond.notify_all();
                        return;
                    };
                    let node = &dag.nodes[id];
                    let s = node.stream.unwrap_or(0);
                    let stream_dead = lock_any(sched_mx).dead[s];
                    let mut ok = false;
                    if !stream_dead {
                        let mut slot = lock_any(&slots[s]);
                        let StreamSlot { sx, assembling } = &mut *slot;
                        let r = catch_unwind(AssertUnwindSafe(|| -> Result<(), HetSortError> {
                            if let DagOp::StagingCopy {
                                batch,
                                chunk: 0,
                                dir_in: true,
                                ..
                            } = node.op
                            {
                                if let Some(inj) = plan.config.faults.as_deref() {
                                    if inj.should_panic(s) {
                                        panic!(
                                            "injected panic in stream worker {s} at batch {batch}"
                                        );
                                    }
                                }
                            }
                            sx.step(id, &mut |batch, _start, chunk| {
                                let (_, buf) = assembling.get_or_insert_with(|| {
                                    (batch, Vec::with_capacity(plan.batches[batch].len))
                                });
                                buf.extend_from_slice(chunk);
                                if buf.len() == plan.batches[batch].len {
                                    if let Some(done) = assembling.take() {
                                        // A dead coordinator just means
                                        // the run already failed; don't
                                        // panic on top.
                                        let _ = tx.send(done);
                                    }
                                }
                            })
                        }));
                        match r {
                            Ok(Ok(())) => ok = true,
                            Ok(Err(e)) => {
                                let mut f = lock_any(fails_mx);
                                if f[s].is_none() {
                                    f[s] = Some(match e {
                                        HetSortError::DeviceLost { gpu } => StreamFail::Lost(gpu),
                                        other => StreamFail::Typed(other),
                                    });
                                }
                            }
                            Err(payload) => {
                                let message = payload
                                    .downcast_ref::<&str>()
                                    .map(|m| (*m).to_string())
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "opaque panic payload".to_string());
                                let mut f = lock_any(fails_mx);
                                if f[s].is_none() {
                                    f[s] = Some(StreamFail::Panicked(message));
                                }
                            }
                        }
                    }
                    {
                        let mut g = lock_any(sched_mx);
                        g.inflight -= 1;
                        if ok {
                            for &j in &dependents[id] {
                                g.indegree[j] -= 1;
                                if g.indegree[j] == 0 {
                                    g.ready.insert(j);
                                }
                            }
                        } else {
                            // The stream stalls: its un-run successors
                            // stay blocked forever, and the pool drains
                            // around them.
                            g.dead[s] = true;
                        }
                        cond.notify_all();
                    }
                }
            }));
        }
        drop(tx);

        // ---- steal workers: CPU lanes for ready merge nodes ---------
        // With `steal` on, pair/CPU merges leave the coordinator the
        // moment their inputs exist and run here, overlapping the
        // staging pipeline. The workers block on the shared task
        // receiver (lock–recv–release: at most one waits while the
        // rest merge) and exit when the task sender drops.
        let steal_workers = if opts.steal { n_workers.clamp(1, 2) } else { 0 };
        for _ in 0..steal_workers {
            let done_tx = done_tx.clone();
            let (task_rx, sched) = (&task_rx, &sched);
            scope.spawn(move || loop {
                let task = lock_any(task_rx).recv();
                let Ok(t) = task else { return };
                let mut out = vec![T::default(); t.out_elems];
                let m_start = t0.elapsed().as_secs_f64();
                let (class, label) = pair_class_of(t.cpu, t.slot);
                let stats = par_merge_into_cfg(sched, merge_threads, &t.left, &t.right, &mut out);
                let mut spans =
                    vec![
                        ObsSpan::new(class, label.clone(), m_start, t0.elapsed().as_secs_f64())
                            .with_bytes(t.out_elems as f64 * plan.config.elem_bytes),
                    ];
                spans.extend(cpu_part_spans(&label, m_start, &stats));
                let _ = done_tx.send(MergeDone {
                    slot: t.slot,
                    out,
                    spans,
                });
            });
        }
        drop(done_tx);

        // ---- merge coordinator (this thread) ------------------------
        let mut received = 0usize;
        let mut pending_pairs: Vec<usize> = (0..plan.pairs.len()).collect();
        let mut stolen_inflight = 0usize;
        let land = |done: MergeDone<T>,
                    pair_out: &mut Vec<Option<Vec<T>>>,
                    merge_spans: &mut Vec<ObsSpan>| {
            pair_out[done.slot] = Some(done.out);
            merge_spans.extend(done.spans);
        };
        while received < nb {
            // A disconnect means every worker is done (some possibly
            // dead); fall through to the join pass to find out which.
            let Ok((idx, buf)) = rx.recv() else { break };
            sorted_batches[idx] = Some(buf);
            received += 1;
            if opts.steal {
                stolen_inflight += dispatch_ready_pairs(
                    plan,
                    &cpu_slot,
                    &sorted_batches,
                    &pair_out,
                    &mut pending_pairs,
                    &task_tx,
                );
                // Opportunistically land finished merges; a landed
                // Online/MergeTree output may unlock the next dispatch.
                while let Ok(done) = done_rx.try_recv() {
                    land(done, &mut pair_out, &mut merge_spans);
                    stolen_inflight -= 1;
                    stolen_inflight += dispatch_ready_pairs(
                        plan,
                        &cpu_slot,
                        &sorted_batches,
                        &pair_out,
                        &mut pending_pairs,
                        &task_tx,
                    );
                }
            } else {
                fire_ready_pairs(
                    plan,
                    &sched,
                    merge_threads,
                    &cpu_slot,
                    &sorted_batches,
                    &mut pair_out,
                    &mut pending_pairs,
                    t0,
                    &mut merge_spans,
                );
            }
        }
        // Settle every dispatched merge before inspecting stream
        // outcomes: pair_out must be complete for the recovery and
        // final-merge phases (a chained merge may still dispatch here).
        while stolen_inflight > 0 {
            let Ok(done) = done_rx.recv() else { break };
            land(done, &mut pair_out, &mut merge_spans);
            stolen_inflight -= 1;
            stolen_inflight += dispatch_ready_pairs(
                plan,
                &cpu_slot,
                &sorted_batches,
                &pair_out,
                &mut pending_pairs,
                &task_tx,
            );
        }
        // No further steal dispatch (recovery merges run inline); let
        // the steal workers drain and exit.
        drop(task_tx);
        for h in handles {
            // Workers catch their own panics; a join error would mean a
            // bug in the pool loop itself — surface it as a panic.
            if h.join().is_err() {
                return Err(HetSortError::Plan {
                    reason: "dag pool worker died outside the node sandbox".to_string(),
                });
            }
        }

        // ---- collect per-stream outcomes (stream order, like the
        // legacy per-worker join pass): clean streams contribute stats,
        // logs and spans; failed streams contribute their fault.
        let mut fails = lock_any(&fails_mx);
        let mut first_err: Option<HetSortError> = None;
        let mut first_panic: Option<HetSortError> = None;
        let mut newly_lost: Vec<usize> = Vec::new();
        for s in 0..plan.total_streams {
            match fails[s].take() {
                None => {
                    let mut slot = lock_any(&slots[s]);
                    recovery.retries += slot.sx.stats.retries;
                    recovery.degraded_batches += slot.sx.stats.degraded_batches;
                    recovery.oom_replans += slot.sx.stats.oom_replans;
                    pool_stats.absorb(slot.sx.pool.stats);
                    stream_logs.push(std::mem::take(&mut slot.sx.access_log));
                    metrics.record_all(std::mem::take(&mut slot.sx.span_log));
                }
                Some(StreamFail::Lost(gpu)) => {
                    if !newly_lost.contains(&gpu) {
                        newly_lost.push(gpu);
                    }
                }
                Some(StreamFail::Typed(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Some(StreamFail::Panicked(message)) => {
                    if first_panic.is_none() {
                        first_panic = Some(HetSortError::WorkerPanic { worker: s, message });
                    }
                }
            }
        }
        drop(fails);
        if let Some(e) = first_err {
            return Err(e);
        }

        // ---- device-loss recovery: re-plan missing batches ----------
        // Completed batches in `sorted_batches` are the checkpoint;
        // each round lowers a survivor dag and runs a sequential
        // mini-pass over only the still-missing batches. A further loss
        // during recovery shrinks the pool again.
        if !newly_lost.is_empty() {
            let mut lost_gpus: BTreeSet<usize> = Default::default();
            let mut cur_owned: Option<Plan> = None;
            while !newly_lost.is_empty() {
                let cur: &Plan = cur_owned.as_ref().unwrap_or(plan);
                recovery.device_lost += newly_lost.len();
                // Several devices can die inside one checkpoint window
                // (one loss event per GPU, all observed at this join);
                // attribute every casualty, not an arbitrary pick.
                for &g in &newly_lost {
                    recovery.record_lost_gpu(g);
                }
                recovery.batches_recomputed += sorted_batches
                    .iter()
                    .enumerate()
                    .filter(|(b, sl)| {
                        sl.is_none() && newly_lost.contains(&cur.physical_gpu(cur.batches[*b].gpu))
                    })
                    .count();
                lost_gpus.extend(newly_lost.drain(..));
                let missing = sorted_batches.iter().filter(|sl| sl.is_none()).count();
                let t_fail = t0.elapsed().as_secs_f64();
                match crate::recover::survivor_plan(plan, &lost_gpus)? {
                    None => {
                        // The typed error carries one representative id
                        // (the smallest casualty); the span and the
                        // RecoveryStats mask name the full set.
                        let gpu = lost_gpus.iter().next().copied().unwrap_or(0);
                        if !plan.config.recovery.cpu_fallback {
                            return Err(HetSortError::DeviceLost { gpu });
                        }
                        for (b, slot) in sorted_batches.iter_mut().enumerate() {
                            if slot.is_none() {
                                let bi = &plan.batches[b];
                                let mut buf = data[bi.start..bi.start + bi.len].to_vec();
                                par_radix_sort_cfg(&sched, merge_threads, &mut buf);
                                *slot = Some(buf);
                                recovery.degraded_batches += 1;
                            }
                        }
                        metrics.record(ObsSpan::new(
                            OpClass::Other,
                            format!(
                                "failover: GPU(s) {} lost, no survivors → host sort of {missing} batch(es)",
                                gpu_list(&lost_gpus)
                            ),
                            t_fail,
                            t0.elapsed().as_secs_f64(),
                        ));
                    }
                    Some(rp) => {
                        recovery.replans += 1;
                        metrics.record(ObsSpan::new(
                            OpClass::Other,
                            format!(
                                "failover: re-plan {missing} batch(es) on {} device(s)",
                                rp.device_ids.len()
                            ),
                            t_fail,
                            t0.elapsed().as_secs_f64(),
                        ));
                        let rp_dag = PlanDag::from_plan(rp.clone());
                        let mut sxs: Vec<StreamExec<T>> = (0..rp_dag.plan.total_streams)
                            .map(|s| {
                                StreamExec::new(
                                    &rp_dag.plan,
                                    data,
                                    s,
                                    merge_threads,
                                    device_sort_threads,
                                    t0,
                                )
                            })
                            .collect();
                        let mut partial: Vec<Vec<T>> = vec![Vec::new(); nb];
                        let mut mini = ReadySet::new(
                            &rp_dag,
                            |i| !rp_dag.nodes[i].op.is_merge(),
                            TieBreak::MinId,
                        );
                        'mini: while let Some(si) = mini.pop() {
                            mini.complete(si);
                            let node = &rp_dag.nodes[si];
                            if let Some(bi) = node.op.batch() {
                                if sorted_batches[bi].is_some() {
                                    continue;
                                }
                            }
                            let Some(s) = node.stream else { continue };
                            let r = sxs[s].step(si, &mut |batch, _start, chunk| {
                                partial[batch].extend_from_slice(chunk);
                            });
                            match r {
                                Ok(()) => {}
                                Err(HetSortError::DeviceLost { gpu }) => {
                                    newly_lost.push(gpu);
                                    break 'mini;
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        for sx in &mut sxs {
                            recovery.retries += sx.stats.retries;
                            recovery.degraded_batches += sx.stats.degraded_batches;
                            recovery.oom_replans += sx.stats.oom_replans;
                            pool_stats.absorb(sx.pool.stats);
                            metrics.record_all(std::mem::take(&mut sx.span_log));
                        }
                        for (b, buf) in partial.into_iter().enumerate() {
                            if sorted_batches[b].is_none() && buf.len() == plan.batches[b].len {
                                sorted_batches[b] = Some(buf);
                            }
                        }
                        replans.push(rp_dag.plan.clone());
                        cur_owned = Some(rp_dag.plan);
                    }
                }
            }
            fire_ready_pairs(
                plan,
                &sched,
                merge_threads,
                &cpu_slot,
                &sorted_batches,
                &mut pair_out,
                &mut pending_pairs,
                t0,
                &mut merge_spans,
            );
        }

        if let Some(e) = first_panic {
            if !plan.config.recovery.cpu_fallback {
                return Err(e);
            }
            // Graceful degradation: host-sort whatever the dead
            // stream(s) never delivered, straight from A.
            for (b, slot) in sorted_batches.iter_mut().enumerate() {
                if slot.is_none() {
                    let bi = &plan.batches[b];
                    let mut buf = data[bi.start..bi.start + bi.len].to_vec();
                    par_radix_sort_cfg(&sched, merge_threads, &mut buf);
                    *slot = Some(buf);
                    recovery.degraded_batches += 1;
                }
            }
            fire_ready_pairs(
                plan,
                &sched,
                merge_threads,
                &cpu_slot,
                &sorted_batches,
                &mut pair_out,
                &mut pending_pairs,
                t0,
                &mut merge_spans,
            );
        }
        if !pending_pairs.is_empty() {
            return Err(HetSortError::MergeStall {
                pending: pending_pairs.len(),
            });
        }

        // ---- final merge --------------------------------------------
        b_out = vec![T::default(); plan.n];
        if nb == 1 {
            let only = sorted_batches[0]
                .as_deref()
                .ok_or_else(|| HetSortError::Plan {
                    reason: "batch 0 was never produced".to_string(),
                })?;
            b_out.copy_from_slice(only);
        } else {
            let inputs = dag
                .nodes
                .iter()
                .rev()
                .find_map(|node| match &node.op {
                    DagOp::MultiwayMerge { inputs } => Some(inputs.clone()),
                    _ => None,
                })
                .ok_or_else(|| HetSortError::Plan {
                    reason: "plan has no final merge".to_string(),
                })?;
            let mut lists: Vec<&[T]> = Vec::with_capacity(inputs.len());
            for (k, inp) in inputs.iter().enumerate() {
                let sl = match *inp {
                    MergeInput::Batch(b) => sorted_batches[b].as_deref(),
                    MergeInput::Pair(p) => pair_out[p].as_deref(),
                }
                .ok_or_else(|| HetSortError::Plan {
                    reason: format!("final merge input {k} was never produced"),
                })?;
                lists.push(sl);
            }
            let m_start = t0.elapsed().as_secs_f64();
            let label = format!("MultiwayMerge k{}", lists.len());
            let stats = par_multiway_merge_into_cfg(&sched, merge_threads, &lists, &mut b_out);
            merge_spans.push(
                ObsSpan::new(
                    OpClass::MultiwayMerge,
                    label.clone(),
                    m_start,
                    t0.elapsed().as_secs_f64(),
                )
                .with_bytes(plan.n as f64 * plan.config.elem_bytes),
            );
            merge_spans.extend(cpu_part_spans(&label, m_start, &stats));
        }
        Ok(())
    })?;

    recovery.faults_injected =
        plan.config.faults.as_ref().map_or(0, |i| i.injected()) - injected_before;
    let trace = plan
        .config
        .record_trace
        .then(|| assemble_trace(plan, &stream_logs));
    metrics.record_all(merge_spans);
    recovery.fold_into(&mut metrics);
    pool_stats.fold_into(&mut metrics);
    let wall_s = t0.elapsed().as_secs_f64();
    let verified = is_sorted(&b_out) && fingerprint(&b_out) == input_fp;
    Ok(RealOutcome {
        sorted: b_out,
        wall_s,
        verified,
        nb,
        pair_merges: plan.pairs.len(),
        recovery,
        trace,
        metrics,
        replans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HetSortConfig};
    use crate::plan::Plan;
    use hetsort_algos::introsort::introsort;
    use hetsort_vgpu::platform1;

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn dag(approach: Approach, bs: usize, ps: usize, n: usize) -> PlanDag {
        let cfg = HetSortConfig::paper_defaults(platform1(), approach)
            .with_batch_elems(bs)
            .with_pinned_elems(ps);
        PlanDag::from_plan(Plan::build(cfg, n).unwrap())
    }

    #[test]
    fn tie_break_permutation_preserves_output() {
        let d = data(24_000, 17);
        let g = dag(Approach::PipeMerge, 3_000, 500, 24_000);
        let min = execute_dag_opts(
            &g,
            &d,
            DagExecOptions {
                tie: TieBreak::MinId,
                ..Default::default()
            },
        )
        .unwrap();
        let max = execute_dag_opts(
            &g,
            &d,
            DagExecOptions {
                tie: TieBreak::MaxId,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(min.verified && max.verified);
        assert_eq!(
            min.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            max.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pooled_worker_counts_agree() {
        let n = 30_000;
        let d = data(n, 3);
        let mut expect = d.clone();
        introsort(&mut expect);
        let g = dag(Approach::PipeMerge, 4_000, 800, n);
        for workers in [1usize, 2, 3, 8] {
            let out = execute_dag_pooled(&g, &d, workers).unwrap();
            assert!(out.verified, "workers={workers}");
            assert_eq!(
                out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn cpu_merge_node_executes_with_its_own_span_class() {
        let n = 12_000;
        let d = data(n, 9);
        let mut g = dag(Approach::PipeMerge, 2_000, 400, n);
        // Re-type one pair merge onto the CPU merge resource.
        let idx = g
            .nodes
            .iter()
            .position(|node| matches!(node.op, DagOp::PairMerge { .. }))
            .expect("PipeMerge has pair merges");
        let DagOp::PairMerge { slot } = g.nodes[idx].op else {
            unreachable!()
        };
        g.nodes[idx].op = DagOp::CpuMerge { slot };
        g.validate().unwrap();
        let out = execute_dag(&g, &d).unwrap();
        assert!(out.verified);
        let classes: Vec<&str> = out.metrics.spans().iter().map(|s| s.class.name()).collect();
        assert!(classes.contains(&"CpuMerge"), "{classes:?}");
        let mut expect = d.clone();
        introsort(&mut expect);
        assert_eq!(
            out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stealing_is_observationally_invisible() {
        use crate::config::HybridMode;
        use std::collections::BTreeMap;
        let n = 30_000;
        let d = data(n, 21);
        for hybrid in [HybridMode::Off, HybridMode::Fraction(0.5), HybridMode::Auto] {
            let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
                .with_batch_elems(4_000)
                .with_pinned_elems(800)
                .with_hybrid(hybrid);
            let g = PlanDag::from_plan(Plan::build(cfg, n).unwrap());
            let run = |steal: bool| {
                execute_dag_pooled_opts(
                    &g,
                    &d,
                    3,
                    DagExecOptions {
                        steal,
                        ..Default::default()
                    },
                )
                .unwrap()
            };
            let twin = run(false);
            let stolen = run(true);
            assert!(twin.verified && stolen.verified, "{hybrid:?}");
            assert_eq!(
                twin.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                stolen
                    .sorted
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "{hybrid:?}: steal changed the output"
            );
            assert_eq!(twin.recovery, stolen.recovery, "{hybrid:?}");
            // Span multisets (class × label), CpuPart excluded: the
            // per-worker breakdown of a parallel merge is structure,
            // not schedule.
            let multiset = |out: &RealOutcome<f64>| {
                let mut m: BTreeMap<(String, String), usize> = BTreeMap::new();
                for s in out.metrics.spans() {
                    if s.class.name() == "CpuPart" {
                        continue;
                    }
                    *m.entry((s.class.name().to_string(), s.label.clone()))
                        .or_insert(0) += 1;
                }
                m
            };
            assert_eq!(
                multiset(&twin),
                multiset(&stolen),
                "{hybrid:?}: steal changed the span multiset"
            );
        }
    }

    #[test]
    fn losing_both_gpus_attributes_every_casualty() {
        use hetsort_vgpu::{platform2, FaultInjector};
        use std::sync::Arc;
        // Kill GPU 0 and GPU 1 in quick succession: the run degrades to
        // host sorting with NO survivors, and the recovery stats must
        // name *both* casualties — not just the first one noticed.
        let n = 24_000;
        let d = data(n, 33);
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(3_000)
            .with_pinned_elems(600)
            .with_faults(Arc::new(
                FaultInjector::new().lose_device(0, 2).lose_device(1, 3),
            ));
        let g = PlanDag::from_plan(Plan::build(cfg, n).unwrap());
        let out = execute_dag_pooled(&g, &d, 2).unwrap();
        assert!(out.verified, "host fallback still sorts");
        assert_eq!(out.recovery.device_lost, 2, "{}", out.recovery.summary());
        assert_eq!(
            out.recovery.lost_gpus(),
            vec![0, 1],
            "both casualties must be in the mask: {}",
            out.recovery.summary()
        );
        // The no-survivor failover span names every lost device.
        assert!(
            out.metrics
                .spans()
                .iter()
                .any(|s| s.label.contains("GPU(s) 0, 1 lost")),
            "failover span must list both GPUs: {:?}",
            out.metrics
                .spans()
                .iter()
                .filter(|s| s.label.contains("failover"))
                .map(|s| &s.label)
                .collect::<Vec<_>>()
        );
        // The sequential engine attributes identically.
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(3_000)
            .with_pinned_elems(600)
            .with_faults(Arc::new(
                FaultInjector::new().lose_device(0, 2).lose_device(1, 3),
            ));
        let g = PlanDag::from_plan(Plan::build(cfg, n).unwrap());
        let seq = execute_dag(&g, &d).unwrap();
        assert_eq!(seq.recovery.lost_gpus(), vec![0, 1]);
    }

    #[test]
    fn invalid_dag_is_rejected_before_execution() {
        let mut g = dag(Approach::PipeData, 2_000, 400, 6_000);
        let last = g.nodes.len() - 1;
        g.nodes[0].deps.push(last);
        let d = data(6_000, 1);
        match execute_dag(&g, &d) {
            Err(HetSortError::Plan { reason }) => assert!(reason.contains("cycle"), "{reason}"),
            other => panic!("expected Plan error, got {other:?}"),
        }
    }
}
