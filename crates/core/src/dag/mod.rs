//! The executable dependency-DAG IR behind every executor.
//!
//! A [`Plan`] is already a static step DAG, but its `Vec<Step>` form
//! leaves the scheduling contract implicit: executors used to walk the
//! step list in submission order and re-implement checkpointing,
//! re-planning and span recording per mode. [`PlanDag`] makes the
//! contract explicit and machine-checkable:
//!
//! * every node is a typed op ([`DagOp`]) with explicit dependency
//!   edges (`deps`) and an optional stream binding — node `i` of a
//!   lowered dag corresponds 1:1 to `plan.steps[i]`, so the stream
//!   interpreter ([`crate::exec_stream`]) and the fault-injection
//!   occurrence counters keep their exact meaning;
//! * [`PlanDag::validate`] rejects malformed graphs with *named* rules
//!   (`missing-ref`, `cycle`, `duplicate-producer`, `fifo`,
//!   `sort-input`, `merge-inputs`, `chunk-cover`) so the mutation kill
//!   suite can assert which rule caught which defect — residency is
//!   re-checked by `hetsort-analyze`, which owns the platform budget
//!   model;
//! * [`ReadySet`] is the one scheduling structure all engines share:
//!   pop any ready node, deterministically ([`TieBreak::MinId`] is the
//!   documented default — over a backward-dependency dag it reproduces
//!   the legacy submission order exactly, which is what makes the DAG
//!   engine bit-identical to the executors it replaced).
//!
//! The engines themselves live in [`exec`]; defect constructors for the
//! kill suite live in [`mutate`].

pub mod exec;
pub mod mutate;

use std::collections::BTreeMap;

use hetsort_vgpu::calib::amdahl_speedup;

use crate::config::{HybridMode, PairStrategy};
use crate::error::HetSortError;
use crate::plan::{MergeInput, MergeSrc, Plan, StepKind};

/// Scheduler tie-break among ready nodes. Every choice yields a valid
/// topological execution; [`TieBreak::MinId`] is the determinism
/// contract the differential suite pins (it reproduces plan submission
/// order), [`TieBreak::MaxId`] exists so tests can prove output is
/// invariant to the tie-break permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Lowest node id first (submission order; the default contract).
    #[default]
    MinId,
    /// Highest node id first (adversarial permutation for tests).
    MaxId,
}

/// A typed DAG operation. Mirrors [`StepKind`] with the staging
/// directions folded into one op and one addition: [`DagOp::CpuMerge`],
/// a pair merge pinned to the host merge resource. Hybrid lowering
/// ([`crate::config::HybridMode`]) re-types a configured subset of
/// pair-merge nodes to it in [`PlanDag::from_plan`].
#[derive(Debug, Clone, PartialEq)]
pub enum DagOp {
    /// Allocate a stream's pinned staging buffer.
    PinnedAlloc {
        /// Owning stream.
        stream: usize,
        /// Buffer size in bytes.
        bytes: f64,
        /// Inbound (A→device) or outbound (device→W/B) buffer.
        dir_in: bool,
    },
    /// Copy a chunk between `A`/`W`/`B` and a pinned staging buffer
    /// (`dir_in` = toward the device).
    StagingCopy {
        /// Batch index.
        batch: usize,
        /// Chunk index within the batch.
        chunk: usize,
        /// Global element offset.
        start: usize,
        /// Chunk length in elements.
        len: usize,
        /// Inbound (stage-in) or outbound (stage-out).
        dir_in: bool,
    },
    /// DMA the inbound pinned buffer to the device batch buffer.
    HtoD {
        /// Batch index.
        batch: usize,
        /// Chunk index.
        chunk: usize,
        /// Global element offset.
        start: usize,
        /// Chunk length.
        len: usize,
    },
    /// Sort the device-resident batch.
    Sort {
        /// Batch index.
        batch: usize,
    },
    /// DMA a chunk of the sorted batch into the outbound pinned buffer.
    DtoH {
        /// Batch index.
        batch: usize,
        /// Chunk index.
        chunk: usize,
        /// Global element offset.
        start: usize,
        /// Chunk length.
        len: usize,
    },
    /// Pipelined two-way merge; inputs live in [`Plan::pairs`].
    PairMerge {
        /// Index into [`Plan::pairs`].
        slot: usize,
    },
    /// Final multiway merge into `B`.
    MultiwayMerge {
        /// Sublists merged.
        inputs: Vec<MergeInput>,
    },
    /// A two-way merge pinned to the CPU merge resource. Same data
    /// semantics as [`DagOp::PairMerge`]; recorded under its own span
    /// class so hybrid schedules are distinguishable.
    CpuMerge {
        /// Index into [`Plan::pairs`].
        slot: usize,
    },
}

impl DagOp {
    /// Lower one plan step kind to its DAG op.
    pub fn from_step(kind: &StepKind) -> DagOp {
        match kind {
            StepKind::PinnedAlloc {
                stream,
                bytes,
                dir_in,
            } => DagOp::PinnedAlloc {
                stream: *stream,
                bytes: *bytes,
                dir_in: *dir_in,
            },
            StepKind::StageIn {
                batch,
                chunk,
                start,
                len,
            } => DagOp::StagingCopy {
                batch: *batch,
                chunk: *chunk,
                start: *start,
                len: *len,
                dir_in: true,
            },
            StepKind::HtoD {
                batch,
                chunk,
                start,
                len,
            } => DagOp::HtoD {
                batch: *batch,
                chunk: *chunk,
                start: *start,
                len: *len,
            },
            StepKind::GpuSort { batch } => DagOp::Sort { batch: *batch },
            StepKind::DtoH {
                batch,
                chunk,
                start,
                len,
            } => DagOp::DtoH {
                batch: *batch,
                chunk: *chunk,
                start: *start,
                len: *len,
            },
            StepKind::StageOut {
                batch,
                chunk,
                start,
                len,
            } => DagOp::StagingCopy {
                batch: *batch,
                chunk: *chunk,
                start: *start,
                len: *len,
                dir_in: false,
            },
            StepKind::PairMerge { slot } => DagOp::PairMerge { slot: *slot },
            StepKind::MultiwayMerge { inputs } => DagOp::MultiwayMerge {
                inputs: inputs.clone(),
            },
        }
    }

    /// The batch a stream-bound op operates on, if any.
    pub fn batch(&self) -> Option<usize> {
        match self {
            DagOp::StagingCopy { batch, .. }
            | DagOp::HtoD { batch, .. }
            | DagOp::Sort { batch }
            | DagOp::DtoH { batch, .. } => Some(*batch),
            DagOp::PinnedAlloc { .. }
            | DagOp::PairMerge { .. }
            | DagOp::MultiwayMerge { .. }
            | DagOp::CpuMerge { .. } => None,
        }
    }

    /// Whether this op is a merge (host-resource op, never stream-bound).
    pub fn is_merge(&self) -> bool {
        matches!(
            self,
            DagOp::PairMerge { .. } | DagOp::MultiwayMerge { .. } | DagOp::CpuMerge { .. }
        )
    }

    /// Short op-class name for summaries and the CLI.
    pub fn class_name(&self) -> &'static str {
        match self {
            DagOp::PinnedAlloc { .. } => "PinnedAlloc",
            DagOp::StagingCopy { .. } => "StagingCopy",
            DagOp::HtoD { .. } => "HtoD",
            DagOp::Sort { .. } => "Sort",
            DagOp::DtoH { .. } => "DtoH",
            DagOp::PairMerge { .. } => "PairMerge",
            DagOp::MultiwayMerge { .. } => "MultiwayMerge",
            DagOp::CpuMerge { .. } => "CpuMerge",
        }
    }
}

/// One DAG node: a typed op, its dependency edges, and its stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DagNode {
    /// The operation.
    pub op: DagOp,
    /// Node ids that must complete first (deduplicated on lowering).
    pub deps: Vec<usize>,
    /// Stream the op is submitted to (`None` for merges).
    pub stream: Option<usize>,
}

/// A plan lowered to its explicit dependency DAG. Node `i` of a
/// lowered dag corresponds to `plan.steps[i]` — the invariant the
/// engines rely on to drive [`crate::exec_stream::StreamExec`] and keep
/// fault-occurrence counters aligned with the legacy executors.
#[derive(Debug, Clone)]
pub struct PlanDag {
    /// The plan this dag was lowered from (owned: survivor re-plans
    /// lower their own dags during recovery).
    pub plan: Plan,
    /// Nodes, id == plan step index.
    pub nodes: Vec<DagNode>,
}

/// Which pair-merge slots hybrid lowering routes to the CPU merge
/// resource, per [`HybridMode`].
///
/// * [`HybridMode::Fraction`] routes the *last* `round(frac · slots)`
///   slots: later slots consume later batches and therefore contend
///   with the multiway-merge warm-up, where the spare full merge pool
///   helps most.
/// * [`HybridMode::Auto`] is deterministic greedy earliest-finish
///   scheduling between the pair-merge pool and the full CPU merge
///   pool, using the platform's calibrated merge throughput under
///   Amdahl scaling; each pool's accumulated predicted busy time is
///   the queue-depth proxy.
fn hybrid_cpu_slots(plan: &Plan) -> Vec<bool> {
    let n_slots = plan.pairs.len();
    let mut cpu = vec![false; n_slots];
    match plan.config.hybrid {
        HybridMode::Off => {}
        HybridMode::Fraction(f) => {
            let f = f.clamp(0.0, 1.0);
            let k = ((f * n_slots as f64).round() as usize).min(n_slots);
            for flag in cpu.iter_mut().skip(n_slots - k) {
                *flag = true;
            }
        }
        HybridMode::Auto => {
            let cfg = &plan.config;
            let cpu_model = &cfg.platform.cpu;
            let per_core = 1e9 / cpu_model.merge_ns_per_elem_core;
            // The pair lane runs at the thread count the executors and
            // simulator actually grant pipelined merges; the CPU lane
            // gets the full multiway pool.
            let pair_threads = if cfg.pair_strategy == PairStrategy::PaperHeuristic {
                cfg.pair_merge_threads_eff()
            } else {
                cfg.merge_threads_eff()
            };
            let cap_pair = amdahl_speedup(
                cpu_model.merge_parallel_fraction,
                pair_threads.max(1) as usize,
            ) * per_core;
            let cap_cpu = amdahl_speedup(
                cpu_model.merge_parallel_fraction,
                cfg.merge_threads_eff().max(1) as usize,
            ) * per_core;
            let (mut busy_pair, mut busy_cpu) = (0.0f64, 0.0f64);
            for (slot, spec) in plan.pairs.iter().enumerate() {
                let t_pair = busy_pair + spec.out_elems as f64 / cap_pair;
                let t_cpu = busy_cpu + spec.out_elems as f64 / cap_cpu;
                // Ties keep the default lane, so Auto degrades to Off
                // when the pools are indistinguishable.
                if t_cpu < t_pair {
                    cpu[slot] = true;
                    busy_cpu = t_cpu;
                } else {
                    busy_pair = t_pair;
                }
            }
        }
    }
    cpu
}

impl PlanDag {
    /// Lower a plan to its DAG. Dependency lists are deduplicated (the
    /// planner may emit an explicit dep that coincides with the stream
    /// FIFO dep), so every remaining edge is load-bearing — which is
    /// what makes "any single edge deletion is rejected" a theorem the
    /// property suite can test.
    ///
    /// When the config enables [`HybridMode`], a post-pass re-types the
    /// selected pair-merge slots to [`DagOp::CpuMerge`]. Routing lives
    /// here — not in an engine — so *every* consumer of a plan (both
    /// functional engines, the simulator, the bench gate, the service)
    /// interprets the identical hybrid dag, and the decision depends
    /// only on the config and the plan, never on runtime state.
    pub fn from_plan(plan: Plan) -> PlanDag {
        let mut nodes: Vec<DagNode> = plan
            .steps
            .iter()
            .map(|s| {
                let mut deps: Vec<usize> = Vec::with_capacity(s.deps.len());
                for &d in &s.deps {
                    if !deps.contains(&d) {
                        deps.push(d);
                    }
                }
                DagNode {
                    op: DagOp::from_step(&s.kind),
                    deps,
                    stream: s.stream,
                }
            })
            .collect();
        if plan.config.hybrid.is_on() && !plan.pairs.is_empty() {
            let cpu = hybrid_cpu_slots(&plan);
            for node in &mut nodes {
                if let DagOp::PairMerge { slot } = node.op {
                    if cpu.get(slot).copied().unwrap_or(false) {
                        node.op = DagOp::CpuMerge { slot };
                    }
                }
            }
        }
        PlanDag { plan, nodes }
    }

    /// Total dependency edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.deps.len()).sum()
    }

    /// Validate the graph structure. Each rule rejects with a
    /// [`HetSortError::Plan`] whose reason is prefixed by the rule
    /// name, so the mutation suite can assert *which* rule killed a
    /// defect:
    ///
    /// * `missing-ref` — a dep references a node id out of range;
    /// * `cycle` — the dependency relation is not acyclic;
    /// * `duplicate-producer` — two nodes produce the same artifact
    ///   (a batch's sort, a chunk's copy, a merge slot's output);
    /// * `fifo` — a stream's nodes lack the FIFO discipline the stream
    ///   interpreter relies on: one total chain under paper staging;
    ///   per-lane chains (host staging vs device DMA/sort) plus the
    ///   explicit cross and buffer-reuse edges under double-buffered
    ///   staging;
    /// * `sort-input` — a sort does not depend on its batch's last
    ///   `HtoD` (would sort an incompletely-loaded buffer);
    /// * `merge-inputs` — a merge does not depend on the producer of
    ///   each of its inputs;
    /// * `chunk-cover` — staging chunks do not tile a batch exactly.
    ///
    /// Residency (peak device bytes vs capacity) is deliberately *not*
    /// here: `hetsort-analyze` owns the platform budget model and
    /// re-checks it via `Residency::of_plan` on `dag.plan`.
    ///
    /// # Errors
    ///
    /// [`HetSortError::Plan`] naming the violated rule.
    pub fn validate(&self) -> Result<(), HetSortError> {
        let err = |reason: String| Err(HetSortError::Plan { reason });
        let n = self.nodes.len();

        // missing-ref: every dep must name an existing node.
        for (i, node) in self.nodes.iter().enumerate() {
            for &d in &node.deps {
                if d >= n {
                    return err(format!("missing-ref: node {i} references missing node {d}"));
                }
            }
        }

        // cycle: Kahn's algorithm must consume every node.
        {
            let mut indeg = vec![0usize; n];
            let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (i, node) in self.nodes.iter().enumerate() {
                indeg[i] = node.deps.len();
                for &d in &node.deps {
                    dependents[d].push(i);
                }
            }
            let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
            let mut seen = 0usize;
            while let Some(i) = queue.pop() {
                seen += 1;
                for &j in &dependents[i] {
                    indeg[j] -= 1;
                    if indeg[j] == 0 {
                        queue.push(j);
                    }
                }
            }
            if seen != n {
                return err(format!(
                    "cycle: {} node(s) locked in a dependency cycle",
                    n - seen
                ));
            }
        }

        // duplicate-producer: every artifact has exactly one producer.
        {
            let mut producers: BTreeMap<String, usize> = BTreeMap::new();
            for (i, node) in self.nodes.iter().enumerate() {
                let key = match &node.op {
                    DagOp::PinnedAlloc { stream, dir_in, .. } => {
                        format!("pinned s{stream} in={dir_in}")
                    }
                    DagOp::StagingCopy {
                        batch,
                        chunk,
                        dir_in,
                        ..
                    } => format!("staging b{batch}.c{chunk} in={dir_in}"),
                    DagOp::HtoD { batch, chunk, .. } => format!("htod b{batch}.c{chunk}"),
                    DagOp::Sort { batch } => format!("sort b{batch}"),
                    DagOp::DtoH { batch, chunk, .. } => format!("dtoh b{batch}.c{chunk}"),
                    DagOp::PairMerge { slot } | DagOp::CpuMerge { slot } => {
                        format!("pair slot {slot}")
                    }
                    DagOp::MultiwayMerge { .. } => "multiway merge".to_string(),
                };
                if let Some(&j) = producers.get(&key) {
                    return err(format!(
                        "duplicate-producer: node {i} duplicates node {j} ({key})"
                    ));
                }
                producers.insert(key, i);
            }
        }

        // fifo: each stream's nodes (in id order) must chain via deps.
        //
        // Paper staging chains every node of a stream on one tail.
        // Double-buffered staging splits each stream into a host lane
        // (allocs + staging copies) and a device lane (HtoD/sort/DtoH)
        // and demands, besides the per-lane chains, the explicit cross
        // and buffer-reuse edges the relaxed discipline relies on.
        // Every intra-stream edge the lowering emits is demanded here:
        // the trace gives same-stream ops program order on one thread,
        // so the happens-before analyzer can never see an intra-stream
        // edge deletion — the structural validator must.
        if !self.plan.config.double_buffered() {
            let mut tail: BTreeMap<usize, usize> = BTreeMap::new();
            for (i, node) in self.nodes.iter().enumerate() {
                if let Some(s) = node.stream {
                    if let Some(&prev) = tail.get(&s) {
                        if !node.deps.contains(&prev) {
                            return err(format!(
                                "fifo: node {i} (stream {s}) missing dependency on stream predecessor {prev}"
                            ));
                        }
                    }
                    tail.insert(s, i);
                }
            }
        } else {
            let elided = self.plan.stage_out_elided();
            #[derive(Default)]
            struct LaneState {
                host_tail: Option<usize>,
                dev_tail: Option<usize>,
                cur_batch: Option<usize>,
                stagein: BTreeMap<usize, usize>,
                htod: BTreeMap<usize, usize>,
                dtoh: BTreeMap<usize, usize>,
                sout: BTreeMap<usize, usize>,
                prev_htod: Option<usize>,
                prev_sout: Option<usize>,
            }
            let mut lanes: BTreeMap<usize, LaneState> = BTreeMap::new();
            let demand = |i: usize, deps: &[usize], need: usize, what: &str| {
                if deps.contains(&need) {
                    Ok(())
                } else {
                    Err(HetSortError::Plan {
                        reason: format!("fifo: node {i} missing {what} dependency on node {need}"),
                    })
                }
            };
            for (i, node) in self.nodes.iter().enumerate() {
                let Some(s) = node.stream else { continue };
                let st = lanes.entry(s).or_default();
                // Batch boundary: the previous batch's last HtoD and
                // StageOut become the cross-batch reuse targets.
                if let Some(b) = node.op.batch() {
                    if st.cur_batch != Some(b) {
                        st.prev_htod = st.htod.values().next_back().copied();
                        st.prev_sout = st.sout.values().next_back().copied();
                        st.stagein.clear();
                        st.htod.clear();
                        st.dtoh.clear();
                        st.sout.clear();
                        st.cur_batch = Some(b);
                    }
                }
                let dev_lane = matches!(
                    node.op,
                    DagOp::HtoD { .. } | DagOp::Sort { .. } | DagOp::DtoH { .. }
                );
                let (tail, lane) = if dev_lane {
                    (&mut st.dev_tail, "device-lane")
                } else {
                    (&mut st.host_tail, "host-lane")
                };
                if let Some(prev) = *tail {
                    demand(i, &node.deps, prev, lane)?;
                }
                *tail = Some(i);
                match node.op {
                    DagOp::StagingCopy {
                        chunk,
                        dir_in: true,
                        ..
                    } => {
                        // The half chunk c overwrites was read by
                        // HtoD(c−2); the first chunk of a later batch
                        // waits on the previous batch's last HtoD.
                        if chunk >= 2 {
                            if let Some(&h) = st.htod.get(&(chunk - 2)) {
                                demand(i, &node.deps, h, "half-reuse")?;
                            }
                        } else if chunk == 0 {
                            if let Some(h) = st.prev_htod {
                                demand(i, &node.deps, h, "cross-batch half-reuse")?;
                            }
                        }
                        st.stagein.insert(chunk, i);
                    }
                    DagOp::HtoD { chunk, .. } => {
                        if let Some(&si) = st.stagein.get(&chunk) {
                            demand(i, &node.deps, si, "staging-copy")?;
                        }
                        // Elided stage-out reads the device buffer at
                        // the emission marker; the next batch's first
                        // DMA must not overwrite it earlier.
                        if elided && chunk == 0 {
                            if let Some(m) = st.prev_sout {
                                demand(i, &node.deps, m, "elided-marker")?;
                            }
                        }
                        st.htod.insert(chunk, i);
                    }
                    DagOp::DtoH { chunk, .. } => {
                        // Bounced stage-out shares one outbound buffer:
                        // the DMA of chunk c overwrites what the
                        // previous StageOut read.
                        if !elided {
                            if chunk >= 1 {
                                if let Some(&o) = st.sout.get(&(chunk - 1)) {
                                    demand(i, &node.deps, o, "out-buffer reuse")?;
                                }
                            } else if let Some(o) = st.prev_sout {
                                demand(i, &node.deps, o, "cross-batch out-buffer reuse")?;
                            }
                        }
                        st.dtoh.insert(chunk, i);
                    }
                    DagOp::StagingCopy {
                        chunk,
                        dir_in: false,
                        ..
                    } => {
                        if let Some(&d) = st.dtoh.get(&chunk) {
                            demand(i, &node.deps, d, "dtoh")?;
                        }
                        st.sout.insert(chunk, i);
                    }
                    _ => {}
                }
            }
        }

        // Producer maps for sort-input / merge-inputs.
        let mut last_htod: BTreeMap<usize, usize> = BTreeMap::new();
        let mut last_stage_out: BTreeMap<usize, usize> = BTreeMap::new();
        let mut slot_node: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            match &node.op {
                DagOp::HtoD { batch, .. } => {
                    last_htod.insert(*batch, i);
                }
                DagOp::StagingCopy {
                    batch,
                    dir_in: false,
                    ..
                } => {
                    last_stage_out.insert(*batch, i);
                }
                DagOp::PairMerge { slot } | DagOp::CpuMerge { slot } => {
                    slot_node.insert(*slot, i);
                }
                _ => {}
            }
        }

        // sort-input: a sort depends on its batch's last HtoD.
        for (i, node) in self.nodes.iter().enumerate() {
            if let DagOp::Sort { batch } = node.op {
                match last_htod.get(&batch) {
                    Some(&h) if node.deps.contains(&h) => {}
                    Some(&h) => {
                        return err(format!(
                            "sort-input: node {i} sorts batch {batch} without depending on its last HtoD (node {h})"
                        ))
                    }
                    None => {
                        return err(format!(
                            "sort-input: node {i} sorts batch {batch} which has no HtoD"
                        ))
                    }
                }
            }
        }

        // merge-inputs: every merge depends on each input's producer.
        {
            let producer = |src: MergeSrc| -> Option<usize> {
                match src {
                    MergeSrc::Batch(b) => last_stage_out.get(&b).copied(),
                    MergeSrc::Merged(p) => slot_node.get(&p).copied(),
                }
            };
            let check = |i: usize, deps: &[usize], src: MergeSrc| -> Result<(), HetSortError> {
                match producer(src) {
                    Some(p) if deps.contains(&p) => Ok(()),
                    Some(p) => err(format!(
                        "merge-inputs: node {i} missing dependency on producer {p} of {src:?}"
                    )),
                    None => err(format!(
                        "merge-inputs: node {i} input {src:?} has no producer"
                    )),
                }
            };
            for (i, node) in self.nodes.iter().enumerate() {
                match &node.op {
                    DagOp::PairMerge { slot } | DagOp::CpuMerge { slot } => {
                        let spec =
                            self.plan
                                .pairs
                                .get(*slot)
                                .ok_or_else(|| HetSortError::Plan {
                                    reason: format!(
                                    "merge-inputs: node {i} references missing pair slot {slot}"
                                ),
                                })?;
                        check(i, &node.deps, spec.left)?;
                        check(i, &node.deps, spec.right)?;
                    }
                    DagOp::MultiwayMerge { inputs } => {
                        for inp in inputs {
                            let src = match *inp {
                                MergeInput::Batch(b) => MergeSrc::Batch(b),
                                MergeInput::Pair(p) => MergeSrc::Merged(p),
                            };
                            check(i, &node.deps, src)?;
                        }
                    }
                    _ => {}
                }
            }
        }

        // chunk-cover: staging chunks tile each batch exactly, both ways.
        {
            let nb = self.plan.nb();
            let mut cover_in = vec![0usize; nb];
            let mut cover_out = vec![0usize; nb];
            for node in &self.nodes {
                if let DagOp::StagingCopy {
                    batch, len, dir_in, ..
                } = node.op
                {
                    if batch >= nb {
                        return err(format!(
                            "chunk-cover: staging copy names batch {batch} of {nb}"
                        ));
                    }
                    if dir_in {
                        cover_in[batch] += len;
                    } else {
                        cover_out[batch] += len;
                    }
                }
            }
            for b in &self.plan.batches {
                if cover_in[b.index] != b.len {
                    return err(format!(
                        "chunk-cover: batch {} stages in {} of {} elements",
                        b.index, cover_in[b.index], b.len
                    ));
                }
                if cover_out[b.index] != b.len {
                    return err(format!(
                        "chunk-cover: batch {} stages out {} of {} elements",
                        b.index, cover_out[b.index], b.len
                    ));
                }
            }
        }

        Ok(())
    }

    /// The full deterministic execution order under `tie` — what the
    /// engines follow, exposed for the CLI and equivalence tests.
    ///
    /// # Errors
    ///
    /// [`HetSortError::Plan`] if the graph has a cycle (nodes remain
    /// unreachable).
    pub fn ready_order(&self, tie: TieBreak) -> Result<Vec<usize>, HetSortError> {
        let mut rs = ReadySet::new(self, |_| true, tie);
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(i) = rs.pop() {
            order.push(i);
            rs.complete(i);
        }
        if order.len() != self.nodes.len() {
            return Err(HetSortError::Plan {
                reason: format!(
                    "cycle: {} node(s) never became ready",
                    self.nodes.len() - order.len()
                ),
            });
        }
        Ok(order)
    }

    /// Maximum ready-set width observed replaying the [`TieBreak::MinId`]
    /// order — an upper bound on exploitable op-level parallelism.
    pub fn max_ready_width(&self) -> usize {
        let mut rs = ReadySet::new(self, |_| true, TieBreak::MinId);
        let mut width = 0usize;
        while let Some(i) = rs.pop() {
            width = width.max(rs.ready_len() + 1);
            rs.complete(i);
        }
        width
    }
}

/// The shared scheduling structure: indegree tracking plus a ready set
/// popped in deterministic [`TieBreak`] order. `in_scope` restricts the
/// set to a subgraph (e.g. stream nodes only); dependencies on
/// out-of-scope nodes are treated as satisfied — the engines guarantee
/// them by phase ordering.
pub struct ReadySet {
    indegree: Vec<usize>,
    dependents: Vec<Vec<usize>>,
    ready: std::collections::BTreeSet<usize>,
    in_scope: Vec<bool>,
    tie: TieBreak,
    remaining: usize,
}

impl ReadySet {
    /// Build the scheduler state for the in-scope subgraph of `dag`.
    pub fn new(dag: &PlanDag, in_scope: impl Fn(usize) -> bool, tie: TieBreak) -> ReadySet {
        let n = dag.nodes.len();
        let in_scope: Vec<bool> = (0..n).map(in_scope).collect();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut remaining = 0usize;
        for (i, node) in dag.nodes.iter().enumerate() {
            if !in_scope[i] {
                continue;
            }
            remaining += 1;
            for &d in &node.deps {
                if d < n && in_scope[d] {
                    indegree[i] += 1;
                    dependents[d].push(i);
                }
            }
        }
        let ready = (0..n)
            .filter(|&i| in_scope[i] && indegree[i] == 0)
            .collect();
        ReadySet {
            indegree,
            dependents,
            ready,
            in_scope,
            tie,
            remaining,
        }
    }

    /// Pop the next ready node under the tie-break, if any.
    pub fn pop(&mut self) -> Option<usize> {
        let next = match self.tie {
            TieBreak::MinId => self.ready.iter().next().copied(),
            TieBreak::MaxId => self.ready.iter().next_back().copied(),
        }?;
        self.ready.remove(&next);
        Some(next)
    }

    /// Mark a popped node complete, releasing its dependents.
    pub fn complete(&mut self, id: usize) {
        self.remaining = self.remaining.saturating_sub(1);
        for di in 0..self.dependents[id].len() {
            let j = self.dependents[id][di];
            self.indegree[j] = self.indegree[j].saturating_sub(1);
            if self.indegree[j] == 0 && self.in_scope[j] {
                self.ready.insert(j);
            }
        }
    }

    /// In-scope nodes not yet completed (ready, running, or blocked).
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Nodes currently ready.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HetSortConfig, PairStrategy};
    use hetsort_vgpu::{platform1, platform2};

    fn cfg(approach: Approach) -> HetSortConfig {
        HetSortConfig::paper_defaults(platform1(), approach)
            .with_batch_elems(1000)
            .with_pinned_elems(300)
    }

    fn dag(approach: Approach, n: usize) -> PlanDag {
        PlanDag::from_plan(Plan::build(cfg(approach), n).unwrap())
    }

    #[test]
    fn every_canonical_plan_validates() {
        for (approach, n) in [
            (Approach::BLine, 1000),
            (Approach::BLineMulti, 5000),
            (Approach::PipeData, 6000),
            (Approach::PipeMerge, 7000),
        ] {
            let d = dag(approach, n);
            assert_eq!(d.nodes.len(), d.plan.steps.len());
            d.validate().unwrap_or_else(|e| panic!("{approach:?}: {e}"));
        }
        for strategy in [PairStrategy::Online, PairStrategy::MergeTree] {
            let c = cfg(Approach::PipeMerge).with_pair_strategy(strategy);
            let d = PlanDag::from_plan(Plan::build(c, 5000).unwrap());
            d.validate().unwrap();
        }
        let c2 = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(1000)
            .with_pinned_elems(250);
        PlanDag::from_plan(Plan::build(c2, 10_000).unwrap())
            .validate()
            .unwrap();
    }

    #[test]
    fn lowering_dedups_the_sort_dep() {
        // The planner lists a sort's last-HtoD dep twice (explicit +
        // FIFO); the dag keeps one copy so each edge is load-bearing.
        let d = dag(Approach::PipeData, 2000);
        for (i, node) in d.nodes.iter().enumerate() {
            let mut sorted = node.deps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), node.deps.len(), "node {i} has dup deps");
        }
        // And at least one plan step actually had the duplicate.
        assert!(d
            .plan
            .steps
            .iter()
            .any(|s| { matches!(s.kind, StepKind::GpuSort { .. }) && s.deps.len() == 2 }));
    }

    #[test]
    fn min_id_order_is_submission_order() {
        for approach in [
            Approach::BLineMulti,
            Approach::PipeData,
            Approach::PipeMerge,
        ] {
            let d = dag(approach, 6000);
            let order = d.ready_order(TieBreak::MinId).unwrap();
            let expect: Vec<usize> = (0..d.nodes.len()).collect();
            assert_eq!(order, expect, "{approach:?}");
        }
    }

    #[test]
    fn max_id_order_is_a_valid_topological_permutation() {
        let d = dag(Approach::PipeMerge, 6000);
        let order = d.ready_order(TieBreak::MaxId).unwrap();
        assert_eq!(order.len(), d.nodes.len());
        let mut pos = vec![0usize; order.len()];
        for (p, &i) in order.iter().enumerate() {
            pos[i] = p;
        }
        for (i, node) in d.nodes.iter().enumerate() {
            for &dep in &node.deps {
                assert!(pos[dep] < pos[i], "node {i} ran before dep {dep}");
            }
        }
        assert_ne!(
            order,
            (0..d.nodes.len()).collect::<Vec<_>>(),
            "MaxId must actually permute a multi-stream dag"
        );
    }

    #[test]
    fn hybrid_lowering_retypes_pair_merges() {
        use crate::config::HybridMode;
        let count = |d: &PlanDag, cpu: bool| {
            d.nodes
                .iter()
                .filter(|n| match n.op {
                    DagOp::CpuMerge { .. } => cpu,
                    DagOp::PairMerge { .. } => !cpu,
                    _ => false,
                })
                .count()
        };
        let build = |h: HybridMode| {
            let c = cfg(Approach::PipeMerge).with_hybrid(h);
            PlanDag::from_plan(Plan::build(c, 13_000).unwrap())
        };

        let off = build(HybridMode::Off);
        let slots = off.plan.pairs.len();
        assert!(slots >= 2, "need ≥ 2 pair slots, got {slots}");
        assert_eq!(count(&off, true), 0);

        // Fraction 1.0: every pair merge moves to the CPU lane.
        let all = build(HybridMode::Fraction(1.0));
        assert_eq!(count(&all, true), slots);
        assert_eq!(count(&all, false), 0);
        all.validate().expect("hybrid dag must stay valid");

        // Fraction 0.5: the *last* half of the slots move.
        let half = build(HybridMode::Fraction(0.5));
        let moved = ((0.5 * slots as f64).round()) as usize;
        assert_eq!(count(&half, true), moved);
        let cpu_slots: Vec<usize> = half
            .nodes
            .iter()
            .filter_map(|n| match n.op {
                DagOp::CpuMerge { slot } => Some(slot),
                _ => None,
            })
            .collect();
        assert!(
            cpu_slots.iter().all(|&s| s >= slots - moved),
            "fraction routes the trailing slots, got {cpu_slots:?}"
        );
        half.validate().unwrap();

        // Auto balances the two pools: a nonempty proper subset under
        // the paper heuristic (the CPU pool is strictly faster, the
        // greedy finish times alternate).
        let auto = build(HybridMode::Auto);
        assert!(count(&auto, true) > 0, "auto routed nothing");
        assert!(count(&auto, false) > 0, "auto routed everything");
        auto.validate().unwrap();
        // Deterministic: same config, same routing.
        let again = build(HybridMode::Auto);
        assert_eq!(
            auto.nodes
                .iter()
                .map(|n| n.op.class_name())
                .collect::<Vec<_>>(),
            again
                .nodes
                .iter()
                .map(|n| n.op.class_name())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn validator_names_the_rule() {
        let mut d = dag(Approach::PipeData, 2000);
        let bogus = d.nodes.len() + 7;
        d.nodes[0].deps.push(bogus);
        match d.validate() {
            Err(HetSortError::Plan { reason }) => {
                assert!(reason.starts_with("missing-ref:"), "{reason}")
            }
            other => panic!("expected Plan error, got {other:?}"),
        }
    }

    #[test]
    fn ready_width_reflects_streams() {
        let one = dag(Approach::BLineMulti, 5000); // 1 stream
        let two = dag(Approach::PipeData, 6000); // 2 streams
        assert!(two.max_ready_width() > one.max_ready_width());
    }

    #[test]
    fn scoped_ready_set_ignores_out_of_scope_deps() {
        let d = dag(Approach::PipeMerge, 6000);
        // Merge-only scope: pair merges become ready immediately (their
        // stream deps are out of scope), the multiway waits on pairs.
        let mut rs = ReadySet::new(&d, |i| d.nodes[i].op.is_merge(), TieBreak::MinId);
        let mut order = Vec::new();
        while let Some(i) = rs.pop() {
            order.push(i);
            rs.complete(i);
        }
        let merges = d.nodes.iter().filter(|n| n.op.is_merge()).count();
        assert_eq!(order.len(), merges);
        assert!(matches!(
            d.nodes[*order.last().unwrap()].op,
            DagOp::MultiwayMerge { .. }
        ));
    }
}
