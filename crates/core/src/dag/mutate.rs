//! Seeded DAG defects for the mutation kill suite.
//!
//! Each [`DagMutant`] is a small, realistic scheduling bug — the kind a
//! hand-written executor refactor could introduce — together with the
//! *named* check expected to kill it ([`DagMutant::expected_kill`]).
//! The kill suite (`crates/analyze/tests/dag_mutation.rs`) applies each
//! mutant and asserts that exactly the named validator rule, analyzer
//! finding class, or differential check fires; a mutant that survives
//! means the battery has a hole and the build fails.
//!
//! Structural mutants rewrite a [`PlanDag`] via [`DagMutant::apply`];
//! trace-level mutants (sync/lifetime defects the structural validator
//! cannot see by design — they live in the lowered event semantics)
//! rewrite an [`OpTrace`] via [`DagMutant::apply_trace`]; and
//! [`DagMutant::SkipCheckpoint`] is an *engine* defect enabled through
//! [`crate::dag::exec::DagExecOptions`], killed differentially by
//! comparing [`crate::report::RecoveryStats`].

use hetsort_sim::optrace::{OpTrace, TraceKind};

use crate::dag::{DagOp, PlanDag};

/// A seeded defect and (implicitly) the check contracted to kill it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagMutant {
    /// Delete a stream FIFO edge (a `DtoH` no longer waits for its
    /// stream predecessor).
    DropFifoEdge,
    /// Reverse a `StageIn → HtoD` dependency: the DMA no longer waits
    /// for the staging copy; the staging copy waits for the DMA.
    SwapDepDirection,
    /// Append a second producer for an artifact (a batch sorted twice).
    DuplicateProducer,
    /// Close a dependency cycle (the first node waits on the last).
    Cycle,
    /// Reference a node id that does not exist.
    MissingRef,
    /// A pair merge stops depending on the producer of its left input
    /// (merge may run before both inputs exist).
    MergeBeforeInputs,
    /// Shrink one staging chunk so the chunks no longer tile the batch.
    ChunkGap,
    /// Engine defect: ignore the per-batch checkpoint when re-planning
    /// after a device loss, recomputing every batch. Output stays
    /// correct — only the differential on recovery statistics sees it.
    SkipCheckpoint,
    /// Record a cross-stream synchronization event on the wrong stream,
    /// so the consumer's wait no longer orders it after the producer.
    WrongStreamEvent,
    /// Hoist a buffer's `Free` above its last reader.
    FreeBeforeLastReader,
}

impl DagMutant {
    /// Every mutant, in display order (the kill suite's acceptance
    /// floor is 8; this battery seeds 10).
    pub const ALL: [DagMutant; 10] = [
        DagMutant::DropFifoEdge,
        DagMutant::SwapDepDirection,
        DagMutant::DuplicateProducer,
        DagMutant::Cycle,
        DagMutant::MissingRef,
        DagMutant::MergeBeforeInputs,
        DagMutant::ChunkGap,
        DagMutant::SkipCheckpoint,
        DagMutant::WrongStreamEvent,
        DagMutant::FreeBeforeLastReader,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            DagMutant::DropFifoEdge => "drop-fifo-edge",
            DagMutant::SwapDepDirection => "swap-dep-direction",
            DagMutant::DuplicateProducer => "duplicate-producer",
            DagMutant::Cycle => "cycle",
            DagMutant::MissingRef => "missing-ref",
            DagMutant::MergeBeforeInputs => "merge-before-inputs",
            DagMutant::ChunkGap => "chunk-gap",
            DagMutant::SkipCheckpoint => "skip-checkpoint",
            DagMutant::WrongStreamEvent => "wrong-stream-event",
            DagMutant::FreeBeforeLastReader => "free-before-last-reader",
        }
    }

    /// The named check contracted to kill this mutant:
    /// `validator:<rule>` ([`PlanDag::validate`]),
    /// `analyzer:<finding-class>` (`hetsort-analyze` over the lowered
    /// trace), or `differential:<check>` (the equivalence suite).
    pub fn expected_kill(&self) -> &'static str {
        match self {
            DagMutant::DropFifoEdge => "validator:fifo",
            DagMutant::SwapDepDirection => "validator:fifo",
            DagMutant::DuplicateProducer => "validator:duplicate-producer",
            DagMutant::Cycle => "validator:cycle",
            DagMutant::MissingRef => "validator:missing-ref",
            DagMutant::MergeBeforeInputs => "validator:merge-inputs",
            DagMutant::ChunkGap => "validator:chunk-cover",
            DagMutant::SkipCheckpoint => "differential:recovery-stats",
            DagMutant::WrongStreamEvent => "analyzer:missing-sync",
            DagMutant::FreeBeforeLastReader => "analyzer:use-after-free",
        }
    }

    /// Whether this mutant rewrites the trace (vs the dag structure or
    /// the engine options).
    pub fn is_trace_level(&self) -> bool {
        matches!(
            self,
            DagMutant::WrongStreamEvent | DagMutant::FreeBeforeLastReader
        )
    }

    /// Apply a structural mutation. Returns `false` when the dag has no
    /// site for it (e.g. no pair merges) or the mutant is not
    /// structural — the kill suite treats `false` as "not applicable
    /// here", never as a kill.
    pub fn apply(&self, dag: &mut PlanDag) -> bool {
        match self {
            DagMutant::DropFifoEdge => {
                // Remove the FIFO dep of the first DtoH that has one.
                let mut tail: std::collections::BTreeMap<usize, usize> = Default::default();
                for i in 0..dag.nodes.len() {
                    let stream = dag.nodes[i].stream;
                    if let Some(s) = stream {
                        if matches!(dag.nodes[i].op, DagOp::DtoH { .. }) {
                            if let Some(&prev) = tail.get(&s) {
                                if let Some(p) = dag.nodes[i].deps.iter().position(|&d| d == prev) {
                                    dag.nodes[i].deps.remove(p);
                                    return true;
                                }
                            }
                        }
                        tail.insert(s, i);
                    }
                }
                false
            }
            DagMutant::SwapDepDirection => {
                for i in 0..dag.nodes.len() {
                    if !matches!(dag.nodes[i].op, DagOp::HtoD { .. }) {
                        continue;
                    }
                    let stage_dep = dag.nodes[i].deps.iter().copied().find(|&d| {
                        matches!(
                            dag.nodes.get(d).map(|n| &n.op),
                            Some(DagOp::StagingCopy { dir_in: true, .. })
                        )
                    });
                    if let Some(d) = stage_dep {
                        dag.nodes[i].deps.retain(|&x| x != d);
                        dag.nodes[d].deps.push(i);
                        return true;
                    }
                }
                false
            }
            DagMutant::DuplicateProducer => {
                let Some(i) = dag
                    .nodes
                    .iter()
                    .position(|n| matches!(n.op, DagOp::Sort { .. }))
                else {
                    return false;
                };
                let mut dup = dag.nodes[i].clone();
                // Keep the graph otherwise well-formed: the clone runs
                // after the original.
                dup.deps = vec![i];
                dup.stream = None;
                dag.nodes.push(dup);
                true
            }
            DagMutant::Cycle => {
                let last = dag.nodes.len() - 1;
                if last == 0 {
                    return false;
                }
                dag.nodes[0].deps.push(last);
                true
            }
            DagMutant::MissingRef => {
                dag.nodes[0].deps.push(usize::MAX);
                true
            }
            DagMutant::MergeBeforeInputs => {
                for node in &mut dag.nodes {
                    if matches!(node.op, DagOp::PairMerge { .. }) && !node.deps.is_empty() {
                        node.deps.remove(0);
                        return true;
                    }
                }
                false
            }
            DagMutant::ChunkGap => {
                for node in &mut dag.nodes {
                    if let DagOp::StagingCopy { len, .. } = &mut node.op {
                        if *len > 1 {
                            *len -= 1;
                            return true;
                        }
                    }
                }
                false
            }
            DagMutant::SkipCheckpoint
            | DagMutant::WrongStreamEvent
            | DagMutant::FreeBeforeLastReader => false,
        }
    }

    /// Apply a trace-level mutation to a lowered [`OpTrace`]. Returns
    /// `false` when the trace has no site for it or the mutant is not
    /// trace-level.
    pub fn apply_trace(&self, trace: &mut OpTrace) -> bool {
        match self {
            DagMutant::WrongStreamEvent => {
                if trace.n_threads < 2 {
                    return false;
                }
                for rec in &mut trace.records {
                    if matches!(rec.kind, TraceKind::EventRecord { .. }) {
                        rec.thread = (rec.thread + 1) % trace.n_threads;
                        return true;
                    }
                }
                false
            }
            DagMutant::FreeBeforeLastReader => {
                // Hoist the first Free whose buffer has a reader before
                // it to just before that buffer's *first* access.
                for fi in 0..trace.records.len() {
                    let TraceKind::Free { buf } = &trace.records[fi].kind else {
                        continue;
                    };
                    let buf = *buf;
                    let first_access = trace.records[..fi].iter().position(|r| {
                        matches!(&r.kind, TraceKind::Op { accesses }
                            if accesses.iter().any(|a| a.buf == buf))
                    });
                    if let Some(ai) = first_access {
                        let rec = trace.records.remove(fi);
                        trace.records.insert(ai, rec);
                        return true;
                    }
                }
                false
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HetSortConfig};
    use crate::plan::Plan;
    use hetsort_vgpu::platform1;

    fn dag() -> PlanDag {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
            .with_batch_elems(1000)
            .with_pinned_elems(300);
        PlanDag::from_plan(Plan::build(cfg, 7000).unwrap())
    }

    #[test]
    fn structural_mutants_apply_and_break_validation() {
        for m in DagMutant::ALL {
            if m.is_trace_level() || m == DagMutant::SkipCheckpoint {
                continue;
            }
            let mut d = dag();
            assert!(m.apply(&mut d), "{} found no site", m.name());
            assert!(d.validate().is_err(), "{} survived validation", m.name());
        }
    }

    #[test]
    fn trace_mutants_apply() {
        let d = dag();
        let trace = crate::optrace::lower_plan(&d.plan);
        for m in [DagMutant::WrongStreamEvent, DagMutant::FreeBeforeLastReader] {
            let mut t = trace.clone();
            assert!(m.apply_trace(&mut t), "{} found no site", m.name());
            assert_ne!(t, trace, "{} was a no-op", m.name());
        }
    }

    #[test]
    fn every_mutant_names_its_killer() {
        for m in DagMutant::ALL {
            let kill = m.expected_kill();
            assert!(
                kill.starts_with("validator:")
                    || kill.starts_with("analyzer:")
                    || kill.starts_with("differential:"),
                "{kill}"
            );
        }
        assert!(DagMutant::ALL.len() >= 8, "acceptance floor: 8 mutants");
    }
}
