//! The typed error hierarchy of the sorting pipeline.
//!
//! Every fallible public entry point — configuration validation, plan
//! construction, the simulated executor, and both functional executors —
//! reports a [`HetSortError`] so callers can distinguish a bad
//! configuration from a GPU that ran out of memory from a flaky bus.
//! Recovery ([`crate::config::RecoveryPolicy`]) pattern-matches on these
//! variants; without recovery they propagate to the caller naming the
//! exact step and batch that failed.

use std::fmt;

use hetsort_vgpu::CudaError;
pub use hetsort_vgpu::TransferDir;

/// A failure anywhere in the heterogeneous sorting pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum HetSortError {
    /// The configuration is invalid for the platform or input size.
    Config {
        /// What rule was violated.
        reason: String,
    },
    /// The plan is internally inconsistent (invariant check failures).
    Plan {
        /// The violated invariant.
        reason: String,
    },
    /// The data handed to an executor does not match the plan.
    Data {
        /// The mismatch.
        reason: String,
    },
    /// A device ran out of memory (real or injected).
    GpuOom {
        /// The device that ran out.
        gpu: usize,
        /// The batch being processed, when known.
        batch: Option<usize>,
        /// Bytes the allocation asked for.
        requested_bytes: f64,
        /// Bytes still free on the device.
        free_bytes: f64,
    },
    /// A DMA transfer failed and retries (if any) were exhausted.
    TransferFault {
        /// Plan step index that failed.
        step: usize,
        /// Batch the transfer belonged to.
        batch: usize,
        /// Copy direction.
        dir: TransferDir,
        /// Attempts made (1 = no retries configured).
        attempts: usize,
    },
    /// A device sort kernel failed.
    DeviceSortFault {
        /// Plan step index that failed.
        step: usize,
        /// Batch being sorted.
        batch: usize,
        /// Device the kernel ran on.
        gpu: usize,
    },
    /// A GPU fell out of the pool mid-run (a scheduled device-loss
    /// fault) and no recovery path remained: either every device is
    /// gone with CPU fallback disabled, or a re-plan itself failed.
    /// While survivors (or CPU fallback) exist the executors recover by
    /// re-planning instead of returning this.
    DeviceLost {
        /// The device that was lost (physical index on the original
        /// platform).
        gpu: usize,
    },
    /// A stream worker thread panicked.
    WorkerPanic {
        /// Worker (stream) index.
        worker: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The merge coordinator ran out of batches with pair merges still
    /// waiting on inputs (a plan/executor bug, surfaced rather than
    /// deadlocking).
    MergeStall {
        /// Pair merges never fired.
        pending: usize,
    },
    /// The discrete-event simulation itself failed.
    Sim {
        /// The simulator's diagnosis.
        reason: String,
    },
    /// The sort service shed a job: the bounded queue was full, the
    /// job's deadline passed while it waited, or its footprint can
    /// never fit the budget. Backpressure, not a failure of the
    /// pipeline — resubmit later or with a smaller configuration.
    Overloaded {
        /// The job that was shed, when known.
        job: Option<u64>,
        /// Why the service refused it.
        reason: String,
    },
    /// A virtual-CUDA driver error that has no more specific mapping.
    Cuda(CudaError),
}

impl HetSortError {
    /// Shorthand for a config error.
    pub(crate) fn config(reason: impl Into<String>) -> Self {
        HetSortError::Config {
            reason: reason.into(),
        }
    }

    /// Shorthand for a data error.
    pub(crate) fn data(reason: impl Into<String>) -> Self {
        HetSortError::Data {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for HetSortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HetSortError::Config { reason } => write!(f, "invalid configuration: {reason}"),
            HetSortError::Plan { reason } => write!(f, "invalid plan: {reason}"),
            HetSortError::Data { reason } => write!(f, "data mismatch: {reason}"),
            HetSortError::GpuOom {
                gpu,
                batch,
                requested_bytes,
                free_bytes,
            } => {
                write!(
                    f,
                    "GPU {gpu} out of memory: requested {requested_bytes:.3e} B, {free_bytes:.3e} B free"
                )?;
                if let Some(b) = batch {
                    write!(f, " (batch {b})")?;
                }
                Ok(())
            }
            HetSortError::TransferFault {
                step,
                batch,
                dir,
                attempts,
            } => {
                let d = match dir {
                    TransferDir::HtoD => "HtoD",
                    TransferDir::DtoH => "DtoH",
                };
                write!(
                    f,
                    "{d} transfer failed at step {step} (batch {batch}) after {attempts} attempt(s)"
                )
            }
            HetSortError::DeviceSortFault { step, batch, gpu } => {
                write!(
                    f,
                    "device sort failed at step {step} (batch {batch}, GPU {gpu})"
                )
            }
            HetSortError::DeviceLost { gpu } => {
                write!(f, "GPU {gpu} lost and no recovery path remains")
            }
            HetSortError::WorkerPanic { worker, message } => {
                write!(f, "stream worker {worker} panicked: {message}")
            }
            HetSortError::MergeStall { pending } => {
                write!(f, "{pending} pair merge(s) never became ready")
            }
            HetSortError::Sim { reason } => write!(f, "simulation failed: {reason}"),
            HetSortError::Overloaded { job, reason } => {
                write!(f, "service overloaded")?;
                if let Some(j) = job {
                    write!(f, " (job {j})")?;
                }
                write!(f, ": {reason}")
            }
            HetSortError::Cuda(e) => write!(f, "CUDA error: {e}"),
        }
    }
}

impl std::error::Error for HetSortError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HetSortError::Cuda(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CudaError> for HetSortError {
    fn from(e: CudaError) -> Self {
        match e {
            CudaError::DeviceOom {
                gpu,
                requested_bytes,
                free_bytes,
            } => HetSortError::GpuOom {
                gpu,
                batch: None,
                requested_bytes,
                free_bytes,
            },
            CudaError::DeviceLost { gpu } => HetSortError::DeviceLost { gpu },
            other => HetSortError::Cuda(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_step_and_batch() {
        let e = HetSortError::TransferFault {
            step: 17,
            batch: 3,
            dir: TransferDir::HtoD,
            attempts: 3,
        };
        let s = e.to_string();
        assert!(s.contains("step 17"), "{s}");
        assert!(s.contains("batch 3"), "{s}");
        assert!(s.contains("HtoD"), "{s}");
    }

    #[test]
    fn overloaded_names_the_job() {
        let e = HetSortError::Overloaded {
            job: Some(42),
            reason: "queue full (depth 8)".into(),
        };
        let s = e.to_string();
        assert!(s.contains("overloaded"), "{s}");
        assert!(s.contains("job 42"), "{s}");
        assert!(s.contains("queue full"), "{s}");
        let anon = HetSortError::Overloaded {
            job: None,
            reason: "x".into(),
        }
        .to_string();
        assert!(!anon.contains("job"), "{anon}");
    }

    #[test]
    fn cuda_oom_maps_to_gpu_oom() {
        let e: HetSortError = CudaError::DeviceOom {
            gpu: 1,
            requested_bytes: 4e9,
            free_bytes: 1e9,
        }
        .into();
        assert!(matches!(
            e,
            HetSortError::GpuOom {
                gpu: 1,
                batch: None,
                ..
            }
        ));
    }

    #[test]
    fn source_chains_to_cuda() {
        use std::error::Error;
        let e = HetSortError::Cuda(CudaError::NoSuchDevice { gpu: 3, n_gpus: 1 });
        assert!(e.source().is_some());
        assert!(HetSortError::config("x").source().is_none());
    }
}
