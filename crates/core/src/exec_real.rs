//! Functional execution: run the *same* plan on real data.
//!
//! Interprets a [`Plan`] step by step with actual memory movement:
//! staging chunks through pinned-buffer stand-ins, "device" batch
//! buffers sorted with the real LSD radix sort (the Thrust stand-in),
//! real merge-path pair merges, and the real parallel multiway merge.
//! Steps execute in submission order, which the planner guarantees is a
//! valid topological order — including the pinned-buffer reuse hazards
//! (a chunk's `StageIn` never overwrites the buffer before the previous
//! chunk's `HtoD` drained it, exactly as the stream FIFO enforces on
//! real hardware).
//!
//! Stream-bound steps run through [`crate::exec_stream::StreamExec`],
//! which implements the failure model: injected faults, bounded
//! retries, OOM batch splitting, and CPU-fallback degradation per the
//! configured [`crate::config::RecoveryPolicy`]. Unrecovered faults
//! surface as typed [`HetSortError`]s.
//!
//! The output is verified (sorted + multiset-preserving) so every test
//! of the simulated pipelines is backed by a functional proof of the
//! identical orchestration.

use hetsort_algos::keys::{RadixKey, SortOrd};
use hetsort_algos::merge::par_merge_into_cfg;
use hetsort_algos::multiway::par_multiway_merge_into_cfg;
use hetsort_algos::par::{par_copy, SchedStats};
use hetsort_algos::verify::{fingerprint, is_sorted};
use hetsort_obs::{MetricsRegistry, ObsSpan, OpClass};
use hetsort_sim::{Access, OpTrace};

use crate::config::HetSortConfig;
use crate::error::HetSortError;
use crate::exec_stream::StreamExec;
use crate::optrace::trace_with_accesses;
use crate::plan::{MergeInput, Plan, StepKind};
use crate::report::RecoveryStats;

/// Result of a functional run (over `f64` keys by default; any
/// [`RadixKey`]+[`SortOrd`] element works, e.g.
/// [`hetsort_algos::keys::KeyValue`] records).
#[derive(Debug)]
pub struct RealOutcome<T = f64> {
    /// The sorted output `B`.
    pub sorted: Vec<T>,
    /// Wall-clock seconds of the run (this machine, not the simulated
    /// platform — use [`crate::simulate`] for paper-scale timing).
    pub wall_s: f64,
    /// Output is sorted and a permutation of the input.
    pub verified: bool,
    /// Number of batches executed.
    pub nb: usize,
    /// Number of pipelined pair merges executed.
    pub pair_merges: usize,
    /// What recovery had to do (all zeros on a fault-free run).
    pub recovery: RecoveryStats,
    /// Structured op trace of the *executed* accesses, when the config
    /// asked for one ([`HetSortConfig::with_trace_recording`]). Recovery
    /// reroutes show up here, so re-planned schedules get re-checked by
    /// `hetsort-analyze`.
    pub trace: Option<OpTrace>,
    /// Observability: every executed step as a wall-clock span, plus
    /// `recovery.*` counters — always recorded (spans cost nanoseconds
    /// against host-scale steps).
    pub metrics: MetricsRegistry,
    /// Recovery re-plans built after device losses, in the order they
    /// were adopted (empty on runs that lost no device). Each already
    /// passed [`Plan::check_invariants`]; callers with access to
    /// `hetsort-analyze` re-run the residency check on them — the
    /// dependency points that way, so the executor cannot.
    pub replans: Vec<Plan>,
}

/// Expand a merge's [`SchedStats`] into per-worker [`OpClass::CpuPart`]
/// spans nested under the parent merge span (same wall-clock origin).
/// Idle workers (zero parts) are skipped — they never executed.
pub(crate) fn cpu_part_spans(parent_label: &str, m_start: f64, stats: &SchedStats) -> Vec<ObsSpan> {
    stats
        .workers
        .iter()
        .filter(|w| w.parts > 0)
        .map(|w| {
            ObsSpan::new(
                OpClass::CpuPart,
                format!("{parent_label} w{} ({} parts)", w.worker, w.parts),
                m_start + w.start_s,
                m_start + w.end_s,
            )
        })
        .collect()
}

/// Merge per-stream access logs into one executed trace.
pub(crate) fn assemble_trace(plan: &Plan, logs: &[Vec<(usize, Vec<Access>)>]) -> OpTrace {
    let mut overrides: Vec<Option<Vec<Access>>> = vec![None; plan.steps.len()];
    for log in logs {
        for (si, acc) in log {
            overrides[*si] = Some(acc.clone());
        }
    }
    trace_with_accesses(plan, &overrides)
}

/// Sort `data` with the configured heterogeneous pipeline, functionally.
///
/// # Errors
///
/// [`HetSortError::Config`] for invalid configurations, plus everything
/// [`sort_real_plan`] reports.
pub fn sort_real<T>(config: HetSortConfig, data: &[T]) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    let plan = Plan::build(config, data.len())?;
    sort_real_plan(&plan, data)
}

/// Execute an already-built plan on `data` (must match `plan.n` and the
/// configured element size).
///
/// # Errors
///
/// [`HetSortError::Data`] on plan/data mismatches; typed fault errors
/// ([`HetSortError::GpuOom`], [`HetSortError::TransferFault`],
/// [`HetSortError::DeviceSortFault`]) when the recovery policy does not
/// absorb an injected fault.
pub fn sort_real_plan<T>(plan: &Plan, data: &[T]) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    if data.len() != plan.n {
        return Err(HetSortError::data(format!(
            "data length {} does not match plan n = {}",
            data.len(),
            plan.n
        )));
    }
    // Integer-exact width check: `elem_bytes_usize` already rejects
    // fractional/unsupported widths with a typed Config error, so this
    // never degenerates into an f64 equality that can silently fail.
    let elem_bytes = plan.config.elem_bytes_usize()?;
    if std::mem::size_of::<T>() != elem_bytes {
        return Err(HetSortError::data(format!(
            "element type is {} bytes but the config models {} — call with_elem_bytes",
            std::mem::size_of::<T>(),
            elem_bytes
        )));
    }
    // Re-validate on every execution path: re-planned (recovery) plans
    // and hand-mutated plans must not reach the interpreter.
    plan.check_invariants()?;
    let cfg = &plan.config;
    let n = plan.n;
    let nb = plan.nb();
    let input_fp = fingerprint(data);
    let injected_before = cfg.faults.as_ref().map_or(0, |i| i.injected());
    let t0 = std::time::Instant::now();

    // Memory: A (borrowed), W (working memory for sorted sublists),
    // B (output), per-stream state (pinned + device buffers) in the
    // stream interpreters.
    let mut w = vec![T::default(); if nb > 1 { n } else { 0 }];
    let mut b_out = vec![T::default(); n];
    let mut pair_out: Vec<Vec<T>> = (0..plan.pairs.len()).map(|_| Vec::new()).collect();
    let merge_threads = usize::try_from(cfg.merge_threads_eff()).unwrap_or(usize::MAX);
    // Cap the functional thread count at this machine's parallelism ×4:
    // simulated platforms may have more cores than the host.
    let host_threads = merge_threads.min(4 * hetsort_algos::par::default_threads());
    let device_sort_threads = hetsort_algos::par::default_threads();
    let memcpy_threads = usize::try_from(cfg.memcpy_threads_eff())
        .unwrap_or(usize::MAX)
        .min(4 * hetsort_algos::par::default_threads());
    let sched = cfg.sched_cfg();

    // --- Phase 1: stream passes produce the sorted runs in `w` (or
    // `b_out` when n_b = 1). A device loss aborts the pass; unfinished
    // work is re-planned onto the survivors (or host-sorted when none
    // remain) and the next pass covers only batches not yet staged out.
    // Merges are deferred to phase 2: batch tiling is identical across
    // re-plans, so the *original* plan's merge schedule stays valid.
    let mut recovery = RecoveryStats::default();
    let mut metrics = MetricsRegistry::new();
    let mut replans: Vec<Plan> = Vec::new();
    let mut lost_gpus: std::collections::BTreeSet<usize> = Default::default();
    let mut emitted: Vec<usize> = vec![0usize; nb];
    let mut final_logs: Vec<Vec<(usize, Vec<Access>)>> = Vec::new();
    let mut cur_owned: Option<Plan> = None;
    loop {
        let cur: &Plan = cur_owned.as_ref().unwrap_or(plan);
        let mut streams: Vec<StreamExec<T>> = (0..cur.total_streams)
            .map(|s| StreamExec::new(cur, data, s, host_threads, device_sort_threads, t0))
            .collect();
        let mut lost: Option<usize> = None;
        // Steps skipped because their batch already completed log empty
        // access lists: "no accesses this pass" must override the
        // static derivation in the assembled trace.
        let mut skipped_log: Vec<(usize, Vec<Access>)> = Vec::new();
        for (si, step) in cur.steps.iter().enumerate() {
            if matches!(
                step.kind,
                StepKind::PairMerge { .. } | StepKind::MultiwayMerge { .. }
            ) {
                continue;
            }
            if let Some(bi) = crate::recover::step_batch(&step.kind) {
                if emitted[bi] >= cur.batches[bi].len {
                    if cur.config.record_trace {
                        skipped_log.push((si, Vec::new()));
                    }
                    continue;
                }
            }
            let s = step.stream.ok_or_else(|| HetSortError::Plan {
                reason: format!("step {si} has no stream"),
            })?;
            let dst = if nb > 1 { &mut w } else { &mut b_out };
            let r = streams[s].step(si, &mut |batch, start, chunk| {
                par_copy(memcpy_threads, chunk, &mut dst[start..start + chunk.len()]);
                emitted[batch] += chunk.len();
            });
            match r {
                Ok(()) => {}
                Err(HetSortError::DeviceLost { gpu }) => {
                    lost = Some(gpu);
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        for sx in &mut streams {
            recovery.retries += sx.stats.retries;
            recovery.degraded_batches += sx.stats.degraded_batches;
            recovery.oom_replans += sx.stats.oom_replans;
            metrics.record_all(std::mem::take(&mut sx.span_log));
        }
        if cur.config.record_trace {
            // The trace covers the final pass; earlier aborted passes'
            // logs reference a different plan's step indices.
            final_logs = streams.iter().map(|sx| sx.access_log.clone()).collect();
            final_logs.push(skipped_log);
        }
        let Some(gpu) = lost else { break };

        // Device fault domain: checkpoint what finished, re-plan the
        // rest over the survivors.
        recovery.device_lost += 1;
        lost_gpus.insert(gpu);
        let unfinished: Vec<usize> = (0..nb)
            .filter(|&b| emitted[b] < plan.batches[b].len)
            .collect();
        recovery.batches_recomputed += unfinished
            .iter()
            .filter(|&&b| cur.physical_gpu(cur.batches[b].gpu) == gpu)
            .count();
        // Partially staged-out batches are recomputed whole.
        for &b in &unfinished {
            emitted[b] = 0;
        }
        let t_fail = t0.elapsed().as_secs_f64();
        match crate::recover::survivor_plan(plan, &lost_gpus)? {
            Some(rp) => {
                recovery.replans += 1;
                metrics.record(ObsSpan::new(
                    OpClass::Other,
                    format!(
                        "failover: GPU {gpu} lost → re-plan {} batch(es) on {} device(s)",
                        unfinished.len(),
                        rp.device_ids.len()
                    ),
                    t_fail,
                    t0.elapsed().as_secs_f64(),
                ));
                replans.push(rp.clone());
                cur_owned = Some(rp);
            }
            None => {
                if !cfg.recovery.cpu_fallback {
                    return Err(HetSortError::DeviceLost { gpu });
                }
                // Every device is gone: sort the unfinished batches
                // host-side straight from `A`.
                for &b in &unfinished {
                    let bi = plan.batches[b];
                    let dst = if nb > 1 { &mut w } else { &mut b_out };
                    let seg = &mut dst[bi.start..bi.start + bi.len];
                    par_copy(memcpy_threads, &data[bi.start..bi.start + bi.len], seg);
                    hetsort_algos::radix_par::par_radix_sort_cfg(&sched, host_threads, seg);
                    emitted[b] = bi.len;
                    recovery.degraded_batches += 1;
                }
                metrics.record(ObsSpan::new(
                    OpClass::Other,
                    format!(
                        "failover: GPU {gpu} lost, no survivors → host sort of {} batch(es)",
                        unfinished.len()
                    ),
                    t_fail,
                    t0.elapsed().as_secs_f64(),
                ));
                break;
            }
        }
    }
    debug_assert!(
        (0..nb).all(|b| emitted[b] == plan.batches[b].len),
        "every batch must be staged out before merging"
    );

    // --- Phase 2: the original plan's merge schedule over the sorted
    // runs in `w`.
    let mut pair_merges_done = 0usize;
    let mut merge_spans: Vec<ObsSpan> = Vec::new();
    for step in plan.steps.iter() {
        match &step.kind {
            StepKind::PairMerge { slot } => {
                let spec = plan.pairs[*slot];
                let resolve = |src: crate::plan::MergeSrc| -> &[T] {
                    match src {
                        crate::plan::MergeSrc::Batch(b) => {
                            let bi = &plan.batches[b];
                            &w[bi.start..bi.start + bi.len]
                        }
                        crate::plan::MergeSrc::Merged(p) => pair_out[p].as_slice(),
                    }
                };
                let mut out = vec![T::default(); spec.out_elems];
                let m_start = t0.elapsed().as_secs_f64();
                let label = format!("PairMerge p{slot}");
                let stats = par_merge_into_cfg(
                    &sched,
                    host_threads,
                    resolve(spec.left),
                    resolve(spec.right),
                    &mut out,
                );
                merge_spans.push(
                    ObsSpan::new(
                        OpClass::PairMerge,
                        label.clone(),
                        m_start,
                        t0.elapsed().as_secs_f64(),
                    )
                    .with_bytes(spec.out_elems as f64 * cfg.elem_bytes),
                );
                merge_spans.extend(cpu_part_spans(&label, m_start, &stats));
                pair_out[*slot] = out;
                pair_merges_done += 1;
            }
            StepKind::MultiwayMerge { inputs } => {
                let lists: Vec<&[T]> = inputs
                    .iter()
                    .map(|inp| match *inp {
                        MergeInput::Batch(b) => {
                            let bi = &plan.batches[b];
                            &w[bi.start..bi.start + bi.len]
                        }
                        MergeInput::Pair(p) => pair_out[p].as_slice(),
                    })
                    .collect();
                let m_start = t0.elapsed().as_secs_f64();
                let label = format!("MultiwayMerge k{}", lists.len());
                let stats = par_multiway_merge_into_cfg(&sched, host_threads, &lists, &mut b_out);
                merge_spans.push(
                    ObsSpan::new(
                        OpClass::MultiwayMerge,
                        label.clone(),
                        m_start,
                        t0.elapsed().as_secs_f64(),
                    )
                    .with_bytes(plan.n as f64 * cfg.elem_bytes),
                );
                merge_spans.extend(cpu_part_spans(&label, m_start, &stats));
            }
            _ => {}
        }
    }

    recovery.faults_injected = cfg.faults.as_ref().map_or(0, |i| i.injected()) - injected_before;

    // With re-plans, the executed trace covers the final pass (the plan
    // that actually finished the run).
    let trace = cfg.record_trace.then(|| {
        let trace_plan = replans.last().unwrap_or(plan);
        assemble_trace(trace_plan, &final_logs)
    });

    metrics.record_all(merge_spans);
    recovery.fold_into(&mut metrics);

    let wall_s = t0.elapsed().as_secs_f64();
    let verified = is_sorted(&b_out) && fingerprint(&b_out) == input_fp;
    Ok(RealOutcome {
        sorted: b_out,
        wall_s,
        verified,
        nb,
        pair_merges: pair_merges_done,
        recovery,
        trace,
        metrics,
        replans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Approach;
    use hetsort_algos::introsort::introsort;
    use hetsort_vgpu::{platform1, platform2};

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn cfg(approach: Approach, bs: usize, ps: usize) -> HetSortConfig {
        HetSortConfig::paper_defaults(platform1(), approach)
            .with_batch_elems(bs)
            .with_pinned_elems(ps)
    }

    fn check(approach: Approach, n: usize, bs: usize, ps: usize) -> RealOutcome {
        let d = data(n, 42);
        let mut expect = d.clone();
        introsort(&mut expect);
        let out = sort_real(cfg(approach, bs, ps), &d).unwrap();
        assert!(out.verified, "{approach:?} failed verification");
        assert!(
            !out.recovery.any(),
            "fault-free run must report no recovery"
        );
        assert_eq!(
            out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "{approach:?} output mismatch"
        );
        out
    }

    #[test]
    fn bline_single_batch() {
        let out = check(Approach::BLine, 10_000, 10_000, 1_000);
        assert_eq!(out.nb, 1);
        assert_eq!(out.pair_merges, 0);
    }

    #[test]
    fn bline_multi_batches() {
        let out = check(Approach::BLineMulti, 50_000, 8_000, 1_000);
        assert_eq!(out.nb, 7);
        assert_eq!(out.pair_merges, 0);
    }

    #[test]
    fn pipedata_streams() {
        let out = check(Approach::PipeData, 60_000, 7_000, 1_000);
        assert_eq!(out.nb, 9);
    }

    #[test]
    fn pipemerge_with_pair_merges() {
        let out = check(Approach::PipeMerge, 60_000, 6_000, 1_500);
        assert_eq!(out.nb, 10);
        assert_eq!(out.pair_merges, 4); // ⌊9/2⌋
    }

    #[test]
    fn parmemcpy_changes_nothing_functionally() {
        let d = data(30_000, 7);
        let a = sort_real(cfg(Approach::PipeMerge, 4_000, 500), &d).unwrap();
        let b = sort_real(cfg(Approach::PipeMerge, 4_000, 500).with_par_memcpy(), &d).unwrap();
        assert!(a.verified && b.verified);
        assert_eq!(
            a.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn multi_gpu_platform() {
        let d = data(40_000, 9);
        let mut expect = d.clone();
        introsort(&mut expect);
        let c = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(5_000)
            .with_pinned_elems(1_000);
        let out = sort_real(c, &d).unwrap();
        assert!(out.verified);
        assert_eq!(out.nb, 8);
        assert_eq!(
            out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ragged_sizes() {
        // n not divisible by b_s, b_s not divisible by p_s.
        check(Approach::PipeMerge, 12_345, 1_234, 100);
        check(Approach::BLineMulti, 9_999, 1_000, 333);
    }

    #[test]
    fn special_values_survive_pipeline() {
        let mut d = data(5_000, 3);
        d[0] = f64::INFINITY;
        d[1] = f64::NEG_INFINITY;
        d[2] = -0.0;
        d[3] = 0.0;
        d[4] = f64::NAN;
        let mut expect = d.clone();
        introsort(&mut expect);
        let out = sort_real(cfg(Approach::PipeData, 600, 100), &d).unwrap();
        assert!(out.verified);
        assert_eq!(
            out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejected_strategies_still_sort_correctly() {
        use crate::config::PairStrategy;
        for strategy in [PairStrategy::Online, PairStrategy::MergeTree] {
            let d = data(40_000, 13);
            let mut expect = d.clone();
            introsort(&mut expect);
            let c = cfg(Approach::PipeMerge, 6_000, 1_000).with_pair_strategy(strategy);
            let out = sort_real(c, &d).unwrap();
            assert!(out.verified, "{strategy:?}");
            assert_eq!(
                out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{strategy:?}"
            );
            // Online merges n_b−1 times; tree merges n_b−1 times too.
            assert_eq!(out.pair_merges, out.nb - 1, "{strategy:?}");
        }
    }

    #[test]
    fn bitonic_device_sort_is_equivalent() {
        use crate::config::DeviceSortKind;
        let d = data(30_000, 21);
        let mut expect = d.clone();
        introsort(&mut expect);
        let c =
            cfg(Approach::PipeMerge, 5_000, 1_000).with_device_sort(DeviceSortKind::BitonicInPlace);
        let out = sort_real(c, &d).unwrap();
        assert!(out.verified);
        assert_eq!(
            out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let plan = Plan::build(cfg(Approach::BLineMulti, 1_000, 100), 5_000).unwrap();
        assert!(matches!(
            sort_real_plan(&plan, &data(4_999, 1)),
            Err(HetSortError::Data { .. })
        ));
    }
}
