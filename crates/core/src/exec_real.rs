//! Functional execution: run the *same* plan on real data.
//!
//! This module owns the sequential entry points ([`sort_real`],
//! [`sort_real_plan`]) and the shared [`RealOutcome`] result type; the
//! actual interpretation is the unified DAG engine in
//! [`crate::dag::exec`]. A plan is lowered to a [`crate::dag::PlanDag`]
//! (typed ops + explicit dependency edges), validated, and executed by
//! [`crate::dag::exec::execute_dag`] in deterministic min-node-id ready
//! order — which, for planner-built dags, reproduces the legacy
//! submission-order loop bit for bit (proven by
//! `tests/dag_differential.rs`).
//!
//! Stream-bound ops run through [`crate::exec_stream::StreamExec`],
//! which implements the failure model: injected faults, bounded
//! retries, OOM batch splitting, and CPU-fallback degradation per the
//! configured [`crate::config::RecoveryPolicy`]. Unrecovered faults
//! surface as typed [`HetSortError`]s.
//!
//! The output is verified (sorted + multiset-preserving) so every test
//! of the simulated pipelines is backed by a functional proof of the
//! identical orchestration.

use hetsort_algos::keys::{RadixKey, SortOrd};
use hetsort_algos::par::SchedStats;
use hetsort_obs::{MetricsRegistry, ObsSpan, OpClass};
use hetsort_sim::{Access, OpTrace};

use crate::config::HetSortConfig;
use crate::error::HetSortError;
use crate::optrace::trace_with_accesses;
use crate::plan::Plan;
use crate::report::RecoveryStats;

/// Result of a functional run (over `f64` keys by default; any
/// [`RadixKey`]+[`SortOrd`] element works, e.g.
/// [`hetsort_algos::keys::KeyValue`] records).
#[derive(Debug)]
pub struct RealOutcome<T = f64> {
    /// The sorted output `B`.
    pub sorted: Vec<T>,
    /// Wall-clock seconds of the run (this machine, not the simulated
    /// platform — use [`crate::simulate`] for paper-scale timing).
    pub wall_s: f64,
    /// Output is sorted and a permutation of the input.
    pub verified: bool,
    /// Number of batches executed.
    pub nb: usize,
    /// Number of pipelined pair merges executed.
    pub pair_merges: usize,
    /// What recovery had to do (all zeros on a fault-free run).
    pub recovery: RecoveryStats,
    /// Structured op trace of the *executed* accesses, when the config
    /// asked for one ([`HetSortConfig::with_trace_recording`]). Recovery
    /// reroutes show up here, so re-planned schedules get re-checked by
    /// `hetsort-analyze`.
    pub trace: Option<OpTrace>,
    /// Observability: every executed step as a wall-clock span, plus
    /// `recovery.*` counters — always recorded (spans cost nanoseconds
    /// against host-scale steps).
    pub metrics: MetricsRegistry,
    /// Recovery re-plans built after device losses, in the order they
    /// were adopted (empty on runs that lost no device). Each already
    /// passed [`Plan::check_invariants`]; callers with access to
    /// `hetsort-analyze` re-run the residency check on them — the
    /// dependency points that way, so the executor cannot.
    pub replans: Vec<Plan>,
}

/// Expand a merge's [`SchedStats`] into per-worker [`OpClass::CpuPart`]
/// spans nested under the parent merge span (same wall-clock origin).
/// Idle workers (zero parts) are skipped — they never executed.
pub(crate) fn cpu_part_spans(parent_label: &str, m_start: f64, stats: &SchedStats) -> Vec<ObsSpan> {
    stats
        .workers
        .iter()
        .filter(|w| w.parts > 0)
        .map(|w| {
            ObsSpan::new(
                OpClass::CpuPart,
                format!("{parent_label} w{} ({} parts)", w.worker, w.parts),
                m_start + w.start_s,
                m_start + w.end_s,
            )
        })
        .collect()
}

/// Merge per-stream access logs into one executed trace.
pub(crate) fn assemble_trace(plan: &Plan, logs: &[Vec<(usize, Vec<Access>)>]) -> OpTrace {
    let mut overrides: Vec<Option<Vec<Access>>> = vec![None; plan.steps.len()];
    for log in logs {
        for (si, acc) in log {
            overrides[*si] = Some(acc.clone());
        }
    }
    trace_with_accesses(plan, &overrides)
}

/// Sort `data` with the configured heterogeneous pipeline, functionally.
///
/// # Errors
///
/// [`HetSortError::Config`] for invalid configurations, plus everything
/// [`sort_real_plan`] reports.
pub fn sort_real<T>(config: HetSortConfig, data: &[T]) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    let plan = Plan::build(config, data.len())?;
    sort_real_plan(&plan, data)
}

/// Execute an already-built plan on `data` (must match `plan.n` and the
/// configured element size).
///
/// # Errors
///
/// [`HetSortError::Data`] on plan/data mismatches; typed fault errors
/// ([`HetSortError::GpuOom`], [`HetSortError::TransferFault`],
/// [`HetSortError::DeviceSortFault`]) when the recovery policy does not
/// absorb an injected fault.
pub fn sort_real_plan<T>(plan: &Plan, data: &[T]) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    crate::dag::exec::execute_dag(&crate::dag::PlanDag::from_plan(plan.clone()), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Approach;
    use hetsort_algos::introsort::introsort;
    use hetsort_vgpu::{platform1, platform2};

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn cfg(approach: Approach, bs: usize, ps: usize) -> HetSortConfig {
        HetSortConfig::paper_defaults(platform1(), approach)
            .with_batch_elems(bs)
            .with_pinned_elems(ps)
    }

    fn check(approach: Approach, n: usize, bs: usize, ps: usize) -> RealOutcome {
        let d = data(n, 42);
        let mut expect = d.clone();
        introsort(&mut expect);
        let out = sort_real(cfg(approach, bs, ps), &d).unwrap();
        assert!(out.verified, "{approach:?} failed verification");
        assert!(
            !out.recovery.any(),
            "fault-free run must report no recovery"
        );
        assert_eq!(
            out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "{approach:?} output mismatch"
        );
        out
    }

    #[test]
    fn bline_single_batch() {
        let out = check(Approach::BLine, 10_000, 10_000, 1_000);
        assert_eq!(out.nb, 1);
        assert_eq!(out.pair_merges, 0);
    }

    #[test]
    fn bline_multi_batches() {
        let out = check(Approach::BLineMulti, 50_000, 8_000, 1_000);
        assert_eq!(out.nb, 7);
        assert_eq!(out.pair_merges, 0);
    }

    #[test]
    fn pipedata_streams() {
        let out = check(Approach::PipeData, 60_000, 7_000, 1_000);
        assert_eq!(out.nb, 9);
    }

    #[test]
    fn pipemerge_with_pair_merges() {
        let out = check(Approach::PipeMerge, 60_000, 6_000, 1_500);
        assert_eq!(out.nb, 10);
        assert_eq!(out.pair_merges, 4); // ⌊9/2⌋
    }

    #[test]
    fn parmemcpy_changes_nothing_functionally() {
        let d = data(30_000, 7);
        let a = sort_real(cfg(Approach::PipeMerge, 4_000, 500), &d).unwrap();
        let b = sort_real(cfg(Approach::PipeMerge, 4_000, 500).with_par_memcpy(), &d).unwrap();
        assert!(a.verified && b.verified);
        assert_eq!(
            a.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn multi_gpu_platform() {
        let d = data(40_000, 9);
        let mut expect = d.clone();
        introsort(&mut expect);
        let c = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(5_000)
            .with_pinned_elems(1_000);
        let out = sort_real(c, &d).unwrap();
        assert!(out.verified);
        assert_eq!(out.nb, 8);
        assert_eq!(
            out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ragged_sizes() {
        // n not divisible by b_s, b_s not divisible by p_s.
        check(Approach::PipeMerge, 12_345, 1_234, 100);
        check(Approach::BLineMulti, 9_999, 1_000, 333);
    }

    #[test]
    fn special_values_survive_pipeline() {
        let mut d = data(5_000, 3);
        d[0] = f64::INFINITY;
        d[1] = f64::NEG_INFINITY;
        d[2] = -0.0;
        d[3] = 0.0;
        d[4] = f64::NAN;
        let mut expect = d.clone();
        introsort(&mut expect);
        let out = sort_real(cfg(Approach::PipeData, 600, 100), &d).unwrap();
        assert!(out.verified);
        assert_eq!(
            out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejected_strategies_still_sort_correctly() {
        use crate::config::PairStrategy;
        for strategy in [PairStrategy::Online, PairStrategy::MergeTree] {
            let d = data(40_000, 13);
            let mut expect = d.clone();
            introsort(&mut expect);
            let c = cfg(Approach::PipeMerge, 6_000, 1_000).with_pair_strategy(strategy);
            let out = sort_real(c, &d).unwrap();
            assert!(out.verified, "{strategy:?}");
            assert_eq!(
                out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{strategy:?}"
            );
            // Online merges n_b−1 times; tree merges n_b−1 times too.
            assert_eq!(out.pair_merges, out.nb - 1, "{strategy:?}");
        }
    }

    #[test]
    fn bitonic_device_sort_is_equivalent() {
        use crate::config::DeviceSortKind;
        let d = data(30_000, 21);
        let mut expect = d.clone();
        introsort(&mut expect);
        let c =
            cfg(Approach::PipeMerge, 5_000, 1_000).with_device_sort(DeviceSortKind::BitonicInPlace);
        let out = sort_real(c, &d).unwrap();
        assert!(out.verified);
        assert_eq!(
            out.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let plan = Plan::build(cfg(Approach::BLineMulti, 1_000, 100), 5_000).unwrap();
        assert!(matches!(
            sort_real_plan(&plan, &data(4_999, 1)),
            Err(HetSortError::Data { .. })
        ));
    }
}
