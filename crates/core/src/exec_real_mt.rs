//! Concurrent functional execution: the multi-threaded counterpart of
//! [`crate::exec_real`].
//!
//! The sequential interpreter proves the plan's data path correct; this
//! entry point proves its *concurrency structure* correct by actually
//! running it concurrently, the way the paper's implementation does.
//! Since the DAG unification, the machinery lives in
//! [`crate::dag::exec::execute_dag_pooled`]: a worker pool pops ready
//! stream-bound ops from a shared ready set (the FIFO edges guarantee
//! at most one ready op per stream, so streams never interleave
//! internally), and a merge coordinator fires each pipelined pair merge
//! the moment both inputs exist (PIPEMERGE semantics) before the final
//! multiway merge.
//!
//! Batch payloads are owned `Vec`s handed over a channel, so there is
//! no shared mutable state on the data path — the safe-Rust translation
//! of the paper's `W` buffer (which is only ever written once per
//! region).
//!
//! The pool is panic-safe: a stream whose worker dies (injected via
//! [`hetsort_vgpu::FaultInjector::panic_worker`] or otherwise) never
//! poisons the run. Its unfinished ops stay blocked, the pool drains
//! around them, and the coordinator either host-sorts the dead stream's
//! missing batches (when [`crate::config::RecoveryPolicy::cpu_fallback`]
//! is on) or reports a typed [`HetSortError::WorkerPanic`] naming the
//! worker — never a raw panic or a hung channel.

use hetsort_algos::keys::{RadixKey, SortOrd};

use crate::error::HetSortError;
use crate::exec_real::RealOutcome;
use crate::plan::Plan;

/// Sort `data` by executing the plan's streams on real OS threads.
///
/// Produces bit-identical output to [`crate::exec_real::sort_real_plan`]
/// (the data path is deterministic; only wall-clock interleaving
/// differs). With a fault injector armed, global occurrence counters are
/// still exact, but *which* stream observes an occurrence depends on
/// interleaving — concurrent fault tests should use single-stream
/// configs or worker-addressed panics.
///
/// # Errors
///
/// [`HetSortError::Data`] on plan/data mismatches; typed fault errors
/// when the recovery policy does not absorb an injected fault;
/// [`HetSortError::WorkerPanic`] when a stream worker dies and CPU
/// fallback is disabled.
pub fn sort_real_parallel<T>(plan: &Plan, data: &[T]) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    crate::dag::exec::execute_dag_pooled(
        &crate::dag::PlanDag::from_plan(plan.clone()),
        data,
        plan.total_streams.max(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HetSortConfig, PairStrategy, RecoveryPolicy};
    use crate::exec_real::sort_real_plan;
    use hetsort_vgpu::{platform1, platform2, FaultInjector};
    use std::sync::Arc;

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    fn check_equivalence(cfg: HetSortConfig, n: usize) {
        let d = data(n, 77);
        let plan = Plan::build(cfg, n).expect("plan");
        let seq = sort_real_plan(&plan, &d).expect("sequential");
        let par = sort_real_parallel(&plan, &d).expect("parallel");
        assert!(seq.verified && par.verified);
        assert_eq!(
            par.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            seq.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(par.nb, seq.nb);
        assert!(!par.recovery.any());
    }

    #[test]
    fn matches_sequential_for_all_approaches() {
        for approach in [
            Approach::BLineMulti,
            Approach::PipeData,
            Approach::PipeMerge,
        ] {
            let cfg = HetSortConfig::paper_defaults(platform1(), approach)
                .with_batch_elems(5_000)
                .with_pinned_elems(1_000);
            check_equivalence(cfg, 42_000);
        }
    }

    #[test]
    fn matches_sequential_on_multi_gpu() {
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(4_000)
            .with_pinned_elems(700);
        check_equivalence(cfg, 37_123);
    }

    #[test]
    fn matches_sequential_for_rejected_strategies() {
        for strategy in [PairStrategy::Online, PairStrategy::MergeTree] {
            let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
                .with_batch_elems(3_000)
                .with_pinned_elems(500)
                .with_pair_strategy(strategy);
            check_equivalence(cfg, 25_000);
        }
    }

    #[test]
    fn single_batch_bline() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLine)
            .with_batch_elems(8_000)
            .with_pinned_elems(1_000);
        check_equivalence(cfg, 8_000);
    }

    #[test]
    fn ragged_sizes() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
            .with_batch_elems(1_234)
            .with_pinned_elems(100);
        check_equivalence(cfg, 9_999);
    }

    #[test]
    fn length_mismatch_rejected() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLineMulti)
            .with_batch_elems(1_000)
            .with_pinned_elems(100);
        let plan = Plan::build(cfg, 5_000).unwrap();
        assert!(matches!(
            sort_real_parallel(&plan, &data(4_000, 1)),
            Err(HetSortError::Data { .. })
        ));
    }

    #[test]
    fn worker_panic_degrades_gracefully() {
        let inj = Arc::new(FaultInjector::new().panic_worker(0, 1));
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeData)
            .with_batch_elems(5_000)
            .with_pinned_elems(1_000)
            .with_faults(inj);
        let n = 42_000;
        let d = data(n, 5);
        let plan = Plan::build(cfg, n).unwrap();
        let out = sort_real_parallel(&plan, &d).unwrap();
        assert!(out.verified, "must recover from a dead worker");
        assert!(out.recovery.degraded_batches >= 1);
        assert_eq!(out.recovery.faults_injected, 1);
    }

    #[test]
    fn worker_panic_without_fallback_is_typed() {
        let inj = Arc::new(FaultInjector::new().panic_worker(0, 1));
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeData)
            .with_batch_elems(5_000)
            .with_pinned_elems(1_000)
            .with_faults(inj)
            .with_recovery(RecoveryPolicy::none());
        let n = 42_000;
        let d = data(n, 5);
        let plan = Plan::build(cfg, n).unwrap();
        let err = sort_real_parallel(&plan, &d).unwrap_err();
        assert!(
            matches!(err, HetSortError::WorkerPanic { worker: 0, .. }),
            "expected WorkerPanic, got {err:?}"
        );
    }
}
