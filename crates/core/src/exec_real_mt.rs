//! Concurrent functional execution: the multi-threaded counterpart of
//! [`crate::exec_real`].
//!
//! The sequential interpreter proves the plan's data path correct; this
//! executor proves its *concurrency structure* correct by actually
//! running it concurrently, the way the paper's implementation does:
//!
//! * one worker thread per stream executes that stream's steps in FIFO
//!   order through a [`StreamExec`] (staging copies, transfers, device
//!   sorts — with the full fault/recovery model), using stream-local
//!   pinned and device buffers — exactly the per-stream state of the
//!   CUDA implementation;
//! * finished sorted batches flow over a channel to a merge coordinator
//!   that fires each pipelined pair merge the moment both inputs exist
//!   (PIPEMERGE semantics) and finally runs the multiway merge.
//!
//! Batch payloads are owned `Vec`s handed over the channel, so there is
//! no shared mutable state at all — the safe-Rust translation of the
//! paper's `W` buffer (which is only ever written once per region).
//!
//! The coordinator is panic-safe: a worker that dies (injected via
//! [`hetsort_vgpu::FaultInjector::panic_worker`] or otherwise) never
//! poisons the run. Its channel sender drops, the coordinator notices,
//! joins every worker, and either host-sorts the dead worker's missing
//! batches (when [`crate::config::RecoveryPolicy::cpu_fallback`] is on)
//! or reports a typed [`HetSortError::WorkerPanic`] naming the worker —
//! never a raw panic or a hung channel.

use std::sync::mpsc;

use hetsort_algos::keys::{RadixKey, SortOrd};
use hetsort_algos::merge::par_merge_into_cfg;
use hetsort_algos::multiway::par_multiway_merge_into_cfg;
use hetsort_algos::par::SchedCfg;
use hetsort_algos::radix_par::par_radix_sort_cfg;
use hetsort_algos::verify::{fingerprint, is_sorted};
use hetsort_obs::{MetricsRegistry, ObsSpan, OpClass};
use hetsort_sim::Access;

use crate::error::HetSortError;
use crate::exec_real::{assemble_trace, cpu_part_spans, RealOutcome};
use crate::exec_stream::StreamExec;
use crate::plan::{MergeInput, MergeSrc, Plan, StepKind};
use crate::report::RecoveryStats;

/// The sorted slice behind a merge source, if it exists yet.
fn src_slice<'x, T>(
    src: MergeSrc,
    batches: &'x [Option<Vec<T>>],
    pairs: &'x [Option<Vec<T>>],
) -> Option<&'x [T]> {
    match src {
        MergeSrc::Batch(b) => batches[b].as_deref(),
        MergeSrc::Merged(p) => pairs[p].as_deref(),
    }
}

/// Fire every pending pair merge whose inputs are ready, repeatedly
/// (an Online/MergeTree merge may unlock the next). Each fired merge is
/// recorded as a span on the run clock `t0`.
#[allow(clippy::too_many_arguments)] // internal helper: plan context + two buffer banks + clock + span sink
fn fire_ready_pairs<T>(
    plan: &Plan,
    sched: &SchedCfg,
    merge_threads: usize,
    sorted_batches: &[Option<Vec<T>>],
    pair_out: &mut [Option<Vec<T>>],
    pending: &mut Vec<usize>,
    t0: std::time::Instant,
    spans: &mut Vec<ObsSpan>,
) where
    T: RadixKey + SortOrd + Default,
{
    let mut fired = true;
    while fired {
        fired = false;
        let mut i = 0;
        while i < pending.len() {
            let slot = pending[i];
            let spec = plan.pairs[slot];
            let (Some(l), Some(r)) = (
                src_slice(spec.left, sorted_batches, pair_out),
                src_slice(spec.right, sorted_batches, pair_out),
            ) else {
                i += 1;
                continue;
            };
            let mut out = vec![T::default(); spec.out_elems];
            let m_start = t0.elapsed().as_secs_f64();
            let label = format!("PairMerge p{slot}");
            let stats = par_merge_into_cfg(sched, merge_threads, l, r, &mut out);
            spans.push(
                ObsSpan::new(
                    OpClass::PairMerge,
                    label.clone(),
                    m_start,
                    t0.elapsed().as_secs_f64(),
                )
                .with_bytes(spec.out_elems as f64 * plan.config.elem_bytes),
            );
            spans.extend(cpu_part_spans(&label, m_start, &stats));
            pair_out[slot] = Some(out);
            pending.remove(i);
            fired = true;
        }
    }
}

/// Sort `data` by executing the plan's streams on real OS threads.
///
/// Produces bit-identical output to [`crate::exec_real::sort_real_plan`]
/// (the data path is deterministic; only wall-clock interleaving
/// differs). With a fault injector armed, global occurrence counters are
/// still exact, but *which* stream observes an occurrence depends on
/// interleaving — concurrent fault tests should use single-stream
/// configs or worker-addressed panics.
///
/// # Errors
///
/// [`HetSortError::Data`] on plan/data mismatches; typed fault errors
/// when the recovery policy does not absorb an injected fault;
/// [`HetSortError::WorkerPanic`] when a stream worker dies and CPU
/// fallback is disabled.
pub fn sort_real_parallel<T>(plan: &Plan, data: &[T]) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    if data.len() != plan.n {
        return Err(HetSortError::data(format!(
            "data length {} does not match plan n = {}",
            data.len(),
            plan.n
        )));
    }
    // Same integer-exact width check as the single-threaded executor.
    let elem_bytes = plan.config.elem_bytes_usize()?;
    if std::mem::size_of::<T>() != elem_bytes {
        return Err(HetSortError::data(format!(
            "element type is {} bytes but the config models {} — call with_elem_bytes",
            std::mem::size_of::<T>(),
            elem_bytes
        )));
    }
    // Re-validate on every execution path, not only at build time.
    plan.check_invariants()?;
    let nb = plan.nb();
    let input_fp = fingerprint(data);
    let injected_before = plan.config.faults.as_ref().map_or(0, |i| i.injected());
    let t0 = std::time::Instant::now();
    let merge_threads = usize::try_from(plan.config.merge_threads_eff())
        .unwrap_or(usize::MAX)
        .min(4 * hetsort_algos::par::default_threads());
    let device_sort_threads = hetsort_algos::par::default_threads();
    let sched = plan.config.sched_cfg();

    // Per-stream step lists (indices into plan.steps, already in FIFO
    // order because the planner emits them that way).
    let mut per_stream: Vec<Vec<usize>> = vec![Vec::new(); plan.total_streams];
    for (i, step) in plan.steps.iter().enumerate() {
        if let Some(s) = step.stream {
            per_stream[s].push(i);
        }
    }

    let (tx, rx) = mpsc::channel::<(usize, Vec<T>)>();

    let mut sorted_batches: Vec<Option<Vec<T>>> = (0..nb).map(|_| None).collect();
    let mut pair_out: Vec<Option<Vec<T>>> = (0..plan.pairs.len()).map(|_| None).collect();
    let mut b_out: Vec<T> = Vec::new();
    let mut recovery = RecoveryStats::default();
    let mut stream_logs: Vec<Vec<(usize, Vec<Access>)>> = Vec::new();
    let mut metrics = MetricsRegistry::new();
    let mut merge_spans: Vec<ObsSpan> = Vec::new();
    let mut replans: Vec<Plan> = Vec::new();

    std::thread::scope(|scope| -> Result<(), HetSortError> {
        // ---- stream workers ----------------------------------------
        let mut handles = Vec::with_capacity(per_stream.len());
        for (worker_id, steps) in per_stream.iter().enumerate() {
            let tx = tx.clone();
            let plan_ref = plan;
            type WorkerOk = (RecoveryStats, Vec<(usize, Vec<Access>)>, Vec<ObsSpan>);
            handles.push(scope.spawn(move || -> Result<WorkerOk, HetSortError> {
                let mut sx = StreamExec::new(
                    plan_ref,
                    data,
                    worker_id,
                    merge_threads,
                    device_sort_threads,
                    t0,
                );
                // The batch currently being assembled in "W".
                let mut assembling: Option<(usize, Vec<T>)> = None;
                for &si in steps {
                    if let StepKind::StageIn { batch, chunk, .. } = &plan_ref.steps[si].kind {
                        if *chunk == 0 {
                            if let Some(inj) = plan_ref.config.faults.as_deref() {
                                if inj.should_panic(worker_id) {
                                    panic!(
                                        "injected panic in stream worker {worker_id} at batch {batch}"
                                    );
                                }
                            }
                        }
                    }
                    sx.step(si, &mut |batch, _start, chunk| {
                        let (_, buf) = assembling.get_or_insert_with(|| {
                            (batch, Vec::with_capacity(plan_ref.batches[batch].len))
                        });
                        buf.extend_from_slice(chunk);
                        if buf.len() == plan_ref.batches[batch].len {
                            if let Some(done) = assembling.take() {
                                // A dead coordinator just means the run
                                // already failed; don't panic on top.
                                let _ = tx.send(done);
                            }
                        }
                    })?;
                }
                Ok((sx.stats, sx.access_log, sx.span_log))
            }));
        }
        drop(tx);

        // ---- merge coordinator (this thread) ------------------------
        let mut received = 0usize;
        let mut pending_pairs: Vec<usize> = (0..plan.pairs.len()).collect();
        while received < nb {
            // A disconnect means every worker is done (some possibly
            // dead); fall through to the join pass to find out which.
            let Ok((idx, buf)) = rx.recv() else { break };
            sorted_batches[idx] = Some(buf);
            received += 1;
            fire_ready_pairs(
                plan,
                &sched,
                merge_threads,
                &sorted_batches,
                &mut pair_out,
                &mut pending_pairs,
                t0,
                &mut merge_spans,
            );
        }

        // ---- join: propagate typed errors, survive panics -----------
        let mut first_err: Option<HetSortError> = None;
        let mut first_panic: Option<HetSortError> = None;
        let mut newly_lost: Vec<usize> = Vec::new();
        for (worker, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok((stats, log, spans))) => {
                    recovery.retries += stats.retries;
                    recovery.degraded_batches += stats.degraded_batches;
                    recovery.oom_replans += stats.oom_replans;
                    stream_logs.push(log);
                    metrics.record_all(spans);
                }
                Ok(Err(HetSortError::DeviceLost { gpu })) => {
                    // A lost device is recoverable: remember it and
                    // re-plan the missing batches after the join.
                    if !newly_lost.contains(&gpu) {
                        newly_lost.push(gpu);
                    }
                }
                Ok(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_string());
                    if first_panic.is_none() {
                        first_panic = Some(HetSortError::WorkerPanic { worker, message });
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        // ---- device-loss recovery: re-plan missing batches ----------
        // Completed batches in `sorted_batches` are the checkpoint;
        // each round builds a survivor plan and runs a sequential
        // mini-pass over only the still-missing batches. A further loss
        // during recovery shrinks the pool again.
        if !newly_lost.is_empty() {
            let mut lost_gpus: std::collections::BTreeSet<usize> = Default::default();
            let mut cur_owned: Option<Plan> = None;
            while !newly_lost.is_empty() {
                let cur: &Plan = cur_owned.as_ref().unwrap_or(plan);
                recovery.device_lost += newly_lost.len();
                recovery.batches_recomputed += sorted_batches
                    .iter()
                    .enumerate()
                    .filter(|(b, s)| {
                        s.is_none() && newly_lost.contains(&cur.physical_gpu(cur.batches[*b].gpu))
                    })
                    .count();
                lost_gpus.extend(newly_lost.drain(..));
                let missing = sorted_batches.iter().filter(|s| s.is_none()).count();
                let t_fail = t0.elapsed().as_secs_f64();
                match crate::recover::survivor_plan(plan, &lost_gpus)? {
                    None => {
                        let gpu = lost_gpus.iter().next().copied().unwrap_or(0);
                        if !plan.config.recovery.cpu_fallback {
                            return Err(HetSortError::DeviceLost { gpu });
                        }
                        for (b, slot) in sorted_batches.iter_mut().enumerate() {
                            if slot.is_none() {
                                let bi = &plan.batches[b];
                                let mut buf = data[bi.start..bi.start + bi.len].to_vec();
                                par_radix_sort_cfg(&sched, merge_threads, &mut buf);
                                *slot = Some(buf);
                                recovery.degraded_batches += 1;
                            }
                        }
                        metrics.record(ObsSpan::new(
                            OpClass::Other,
                            format!(
                                "failover: GPU {gpu} lost, no survivors → host sort of {missing} batch(es)"
                            ),
                            t_fail,
                            t0.elapsed().as_secs_f64(),
                        ));
                    }
                    Some(rp) => {
                        recovery.replans += 1;
                        metrics.record(ObsSpan::new(
                            OpClass::Other,
                            format!(
                                "failover: re-plan {missing} batch(es) on {} device(s)",
                                rp.device_ids.len()
                            ),
                            t_fail,
                            t0.elapsed().as_secs_f64(),
                        ));
                        let mut sxs: Vec<StreamExec<T>> = (0..rp.total_streams)
                            .map(|s| {
                                StreamExec::new(
                                    &rp,
                                    data,
                                    s,
                                    merge_threads,
                                    device_sort_threads,
                                    t0,
                                )
                            })
                            .collect();
                        let mut partial: Vec<Vec<T>> = vec![Vec::new(); nb];
                        'mini: for (si, step) in rp.steps.iter().enumerate() {
                            if matches!(
                                step.kind,
                                StepKind::PairMerge { .. } | StepKind::MultiwayMerge { .. }
                            ) {
                                continue;
                            }
                            if let Some(bi) = crate::recover::step_batch(&step.kind) {
                                if sorted_batches[bi].is_some() {
                                    continue;
                                }
                            }
                            let Some(s) = step.stream else { continue };
                            let r = sxs[s].step(si, &mut |batch, _start, chunk| {
                                partial[batch].extend_from_slice(chunk);
                            });
                            match r {
                                Ok(()) => {}
                                Err(HetSortError::DeviceLost { gpu }) => {
                                    newly_lost.push(gpu);
                                    break 'mini;
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        for sx in &mut sxs {
                            recovery.retries += sx.stats.retries;
                            recovery.degraded_batches += sx.stats.degraded_batches;
                            recovery.oom_replans += sx.stats.oom_replans;
                            metrics.record_all(std::mem::take(&mut sx.span_log));
                        }
                        for (b, buf) in partial.into_iter().enumerate() {
                            if sorted_batches[b].is_none() && buf.len() == plan.batches[b].len {
                                sorted_batches[b] = Some(buf);
                            }
                        }
                        replans.push(rp.clone());
                        cur_owned = Some(rp);
                    }
                }
            }
            fire_ready_pairs(
                plan,
                &sched,
                merge_threads,
                &sorted_batches,
                &mut pair_out,
                &mut pending_pairs,
                t0,
                &mut merge_spans,
            );
        }

        if let Some(e) = first_panic {
            if !plan.config.recovery.cpu_fallback {
                return Err(e);
            }
            // Graceful degradation: host-sort whatever the dead
            // worker(s) never delivered, straight from A.
            for (b, slot) in sorted_batches.iter_mut().enumerate() {
                if slot.is_none() {
                    let bi = &plan.batches[b];
                    let mut buf = data[bi.start..bi.start + bi.len].to_vec();
                    par_radix_sort_cfg(&sched, merge_threads, &mut buf);
                    *slot = Some(buf);
                    recovery.degraded_batches += 1;
                }
            }
            fire_ready_pairs(
                plan,
                &sched,
                merge_threads,
                &sorted_batches,
                &mut pair_out,
                &mut pending_pairs,
                t0,
                &mut merge_spans,
            );
        }
        if !pending_pairs.is_empty() {
            return Err(HetSortError::MergeStall {
                pending: pending_pairs.len(),
            });
        }

        // ---- final merge --------------------------------------------
        b_out = vec![T::default(); plan.n];
        if nb == 1 {
            let only = sorted_batches[0]
                .as_deref()
                .ok_or_else(|| HetSortError::Plan {
                    reason: "batch 0 was never produced".to_string(),
                })?;
            b_out.copy_from_slice(only);
        } else {
            let inputs = plan
                .steps
                .iter()
                .rev()
                .find_map(|s| match &s.kind {
                    StepKind::MultiwayMerge { inputs } => Some(inputs.clone()),
                    _ => None,
                })
                .ok_or_else(|| HetSortError::Plan {
                    reason: "plan has no final merge".to_string(),
                })?;
            let mut lists: Vec<&[T]> = Vec::with_capacity(inputs.len());
            for (k, inp) in inputs.iter().enumerate() {
                let sl = match *inp {
                    MergeInput::Batch(b) => sorted_batches[b].as_deref(),
                    MergeInput::Pair(p) => pair_out[p].as_deref(),
                }
                .ok_or_else(|| HetSortError::Plan {
                    reason: format!("final merge input {k} was never produced"),
                })?;
                lists.push(sl);
            }
            let m_start = t0.elapsed().as_secs_f64();
            let label = format!("MultiwayMerge k{}", lists.len());
            let stats = par_multiway_merge_into_cfg(&sched, merge_threads, &lists, &mut b_out);
            merge_spans.push(
                ObsSpan::new(
                    OpClass::MultiwayMerge,
                    label.clone(),
                    m_start,
                    t0.elapsed().as_secs_f64(),
                )
                .with_bytes(plan.n as f64 * plan.config.elem_bytes),
            );
            merge_spans.extend(cpu_part_spans(&label, m_start, &stats));
        }
        Ok(())
    })?;

    recovery.faults_injected =
        plan.config.faults.as_ref().map_or(0, |i| i.injected()) - injected_before;
    let trace = plan
        .config
        .record_trace
        .then(|| assemble_trace(plan, &stream_logs));
    metrics.record_all(merge_spans);
    recovery.fold_into(&mut metrics);
    let wall_s = t0.elapsed().as_secs_f64();
    let verified = is_sorted(&b_out) && fingerprint(&b_out) == input_fp;
    Ok(RealOutcome {
        sorted: b_out,
        wall_s,
        verified,
        nb,
        pair_merges: plan.pairs.len(),
        recovery,
        trace,
        metrics,
        replans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HetSortConfig, PairStrategy, RecoveryPolicy};
    use crate::exec_real::sort_real_plan;
    use hetsort_vgpu::{platform1, platform2, FaultInjector};
    use std::sync::Arc;

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    fn check_equivalence(cfg: HetSortConfig, n: usize) {
        let d = data(n, 77);
        let plan = Plan::build(cfg, n).expect("plan");
        let seq = sort_real_plan(&plan, &d).expect("sequential");
        let par = sort_real_parallel(&plan, &d).expect("parallel");
        assert!(seq.verified && par.verified);
        assert_eq!(
            par.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            seq.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(par.nb, seq.nb);
        assert!(!par.recovery.any());
    }

    #[test]
    fn matches_sequential_for_all_approaches() {
        for approach in [
            Approach::BLineMulti,
            Approach::PipeData,
            Approach::PipeMerge,
        ] {
            let cfg = HetSortConfig::paper_defaults(platform1(), approach)
                .with_batch_elems(5_000)
                .with_pinned_elems(1_000);
            check_equivalence(cfg, 42_000);
        }
    }

    #[test]
    fn matches_sequential_on_multi_gpu() {
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(4_000)
            .with_pinned_elems(700);
        check_equivalence(cfg, 37_123);
    }

    #[test]
    fn matches_sequential_for_rejected_strategies() {
        for strategy in [PairStrategy::Online, PairStrategy::MergeTree] {
            let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
                .with_batch_elems(3_000)
                .with_pinned_elems(500)
                .with_pair_strategy(strategy);
            check_equivalence(cfg, 25_000);
        }
    }

    #[test]
    fn single_batch_bline() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLine)
            .with_batch_elems(8_000)
            .with_pinned_elems(1_000);
        check_equivalence(cfg, 8_000);
    }

    #[test]
    fn ragged_sizes() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
            .with_batch_elems(1_234)
            .with_pinned_elems(100);
        check_equivalence(cfg, 9_999);
    }

    #[test]
    fn length_mismatch_rejected() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLineMulti)
            .with_batch_elems(1_000)
            .with_pinned_elems(100);
        let plan = Plan::build(cfg, 5_000).unwrap();
        assert!(matches!(
            sort_real_parallel(&plan, &data(4_000, 1)),
            Err(HetSortError::Data { .. })
        ));
    }

    #[test]
    fn worker_panic_degrades_gracefully() {
        let inj = Arc::new(FaultInjector::new().panic_worker(0, 1));
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeData)
            .with_batch_elems(5_000)
            .with_pinned_elems(1_000)
            .with_faults(inj);
        let n = 42_000;
        let d = data(n, 5);
        let plan = Plan::build(cfg, n).unwrap();
        let out = sort_real_parallel(&plan, &d).unwrap();
        assert!(out.verified, "must recover from a dead worker");
        assert!(out.recovery.degraded_batches >= 1);
        assert_eq!(out.recovery.faults_injected, 1);
    }

    #[test]
    fn worker_panic_without_fallback_is_typed() {
        let inj = Arc::new(FaultInjector::new().panic_worker(0, 1));
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeData)
            .with_batch_elems(5_000)
            .with_pinned_elems(1_000)
            .with_faults(inj)
            .with_recovery(RecoveryPolicy::none());
        let n = 42_000;
        let d = data(n, 5);
        let plan = Plan::build(cfg, n).unwrap();
        let err = sort_real_parallel(&plan, &d).unwrap_err();
        assert!(
            matches!(err, HetSortError::WorkerPanic { worker: 0, .. }),
            "expected WorkerPanic, got {err:?}"
        );
    }
}
