//! Concurrent functional execution: the multi-threaded counterpart of
//! [`crate::exec_real`].
//!
//! The sequential interpreter proves the plan's data path correct; this
//! executor proves its *concurrency structure* correct by actually
//! running it concurrently, the way the paper's implementation does:
//!
//! * one worker thread per stream executes that stream's steps in FIFO
//!   order (staging copies, transfers, device sorts) with stream-local
//!   pinned and device buffers — exactly the per-stream state of the
//!   CUDA implementation;
//! * finished sorted batches flow over a channel to a merge coordinator
//!   that fires each pipelined pair merge the moment both inputs exist
//!   (PIPEMERGE semantics) and finally runs the multiway merge.
//!
//! Batch payloads are owned `Vec`s handed over the channel, so there is
//! no shared mutable state at all — the safe-Rust translation of the
//! paper's `W` buffer (which is only ever written once per region).

use crossbeam::channel;

use hetsort_algos::keys::{RadixKey, SortOrd};
use hetsort_algos::merge::par_merge_into;
use hetsort_algos::multiway::par_multiway_merge_into;
use hetsort_algos::radix_par::par_radix_sort;
use hetsort_algos::verify::{fingerprint, is_sorted};

use crate::exec_real::RealOutcome;
use crate::plan::{MergeInput, MergeSrc, Plan, StepKind};

/// Sort `data` by executing the plan's streams on real OS threads.
///
/// Produces bit-identical output to [`crate::exec_real::sort_real_plan`]
/// (the data path is deterministic; only wall-clock interleaving
/// differs).
///
/// # Errors
///
/// Plan/data mismatches and worker panics as strings.
pub fn sort_real_parallel<T>(plan: &Plan, data: &[T]) -> Result<RealOutcome<T>, String>
where
    T: RadixKey + SortOrd + Default,
{
    if data.len() != plan.n {
        return Err(format!(
            "data length {} does not match plan n = {}",
            data.len(),
            plan.n
        ));
    }
    if std::mem::size_of::<T>() as f64 != plan.config.elem_bytes {
        return Err(format!(
            "element type is {} bytes but the config models {} — call with_elem_bytes",
            std::mem::size_of::<T>(),
            plan.config.elem_bytes
        ));
    }
    let nb = plan.nb();
    let input_fp = fingerprint(data);
    let t0 = std::time::Instant::now();
    let merge_threads = (plan.config.merge_threads_eff() as usize)
        .min(4 * hetsort_algos::par::default_threads());
    let device_sort_threads = hetsort_algos::par::default_threads();

    // Per-stream step lists (indices into plan.steps, already in FIFO
    // order because the planner emits them that way).
    let mut per_stream: Vec<Vec<usize>> = vec![Vec::new(); plan.total_streams];
    for (i, step) in plan.steps.iter().enumerate() {
        if let Some(s) = step.stream {
            per_stream[s].push(i);
        }
    }

    let (tx, rx) = channel::unbounded::<(usize, Vec<T>)>();

    let mut sorted_batches: Vec<Option<Vec<T>>> = (0..nb).map(|_| None).collect();
    let mut pair_out: Vec<Option<Vec<T>>> =
        (0..plan.pairs.len()).map(|_| None).collect();
    let mut b_out: Vec<T> = Vec::new();

    std::thread::scope(|scope| -> Result<(), String> {
        // ---- stream workers ----------------------------------------
        for steps in per_stream.iter() {
            let tx = tx.clone();
            let plan_ref = plan;
            scope.spawn(move || {
                let ps = plan_ref.config.pinned_elems;
                let mut pinned_in: Vec<T> = Vec::new();
                let mut pinned_out: Vec<T> = Vec::new();
                let mut device: Vec<T> = Vec::new();
                // The batch currently being assembled in "W".
                let mut assembling: Option<(usize, Vec<T>)> = None;
                for &si in steps {
                    match &plan_ref.steps[si].kind {
                        StepKind::PinnedAlloc { dir_in, .. } => {
                            if *dir_in {
                                pinned_in.resize(ps, T::default());
                            } else {
                                pinned_out.resize(ps, T::default());
                            }
                            // Blocking plans reuse one buffer both ways.
                            if pinned_out.is_empty() && !plan_ref.asynchronous {
                                pinned_out.resize(ps, T::default());
                            }
                        }
                        StepKind::StageIn { start, len, .. } => {
                            pinned_in[..*len].copy_from_slice(&data[*start..*start + *len]);
                        }
                        StepKind::HtoD {
                            batch, start, len, ..
                        } => {
                            let b = &plan_ref.batches[*batch];
                            if device.len() < b.len {
                                device.resize(b.len, T::default());
                            }
                            let off = *start - b.start;
                            device[off..off + *len].copy_from_slice(&pinned_in[..*len]);
                        }
                        StepKind::GpuSort { batch } => {
                            let b = &plan_ref.batches[*batch];
                            match plan_ref.config.device_sort {
                                crate::config::DeviceSortKind::ThrustRadix => {
                                    par_radix_sort(device_sort_threads, &mut device[..b.len])
                                }
                                crate::config::DeviceSortKind::BitonicInPlace => {
                                    hetsort_algos::bitonic::par_bitonic_sort(
                                        device_sort_threads,
                                        &mut device[..b.len],
                                    )
                                }
                            }
                        }
                        StepKind::DtoH {
                            batch, start, len, ..
                        } => {
                            let b = &plan_ref.batches[*batch];
                            let off = *start - b.start;
                            pinned_out[..*len].copy_from_slice(&device[off..off + *len]);
                        }
                        StepKind::StageOut { batch, len, .. } => {
                            let b = &plan_ref.batches[*batch];
                            let (_, buf) = assembling
                                .get_or_insert_with(|| (*batch, Vec::with_capacity(b.len)));
                            buf.extend_from_slice(&pinned_out[..*len]);
                            if buf.len() == b.len {
                                let (idx, done) = assembling.take().expect("assembling");
                                tx.send((idx, done)).expect("coordinator alive");
                            }
                        }
                        // Merges never carry a stream.
                        StepKind::PairMerge { .. } | StepKind::MultiwayMerge { .. } => {
                            unreachable!("merge steps are not stream-bound")
                        }
                    }
                }
            });
        }
        drop(tx);

        // ---- merge coordinator (this thread) ------------------------
        let mut received = 0usize;
        let src_ready = |src: MergeSrc,
                         batches: &Vec<Option<Vec<T>>>,
                         pairs: &Vec<Option<Vec<T>>>| match src {
            MergeSrc::Batch(b) => batches[b].is_some(),
            MergeSrc::Merged(p) => pairs[p].is_some(),
        };
        let mut pending_pairs: Vec<usize> = (0..plan.pairs.len()).collect();
        while received < nb {
            let (idx, buf) = rx.recv().map_err(|e| format!("worker hangup: {e}"))?;
            sorted_batches[idx] = Some(buf);
            received += 1;
            // Fire every pair merge whose inputs just became ready
            // (loop: an Online/MergeTree merge may unlock the next).
            loop {
                let Some(pos) = pending_pairs.iter().position(|&slot| {
                    src_ready(plan.pairs[slot].left, &sorted_batches, &pair_out)
                        && src_ready(plan.pairs[slot].right, &sorted_batches, &pair_out)
                }) else {
                    break;
                };
                let slot = pending_pairs.remove(pos);
                let spec = plan.pairs[slot];
                let resolve = |src: MergeSrc| -> &[T] {
                    match src {
                        MergeSrc::Batch(b) => sorted_batches[b].as_deref().expect("ready"),
                        MergeSrc::Merged(p) => pair_out[p].as_deref().expect("ready"),
                    }
                };
                let mut out = vec![T::default(); spec.out_elems];
                par_merge_into(merge_threads, resolve(spec.left), resolve(spec.right), &mut out);
                pair_out[slot] = Some(out);
            }
        }
        if !pending_pairs.is_empty() {
            return Err(format!(
                "{} pair merges never became ready",
                pending_pairs.len()
            ));
        }

        // ---- final merge --------------------------------------------
        b_out = vec![T::default(); plan.n];
        if nb == 1 {
            b_out.copy_from_slice(sorted_batches[0].as_deref().expect("batch 0"));
        } else {
            let inputs = plan
                .steps
                .iter()
                .rev()
                .find_map(|s| match &s.kind {
                    StepKind::MultiwayMerge { inputs } => Some(inputs.clone()),
                    _ => None,
                })
                .ok_or("plan has no final merge")?;
            let lists: Vec<&[T]> = inputs
                .iter()
                .map(|inp| match *inp {
                    MergeInput::Batch(b) => sorted_batches[b].as_deref().expect("batch"),
                    MergeInput::Pair(p) => pair_out[p].as_deref().expect("pair"),
                })
                .collect();
            par_multiway_merge_into(merge_threads, &lists, &mut b_out);
        }
        Ok(())
    })?;

    let wall_s = t0.elapsed().as_secs_f64();
    let verified = is_sorted(&b_out) && fingerprint(&b_out) == input_fp;
    Ok(RealOutcome {
        sorted: b_out,
        wall_s,
        verified,
        nb,
        pair_merges: plan.pairs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HetSortConfig, PairStrategy};
    use crate::exec_real::sort_real_plan;
    use hetsort_vgpu::{platform1, platform2};

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    fn check_equivalence(cfg: HetSortConfig, n: usize) {
        let d = data(n, 77);
        let plan = Plan::build(cfg, n).expect("plan");
        let seq = sort_real_plan(&plan, &d).expect("sequential");
        let par = sort_real_parallel(&plan, &d).expect("parallel");
        assert!(seq.verified && par.verified);
        assert_eq!(
            par.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            seq.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(par.nb, seq.nb);
    }

    #[test]
    fn matches_sequential_for_all_approaches() {
        for approach in [Approach::BLineMulti, Approach::PipeData, Approach::PipeMerge] {
            let cfg = HetSortConfig::paper_defaults(platform1(), approach)
                .with_batch_elems(5_000)
                .with_pinned_elems(1_000);
            check_equivalence(cfg, 42_000);
        }
    }

    #[test]
    fn matches_sequential_on_multi_gpu() {
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(4_000)
            .with_pinned_elems(700);
        check_equivalence(cfg, 37_123);
    }

    #[test]
    fn matches_sequential_for_rejected_strategies() {
        for strategy in [PairStrategy::Online, PairStrategy::MergeTree] {
            let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
                .with_batch_elems(3_000)
                .with_pinned_elems(500)
                .with_pair_strategy(strategy);
            check_equivalence(cfg, 25_000);
        }
    }

    #[test]
    fn single_batch_bline() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLine)
            .with_batch_elems(8_000)
            .with_pinned_elems(1_000);
        check_equivalence(cfg, 8_000);
    }

    #[test]
    fn ragged_sizes() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
            .with_batch_elems(1_234)
            .with_pinned_elems(100);
        check_equivalence(cfg, 9_999);
    }

    #[test]
    fn length_mismatch_rejected() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLineMulti)
            .with_batch_elems(1_000)
            .with_pinned_elems(100);
        let plan = Plan::build(cfg, 5_000).unwrap();
        assert!(sort_real_parallel(&plan, &data(4_000, 1)).is_err());
    }
}
