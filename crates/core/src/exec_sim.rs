//! Simulated execution: lower a [`PlanDag`] onto the calibrated
//! [`Machine`] and time it at paper scale.
//!
//! Like the functional executors, the simulator runs off the DAG IR:
//! [`simulate_plan`] lowers the plan through [`PlanDag::from_plan`]
//! (validating it on the way) and [`simulate_dag`] maps each typed op
//! onto the corresponding machine primitive. Dependency edges become
//! op-start constraints, so the simulated timeline is exactly the
//! plan's dependency structure under the platform's calibrated costs.

use hetsort_sim::OpId;
use hetsort_vgpu::{Machine, TransferDir};

use crate::dag::{DagOp, PlanDag};
use crate::error::HetSortError;
use crate::plan::Plan;
use crate::report::TimingReport;

/// Build the plan for `(config, n)` and simulate it.
///
/// # Errors
///
/// [`HetSortError::Config`]/[`HetSortError::Plan`] for invalid inputs,
/// [`HetSortError::GpuOom`] when the plan's resident buffers overflow
/// device memory, [`HetSortError::Sim`] when the engine fails.
pub fn simulate(
    config: crate::config::HetSortConfig,
    n: usize,
) -> Result<TimingReport, HetSortError> {
    let plan = Plan::build(config, n)?;
    simulate_plan(&plan)
}

/// Simulate an already-built plan (lowered through the DAG IR).
///
/// # Errors
///
/// [`HetSortError::GpuOom`] and [`HetSortError::Sim`] as above.
pub fn simulate_plan(plan: &Plan) -> Result<TimingReport, HetSortError> {
    simulate_dag(&PlanDag::from_plan(plan.clone()))
}

/// Simulate a validated op dag on the configured platform.
///
/// # Errors
///
/// [`HetSortError::Plan`] when the dag fails validation,
/// [`HetSortError::GpuOom`] and [`HetSortError::Sim`] as above.
pub fn simulate_dag(dag: &PlanDag) -> Result<TimingReport, HetSortError> {
    let plan = &dag.plan;
    // Re-validate on every execution path, not only at build time.
    plan.check_invariants()?;
    dag.validate()?;
    let cfg = &plan.config;
    let mut m = Machine::new(cfg.platform.clone());

    // Device memory bookkeeping: each stream keeps one batch buffer of
    // 2·b_s elements resident (data + Thrust's out-of-place scratch,
    // §III-B) on its GPU for the whole run.
    let mut per_gpu_streams = vec![0usize; cfg.platform.n_gpus()];
    for s in 0..plan.total_streams {
        let gpu = plan
            .batches
            .iter()
            .find(|b| b.stream == s)
            .map(|b| b.gpu)
            .unwrap_or(s % cfg.platform.n_gpus().max(1));
        per_gpu_streams[gpu] += 1;
        m.device_alloc(
            gpu,
            cfg.device_sort.mem_factor() * cfg.elem_bytes * cfg.batch_elems as f64,
        )?;
    }

    let db = cfg.double_buffered();
    let elided = plan.stage_out_elided();

    // Streams and display lanes.
    let queues: Vec<_> = (0..plan.total_streams)
        .map(|s| m.stream(format!("s{s}")))
        .collect();
    // Double-buffered staging gives each stream a second, host-side
    // queue: staging copies still serialize among themselves, but they
    // overlap the device queue's DMA — the point of the two pinned
    // halves. The dependency edges (StageIn c needs HtoD c−2's half
    // back) bound the overlap to one chunk.
    let host_queues: Vec<_> = if db {
        (0..plan.total_streams)
            .map(|s| m.stream(format!("s{s}.host")))
            .collect()
    } else {
        queues.clone()
    };
    let stream_lanes: Vec<_> = (0..plan.total_streams)
        .map(|s| m.lane(format!("S{s}")))
        .collect();
    // Label lanes with physical device numbers so a recovery re-plan's
    // Gantt rows name the same hardware as the original run.
    let gpu_lanes: Vec<_> = (0..cfg.platform.n_gpus())
        .map(|g| m.lane(format!("GPU{}", plan.physical_gpu(g))))
        .collect();
    let cpu_lane = m.lane("CPU");

    let memcpy_threads = cfg.memcpy_threads_eff();
    let merge_threads = cfg.merge_threads_eff();
    let pair_merge_threads = cfg.pair_merge_threads_eff();
    let mut op_ids: Vec<OpId> = Vec::with_capacity(dag.nodes.len());
    let mut n_async_transfers = 0usize;
    let mut n_sorts = 0usize;

    // Break stream lockstep: host worker threads never start in perfect
    // phase; stagger each stream's first op by the platform skew so the
    // pipeline settles into Figure 2's interleave instead of the
    // worst-case phase-aligned collision pattern.
    let skew = cfg.platform.cpu.stream_skew_s;
    let skews: Vec<OpId> = (0..plan.total_streams)
        .map(|s| m.barrier(skew * s as f64, &[]))
        .collect();
    let mut stream_started = vec![false; plan.total_streams];

    for node in &dag.nodes {
        let mut deps: Vec<OpId> = node.deps.iter().map(|&d| op_ids[d]).collect();
        if let Some(s) = node.stream {
            if !stream_started[s] {
                stream_started[s] = true;
                deps.push(skews[s]);
            }
        }
        let queue = node.stream.map(|s| queues[s]);
        let lane = node.stream.map(|s| stream_lanes[s]);
        let id = match &node.op {
            DagOp::PinnedAlloc { bytes, .. } => m.pinned_alloc(*bytes, &deps, lane),
            DagOp::StagingCopy {
                batch, len, dir_in, ..
            } => {
                if elided && !*dir_in {
                    // Elided stage-out: the DtoH below paged straight
                    // into W/B, so the marker keeps the dag shape (and
                    // its ordering edges) at zero cost.
                    m.barrier(0.0, &deps)
                } else {
                    m.host_memcpy(
                        *dir_in,
                        cfg.elem_bytes * *len as f64,
                        memcpy_threads,
                        node.stream.map(|s| host_queues[s]),
                        &deps,
                        lane,
                        *batch as u64,
                    )
                }
            }
            DagOp::HtoD { batch, len, .. } => {
                // Double-buffered blocking plans issue chunked
                // cudaMemcpyAsync + event sync like the piped ones do,
                // so they pay the same per-chunk sync latency.
                let asynchronous = plan.asynchronous || db;
                if asynchronous {
                    n_async_transfers += 1;
                }
                let gpu = plan.batches[*batch].gpu;
                m.transfer(
                    TransferDir::HtoD,
                    gpu,
                    cfg.elem_bytes * *len as f64,
                    true,
                    asynchronous,
                    queue,
                    &deps,
                    lane,
                    *batch as u64,
                )
            }
            DagOp::Sort { batch } => {
                n_sorts += 1;
                let b = &plan.batches[*batch];
                // Device radix sort is memory-bandwidth-bound: key/value
                // records move twice the bytes of bare keys, so work
                // scales with the element size (CUB's pairs sort shows
                // the same ratio). Alternative device sorts scale by
                // their throughput factor (bitonic ≈ 5× slower).
                m.gpu_sort(
                    b.gpu,
                    b.len as f64 * cfg.elem_bytes / 8.0 / cfg.device_sort.throughput_factor(),
                    queue,
                    &deps,
                    Some(gpu_lanes[b.gpu]),
                    *batch as u64,
                )
            }
            DagOp::DtoH { batch, len, .. } => {
                let gpu = plan.batches[*batch].gpu;
                if elided {
                    // Elided stage-out: a blocking pageable cudaMemcpy
                    // straight into W/B — slower per byte than pinned
                    // DMA, but it replaces pinned DtoH *plus* the
                    // outbound staging memcpy.
                    m.transfer(
                        TransferDir::DtoH,
                        gpu,
                        cfg.elem_bytes * *len as f64,
                        false,
                        false,
                        queue,
                        &deps,
                        lane,
                        *batch as u64,
                    )
                } else {
                    if plan.asynchronous {
                        n_async_transfers += 1;
                    }
                    m.transfer(
                        TransferDir::DtoH,
                        gpu,
                        cfg.elem_bytes * *len as f64,
                        true,
                        plan.asynchronous,
                        queue,
                        &deps,
                        lane,
                        *batch as u64,
                    )
                }
            }
            DagOp::PairMerge { slot } => {
                let spec = &plan.pairs[*slot];
                // The paper's heuristic deliberately leaves cores for
                // the staging pipeline; the rejected strategies are
                // given every core (favorable to them — they lose on
                // schedule structure, not thread starvation).
                let threads =
                    if plan.config.pair_strategy == crate::config::PairStrategy::PaperHeuristic {
                        pair_merge_threads
                    } else {
                        merge_threads
                    };
                m.pair_merge(spec.out_elems as f64, threads, &deps, Some(cpu_lane))
            }
            DagOp::CpuMerge { slot } => {
                // Pinned to the host merge resource: always the full
                // merge thread pool, never the paper heuristic's
                // reserved-core split. Tagged CpuMerge so hybrid runs
                // account CPU-routed merges on their own line.
                let spec = &plan.pairs[*slot];
                m.cpu_merge(spec.out_elems as f64, merge_threads, &deps, Some(cpu_lane))
            }
            DagOp::MultiwayMerge { inputs } => m.multiway_merge(
                plan.n as f64,
                inputs.len(),
                merge_threads,
                &deps,
                Some(cpu_lane),
            ),
        };
        op_ids.push(id);
    }

    let sync_s = n_async_transfers as f64 * cfg.platform.pcie.chunk_sync_s;
    let launch_s: f64 = n_sorts as f64
        * cfg
            .platform
            .gpus
            .first()
            .map(|g| g.kernel_launch_s)
            .unwrap_or(0.0);

    let tl = m.run().map_err(|e| HetSortError::Sim {
        reason: e.to_string(),
    })?;
    Ok(TimingReport::from_timeline(
        cfg.approach.name(),
        &cfg.platform.name,
        plan.n,
        plan.nb(),
        sync_s,
        launch_s,
        tl,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HetSortConfig};
    use hetsort_vgpu::{platform1, platform2, tags};

    fn p1(approach: Approach) -> HetSortConfig {
        HetSortConfig::paper_defaults(platform1(), approach)
    }

    #[test]
    fn bline_paper_staging_matches_hand_computation() {
        // n = 8e8 on PLATFORM1 (Figure 7/8 point), with the paper's
        // single-buffer staging pinned: serial pipeline of alloc +
        // MCpyIn + HtoD + sort + DtoH + MCpyOut.
        use crate::config::StagingMode;
        let cfg = p1(Approach::BLine).with_staging(StagingMode::Paper);
        let n = 800_000_000usize;
        let r = simulate(cfg, n).unwrap();
        let gib = 8.0 * n as f64;
        let expect = 0.01                    // pinned alloc (ps = 1e6)
            + gib / 6.5e9                    // stage in @ 6.5 GB/s/core
            + gib / 12e9                     // HtoD @ 12 GB/s
            + n as f64 / 1.9e9 + 50e-6       // sort + one kernel launch
            + gib / 12e9                     // DtoH
            + gib / 6.5e9; // stage out
        assert!(
            (r.total_s - expect).abs() < 0.02,
            "total={} expect={expect}",
            r.total_s
        );
        // Figure 7 cross-check: HtoD ≈ 0.536 s, DtoH ≈ 0.484 s in the
        // paper; our symmetric model gives 0.533 s each.
        assert!((r.component(tags::HTOD).expect("HtoD ran") - 0.533).abs() < 0.01);
        assert!((r.component(tags::DTOH).expect("DtoH ran") - 0.533).abs() < 0.01);
        // Literature total = HtoD + Sort + DtoH ≈ 0.533+0.421+0.533.
        assert!(
            (r.literature_total_s - 1.487).abs() < 0.02,
            "{}",
            r.literature_total_s
        );
        // Missing overhead ≈ 2 staging copies + alloc ≈ 1.61 s.
        assert!(r.missing_overhead_s() > 1.5, "{}", r.missing_overhead_s());
    }

    #[test]
    fn bline_total_matches_hand_computation() {
        // Same point under the default double-buffered staging: the
        // inbound bounce hides the HtoD DMA (only the last chunk's DMA
        // pokes out), the outbound bounce is elided entirely, and the
        // DtoH pages straight into B at pageable bandwidth.
        let cfg = p1(Approach::BLine);
        let n = 800_000_000usize;
        let ps_bytes = 8.0 * 1_000_000.0;
        let r = simulate(cfg, n).unwrap();
        let gib = 8.0 * n as f64;
        let alloc = 0.0073 + 3.43e-10 * 2.0 * ps_bytes; // both halves
        let chunk_htod = ps_bytes / 12e9 + 0.4e-3; // DMA + chunk sync
        let expect = alloc
            + gib / 6.5e9                    // stage in @ 6.5 GB/s/core
            + chunk_htod                     // last chunk's DMA tail
            + n as f64 / 1.9e9 + 50e-6       // sort + one kernel launch
            + gib / 6e9; // pageable DtoH straight into B
        assert!(
            (r.total_s - expect).abs() < 0.02,
            "total={} expect={expect}",
            r.total_s
        );
        // StagingCopy is inbound-only now: the outbound markers cost
        // nothing and the component halves vs the paper protocol.
        let staging = r.component(tags::MCPY_IN).expect("stage in ran")
            + r.component(tags::MCPY_OUT).unwrap_or(0.0);
        assert!(
            (staging - gib / 6.5e9).abs() < 0.02,
            "staging={staging} expect inbound-only {}",
            gib / 6.5e9
        );
        // And the end-to-end beats the paper-staging run outright.
        use crate::config::StagingMode;
        let paper = simulate(p1(Approach::BLine).with_staging(StagingMode::Paper), n).unwrap();
        assert!(
            r.total_s < paper.total_s - 0.5,
            "double-buffered {} !< paper {}",
            r.total_s,
            paper.total_s
        );
    }

    #[test]
    fn pipedata_beats_blinemulti() {
        let n = 2_000_000_000usize;
        let bl = simulate(p1(Approach::BLineMulti), n).unwrap();
        let pd = simulate(p1(Approach::PipeData), n).unwrap();
        assert!(
            pd.total_s < bl.total_s,
            "PipeData {} !< BLineMulti {}",
            pd.total_s,
            bl.total_s
        );
    }

    #[test]
    fn pipemerge_not_slower_than_pipedata() {
        let n = 5_000_000_000usize;
        let pd = simulate(p1(Approach::PipeData), n).unwrap();
        let pm = simulate(p1(Approach::PipeMerge), n).unwrap();
        assert!(
            pm.total_s <= pd.total_s * 1.02,
            "PipeMerge {} vs PipeData {}",
            pm.total_s,
            pd.total_s
        );
    }

    #[test]
    fn parmemcpy_improves_piped_runs() {
        let n = 5_000_000_000usize;
        let pm = simulate(p1(Approach::PipeMerge), n).unwrap();
        let pmc = simulate(p1(Approach::PipeMerge).with_par_memcpy(), n).unwrap();
        assert!(
            pmc.total_s < pm.total_s,
            "ParMemCpy {} !< {}",
            pmc.total_s,
            pm.total_s
        );
    }

    #[test]
    fn two_gpus_beat_one_gpu() {
        let n = 2_800_000_000usize;
        let cfg2 = HetSortConfig::paper_defaults(platform2(), Approach::PipeData)
            .with_batch_elems(350_000_000);
        let r2 = simulate(cfg2, n).unwrap();
        // Single-GPU platform2: strip one GPU.
        let mut plat1g = platform2();
        plat1g.gpus.truncate(1);
        let cfg1 =
            HetSortConfig::paper_defaults(plat1g, Approach::PipeData).with_batch_elems(350_000_000);
        let r1 = simulate(cfg1, n).unwrap();
        assert!(
            r2.total_s < r1.total_s,
            "2 GPUs {} !< 1 GPU {}",
            r2.total_s,
            r1.total_s
        );
    }

    #[test]
    fn deterministic() {
        let n = 1_000_000_000usize;
        let a = simulate(p1(Approach::PipeMerge), n).unwrap();
        let b = simulate(p1(Approach::PipeMerge), n).unwrap();
        assert_eq!(a.total_s, b.total_s);
    }

    #[test]
    fn hybrid_plans_surface_cpu_merge_component() {
        use crate::config::HybridMode;
        let n = 5_000_000_000usize;
        let base = simulate(p1(Approach::PipeMerge), n).unwrap();
        assert_eq!(base.component(tags::CPU_MERGE), None, "no hybrid, no line");
        let hy = simulate(
            p1(Approach::PipeMerge).with_hybrid(HybridMode::Fraction(0.5)),
            n,
        )
        .unwrap();
        assert!(
            hy.component(tags::CPU_MERGE).expect("cpu merges ran") > 0.0,
            "hybrid run accounts CPU-routed merges separately"
        );
    }

    #[test]
    fn bitonic_trade_off_in_sim() {
        use crate::config::DeviceSortKind;
        // In-place bitonic: twice the batch fits (1e9 elements in
        // 16 GiB with 2 streams at 8 B/elem), fewer merge inputs —
        // but the slower sort dominates and radix still wins overall
        // (why Thrust's radix is the paper's choice).
        let n = 4_000_000_000usize;
        let radix = simulate(p1(Approach::PipeMerge).with_batch_elems(500_000_000), n).unwrap();
        let bitonic_cfg = p1(Approach::PipeMerge)
            .with_device_sort(DeviceSortKind::BitonicInPlace)
            .with_batch_elems(1_000_000_000);
        let bitonic = simulate(bitonic_cfg, n).unwrap();
        assert!(bitonic.nb < radix.nb, "bigger batches → fewer batches");
        assert!(
            bitonic.component(tags::GPU_SORT).expect("sort ran")
                > radix.component(tags::GPU_SORT).expect("sort ran"),
            "bitonic sorts slower"
        );
        assert!(
            bitonic.total_s > radix.total_s,
            "radix should win end-to-end: {} vs {}",
            radix.total_s,
            bitonic.total_s
        );
        // And the radix config must NOT fit 1e9-element batches (the
        // out-of-place scratch is the whole reason batches are small).
        assert!(simulate(p1(Approach::PipeMerge).with_batch_elems(1_000_000_000), n).is_err());
    }

    #[test]
    fn oversized_batches_rejected() {
        let cfg = p1(Approach::PipeData).with_batch_elems(2_000_000_000);
        assert!(simulate(cfg, 4_000_000_000).is_err());
    }
}
