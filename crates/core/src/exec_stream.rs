//! The per-stream step interpreter shared by both functional executors.
//!
//! [`crate::exec_real`] drives one [`StreamExec`] per stream from a
//! single thread; [`crate::exec_real_mt`] gives each worker thread its
//! own. Either way, the stream-bound steps (staging copies, transfers,
//! device sorts) run through this interpreter, which owns the stream's
//! pinned and device buffers and implements the whole failure model:
//!
//! * every device-buffer growth, HtoD, DtoH, and device sort consults
//!   the configured [`FaultInjector`] (if any);
//! * transient transfer faults are retried up to
//!   [`RecoveryPolicy::max_retries`] times with a backoff — each retry
//!   consults the injector again, so a schedule that faults occurrence
//!   `k` but not `k+1` models a fault one retry clears;
//! * GPU OOM halves the effective device buffer (`b_s/2` for the
//!   affected remainder) and sorts the batch in device-sized sub-runs
//!   merged host-side ([`Mode::Split`] — the GPU still does the
//!   sorting);
//! * unrecoverable batches (exhausted retries, failed device sort,
//!   OOM with splitting disabled) degrade to a host-side sort of the
//!   batch straight from `A` ([`Mode::CpuFallback`]) when the policy
//!   allows, and otherwise propagate as typed [`HetSortError`]s naming
//!   the exact step and batch.
//!
//! Batches handled host-side bypass the DMA path, so later transfer
//! occurrences shift relative to a fault-free run; schedules are
//! defined over *attempted* operations, which keeps replay
//! deterministic for a given schedule and policy.

use std::time::Instant;

use hetsort_algos::keys::{RadixKey, SortOrd};
use hetsort_algos::multiway::par_multiway_merge_into_cfg;
use hetsort_algos::par::{par_copy, SchedCfg};
use hetsort_algos::radix_par::par_radix_sort_cfg;
use hetsort_obs::{ObsSpan, OpClass};
use hetsort_sim::{Access, Buffer};
use hetsort_vgpu::{FaultInjector, FaultSite, TransferDir};

use crate::config::{DeviceSortKind, RecoveryPolicy};
use crate::error::HetSortError;
use crate::optrace::{
    pinned_in_id, pinned_out_id, region_host_batch, REGION_A, REGION_B, REGION_W,
};
use crate::plan::{BatchInfo, Plan, StepKind};
use crate::pool::BufferPool;
use crate::report::RecoveryStats;

/// How the current batch is being processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Normal GPU path: the whole batch fits the device buffer.
    Device,
    /// OOM recovery: the batch is staged host-side and sorted in
    /// device-sized sub-runs the CPU merges.
    Split,
    /// Graceful degradation: the batch is sorted host-side from `A`.
    CpuFallback,
}

/// One stream's executor state: buffers, fault handling, recovery.
pub(crate) struct StreamExec<'a, T> {
    plan: &'a Plan,
    data: &'a [T],
    injector: Option<&'a FaultInjector>,
    policy: RecoveryPolicy,
    host_threads: usize,
    device_sort_threads: usize,
    /// Host↔pinned staging copy workers (PARMEMCPY), host-capped.
    memcpy_threads: usize,
    /// CPU scheduling policy for merges, sorts, and staging copies.
    sched: SchedCfg,
    /// This interpreter's stream index (buffer identity in traces).
    stream: usize,
    pinned_in: Vec<T>,
    pinned_out: Vec<T>,
    device: Vec<T>,
    /// Effective device buffer capacity in elements; halved on OOM
    /// (`usize::MAX` until the first OOM).
    device_cap: usize,
    mode: Mode,
    /// Staging for Split/CpuFallback batches (holds the whole batch).
    host_batch: Vec<T>,
    /// Recycled scratch buffers (Split-mode merge outputs), so repeated
    /// recoveries stop zero-initializing a fresh batch-sized vector.
    pub(crate) pool: BufferPool<T>,
    /// Per-stream recovery counters (merged by the caller).
    pub(crate) stats: RecoveryStats,
    /// When `config.record_trace` is set: the buffer accesses each step
    /// actually performed, `(step index, accesses)` — the raw material
    /// of [`crate::optrace::trace_with_accesses`].
    pub(crate) access_log: Vec<(usize, Vec<Access>)>,
    /// Run origin shared by every stream of the run, so span timestamps
    /// from different worker threads are directly comparable.
    t0: Instant,
    /// One observability span per executed step (always on: host-scale
    /// steps cost milliseconds, a span record costs nanoseconds).
    pub(crate) span_log: Vec<ObsSpan>,
}

impl<'a, T> StreamExec<'a, T>
where
    T: RadixKey + SortOrd + Default,
{
    /// Fresh state for stream `stream` of `plan` over `data`. `t0` is
    /// the run origin every stream of the run shares.
    pub(crate) fn new(
        plan: &'a Plan,
        data: &'a [T],
        stream: usize,
        host_threads: usize,
        device_sort_threads: usize,
        t0: Instant,
    ) -> Self {
        let memcpy_threads = usize::try_from(plan.config.memcpy_threads_eff())
            .unwrap_or(usize::MAX)
            .min(4 * hetsort_algos::par::default_threads());
        StreamExec {
            plan,
            data,
            injector: plan.config.faults.as_deref(),
            policy: plan.config.recovery,
            host_threads,
            device_sort_threads,
            memcpy_threads,
            sched: plan.config.sched_cfg(),
            stream,
            pinned_in: Vec::new(),
            pinned_out: Vec::new(),
            device: Vec::new(),
            device_cap: usize::MAX,
            mode: Mode::Device,
            host_batch: Vec::new(),
            pool: BufferPool::new(),
            stats: RecoveryStats::default(),
            access_log: Vec::new(),
            t0,
            span_log: Vec::new(),
        }
    }

    /// Which half of the inbound staging buffer chunk `chunk` lands in:
    /// double-buffered plans alternate halves per chunk so the stage-in
    /// of chunk `c+1` can overlap the HtoD DMA of chunk `c`.
    fn in_half(&self, chunk: usize) -> usize {
        if self.plan.config.double_buffered() {
            chunk % 2
        } else {
            0
        }
    }

    fn pin_in_buf(&self, half: usize) -> Buffer {
        Buffer::Pinned {
            id: pinned_in_id(self.stream, half),
        }
    }

    fn pin_out_buf(&self) -> Buffer {
        Buffer::Pinned {
            id: pinned_out_id(self.plan.asynchronous, self.stream),
        }
    }

    fn dev_buf(&self, b: &BatchInfo) -> Buffer {
        Buffer::Dev {
            gpu: b.gpu,
            id: self.stream,
        }
    }

    fn host_batch_buf(&self, start: usize, len: usize) -> Buffer {
        Buffer::Host {
            region: region_host_batch(self.stream),
            start,
            len,
        }
    }

    /// Record one device operation against the batch's physical GPU.
    ///
    /// A [`HetSortError::DeviceLost`] here is *not* absorbed by the
    /// CPU-fallback policy: losing a device invalidates every batch
    /// scheduled on it, so the error must reach the executor, which
    /// re-plans the unfinished work on the survivors.
    fn device_check(&self, b: &BatchInfo) -> Result<(), HetSortError> {
        if let Some(inj) = self.injector {
            inj.device_op(self.plan.physical_gpu(b.gpu))?;
        }
        Ok(())
    }

    /// Attempt a DMA operation at `site`: consult the injector, retrying
    /// per policy. `Err(attempts)` when every attempt faulted.
    fn dma(&mut self, site: FaultSite) -> Result<(), usize> {
        let Some(inj) = self.injector else {
            return Ok(());
        };
        let mut attempts = 1usize;
        while inj.trip(site).is_some() {
            if attempts > self.policy.max_retries {
                return Err(attempts);
            }
            if self.policy.backoff_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(self.policy.backoff_ms));
            }
            self.stats.retries += 1;
            attempts += 1;
        }
        Ok(())
    }

    /// Switch the current batch to host-side sorting.
    fn degrade(&mut self) {
        self.mode = Mode::CpuFallback;
        self.stats.degraded_batches += 1;
    }

    /// Switch the current batch to sub-run splitting (`want` elements).
    fn enter_split(&mut self, want: usize) {
        self.mode = Mode::Split;
        self.stats.oom_replans += 1;
        let cap = self.device_cap.min(want).max(1);
        if self.device.len() < cap {
            self.device.resize(cap, T::default());
        }
        self.host_batch.resize(want, T::default());
    }

    /// Start a new batch: decide its mode and (maybe) grow the device
    /// buffer — the `cudaMalloc` stand-in, and the OOM fault site.
    fn begin_batch(&mut self, b: &BatchInfo) -> Result<(), HetSortError> {
        self.mode = Mode::Device;
        self.host_batch.clear();
        let want = b.len;
        if want > self.device_cap {
            // A previous OOM shrank this stream's buffer: the remainder
            // of the run keeps the halved batch capacity.
            self.enter_split(want);
            return Ok(());
        }
        if self.device.len() >= want {
            return Ok(());
        }
        let tripped = self
            .injector
            .is_some_and(|i| i.trip(FaultSite::DeviceAlloc).is_some());
        if !tripped {
            self.device.resize(want, T::default());
            return Ok(());
        }
        if self.policy.split_on_oom {
            self.device_cap = (want / 2).max(1);
            self.enter_split(want);
            Ok(())
        } else if self.policy.cpu_fallback {
            self.degrade();
            Ok(())
        } else {
            let cfg = &self.plan.config;
            let per_elem = cfg.device_sort.mem_factor() * cfg.elem_bytes;
            let used = per_elem * self.device.len() as f64;
            Err(HetSortError::GpuOom {
                gpu: self.plan.physical_gpu(b.gpu),
                batch: Some(b.index),
                requested_bytes: per_elem * want as f64,
                free_bytes: (cfg.platform.gpus[b.gpu].global_mem_bytes - used).max(0.0),
            })
        }
    }

    /// Sort a device-resident slice with the configured device sort.
    fn device_sort(kind: DeviceSortKind, sched: &SchedCfg, threads: usize, buf: &mut [T]) {
        match kind {
            DeviceSortKind::ThrustRadix => par_radix_sort_cfg(sched, threads, buf),
            DeviceSortKind::BitonicInPlace => {
                hetsort_algos::bitonic::par_bitonic_sort(threads, buf)
            }
        }
    }

    /// Execute one stream-bound step. `emit` receives every completed
    /// `StageOut` chunk as `(batch, global_start, chunk_data)`.
    ///
    /// # Errors
    ///
    /// Typed faults the policy does not recover from.
    pub(crate) fn step(
        &mut self,
        si: usize,
        emit: &mut impl FnMut(usize, usize, &[T]),
    ) -> Result<(), HetSortError> {
        let ps = self.plan.config.pinned_elems;
        let span_start = self.t0.elapsed().as_secs_f64();
        // Accesses this step actually performs — which differ from the
        // static lowering once recovery reroutes a batch host-side.
        let mut acc: Vec<Access> = Vec::new();
        match &self.plan.steps[si].kind {
            StepKind::PinnedAlloc { dir_in, .. } => {
                let elided = self.plan.stage_out_elided();
                if *dir_in {
                    // Double-buffered plans carve both halves out of
                    // one allocation (`staging_halves() == 2`).
                    self.pinned_in
                        .resize(self.plan.staging_halves() * ps, T::default());
                } else if !elided {
                    self.pinned_out.resize(ps, T::default());
                }
                // Blocking plans reuse one buffer both ways — unless
                // the stage-out is elided, in which case there is no
                // outbound staging buffer at all.
                if self.pinned_out.is_empty() && !self.plan.asynchronous && !elided {
                    self.pinned_out.resize(ps, T::default());
                }
            }
            StepKind::StageIn {
                start, len, chunk, ..
            } => {
                // Host→pinned staging memcpy: the PARMEMCPY knob makes
                // this copy parallel (self-scheduled chunks).
                let half = self.in_half(*chunk);
                let o = half * ps;
                par_copy(
                    self.memcpy_threads,
                    &self.data[*start..*start + *len],
                    &mut self.pinned_in[o..o + *len],
                );
                acc.push(Access::read(Buffer::Host {
                    region: REGION_A,
                    start: *start,
                    len: *len,
                }));
                acc.push(Access::write(self.pin_in_buf(half)));
            }
            StepKind::HtoD {
                batch,
                chunk,
                start,
                len,
            } => {
                let b = self.plan.batches[*batch];
                if *chunk == 0 {
                    // The cudaMalloc stand-in is a device operation.
                    self.device_check(&b)?;
                    self.begin_batch(&b)?;
                }
                if self.mode != Mode::CpuFallback {
                    self.device_check(&b)?;
                    match self.dma(FaultSite::HtoD) {
                        Ok(()) => {
                            let off = *start - b.start;
                            let half = self.in_half(*chunk);
                            let o = half * ps;
                            acc.push(Access::read(self.pin_in_buf(half)));
                            if self.mode == Mode::Device {
                                acc.push(Access::write(self.dev_buf(&b)));
                            } else {
                                acc.push(Access::write(self.host_batch_buf(off, *len)));
                            }
                            let dst = if self.mode == Mode::Device {
                                &mut self.device
                            } else {
                                &mut self.host_batch
                            };
                            dst[off..off + *len].copy_from_slice(&self.pinned_in[o..o + *len]);
                        }
                        Err(attempts) => {
                            if self.policy.cpu_fallback {
                                self.degrade();
                            } else {
                                return Err(HetSortError::TransferFault {
                                    step: si,
                                    batch: b.index,
                                    dir: TransferDir::HtoD,
                                    attempts,
                                });
                            }
                        }
                    }
                }
            }
            StepKind::GpuSort { batch } => {
                let b = self.plan.batches[*batch];
                if self.mode != Mode::CpuFallback {
                    self.device_check(&b)?;
                    let tripped = self
                        .injector
                        .is_some_and(|i| i.trip(FaultSite::DeviceSort).is_some());
                    if tripped {
                        if self.policy.cpu_fallback {
                            self.degrade();
                        } else {
                            return Err(HetSortError::DeviceSortFault {
                                step: si,
                                batch: b.index,
                                gpu: self.plan.physical_gpu(b.gpu),
                            });
                        }
                    }
                }
                match self.mode {
                    Mode::Device => {
                        Self::device_sort(
                            self.plan.config.device_sort,
                            &self.sched,
                            self.device_sort_threads,
                            &mut self.device[..b.len],
                        );
                        let d = self.dev_buf(&b);
                        acc.push(Access::read(d));
                        acc.push(Access::write(d));
                    }
                    Mode::Split => {
                        // GPU sorts device-sized sub-runs; the CPU
                        // merges them — the halved-b_s re-plan.
                        let cap = self.device_cap.min(b.len).max(1);
                        let kind = self.plan.config.device_sort;
                        let dev_threads = self.device_sort_threads;
                        let sched = self.sched;
                        let StreamExec {
                            host_batch, device, ..
                        } = self;
                        for run in host_batch.chunks_mut(cap) {
                            device[..run.len()].copy_from_slice(run);
                            Self::device_sort(kind, &sched, dev_threads, &mut device[..run.len()]);
                            run.copy_from_slice(&device[..run.len()]);
                        }
                        if b.len > cap {
                            // Pooled merge output: repeated Split-mode
                            // batches recycle one allocation instead of
                            // zero-initializing a fresh batch-sized
                            // vector per merge.
                            let mut merged = self.pool.checkout(b.len);
                            let runs: Vec<&[T]> = self.host_batch.chunks(cap).collect();
                            par_multiway_merge_into_cfg(
                                &self.sched,
                                self.host_threads,
                                &runs,
                                &mut merged,
                            );
                            drop(runs);
                            let old = std::mem::replace(&mut self.host_batch, merged);
                            self.pool.checkin(old);
                        }
                        let d = self.dev_buf(&b);
                        let hb = self.host_batch_buf(0, b.len);
                        acc.extend([
                            Access::read(hb),
                            Access::write(hb),
                            Access::read(d),
                            Access::write(d),
                        ]);
                    }
                    Mode::CpuFallback => {
                        // Host-side sort straight from A: correct even
                        // when earlier chunks never reached the device.
                        self.host_batch.clear();
                        self.host_batch
                            .extend_from_slice(&self.data[b.start..b.start + b.len]);
                        par_radix_sort_cfg(&self.sched, self.host_threads, &mut self.host_batch);
                        acc.push(Access::read(Buffer::Host {
                            region: REGION_A,
                            start: b.start,
                            len: b.len,
                        }));
                        acc.push(Access::write(self.host_batch_buf(0, b.len)));
                    }
                }
            }
            StepKind::DtoH {
                batch, start, len, ..
            } => {
                let b = self.plan.batches[*batch];
                let off = *start - b.start;
                let elided = self.plan.stage_out_elided();
                if self.mode == Mode::Device {
                    self.device_check(&b)?;
                    match self.dma(FaultSite::DtoH) {
                        Ok(()) => {
                            if elided {
                                // Elided stage-out: the chunk stays
                                // device-resident; the StageOut marker
                                // pages it straight into W/B.
                                acc.push(Access::read(self.dev_buf(&b)));
                            } else {
                                self.pinned_out[..*len]
                                    .copy_from_slice(&self.device[off..off + *len]);
                                acc.push(Access::read(self.dev_buf(&b)));
                                acc.push(Access::write(self.pin_out_buf()));
                            }
                        }
                        Err(attempts) => {
                            if self.policy.cpu_fallback {
                                // The sorted batch is still device-
                                // resident: fall back to a pageable-
                                // style host copy of the whole batch,
                                // reusing the staging buffer's capacity
                                // instead of cloning a fresh vector.
                                self.host_batch.clear();
                                self.host_batch.extend_from_slice(&self.device[..b.len]);
                                self.degrade();
                                acc.push(Access::read(self.dev_buf(&b)));
                                acc.push(Access::write(self.host_batch_buf(0, b.len)));
                                if !elided {
                                    self.pinned_out[..*len]
                                        .copy_from_slice(&self.host_batch[off..off + *len]);
                                    acc.push(Access::write(self.pin_out_buf()));
                                }
                            } else {
                                return Err(HetSortError::TransferFault {
                                    step: si,
                                    batch: b.index,
                                    dir: TransferDir::DtoH,
                                    attempts,
                                });
                            }
                        }
                    }
                } else if !elided {
                    self.pinned_out[..*len].copy_from_slice(&self.host_batch[off..off + *len]);
                    acc.push(Access::read(self.host_batch_buf(off, *len)));
                    acc.push(Access::write(self.pin_out_buf()));
                }
            }
            StepKind::StageOut {
                batch, start, len, ..
            } => {
                let region = if self.plan.nb() > 1 {
                    REGION_W
                } else {
                    REGION_B
                };
                if self.plan.stage_out_elided() {
                    // The outbound bounce was elided: emit straight from
                    // the source the batch actually lives in.
                    let b = self.plan.batches[*batch];
                    let off = *start - b.start;
                    if self.mode == Mode::Device {
                        emit(*batch, *start, &self.device[off..off + *len]);
                        acc.push(Access::read(self.dev_buf(&b)));
                    } else {
                        emit(*batch, *start, &self.host_batch[off..off + *len]);
                        acc.push(Access::read(self.host_batch_buf(off, *len)));
                    }
                } else {
                    emit(*batch, *start, &self.pinned_out[..*len]);
                    acc.push(Access::read(self.pin_out_buf()));
                }
                acc.push(Access::write(Buffer::Host {
                    region,
                    start: *start,
                    len: *len,
                }));
            }
            StepKind::PairMerge { .. } | StepKind::MultiwayMerge { .. } => {
                return Err(HetSortError::Plan {
                    reason: format!("step {si}: merge steps are not stream-bound"),
                });
            }
        }
        // Log even empty lists: a CpuFallback HtoD performs no accesses,
        // and that fact must override the static derivation.
        if self.plan.config.record_trace {
            self.access_log.push((si, acc));
        }
        let elem_bytes = self.plan.config.elem_bytes;
        let (class, batch, bytes) = match &self.plan.steps[si].kind {
            StepKind::PinnedAlloc { .. } => (OpClass::PinnedAlloc, None, ps as f64 * elem_bytes),
            StepKind::StageIn { batch, len, .. } | StepKind::StageOut { batch, len, .. } => {
                (OpClass::StagingCopy, Some(*batch), *len as f64 * elem_bytes)
            }
            StepKind::HtoD { batch, len, .. } => {
                (OpClass::HtoD, Some(*batch), *len as f64 * elem_bytes)
            }
            StepKind::GpuSort { batch } => (
                OpClass::GpuSort,
                Some(*batch),
                self.plan.batches[*batch].len as f64 * elem_bytes,
            ),
            StepKind::DtoH { batch, len, .. } => {
                (OpClass::DtoH, Some(*batch), *len as f64 * elem_bytes)
            }
            // Merge steps errored out above.
            StepKind::PairMerge { .. } | StepKind::MultiwayMerge { .. } => {
                (OpClass::Other, None, 0.0)
            }
        };
        let mut span = ObsSpan::new(
            class,
            match batch {
                Some(b) => format!("{} b{b}.s{}", class.name(), self.stream),
                None => format!("{} s{}", class.name(), self.stream),
            },
            span_start,
            self.t0.elapsed().as_secs_f64(),
        )
        .on_stream(self.stream)
        .with_bytes(bytes);
        if let Some(b) = batch {
            span = span.for_batch(b as u64);
            span.gpu = Some(self.plan.physical_gpu(self.plan.batches[b].gpu));
        }
        self.span_log.push(span);
        Ok(())
    }
}
