//! Legacy per-approach executor loops, kept verbatim for ONE PR behind
//! the `legacy-exec` feature as the differential baseline for the DAG
//! engine ([`crate::dag::exec`]).
//!
//! `tests/dag_differential.rs` runs every approach × platform × ragged
//! geometry × element width through both paths and asserts bitwise
//! identical outputs, identical [`RecoveryStats`], and identical span
//! multisets. Once that suite has shipped green, this module is dead
//! code scheduled for deletion — do not grow it, do not call it from
//! non-test code.

use std::sync::mpsc;

use hetsort_algos::keys::{RadixKey, SortOrd};
use hetsort_algos::merge::par_merge_into_cfg;
use hetsort_algos::multiway::par_multiway_merge_into_cfg;
use hetsort_algos::par::par_copy;
use hetsort_algos::radix_par::par_radix_sort_cfg;
use hetsort_algos::verify::{fingerprint, is_sorted};
use hetsort_obs::{MetricsRegistry, ObsSpan, OpClass};
use hetsort_sim::Access;

use crate::dag::exec::fire_ready_pairs;
use crate::error::HetSortError;
use crate::exec_real::{assemble_trace, cpu_part_spans, RealOutcome};
use crate::exec_stream::StreamExec;
use crate::plan::{MergeInput, Plan, StepKind};
use crate::report::RecoveryStats;

/// The pre-DAG sequential interpreter: submission-order step loop with
/// deferred merges. Byte-for-byte the old `sort_real_plan`.
///
/// # Errors
///
/// As [`crate::exec_real::sort_real_plan`].
pub fn sort_real_plan_legacy<T>(plan: &Plan, data: &[T]) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    if data.len() != plan.n {
        return Err(HetSortError::Data {
            reason: format!(
                "data length {} does not match plan n = {}",
                data.len(),
                plan.n
            ),
        });
    }
    let elem_bytes = plan.config.elem_bytes_usize()?;
    if std::mem::size_of::<T>() != elem_bytes {
        return Err(HetSortError::Data {
            reason: format!(
                "element type is {} bytes but the config models {} — call with_elem_bytes",
                std::mem::size_of::<T>(),
                elem_bytes
            ),
        });
    }
    plan.check_invariants()?;
    let cfg = &plan.config;
    let n = plan.n;
    let nb = plan.nb();
    let input_fp = fingerprint(data);
    let injected_before = cfg.faults.as_ref().map_or(0, |i| i.injected());
    let t0 = std::time::Instant::now();

    let mut w = vec![T::default(); if nb > 1 { n } else { 0 }];
    let mut b_out = vec![T::default(); n];
    let mut pair_out: Vec<Vec<T>> = (0..plan.pairs.len()).map(|_| Vec::new()).collect();
    let merge_threads = usize::try_from(cfg.merge_threads_eff()).unwrap_or(usize::MAX);
    let host_threads = merge_threads.min(4 * hetsort_algos::par::default_threads());
    let device_sort_threads = hetsort_algos::par::default_threads();
    let memcpy_threads = usize::try_from(cfg.memcpy_threads_eff())
        .unwrap_or(usize::MAX)
        .min(4 * hetsort_algos::par::default_threads());
    let sched = cfg.sched_cfg();

    let mut recovery = RecoveryStats::default();
    let mut metrics = MetricsRegistry::new();
    let mut replans: Vec<Plan> = Vec::new();
    let mut lost_gpus: std::collections::BTreeSet<usize> = Default::default();
    let mut emitted: Vec<usize> = vec![0usize; nb];
    let mut final_logs: Vec<Vec<(usize, Vec<Access>)>> = Vec::new();
    let mut cur_owned: Option<Plan> = None;
    loop {
        let cur: &Plan = cur_owned.as_ref().unwrap_or(plan);
        let mut streams: Vec<StreamExec<T>> = (0..cur.total_streams)
            .map(|s| StreamExec::new(cur, data, s, host_threads, device_sort_threads, t0))
            .collect();
        let mut lost: Option<usize> = None;
        let mut skipped_log: Vec<(usize, Vec<Access>)> = Vec::new();
        for (si, step) in cur.steps.iter().enumerate() {
            if matches!(
                step.kind,
                StepKind::PairMerge { .. } | StepKind::MultiwayMerge { .. }
            ) {
                continue;
            }
            if let Some(bi) = crate::recover::step_batch(&step.kind) {
                if emitted[bi] >= cur.batches[bi].len {
                    if cur.config.record_trace {
                        skipped_log.push((si, Vec::new()));
                    }
                    continue;
                }
            }
            let s = step.stream.ok_or_else(|| HetSortError::Plan {
                reason: format!("step {si} has no stream"),
            })?;
            let dst = if nb > 1 { &mut w } else { &mut b_out };
            let r = streams[s].step(si, &mut |batch, start, chunk| {
                par_copy(memcpy_threads, chunk, &mut dst[start..start + chunk.len()]);
                emitted[batch] += chunk.len();
            });
            match r {
                Ok(()) => {}
                Err(HetSortError::DeviceLost { gpu }) => {
                    lost = Some(gpu);
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        for sx in &mut streams {
            recovery.retries += sx.stats.retries;
            recovery.degraded_batches += sx.stats.degraded_batches;
            recovery.oom_replans += sx.stats.oom_replans;
            metrics.record_all(std::mem::take(&mut sx.span_log));
        }
        if cur.config.record_trace {
            final_logs = streams.iter().map(|sx| sx.access_log.clone()).collect();
            final_logs.push(skipped_log);
        }
        let Some(gpu) = lost else { break };

        recovery.device_lost += 1;
        lost_gpus.insert(gpu);
        let unfinished: Vec<usize> = (0..nb)
            .filter(|&b| emitted[b] < plan.batches[b].len)
            .collect();
        recovery.batches_recomputed += unfinished
            .iter()
            .filter(|&&b| cur.physical_gpu(cur.batches[b].gpu) == gpu)
            .count();
        for &b in &unfinished {
            emitted[b] = 0;
        }
        let t_fail = t0.elapsed().as_secs_f64();
        match crate::recover::survivor_plan(plan, &lost_gpus)? {
            Some(rp) => {
                recovery.replans += 1;
                metrics.record(ObsSpan::new(
                    OpClass::Other,
                    format!(
                        "failover: GPU {gpu} lost → re-plan {} batch(es) on {} device(s)",
                        unfinished.len(),
                        rp.device_ids.len()
                    ),
                    t_fail,
                    t0.elapsed().as_secs_f64(),
                ));
                replans.push(rp.clone());
                cur_owned = Some(rp);
            }
            None => {
                if !cfg.recovery.cpu_fallback {
                    return Err(HetSortError::DeviceLost { gpu });
                }
                for &b in &unfinished {
                    let bi = plan.batches[b];
                    let dst = if nb > 1 { &mut w } else { &mut b_out };
                    let seg = &mut dst[bi.start..bi.start + bi.len];
                    par_copy(memcpy_threads, &data[bi.start..bi.start + bi.len], seg);
                    hetsort_algos::radix_par::par_radix_sort_cfg(&sched, host_threads, seg);
                    emitted[b] = bi.len;
                    recovery.degraded_batches += 1;
                }
                metrics.record(ObsSpan::new(
                    OpClass::Other,
                    format!(
                        "failover: GPU {gpu} lost, no survivors → host sort of {} batch(es)",
                        unfinished.len()
                    ),
                    t_fail,
                    t0.elapsed().as_secs_f64(),
                ));
                break;
            }
        }
    }
    debug_assert!(
        (0..nb).all(|b| emitted[b] == plan.batches[b].len),
        "every batch must be staged out before merging"
    );

    let mut pair_merges_done = 0usize;
    let mut merge_spans: Vec<ObsSpan> = Vec::new();
    for step in plan.steps.iter() {
        match &step.kind {
            StepKind::PairMerge { slot } => {
                let spec = plan.pairs[*slot];
                let resolve = |src: crate::plan::MergeSrc| -> &[T] {
                    match src {
                        crate::plan::MergeSrc::Batch(b) => {
                            let bi = &plan.batches[b];
                            &w[bi.start..bi.start + bi.len]
                        }
                        crate::plan::MergeSrc::Merged(p) => pair_out[p].as_slice(),
                    }
                };
                let mut out = vec![T::default(); spec.out_elems];
                let m_start = t0.elapsed().as_secs_f64();
                let label = format!("PairMerge p{slot}");
                let stats = par_merge_into_cfg(
                    &sched,
                    host_threads,
                    resolve(spec.left),
                    resolve(spec.right),
                    &mut out,
                );
                merge_spans.push(
                    ObsSpan::new(
                        OpClass::PairMerge,
                        label.clone(),
                        m_start,
                        t0.elapsed().as_secs_f64(),
                    )
                    .with_bytes(spec.out_elems as f64 * cfg.elem_bytes),
                );
                merge_spans.extend(cpu_part_spans(&label, m_start, &stats));
                pair_out[*slot] = out;
                pair_merges_done += 1;
            }
            StepKind::MultiwayMerge { inputs } => {
                let lists: Vec<&[T]> = inputs
                    .iter()
                    .map(|inp| match *inp {
                        MergeInput::Batch(b) => {
                            let bi = &plan.batches[b];
                            &w[bi.start..bi.start + bi.len]
                        }
                        MergeInput::Pair(p) => pair_out[p].as_slice(),
                    })
                    .collect();
                let m_start = t0.elapsed().as_secs_f64();
                let label = format!("MultiwayMerge k{}", lists.len());
                let stats = par_multiway_merge_into_cfg(&sched, host_threads, &lists, &mut b_out);
                merge_spans.push(
                    ObsSpan::new(
                        OpClass::MultiwayMerge,
                        label.clone(),
                        m_start,
                        t0.elapsed().as_secs_f64(),
                    )
                    .with_bytes(plan.n as f64 * cfg.elem_bytes),
                );
                merge_spans.extend(cpu_part_spans(&label, m_start, &stats));
            }
            _ => {}
        }
    }

    recovery.faults_injected = cfg.faults.as_ref().map_or(0, |i| i.injected()) - injected_before;

    let trace = cfg.record_trace.then(|| {
        let trace_plan = replans.last().unwrap_or(plan);
        assemble_trace(trace_plan, &final_logs)
    });

    metrics.record_all(merge_spans);
    recovery.fold_into(&mut metrics);

    let wall_s = t0.elapsed().as_secs_f64();
    let verified = is_sorted(&b_out) && fingerprint(&b_out) == input_fp;
    Ok(RealOutcome {
        sorted: b_out,
        wall_s,
        verified,
        nb,
        pair_merges: pair_merges_done,
        recovery,
        trace,
        metrics,
        replans,
    })
}

/// The pre-DAG thread-per-stream executor. Byte-for-byte the old
/// `sort_real_parallel`.
///
/// # Errors
///
/// As [`crate::exec_real_mt::sort_real_parallel`].
pub fn sort_real_parallel_legacy<T>(plan: &Plan, data: &[T]) -> Result<RealOutcome<T>, HetSortError>
where
    T: RadixKey + SortOrd + Default,
{
    if data.len() != plan.n {
        return Err(HetSortError::Data {
            reason: format!(
                "data length {} does not match plan n = {}",
                data.len(),
                plan.n
            ),
        });
    }
    let elem_bytes = plan.config.elem_bytes_usize()?;
    if std::mem::size_of::<T>() != elem_bytes {
        return Err(HetSortError::Data {
            reason: format!(
                "element type is {} bytes but the config models {} — call with_elem_bytes",
                std::mem::size_of::<T>(),
                elem_bytes
            ),
        });
    }
    plan.check_invariants()?;
    let nb = plan.nb();
    let input_fp = fingerprint(data);
    let injected_before = plan.config.faults.as_ref().map_or(0, |i| i.injected());
    let t0 = std::time::Instant::now();
    let merge_threads = usize::try_from(plan.config.merge_threads_eff())
        .unwrap_or(usize::MAX)
        .min(4 * hetsort_algos::par::default_threads());
    let device_sort_threads = hetsort_algos::par::default_threads();
    let sched = plan.config.sched_cfg();

    let mut per_stream: Vec<Vec<usize>> = vec![Vec::new(); plan.total_streams];
    for (i, step) in plan.steps.iter().enumerate() {
        if let Some(s) = step.stream {
            per_stream[s].push(i);
        }
    }

    let (tx, rx) = mpsc::channel::<(usize, Vec<T>)>();

    let mut sorted_batches: Vec<Option<Vec<T>>> = (0..nb).map(|_| None).collect();
    let mut pair_out: Vec<Option<Vec<T>>> = (0..plan.pairs.len()).map(|_| None).collect();
    let mut b_out: Vec<T> = Vec::new();
    let mut recovery = RecoveryStats::default();
    let mut stream_logs: Vec<Vec<(usize, Vec<Access>)>> = Vec::new();
    let mut metrics = MetricsRegistry::new();
    let mut merge_spans: Vec<ObsSpan> = Vec::new();
    let mut replans: Vec<Plan> = Vec::new();

    std::thread::scope(|scope| -> Result<(), HetSortError> {
        let mut handles = Vec::with_capacity(per_stream.len());
        for (worker_id, steps) in per_stream.iter().enumerate() {
            let tx = tx.clone();
            let plan_ref = plan;
            type WorkerOk = (RecoveryStats, Vec<(usize, Vec<Access>)>, Vec<ObsSpan>);
            handles.push(scope.spawn(move || -> Result<WorkerOk, HetSortError> {
                let mut sx = StreamExec::new(
                    plan_ref,
                    data,
                    worker_id,
                    merge_threads,
                    device_sort_threads,
                    t0,
                );
                let mut assembling: Option<(usize, Vec<T>)> = None;
                for &si in steps {
                    if let StepKind::StageIn { batch, chunk, .. } = &plan_ref.steps[si].kind {
                        if *chunk == 0 {
                            if let Some(inj) = plan_ref.config.faults.as_deref() {
                                if inj.should_panic(worker_id) {
                                    panic!(
                                        "injected panic in stream worker {worker_id} at batch {batch}"
                                    );
                                }
                            }
                        }
                    }
                    sx.step(si, &mut |batch, _start, chunk| {
                        let (_, buf) = assembling.get_or_insert_with(|| {
                            (batch, Vec::with_capacity(plan_ref.batches[batch].len))
                        });
                        buf.extend_from_slice(chunk);
                        if buf.len() == plan_ref.batches[batch].len {
                            if let Some(done) = assembling.take() {
                                let _ = tx.send(done);
                            }
                        }
                    })?;
                }
                Ok((sx.stats, sx.access_log, sx.span_log))
            }));
        }
        drop(tx);

        let mut received = 0usize;
        let mut pending_pairs: Vec<usize> = (0..plan.pairs.len()).collect();
        while received < nb {
            let Ok((idx, buf)) = rx.recv() else { break };
            sorted_batches[idx] = Some(buf);
            received += 1;
            fire_ready_pairs(
                plan,
                &sched,
                merge_threads,
                &sorted_batches,
                &mut pair_out,
                &mut pending_pairs,
                t0,
                &mut merge_spans,
            );
        }

        let mut first_err: Option<HetSortError> = None;
        let mut first_panic: Option<HetSortError> = None;
        let mut newly_lost: Vec<usize> = Vec::new();
        for (worker, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok((stats, log, spans))) => {
                    recovery.retries += stats.retries;
                    recovery.degraded_batches += stats.degraded_batches;
                    recovery.oom_replans += stats.oom_replans;
                    stream_logs.push(log);
                    metrics.record_all(spans);
                }
                Ok(Err(HetSortError::DeviceLost { gpu })) => {
                    if !newly_lost.contains(&gpu) {
                        newly_lost.push(gpu);
                    }
                }
                Ok(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_string());
                    if first_panic.is_none() {
                        first_panic = Some(HetSortError::WorkerPanic { worker, message });
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        if !newly_lost.is_empty() {
            let mut lost_gpus: std::collections::BTreeSet<usize> = Default::default();
            let mut cur_owned: Option<Plan> = None;
            while !newly_lost.is_empty() {
                let cur: &Plan = cur_owned.as_ref().unwrap_or(plan);
                recovery.device_lost += newly_lost.len();
                recovery.batches_recomputed += sorted_batches
                    .iter()
                    .enumerate()
                    .filter(|(b, s)| {
                        s.is_none() && newly_lost.contains(&cur.physical_gpu(cur.batches[*b].gpu))
                    })
                    .count();
                lost_gpus.extend(newly_lost.drain(..));
                let missing = sorted_batches.iter().filter(|s| s.is_none()).count();
                let t_fail = t0.elapsed().as_secs_f64();
                match crate::recover::survivor_plan(plan, &lost_gpus)? {
                    None => {
                        let gpu = lost_gpus.iter().next().copied().unwrap_or(0);
                        if !plan.config.recovery.cpu_fallback {
                            return Err(HetSortError::DeviceLost { gpu });
                        }
                        for (b, slot) in sorted_batches.iter_mut().enumerate() {
                            if slot.is_none() {
                                let bi = &plan.batches[b];
                                let mut buf = data[bi.start..bi.start + bi.len].to_vec();
                                par_radix_sort_cfg(&sched, merge_threads, &mut buf);
                                *slot = Some(buf);
                                recovery.degraded_batches += 1;
                            }
                        }
                        metrics.record(ObsSpan::new(
                            OpClass::Other,
                            format!(
                                "failover: GPU {gpu} lost, no survivors → host sort of {missing} batch(es)"
                            ),
                            t_fail,
                            t0.elapsed().as_secs_f64(),
                        ));
                    }
                    Some(rp) => {
                        recovery.replans += 1;
                        metrics.record(ObsSpan::new(
                            OpClass::Other,
                            format!(
                                "failover: re-plan {missing} batch(es) on {} device(s)",
                                rp.device_ids.len()
                            ),
                            t_fail,
                            t0.elapsed().as_secs_f64(),
                        ));
                        let mut sxs: Vec<StreamExec<T>> = (0..rp.total_streams)
                            .map(|s| {
                                StreamExec::new(
                                    &rp,
                                    data,
                                    s,
                                    merge_threads,
                                    device_sort_threads,
                                    t0,
                                )
                            })
                            .collect();
                        let mut partial: Vec<Vec<T>> = vec![Vec::new(); nb];
                        'mini: for (si, step) in rp.steps.iter().enumerate() {
                            if matches!(
                                step.kind,
                                StepKind::PairMerge { .. } | StepKind::MultiwayMerge { .. }
                            ) {
                                continue;
                            }
                            if let Some(bi) = crate::recover::step_batch(&step.kind) {
                                if sorted_batches[bi].is_some() {
                                    continue;
                                }
                            }
                            let Some(s) = step.stream else { continue };
                            let r = sxs[s].step(si, &mut |batch, _start, chunk| {
                                partial[batch].extend_from_slice(chunk);
                            });
                            match r {
                                Ok(()) => {}
                                Err(HetSortError::DeviceLost { gpu }) => {
                                    newly_lost.push(gpu);
                                    break 'mini;
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        for sx in &mut sxs {
                            recovery.retries += sx.stats.retries;
                            recovery.degraded_batches += sx.stats.degraded_batches;
                            recovery.oom_replans += sx.stats.oom_replans;
                            metrics.record_all(std::mem::take(&mut sx.span_log));
                        }
                        for (b, buf) in partial.into_iter().enumerate() {
                            if sorted_batches[b].is_none() && buf.len() == plan.batches[b].len {
                                sorted_batches[b] = Some(buf);
                            }
                        }
                        replans.push(rp.clone());
                        cur_owned = Some(rp);
                    }
                }
            }
            fire_ready_pairs(
                plan,
                &sched,
                merge_threads,
                &sorted_batches,
                &mut pair_out,
                &mut pending_pairs,
                t0,
                &mut merge_spans,
            );
        }

        if let Some(e) = first_panic {
            if !plan.config.recovery.cpu_fallback {
                return Err(e);
            }
            for (b, slot) in sorted_batches.iter_mut().enumerate() {
                if slot.is_none() {
                    let bi = &plan.batches[b];
                    let mut buf = data[bi.start..bi.start + bi.len].to_vec();
                    par_radix_sort_cfg(&sched, merge_threads, &mut buf);
                    *slot = Some(buf);
                    recovery.degraded_batches += 1;
                }
            }
            fire_ready_pairs(
                plan,
                &sched,
                merge_threads,
                &sorted_batches,
                &mut pair_out,
                &mut pending_pairs,
                t0,
                &mut merge_spans,
            );
        }
        if !pending_pairs.is_empty() {
            return Err(HetSortError::MergeStall {
                pending: pending_pairs.len(),
            });
        }

        b_out = vec![T::default(); plan.n];
        if nb == 1 {
            let only = sorted_batches[0]
                .as_deref()
                .ok_or_else(|| HetSortError::Plan {
                    reason: "batch 0 was never produced".to_string(),
                })?;
            b_out.copy_from_slice(only);
        } else {
            let inputs = plan
                .steps
                .iter()
                .rev()
                .find_map(|s| match &s.kind {
                    StepKind::MultiwayMerge { inputs } => Some(inputs.clone()),
                    _ => None,
                })
                .ok_or_else(|| HetSortError::Plan {
                    reason: "plan has no final merge".to_string(),
                })?;
            let mut lists: Vec<&[T]> = Vec::with_capacity(inputs.len());
            for (k, inp) in inputs.iter().enumerate() {
                let sl = match *inp {
                    MergeInput::Batch(b) => sorted_batches[b].as_deref(),
                    MergeInput::Pair(p) => pair_out[p].as_deref(),
                }
                .ok_or_else(|| HetSortError::Plan {
                    reason: format!("final merge input {k} was never produced"),
                })?;
                lists.push(sl);
            }
            let m_start = t0.elapsed().as_secs_f64();
            let label = format!("MultiwayMerge k{}", lists.len());
            let stats = par_multiway_merge_into_cfg(&sched, merge_threads, &lists, &mut b_out);
            merge_spans.push(
                ObsSpan::new(
                    OpClass::MultiwayMerge,
                    label.clone(),
                    m_start,
                    t0.elapsed().as_secs_f64(),
                )
                .with_bytes(plan.n as f64 * plan.config.elem_bytes),
            );
            merge_spans.extend(cpu_part_spans(&label, m_start, &stats));
        }
        Ok(())
    })?;

    recovery.faults_injected =
        plan.config.faults.as_ref().map_or(0, |i| i.injected()) - injected_before;
    let trace = plan
        .config
        .record_trace
        .then(|| assemble_trace(plan, &stream_logs));
    metrics.record_all(merge_spans);
    recovery.fold_into(&mut metrics);
    let wall_s = t0.elapsed().as_secs_f64();
    let verified = is_sorted(&b_out) && fingerprint(&b_out) == input_fp;
    Ok(RealOutcome {
        sorted: b_out,
        wall_s,
        verified,
        nb,
        pair_merges: plan.pairs.len(),
        recovery,
        trace,
        metrics,
        replans,
    })
}
