//! # hetsort-core — heterogeneous CPU/GPU sorting
//!
//! The paper's contribution (Gowanlock & Karsin, IPPS 2018): sort an
//! input larger than GPU global memory by sorting batches on the GPU
//! and merging on the CPU, with a family of pipeline optimizations:
//!
//! | Approach | §III-D | What it adds |
//! |---|---|---|
//! | [`Approach::BLine`] | baseline | single batch, blocking copies, default stream |
//! | [`Approach::BLineMulti`] | §III-D1 | multiple batches + final multiway merge |
//! | [`Approach::PipeData`] | §III-D2 | streams + pinned staging overlap HtoD/DtoH |
//! | [`Approach::PipeMerge`] | §III-D3 | pair-wise merges pipelined under GPU sorting |
//! | `par_memcpy` flag | PARMEMCPY | parallel staging copies (host-side bottleneck) |
//!
//! A [`plan::Plan`] is the static step DAG of one configured run. Two
//! executors interpret the *same* plan:
//!
//! * [`exec_sim`] lowers it onto the calibrated [`hetsort_vgpu::Machine`]
//!   and returns a [`report::TimingReport`] (paper-scale timing);
//! * [`exec_real`] executes it on actual `f64` data — staging copies,
//!   device-resident radix sorts, pair and multiway merges — and
//!   verifies the output (laptop-scale functional truth).
//!
//! This split is the substitution strategy for the missing GPU: pipeline
//! *semantics* are executed for real, pipeline *durations* come from the
//! calibrated simulator. See `DESIGN.md`.

pub mod accounting;
pub mod config;
pub mod exec_real;
pub mod exec_real_mt;
pub mod exec_sim;
pub mod plan;
pub mod reference;
pub mod report;

pub use config::{Approach, DeviceSortKind, HetSortConfig, PairStrategy};
pub use exec_real::{sort_real, RealOutcome};
pub use exec_real_mt::sort_real_parallel;
pub use exec_sim::simulate;
pub use plan::Plan;
pub use report::TimingReport;
