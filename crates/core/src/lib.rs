//! # hetsort-core — heterogeneous CPU/GPU sorting
//!
//! The paper's contribution (Gowanlock & Karsin, IPPS 2018): sort an
//! input larger than GPU global memory by sorting batches on the GPU
//! and merging on the CPU, with a family of pipeline optimizations:
//!
//! | Approach | §III-D | What it adds |
//! |---|---|---|
//! | [`Approach::BLine`] | baseline | single batch, blocking copies, default stream |
//! | [`Approach::BLineMulti`] | §III-D1 | multiple batches + final multiway merge |
//! | [`Approach::PipeData`] | §III-D2 | streams + pinned staging overlap HtoD/DtoH |
//! | [`Approach::PipeMerge`] | §III-D3 | pair-wise merges pipelined under GPU sorting |
//! | `par_memcpy` flag | PARMEMCPY | parallel staging copies (host-side bottleneck) |
//!
//! A [`plan::Plan`] is the static step DAG of one configured run. Two
//! executors interpret the *same* plan:
//!
//! * [`exec_sim`] lowers it onto the calibrated [`hetsort_vgpu::Machine`]
//!   and returns a [`report::TimingReport`] (paper-scale timing);
//! * [`exec_real`] executes it on actual `f64` data — staging copies,
//!   device-resident radix sorts, pair and multiway merges — and
//!   verifies the output (laptop-scale functional truth).
//!
//! This split is the substitution strategy for the missing GPU: pipeline
//! *semantics* are executed for real, pipeline *durations* come from the
//! calibrated simulator. See `DESIGN.md`.
//!
//! Every fallible API returns a typed [`error::HetSortError`]; the
//! functional executors additionally implement the failure model of
//! `DESIGN.md` ("Failure model & recovery") — deterministic fault
//! injection via [`hetsort_vgpu::FaultInjector`], bounded transfer
//! retries, OOM batch splitting, and CPU-fallback degradation governed
//! by [`config::RecoveryPolicy`].

// Library code must surface failures as typed errors, never panic
// paths; tests are free to unwrap.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod accounting;
pub mod config;
pub mod dag;
pub mod error;
pub mod exec_real;
pub mod exec_real_mt;
pub mod exec_sim;
pub(crate) mod exec_stream;
pub mod optrace;
pub mod plan;
pub mod plan_builders;
pub mod pool;
pub mod recover;
pub mod reference;
pub mod report;

pub use config::{
    Approach, CpuSched, DeviceSortKind, HetSortConfig, HybridMode, PairStrategy, RecoveryPolicy,
    StagingMode, SUPPORTED_ELEM_BYTES,
};
pub use dag::exec::{
    execute_dag, execute_dag_opts, execute_dag_pooled, execute_dag_pooled_opts, DagExecOptions,
};
pub use dag::{DagNode, DagOp, PlanDag, ReadySet, TieBreak};
pub use error::HetSortError;
pub use exec_real::{sort_real, RealOutcome};
pub use exec_real_mt::sort_real_parallel;
pub use exec_sim::{simulate, simulate_dag};
pub use plan::Plan;
pub use plan_builders::build_dag;
pub use report::{RecoveryStats, TimingReport};
