//! Lowering a [`PlanDag`] (or a [`Plan`], via the IR) to a structured
//! [`OpTrace`].
//!
//! The trace builder is dag-native: [`lower_dag`] /
//! [`trace_dag_with_accesses`] walk [`PlanDag::nodes`] and synthesize
//! the event edges from the *dag's* dependency lists — so a mutated dag
//! (a dropped or rewired edge) lowers to a trace missing exactly that
//! sync edge, which is what lets the happens-before checker kill
//! trace-level mutants instead of silently re-deriving the edge from
//! the pristine plan. The plan-based entry points delegate through
//! [`PlanDag::from_plan`]:
//!
//! * [`lower_plan`] emits the *static* trace — what the schedule claims
//!   it will do, with every op's buffer accesses derived from the
//!   plan alone. `hetsort analyze` checks this before anything runs.
//! * [`trace_with_accesses`] emits the *executed* trace — the same
//!   thread/event structure, but with the accesses each
//!   [`crate::exec_stream::StreamExec`] actually performed substituted
//!   in. Recovery re-plans (OOM splits, CPU fallbacks) touch different
//!   buffers than the static schedule, and this is how those paths get
//!   re-checked.
//!
//! Thread model: one trace thread per stream (`0..total_streams`), plus
//! a host thread (`total_streams`) for the pair/multiway merges. The
//! plan's cross-thread dependencies are synthesized as
//! `EventRecord`/`StreamWaitEvent` pairs — the event id is the producer
//! step's index — so the happens-before checker sees exactly the sync
//! edges the executors rely on (stream FIFO order plus the explicit
//! dependencies), and a mutation that drops one produces a reportable
//! race instead of a silently-wrong schedule.
//!
//! Buffer identity:
//!
//! * `Host` regions: [`REGION_A`] (input), [`REGION_W`] (sorted-sublist
//!   working memory), [`REGION_B`] (output), [`region_host_batch`] (a
//!   stream's Split/CpuFallback staging), [`region_pair`] (a pair-merge
//!   output). Host accesses carry element ranges, so only true overlaps
//!   conflict.
//! * `Dev { gpu, id }`: `id` is the owning stream — each stream keeps
//!   one resident batch buffer, as the executors do.
//! * `Pinned { id }`: stream `s` owns the id triple `3·s .. 3·s + 2`.
//!   Inbound staging is `3·s + half` — double-buffered plans split the
//!   one inbound allocation into two halves keyed by `chunk % 2`, so
//!   the checker sees StageIn of chunk `c+1` and HtoD of chunk `c`
//!   touching *different* identities (that overlap is the whole point
//!   of double buffering). Outbound is `3·s + 2` for piped plans;
//!   blocking plans reuse inbound half 0 (`3·s`) both ways, as the
//!   executors reuse the buffer. Elided-stage-out plans
//!   ([`Plan::stage_out_elided`]) have no outbound pinned buffer at
//!   all: DtoH pages straight out of device memory and the StageOut
//!   marker reads the device buffer.

use hetsort_sim::{Access, Buffer, OpTrace, TraceKind};

use crate::dag::{DagOp, PlanDag};
use crate::plan::{MergeInput, MergeSrc, Plan, StepKind};

/// Host region id of the input list `A`.
pub const REGION_A: usize = 0;
/// Host region id of the working memory `W` (sorted sublists).
pub const REGION_W: usize = 1;
/// Host region id of the output list `B`.
pub const REGION_B: usize = 2;

/// Host region id of stream `s`'s batch staging buffer (used by the
/// Split and CpuFallback recovery modes).
pub fn region_host_batch(stream: usize) -> usize {
    3 + stream
}

/// Host region id of pair-merge slot `slot`'s output buffer.
pub fn region_pair(total_streams: usize, slot: usize) -> usize {
    3 + total_streams + slot
}

/// Pinned-buffer id of stream `s`'s inbound staging buffer. `half` is
/// `chunk % 2` for double-buffered plans and 0 otherwise — the two
/// halves of a double-buffered allocation get distinct identities so
/// the stage-in of one chunk may overlap the DMA of the previous.
pub fn pinned_in_id(stream: usize, half: usize) -> usize {
    3 * stream + half
}

/// Pinned-buffer id of stream `s`'s outbound staging buffer. Blocking
/// plans allocate one buffer and reuse it both ways (inbound half 0).
pub fn pinned_out_id(asynchronous: bool, stream: usize) -> usize {
    if asynchronous {
        3 * stream + 2
    } else {
        3 * stream
    }
}

/// The trace thread merges run on.
pub fn host_thread(plan: &Plan) -> usize {
    plan.total_streams
}

/// The device buffer a stream's batches live in.
fn dev_buf(plan: &Plan, batch: usize) -> Buffer {
    let b = &plan.batches[batch];
    Buffer::Dev {
        gpu: b.gpu,
        id: b.stream,
    }
}

/// One merge source as a read access.
fn src_read(plan: &Plan, src: MergeSrc) -> Access {
    match src {
        MergeSrc::Batch(b) => {
            let bi = &plan.batches[b];
            Access::read(Buffer::Host {
                region: REGION_W,
                start: bi.start,
                len: bi.len,
            })
        }
        MergeSrc::Merged(p) => Access::read(Buffer::Host {
            region: region_pair(plan.total_streams, p),
            start: 0,
            len: plan.pairs[p].out_elems,
        }),
    }
}

/// The buffer accesses step `si` performs on the fault-free GPU path.
pub fn static_step_accesses(plan: &Plan, si: usize) -> Vec<Access> {
    // Stream-less data ops get the sentinel lane `total_streams` so
    // their pinned ids (`3·S ..`) can never alias stream 0's real
    // staging buffers.
    let stream = plan.steps[si].stream.unwrap_or(plan.total_streams);
    let db = plan.config.double_buffered();
    let elided = plan.stage_out_elided();
    let pin_in = |chunk: usize| Buffer::Pinned {
        id: pinned_in_id(stream, if db { chunk % 2 } else { 0 }),
    };
    let pin_out = Buffer::Pinned {
        id: pinned_out_id(plan.asynchronous, stream),
    };
    // Single-batch plans stage straight into B; multi-batch into W.
    let out_region = if plan.nb() > 1 { REGION_W } else { REGION_B };
    match &plan.steps[si].kind {
        StepKind::PinnedAlloc { .. } => Vec::new(),
        StepKind::StageIn {
            start, len, chunk, ..
        } => vec![
            Access::read(Buffer::Host {
                region: REGION_A,
                start: *start,
                len: *len,
            }),
            Access::write(pin_in(*chunk)),
        ],
        StepKind::HtoD { batch, chunk, .. } => {
            vec![
                Access::read(pin_in(*chunk)),
                Access::write(dev_buf(plan, *batch)),
            ]
        }
        StepKind::GpuSort { batch } => {
            let d = dev_buf(plan, *batch);
            vec![Access::read(d), Access::write(d)]
        }
        StepKind::DtoH { batch, .. } => {
            if elided {
                vec![Access::read(dev_buf(plan, *batch))]
            } else {
                vec![Access::read(dev_buf(plan, *batch)), Access::write(pin_out)]
            }
        }
        StepKind::StageOut {
            batch, start, len, ..
        } => vec![
            if elided {
                Access::read(dev_buf(plan, *batch))
            } else {
                Access::read(pin_out)
            },
            Access::write(Buffer::Host {
                region: out_region,
                start: *start,
                len: *len,
            }),
        ],
        StepKind::PairMerge { slot } => {
            let spec = plan.pairs[*slot];
            vec![
                src_read(plan, spec.left),
                src_read(plan, spec.right),
                Access::write(Buffer::Host {
                    region: region_pair(plan.total_streams, *slot),
                    start: 0,
                    len: spec.out_elems,
                }),
            ]
        }
        StepKind::MultiwayMerge { inputs } => {
            let mut acc: Vec<Access> = inputs
                .iter()
                .map(|inp| {
                    src_read(
                        plan,
                        match *inp {
                            MergeInput::Batch(b) => MergeSrc::Batch(b),
                            MergeInput::Pair(p) => MergeSrc::Merged(p),
                        },
                    )
                })
                .collect();
            acc.push(Access::write(Buffer::Host {
                region: REGION_B,
                start: 0,
                len: plan.n,
            }));
            acc
        }
    }
}

/// A short label for step `si` (`HtoD b2.c1 (step 17)`).
pub fn step_label(plan: &Plan, si: usize) -> String {
    match &plan.steps[si].kind {
        StepKind::PinnedAlloc { stream, dir_in, .. } => {
            let way = if *dir_in { "in" } else { "out" };
            format!("PinnedAlloc {way} s{stream} (step {si})")
        }
        StepKind::StageIn { batch, chunk, .. } => format!("StageIn b{batch}.c{chunk} (step {si})"),
        StepKind::HtoD { batch, chunk, .. } => format!("HtoD b{batch}.c{chunk} (step {si})"),
        StepKind::GpuSort { batch } => format!("GpuSort b{batch} (step {si})"),
        StepKind::DtoH { batch, chunk, .. } => format!("DtoH b{batch}.c{chunk} (step {si})"),
        StepKind::StageOut { batch, chunk, .. } => {
            format!("StageOut b{batch}.c{chunk} (step {si})")
        }
        StepKind::PairMerge { slot } => format!("PairMerge slot {slot} (step {si})"),
        StepKind::MultiwayMerge { inputs } => {
            format!("MultiwayMerge k={} (step {si})", inputs.len())
        }
    }
}

/// A short label for dag node `i` (`HtoD b2.c1 (step 17)`). For
/// planner-lowered dags this matches [`step_label`] exactly; the one
/// addition is [`DagOp::CpuMerge`], which no plan step spells.
pub fn dag_node_label(dag: &PlanDag, i: usize) -> String {
    match &dag.nodes[i].op {
        DagOp::PinnedAlloc { stream, dir_in, .. } => {
            let way = if *dir_in { "in" } else { "out" };
            format!("PinnedAlloc {way} s{stream} (step {i})")
        }
        DagOp::StagingCopy {
            batch,
            chunk,
            dir_in,
            ..
        } => {
            let op = if *dir_in { "StageIn" } else { "StageOut" };
            format!("{op} b{batch}.c{chunk} (step {i})")
        }
        DagOp::HtoD { batch, chunk, .. } => format!("HtoD b{batch}.c{chunk} (step {i})"),
        DagOp::Sort { batch } => format!("GpuSort b{batch} (step {i})"),
        DagOp::DtoH { batch, chunk, .. } => format!("DtoH b{batch}.c{chunk} (step {i})"),
        DagOp::PairMerge { slot } => format!("PairMerge slot {slot} (step {i})"),
        DagOp::CpuMerge { slot } => format!("CpuMerge slot {slot} (step {i})"),
        DagOp::MultiwayMerge { inputs } => {
            format!("MultiwayMerge k={} (step {i})", inputs.len())
        }
    }
}

/// The buffer accesses dag node `i` performs on the fault-free path.
/// [`DagOp::CpuMerge`] touches exactly what the equivalent
/// [`DagOp::PairMerge`] would — only the executing resource differs.
pub fn dag_node_accesses(dag: &PlanDag, i: usize) -> Vec<Access> {
    let plan = &dag.plan;
    let node = &dag.nodes[i];
    // Sentinel lane for stream-less data ops — see
    // [`static_step_accesses`]; `unwrap_or(0)` here would alias stream
    // 0's pinned buffers and fabricate conflicts in the checker.
    let stream = node.stream.unwrap_or(plan.total_streams);
    let db = plan.config.double_buffered();
    let elided = plan.stage_out_elided();
    let pin_in = |chunk: usize| Buffer::Pinned {
        id: pinned_in_id(stream, if db { chunk % 2 } else { 0 }),
    };
    let pin_out = Buffer::Pinned {
        id: pinned_out_id(plan.asynchronous, stream),
    };
    // Single-batch plans stage straight into B; multi-batch into W.
    let out_region = if plan.nb() > 1 { REGION_W } else { REGION_B };
    let pair_accesses = |slot: usize| {
        let spec = plan.pairs[slot];
        vec![
            src_read(plan, spec.left),
            src_read(plan, spec.right),
            Access::write(Buffer::Host {
                region: region_pair(plan.total_streams, slot),
                start: 0,
                len: spec.out_elems,
            }),
        ]
    };
    match &node.op {
        DagOp::PinnedAlloc { .. } => Vec::new(),
        DagOp::StagingCopy {
            start,
            len,
            chunk,
            dir_in: true,
            ..
        } => vec![
            Access::read(Buffer::Host {
                region: REGION_A,
                start: *start,
                len: *len,
            }),
            Access::write(pin_in(*chunk)),
        ],
        DagOp::StagingCopy {
            batch,
            start,
            len,
            dir_in: false,
            ..
        } => vec![
            if elided {
                Access::read(dev_buf(plan, *batch))
            } else {
                Access::read(pin_out)
            },
            Access::write(Buffer::Host {
                region: out_region,
                start: *start,
                len: *len,
            }),
        ],
        DagOp::HtoD { batch, chunk, .. } => {
            vec![
                Access::read(pin_in(*chunk)),
                Access::write(dev_buf(plan, *batch)),
            ]
        }
        DagOp::Sort { batch } => {
            let d = dev_buf(plan, *batch);
            vec![Access::read(d), Access::write(d)]
        }
        DagOp::DtoH { batch, .. } => {
            if elided {
                vec![Access::read(dev_buf(plan, *batch))]
            } else {
                vec![Access::read(dev_buf(plan, *batch)), Access::write(pin_out)]
            }
        }
        DagOp::PairMerge { slot } | DagOp::CpuMerge { slot } => pair_accesses(*slot),
        DagOp::MultiwayMerge { inputs } => {
            let mut acc: Vec<Access> = inputs
                .iter()
                .map(|inp| {
                    src_read(
                        plan,
                        match *inp {
                            MergeInput::Batch(b) => MergeSrc::Batch(b),
                            MergeInput::Pair(p) => MergeSrc::Merged(p),
                        },
                    )
                })
                .collect();
            acc.push(Access::write(Buffer::Host {
                region: REGION_B,
                start: 0,
                len: plan.n,
            }));
            acc
        }
    }
}

/// Lower the plan to its static trace (fault-free accesses).
pub fn lower_plan(plan: &Plan) -> OpTrace {
    trace_with_accesses(plan, &[])
}

/// Lower a dag to its static trace (fault-free accesses).
pub fn lower_dag(dag: &PlanDag) -> OpTrace {
    trace_dag_with_accesses(dag, &[])
}

/// Lower the plan, substituting executed accesses where provided.
///
/// `overrides[si] = Some(accesses)` replaces the static access list of
/// step `si` (data-touching steps only); `None` or a short vector keeps
/// the static derivation.
pub fn trace_with_accesses(plan: &Plan, overrides: &[Option<Vec<Access>>]) -> OpTrace {
    trace_dag_with_accesses(&PlanDag::from_plan(plan.clone()), overrides)
}

/// Lower a dag, substituting executed accesses where provided. The
/// event edges come from the *dag's* dependency lists: a dag whose
/// edges were mutated lowers to a trace missing exactly those sync
/// edges, which the happens-before checker then reports as a race.
pub fn trace_dag_with_accesses(dag: &PlanDag, overrides: &[Option<Vec<Access>>]) -> OpTrace {
    let plan = &dag.plan;
    let host = host_thread(plan);
    let thread_of = |i: usize| dag.nodes[i].stream.unwrap_or(host);
    // Nodes with a cross-thread consumer record an event right after
    // completing; consumers wait on it right before starting.
    let mut needs_event = vec![false; dag.nodes.len()];
    for (i, node) in dag.nodes.iter().enumerate() {
        for &d in &node.deps {
            if thread_of(d) != thread_of(i) {
                needs_event[d] = true;
            }
        }
    }

    let mut trace = OpTrace::new(host + 1);
    // Buffers allocated during lowering, with their owning thread —
    // each stream releases its own buffers in the epilogue below.
    let mut alloced: Vec<(usize, Buffer)> = Vec::new();
    let mut dev_alloced = vec![false; plan.total_streams];
    let dev_bytes = plan.config.device_sort.mem_factor()
        * plan.config.elem_bytes
        * plan.config.batch_elems as f64;
    for (si, node) in dag.nodes.iter().enumerate() {
        let th = thread_of(si);
        for &d in &node.deps {
            if thread_of(d) != th {
                trace.push(
                    th,
                    format!("wait on {} (step {si})", dag_node_label(dag, d)),
                    TraceKind::StreamWaitEvent { event: d },
                );
            }
        }
        match &node.op {
            DagOp::PinnedAlloc {
                stream,
                bytes,
                dir_in,
            } => {
                if *dir_in && plan.config.double_buffered() {
                    // One double-sized allocation, but the two halves
                    // get distinct identities: record an Alloc per
                    // half so accesses, frees, and leak lints line up.
                    for half in 0..2 {
                        let buf = Buffer::Pinned {
                            id: pinned_in_id(*stream, half),
                        };
                        alloced.push((th, buf));
                        trace.push(
                            th,
                            format!("{} half {half}", dag_node_label(dag, si)),
                            TraceKind::Alloc {
                                buf,
                                bytes: *bytes / 2.0,
                            },
                        );
                    }
                } else {
                    let id = if *dir_in {
                        pinned_in_id(*stream, 0)
                    } else {
                        pinned_out_id(plan.asynchronous, *stream)
                    };
                    alloced.push((th, Buffer::Pinned { id }));
                    trace.push(
                        th,
                        dag_node_label(dag, si),
                        TraceKind::Alloc {
                            buf: Buffer::Pinned { id },
                            bytes: *bytes,
                        },
                    );
                }
            }
            op => {
                // Each stream's device buffer materializes at its first
                // device-touching op (the cudaMalloc stand-in).
                if let DagOp::HtoD { batch, .. } = op {
                    let b = &plan.batches[*batch];
                    if !dev_alloced[b.stream] {
                        dev_alloced[b.stream] = true;
                        alloced.push((th, dev_buf(plan, *batch)));
                        trace.push(
                            th,
                            format!("DevAlloc s{} (step {si})", b.stream),
                            TraceKind::Alloc {
                                buf: dev_buf(plan, *batch),
                                bytes: dev_bytes,
                            },
                        );
                    }
                }
                let accesses = overrides
                    .get(si)
                    .and_then(|o| o.clone())
                    .unwrap_or_else(|| dag_node_accesses(dag, si));
                trace.push(th, dag_node_label(dag, si), TraceKind::Op { accesses });
            }
        }
        if needs_event[si] {
            trace.push(
                th,
                format!("record ev{si} ({})", dag_node_label(dag, si)),
                TraceKind::EventRecord { event: si },
            );
        }
    }
    // Epilogue: each stream frees its own buffers after its last op
    // (the executors' sync-then-drop, made explicit so the analyzer's
    // lifetime lints — leak, double-free, use-after-free — apply).
    // Thread-local program order makes each free ordered after every
    // op of the owning stream; the buffers are stream-private, so no
    // cross-thread edge is needed.
    for (th, buf) in alloced {
        trace.push(
            th,
            format!("Free {} (epilogue)", buf.short()),
            TraceKind::Free { buf },
        );
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HetSortConfig};
    use hetsort_vgpu::platform1;

    fn plan(approach: Approach, n: usize) -> Plan {
        let cfg = HetSortConfig::paper_defaults(platform1(), approach)
            .with_batch_elems(1000)
            .with_pinned_elems(300);
        Plan::build(cfg, n).unwrap()
    }

    #[test]
    fn lowering_covers_every_step() {
        let p = plan(Approach::PipeMerge, 6000);
        let tr = lower_plan(&p);
        let ops = tr
            .records
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::Op { .. }))
            .count();
        let allocs = p
            .steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::PinnedAlloc { .. }))
            .count();
        assert_eq!(ops, p.steps.len() - allocs);
        assert_eq!(tr.n_threads, p.total_streams + 1);
    }

    #[test]
    fn cross_thread_deps_become_event_edges() {
        let p = plan(Approach::PipeMerge, 6000);
        let tr = lower_plan(&p);
        let recs = tr
            .records
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::EventRecord { .. }))
            .count();
        let waits = tr
            .records
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::StreamWaitEvent { .. }))
            .count();
        assert!(recs > 0, "merges consume cross-thread results");
        assert!(waits >= recs, "every recorded event has a waiter");
        // Every wait names a recorded event, and the record precedes it.
        for (i, r) in tr.records.iter().enumerate() {
            if let TraceKind::StreamWaitEvent { event } = r.kind {
                let rec_pos = tr.records.iter().position(
                    |x| matches!(x.kind, TraceKind::EventRecord { event: e } if e == event),
                );
                assert!(rec_pos.is_some_and(|p| p < i), "wait at {i} before record");
            }
        }
    }

    #[test]
    fn streamless_data_ops_use_sentinel_pinned_lane() {
        use crate::dag::PlanDag;
        let p = plan(Approach::PipeMerge, 6000);
        let total = p.total_streams;
        let mut dag = PlanDag::from_plan(p);
        // Hand-strip the stream off one HtoD node, as a hand-built or
        // mutated dag may legally do.
        let i = dag
            .nodes
            .iter()
            .position(|n| matches!(n.op, DagOp::HtoD { .. }))
            .unwrap();
        dag.nodes[i].stream = None;
        let half = match dag.nodes[i].op {
            DagOp::HtoD { chunk, .. } if dag.plan.config.double_buffered() => chunk % 2,
            _ => 0,
        };
        let acc = dag_node_accesses(&dag, i);
        let pinned_ids: Vec<usize> = acc
            .iter()
            .filter_map(|a| match a.buf {
                Buffer::Pinned { id } => Some(id),
                _ => None,
            })
            .collect();
        assert!(!pinned_ids.is_empty(), "HtoD reads a pinned buffer");
        for id in pinned_ids {
            assert_eq!(id, pinned_in_id(total, half), "sentinel lane, not stream 0");
            assert_ne!(id, pinned_in_id(0, half), "must not alias stream 0");
        }
    }

    #[test]
    fn bline_stages_straight_into_b() {
        let p = plan(Approach::BLine, 1000);
        let tr = lower_plan(&p);
        assert!(tr.records.iter().any(|r| match &r.kind {
            TraceKind::Op { accesses } => accesses.iter().any(|a| {
                a.write && matches!(a.buf, Buffer::Host { region, .. } if region == REGION_B)
            }),
            _ => false,
        }));
        // Blocking plans reuse one pinned buffer both ways (half 0).
        assert_eq!(pinned_out_id(p.asynchronous, 0), pinned_in_id(0, 0));
    }

    #[test]
    fn elided_stage_out_reads_the_device_buffer() {
        // Blocking + double-buffered (paper_defaults) elides the
        // outbound pinned bounce: the StageOut marker reads device
        // memory, DtoH writes no pinned buffer, and the two inbound
        // halves carry distinct identities.
        let p = plan(Approach::BLineMulti, 4000);
        assert!(p.stage_out_elided());
        let dag = PlanDag::from_plan(p.clone());
        for (i, node) in dag.nodes.iter().enumerate() {
            let acc = dag_node_accesses(&dag, i);
            match &node.op {
                DagOp::DtoH { .. } => {
                    assert!(
                        acc.iter().all(|a| !matches!(a.buf, Buffer::Pinned { .. })),
                        "elided DtoH must not touch pinned staging"
                    );
                }
                DagOp::StagingCopy { dir_in: false, .. } => {
                    assert!(
                        acc.iter()
                            .any(|a| !a.write && matches!(a.buf, Buffer::Dev { .. })),
                        "elided StageOut reads device memory"
                    );
                }
                DagOp::StagingCopy {
                    chunk,
                    dir_in: true,
                    ..
                } => {
                    let want = pinned_in_id(node.stream.unwrap(), chunk % 2);
                    assert!(
                        acc.iter()
                            .any(|a| a.write && a.buf == (Buffer::Pinned { id: want })),
                        "StageIn c{chunk} writes its own half"
                    );
                }
                _ => {}
            }
        }
    }
}
