//! The static step DAG of one heterogeneous sort run.
//!
//! A [`Plan`] encodes, independent of any executor, exactly which
//! operations the configured approach performs and in what dependency
//! order: staging copies chunk by chunk through the pinned buffers,
//! transfers, device sorts, pipelined pair merges, and the final
//! multiway merge. Both the simulated executor ([`crate::exec_sim`])
//! and the functional executor ([`crate::exec_real`]) interpret this
//! same structure, so what we time is what we proved correct.
//!
//! Workflows encoded (paper §III-D):
//!
//! * `BLine`   (n_b = 1):  `A → Stage → HtoD → GPUSort → DtoH → Stage → B`
//! * `BLineMulti`:         `A → Stage → HtoD → GPUSort → DtoH → Stage → W → Merge → B`
//! * `PipeData/PipeMerge`: same per batch, but chunks flow through
//!   per-stream pinned buffers in `n_s` streams per GPU, and PipeMerge
//!   inserts pair-wise merges as soon as both batches of a pair are
//!   resident in `W`.

use crate::config::HetSortConfig;
use crate::error::HetSortError;

/// One contiguous batch of the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchInfo {
    /// Batch index `0..n_b`.
    pub index: usize,
    /// First element offset in `A`.
    pub start: usize,
    /// Element count (the last batch may be short).
    pub len: usize,
    /// Global stream index the batch is processed in.
    pub stream: usize,
    /// GPU executing this batch.
    pub gpu: usize,
}

/// Input of the final multiway merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeInput {
    /// An unpaired sorted batch resident in `W`.
    Batch(usize),
    /// The output of pipelined pair merge slot `p`.
    Pair(usize),
}

/// Source of one side of a pipelined two-way merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeSrc {
    /// A sorted batch resident in `W`.
    Batch(usize),
    /// The output of an earlier pair-merge slot.
    Merged(usize),
}

/// One pipelined two-way merge: its inputs and output size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairSpec {
    /// Left input.
    pub left: MergeSrc,
    /// Right input.
    pub right: MergeSrc,
    /// Output length in elements.
    pub out_elems: usize,
}

/// What a step does.
#[derive(Debug, Clone, PartialEq)]
pub enum StepKind {
    /// Allocate a pinned staging buffer for a stream (`dir_in` selects
    /// the inbound or outbound buffer).
    PinnedAlloc {
        /// Owning stream.
        stream: usize,
        /// Buffer size in bytes.
        bytes: f64,
        /// Inbound (A→device) or outbound (device→W/B) buffer.
        dir_in: bool,
    },
    /// Copy a chunk of `A` into the stream's inbound pinned buffer.
    StageIn {
        /// Batch index.
        batch: usize,
        /// Chunk index within the batch.
        chunk: usize,
        /// Global element offset of the chunk.
        start: usize,
        /// Chunk length in elements.
        len: usize,
    },
    /// DMA the inbound pinned buffer to the device batch buffer.
    HtoD {
        /// Batch index.
        batch: usize,
        /// Chunk index.
        chunk: usize,
        /// Global element offset.
        start: usize,
        /// Chunk length.
        len: usize,
    },
    /// Sort the device-resident batch (Thrust stand-in).
    GpuSort {
        /// Batch index.
        batch: usize,
    },
    /// DMA a chunk of the sorted batch into the outbound pinned buffer.
    DtoH {
        /// Batch index.
        batch: usize,
        /// Chunk index.
        chunk: usize,
        /// Global element offset.
        start: usize,
        /// Chunk length.
        len: usize,
    },
    /// Copy the outbound pinned buffer into `W` (or `B` when n_b = 1).
    StageOut {
        /// Batch index.
        batch: usize,
        /// Chunk index.
        chunk: usize,
        /// Global element offset.
        start: usize,
        /// Chunk length.
        len: usize,
    },
    /// Pipelined two-way merge (PIPEMERGE and the rejected strategies);
    /// inputs and output size live in [`Plan::pairs`] at this slot.
    PairMerge {
        /// Index into [`Plan::pairs`].
        slot: usize,
    },
    /// Final multiway merge into `B`.
    MultiwayMerge {
        /// Sublists merged.
        inputs: Vec<MergeInput>,
    },
}

/// One step plus its explicit dependencies (indices into
/// [`Plan::steps`]; always backward).
#[derive(Debug, Clone)]
pub struct Step {
    /// The operation.
    pub kind: StepKind,
    /// Indices of steps that must complete first. Intra-stream FIFO
    /// ordering is *also* encoded here (dependency on the previous step
    /// of the same stream), so executors need no queue support.
    pub deps: Vec<usize>,
    /// Stream this step is submitted to, if any (transfers and staging
    /// copies; merges and the blocking approaches' host ops included —
    /// blocking approaches use stream 0 as "the default stream").
    pub stream: Option<usize>,
}

/// The full static DAG.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Configuration the plan was built from.
    pub config: HetSortConfig,
    /// Input size.
    pub n: usize,
    /// Batches.
    pub batches: Vec<BatchInfo>,
    /// Pipelined two-way merges (inputs + output sizes per slot).
    pub pairs: Vec<PairSpec>,
    /// Steps in submission (topological) order.
    pub steps: Vec<Step>,
    /// Total streams (`n_s · n_GPU` for piped approaches, 1 otherwise).
    pub total_streams: usize,
    /// Whether transfers are asynchronous chunked copies (piped).
    pub asynchronous: bool,
    /// Physical device identity of each plan-local GPU index: batch `b`
    /// runs on physical device `device_ids[batches[b].gpu]`. Identity
    /// (`0..n_gpus`) for a freshly built plan; a recovery re-plan built
    /// on survivors maps its compacted indices back to the original
    /// platform's device numbers so fault schedules, spans, and
    /// residency accounting keep meaning the same hardware.
    pub device_ids: Vec<usize>,
}

impl Plan {
    /// Build the plan for sorting `n` elements under `config` — the
    /// approach's builder in [`crate::plan_builders`] does the work.
    ///
    /// # Errors
    ///
    /// Propagates [`HetSortConfig::validate`] failures
    /// ([`HetSortError::Config`]).
    pub fn build(config: HetSortConfig, n: usize) -> Result<Plan, HetSortError> {
        crate::plan_builders::build(config, n)
    }

    /// Relabel the plan's GPUs with physical device numbers `ids`
    /// (plan-local GPU `g` ↦ physical device `ids[g]`), re-running
    /// [`Plan::check_invariants`] on the result. Used when a re-plan
    /// built on a survivor platform must keep addressing the original
    /// devices.
    ///
    /// # Errors
    ///
    /// [`HetSortError::Plan`] if `ids` has the wrong length or repeats
    /// a device, or if the relabelled plan fails the invariant check.
    pub fn on_devices(mut self, ids: Vec<usize>) -> Result<Plan, HetSortError> {
        let ngpu = self.config.platform.n_gpus().max(1);
        if ids.len() != ngpu {
            return Err(HetSortError::Plan {
                reason: format!("device map has {} entries for {} GPUs", ids.len(), ngpu),
            });
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != ids.len() {
            return Err(HetSortError::Plan {
                reason: format!("device map {ids:?} repeats a device"),
            });
        }
        self.device_ids = ids;
        self.check_invariants()?;
        Ok(self)
    }

    /// Physical device number of plan-local GPU index `g`.
    pub fn physical_gpu(&self, g: usize) -> usize {
        self.device_ids.get(g).copied().unwrap_or(g)
    }

    /// Number of batches.
    pub fn nb(&self) -> usize {
        self.batches.len()
    }

    /// Does this plan skip the outbound pinned bounce entirely?
    ///
    /// Under [`StagingMode::DoubleBuffered`] the blocking approaches
    /// keep the sorted batch device-resident while it is written out,
    /// so the `DtoH → pinned_out → W/B` two-copy path collapses into a
    /// single device→host copy: the `DtoH` step carries the (pageable)
    /// transfer cost and the `StageOut` step becomes the zero-byte
    /// marker at which the chunk is emitted. Piped plans keep the
    /// bounce — their DMA engines need the pinned landing zone to
    /// overlap transfers across streams.
    ///
    /// [`StagingMode::DoubleBuffered`]: crate::config::StagingMode::DoubleBuffered
    pub fn stage_out_elided(&self) -> bool {
        !self.asynchronous && self.config.double_buffered()
    }

    /// Inbound staging halves per stream: 2 when double-buffered
    /// (chunk parity selects the half), 1 in the paper shape.
    pub fn staging_halves(&self) -> usize {
        if self.config.double_buffered() {
            2
        } else {
            1
        }
    }

    /// The final multiway merge's input count `k` (0 when n_b = 1).
    pub fn multiway_k(&self) -> usize {
        self.steps
            .iter()
            .rev()
            .find_map(|s| match &s.kind {
                StepKind::MultiwayMerge { inputs } => Some(inputs.len()),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Sanity-check internal invariants (used heavily by tests):
    /// deps point backward, chunks tile batches exactly, pair merges
    /// reference distinct batches, merge inputs cover all batches once.
    pub fn check_invariants(&self) -> Result<(), HetSortError> {
        let plan_err = |reason: String| HetSortError::Plan { reason };
        // The device map must cover every plan-local GPU index exactly
        // once (physical targets are unique).
        let ngpu = self.config.platform.n_gpus().max(1);
        if self.device_ids.len() != ngpu {
            return Err(plan_err(format!(
                "device map has {} entries for {} GPUs",
                self.device_ids.len(),
                ngpu
            )));
        }
        let mut phys = self.device_ids.clone();
        phys.sort_unstable();
        phys.dedup();
        if phys.len() != self.device_ids.len() {
            return Err(plan_err(format!(
                "device map {:?} repeats a device",
                self.device_ids
            )));
        }
        for (i, s) in self.steps.iter().enumerate() {
            for &d in &s.deps {
                if d >= i {
                    return Err(plan_err(format!("step {i} depends forward on {d}")));
                }
            }
        }
        // Chunk tiling.
        let mut covered = vec![0usize; self.nb()];
        for s in &self.steps {
            if let StepKind::StageIn { batch, len, .. } = s.kind {
                covered[batch] += len;
            }
        }
        for b in &self.batches {
            if covered[b.index] != b.len {
                return Err(plan_err(format!(
                    "batch {} stages {} of {} elements",
                    b.index, covered[b.index], b.len
                )));
            }
        }
        // Merge coverage: resolving pair slots recursively, every batch
        // must reach the final merge exactly once, every slot must be
        // consumed exactly once, and slot output sizes must add up.
        if self.nb() > 1 {
            let mut batch_seen = vec![false; self.nb()];
            let mut slot_seen = vec![false; self.pairs.len()];
            let visit_src = |src: MergeSrc,
                             batch_seen: &mut Vec<bool>,
                             slot_seen: &mut Vec<bool>|
             -> Result<(), HetSortError> {
                let mut stack = vec![src];
                while let Some(s) = stack.pop() {
                    match s {
                        MergeSrc::Batch(b) => {
                            if batch_seen[b] {
                                return Err(plan_err(format!("batch {b} merged twice")));
                            }
                            batch_seen[b] = true;
                        }
                        MergeSrc::Merged(p) => {
                            if slot_seen[p] {
                                return Err(plan_err(format!("slot {p} consumed twice")));
                            }
                            slot_seen[p] = true;
                            stack.push(self.pairs[p].left);
                            stack.push(self.pairs[p].right);
                        }
                    }
                }
                Ok(())
            };
            for s in &self.steps {
                if let StepKind::MultiwayMerge { inputs } = &s.kind {
                    for inp in inputs {
                        let src = match *inp {
                            MergeInput::Batch(b) => MergeSrc::Batch(b),
                            MergeInput::Pair(p) => MergeSrc::Merged(p),
                        };
                        visit_src(src, &mut batch_seen, &mut slot_seen)?;
                    }
                }
            }
            if !batch_seen.iter().all(|&x| x) {
                return Err(plan_err("some batch missing from the final merge".into()));
            }
            if !slot_seen.iter().all(|&x| x) {
                return Err(plan_err("some pair-merge output never consumed".into()));
            }
            // Output sizes add up.
            let src_len = |src: MergeSrc| match src {
                MergeSrc::Batch(b) => self.batches[b].len,
                MergeSrc::Merged(p) => self.pairs[p].out_elems,
            };
            for (i, p) in self.pairs.iter().enumerate() {
                if src_len(p.left) + src_len(p.right) != p.out_elems {
                    return Err(plan_err(format!("pair slot {i} output size mismatch")));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Approach;
    use hetsort_vgpu::{platform1, platform2};

    fn cfg(approach: Approach) -> HetSortConfig {
        HetSortConfig::paper_defaults(platform1(), approach)
            .with_batch_elems(1000)
            .with_pinned_elems(300)
    }

    #[test]
    fn bline_single_batch_plan_shape() {
        let plan = Plan::build(cfg(Approach::BLine), 1000).unwrap();
        plan.check_invariants().unwrap();
        assert_eq!(plan.nb(), 1);
        assert_eq!(plan.total_streams, 1);
        assert!(!plan.asynchronous);
        // 1 alloc + 4 chunks × (StageIn + HtoD) + sort + 4 × (DtoH + StageOut).
        assert_eq!(plan.steps.len(), 1 + 4 * 2 + 1 + 4 * 2);
        assert_eq!(plan.multiway_k(), 0);
        assert!(plan.pairs.is_empty());
    }

    #[test]
    fn bline_multi_has_final_merge() {
        let plan = Plan::build(cfg(Approach::BLineMulti), 5000).unwrap();
        plan.check_invariants().unwrap();
        assert_eq!(plan.nb(), 5);
        assert_eq!(plan.multiway_k(), 5); // no pair merges
        assert!(plan.pairs.is_empty());
        assert_eq!(plan.total_streams, 1);
    }

    #[test]
    fn pipedata_uses_streams_and_async() {
        let plan = Plan::build(cfg(Approach::PipeData), 6000).unwrap();
        plan.check_invariants().unwrap();
        assert_eq!(plan.total_streams, 2); // ns=2 × 1 GPU
        assert!(plan.asynchronous);
        // Round-robin batches across streams.
        assert_eq!(plan.batches[0].stream, 0);
        assert_eq!(plan.batches[1].stream, 1);
        assert_eq!(plan.batches[2].stream, 0);
        assert_eq!(plan.multiway_k(), 6);
    }

    #[test]
    fn pipemerge_pairs_match_figure3() {
        // n_b = 6 on 1 GPU → 2 pair merges (b0,b1), (b2,b3); final
        // multiway merges 4 sublists: 2 pairs + b4 + b5 (§III-D3).
        let plan = Plan::build(cfg(Approach::PipeMerge), 6000).unwrap();
        plan.check_invariants().unwrap();
        assert_eq!(
            plan.pairs,
            vec![
                PairSpec {
                    left: MergeSrc::Batch(0),
                    right: MergeSrc::Batch(1),
                    out_elems: 2000,
                },
                PairSpec {
                    left: MergeSrc::Batch(2),
                    right: MergeSrc::Batch(3),
                    out_elems: 2000,
                },
            ]
        );
        assert_eq!(plan.multiway_k(), 4);
    }

    #[test]
    fn pipemerge_odd_batches_leaves_last_unmerged() {
        let plan = Plan::build(cfg(Approach::PipeMerge), 7000).unwrap();
        plan.check_invariants().unwrap();
        assert_eq!(plan.pairs.len(), 3); // ⌊6/2⌋
        assert_eq!(plan.multiway_k(), 3 + 1); // 3 pairs + b6
    }

    #[test]
    fn multi_gpu_assignment_alternates() {
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeData)
            .with_batch_elems(1000)
            .with_pinned_elems(250);
        let plan = Plan::build(cfg, 8000).unwrap();
        plan.check_invariants().unwrap();
        assert_eq!(plan.total_streams, 4); // 2 streams × 2 GPUs
        let gpus: Vec<usize> = plan.batches.iter().map(|b| b.gpu).collect();
        assert_eq!(gpus, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn multi_gpu_pipemerge_heuristic() {
        // n_b = 10 on 2 GPUs → ⌊9/4⌋ = 2 pair merges → k = 8.
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(1000)
            .with_pinned_elems(250);
        let plan = Plan::build(cfg, 10_000).unwrap();
        plan.check_invariants().unwrap();
        assert_eq!(plan.pairs.len(), 2);
        assert_eq!(plan.multiway_k(), 2 + 6);
    }

    #[test]
    fn short_last_batch_is_tiled_exactly() {
        let plan = Plan::build(cfg(Approach::BLineMulti), 2345).unwrap();
        plan.check_invariants().unwrap();
        assert_eq!(plan.nb(), 3);
        assert_eq!(plan.batches[2].len, 345);
        // Last chunk of last batch is short too.
        let lens: Vec<usize> = plan
            .steps
            .iter()
            .filter_map(|s| match s.kind {
                StepKind::StageIn { batch: 2, len, .. } => Some(len),
                _ => None,
            })
            .collect();
        assert_eq!(lens, vec![300, 45]);
    }

    #[test]
    fn streams_never_exceed_batches() {
        let plan = Plan::build(cfg(Approach::PipeData), 1000).unwrap();
        assert_eq!(plan.total_streams, 1); // one batch → one stream
    }

    #[test]
    fn invalid_configs_propagate() {
        assert!(Plan::build(cfg(Approach::BLine), 5000).is_err()); // nb>1
        assert!(Plan::build(cfg(Approach::PipeData), 0).is_err());
    }

    #[test]
    fn online_strategy_chains_merges() {
        use crate::config::PairStrategy;
        let cfg = cfg(Approach::PipeMerge).with_pair_strategy(PairStrategy::Online);
        let plan = Plan::build(cfg, 5000).unwrap();
        plan.check_invariants().unwrap();
        // n_b = 5 → 4 chained merges; the final multiway has 1 input.
        assert_eq!(plan.pairs.len(), 4);
        assert_eq!(plan.multiway_k(), 1);
        assert_eq!(plan.pairs[0].left, MergeSrc::Batch(0));
        assert_eq!(plan.pairs[3].left, MergeSrc::Merged(2));
        assert_eq!(plan.pairs[3].out_elems, 5000);
    }

    #[test]
    fn merge_tree_strategy_builds_binary_tree() {
        use crate::config::PairStrategy;
        let cfg = cfg(Approach::PipeMerge).with_pair_strategy(PairStrategy::MergeTree);
        let plan = Plan::build(cfg, 6000).unwrap();
        plan.check_invariants().unwrap();
        // n_b = 6 → 3 + 1 + 1 = 5 tree merges, root feeds the "merge".
        assert_eq!(plan.pairs.len(), 5);
        assert_eq!(plan.multiway_k(), 1);
        assert_eq!(plan.pairs.last().unwrap().out_elems, 6000);
        // Odd counts carry the straggler up a level.
        let cfg = cfg2_tree();
        let plan = Plan::build(cfg, 7000).unwrap();
        plan.check_invariants().unwrap();
        assert_eq!(plan.pairs.last().unwrap().out_elems, 7000);
    }

    fn cfg2_tree() -> HetSortConfig {
        use crate::config::PairStrategy;
        cfg(Approach::PipeMerge).with_pair_strategy(PairStrategy::MergeTree)
    }

    #[test]
    fn fifo_chaining_is_encoded_in_deps() {
        // Paper staging: every step in a stream (except the first)
        // depends on the previous step of that stream — one total FIFO.
        use crate::config::StagingMode;
        let plan = Plan::build(
            cfg(Approach::PipeData).with_staging(StagingMode::Paper),
            2000,
        )
        .unwrap();
        let mut last: Vec<Option<usize>> = vec![None; plan.total_streams];
        for (i, s) in plan.steps.iter().enumerate() {
            if let Some(st) = s.stream {
                if let Some(prev) = last[st] {
                    assert!(
                        s.deps.contains(&prev),
                        "step {i} missing FIFO dep on {prev}"
                    );
                }
                last[st] = Some(i);
            }
        }
    }

    #[test]
    fn double_buffered_chains_per_lane() {
        // Double-buffered staging splits each stream into a host lane
        // (allocs + staging copies) and a device lane (HtoD/sort/DtoH);
        // chaining holds per lane, and the cross edges HtoD←StageIn and
        // StageOut←DtoH are explicit.
        let plan = Plan::build(cfg(Approach::PipeData), 2000).unwrap();
        assert!(plan.config.double_buffered());
        assert!(!plan.stage_out_elided(), "piped plans keep the bounce");
        let mut host: Vec<Option<usize>> = vec![None; plan.total_streams];
        let mut dev: Vec<Option<usize>> = vec![None; plan.total_streams];
        for (i, s) in plan.steps.iter().enumerate() {
            let Some(st) = s.stream else { continue };
            let dev_lane = matches!(
                s.kind,
                StepKind::HtoD { .. } | StepKind::GpuSort { .. } | StepKind::DtoH { .. }
            );
            let tail = if dev_lane {
                &mut dev[st]
            } else {
                &mut host[st]
            };
            if let Some(prev) = *tail {
                assert!(
                    s.deps.contains(&prev),
                    "step {i} missing lane dep on {prev}"
                );
            }
            *tail = Some(i);
        }
        // Cross edges: each HtoD names its StageIn, each StageOut its DtoH.
        for (i, s) in plan.steps.iter().enumerate() {
            match s.kind {
                StepKind::HtoD { batch, chunk, .. } => {
                    let si = plan
                        .steps
                        .iter()
                        .position(|t| {
                            matches!(t.kind, StepKind::StageIn { batch: b, chunk: c, .. }
                                if b == batch && c == chunk)
                        })
                        .unwrap();
                    assert!(s.deps.contains(&si), "HtoD {i} missing StageIn dep");
                }
                StepKind::StageOut { batch, chunk, .. } => {
                    let d = plan
                        .steps
                        .iter()
                        .position(|t| {
                            matches!(t.kind, StepKind::DtoH { batch: b, chunk: c, .. }
                                if b == batch && c == chunk)
                        })
                        .unwrap();
                    assert!(s.deps.contains(&d), "StageOut {i} missing DtoH dep");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn elided_stage_out_is_blocking_double_buffered_only() {
        use crate::config::StagingMode;
        let blocking = Plan::build(cfg(Approach::BLineMulti), 5000).unwrap();
        assert!(blocking.stage_out_elided());
        assert_eq!(blocking.staging_halves(), 2);
        let piped = Plan::build(cfg(Approach::PipeData), 5000).unwrap();
        assert!(!piped.stage_out_elided());
        let paper = Plan::build(
            cfg(Approach::BLineMulti).with_staging(StagingMode::Paper),
            5000,
        )
        .unwrap();
        assert!(!paper.stage_out_elided());
        assert_eq!(paper.staging_halves(), 1);
    }
}
