//! Plan builders: each paper approach as a plan-construction strategy.
//!
//! The four approaches (§III-D) share one lowering pipeline — batch
//! geometry, the pipelined pair-merge schedule, and FIFO step emission —
//! and differ only in what they ask of it: blocking approaches stage
//! through one pinned buffer per host thread with synchronous
//! transfers, piped approaches run `n_s` streams per GPU with separate
//! in/out pinned buffers and asynchronous chunked transfers, and
//! PIPEMERGE additionally schedules pair merges. [`build`] dispatches to
//! the named builder; [`build_dag`] lowers straight to the [`PlanDag`]
//! IR the engines execute.
//!
//! Every builder produces bit-identical output to the monolithic
//! `Plan::build` this module replaced (the step list is byte-for-byte
//! the same construction), which is what keeps the DAG engine's
//! differential suite meaningful.

use crate::config::{Approach, HetSortConfig, PairStrategy};
use crate::dag::PlanDag;
use crate::error::HetSortError;
use crate::plan::{BatchInfo, MergeInput, MergeSrc, PairSpec, Plan, Step, StepKind};

/// Build the plan for sorting `n` elements under `config`, dispatching
/// to the approach's builder.
///
/// # Errors
///
/// Propagates [`HetSortConfig::validate`] failures
/// ([`HetSortError::Config`]).
pub fn build(config: HetSortConfig, n: usize) -> Result<Plan, HetSortError> {
    config.validate(n)?;
    match config.approach {
        Approach::BLine => bline(config, n),
        Approach::BLineMulti => bline_multi(config, n),
        Approach::PipeData => pipe_data(config, n),
        Approach::PipeMerge => pipe_merge(config, n),
    }
}

/// Build and lower in one step: the [`PlanDag`] the engines execute.
///
/// # Errors
///
/// As [`build`].
pub fn build_dag(config: HetSortConfig, n: usize) -> Result<PlanDag, HetSortError> {
    Ok(PlanDag::from_plan(build(config, n)?))
}

/// BLINE (§III-D1): one batch, one blocking staging buffer, no merge.
fn bline(config: HetSortConfig, n: usize) -> Result<Plan, HetSortError> {
    lower(config, n, false)
}

/// BLINEMULTI (§III-D2): blocking batches into `W`, one final multiway
/// merge.
fn bline_multi(config: HetSortConfig, n: usize) -> Result<Plan, HetSortError> {
    lower(config, n, false)
}

/// PIPEDATA (§III-D3): `n_s` streams per GPU, chunked asynchronous
/// transfers through per-stream in/out pinned buffers.
fn pipe_data(config: HetSortConfig, n: usize) -> Result<Plan, HetSortError> {
    lower(config, n, true)
}

/// PIPEMERGE (§III-D3): PIPEDATA plus pair merges pipelined against the
/// remaining batches (the schedule itself comes from
/// [`pair_schedule`], shared because the rejected Online/MergeTree
/// strategies apply to any multi-batch approach).
fn pipe_merge(config: HetSortConfig, n: usize) -> Result<Plan, HetSortError> {
    lower(config, n, true)
}

/// Batch geometry: round-robin stream and GPU assignment.
fn geometry(config: &HetSortConfig, n: usize) -> (usize, usize, usize, Vec<BatchInfo>) {
    let nb = config.n_batches(n);
    let ngpu = config.platform.n_gpus().max(1);
    let piped = config.approach.is_piped();
    // Piped: n_s streams per GPU. Blocking: one host thread per GPU
    // (the paper's 2-GPU lower-bound run drives both K40m's with
    // blocking calls concurrently, §IV-G), never more than n_b.
    let total_streams = if piped {
        (config.streams_per_gpu * ngpu).min(nb.max(1))
    } else {
        ngpu.min(nb.max(1))
    };
    // Batch geometry and stream/GPU assignment (round-robin; each GPU
    // owns n_s stream slots → batches alternate across GPUs).
    let bs = config.batch_elems;
    let mut batches = Vec::with_capacity(nb);
    for b in 0..nb {
        let start = b * bs;
        let len = bs.min(n - start);
        let stream = b % total_streams;
        let gpu = stream % ngpu;
        batches.push(BatchInfo {
            index: b,
            start,
            len,
            stream,
            gpu,
        });
    }
    (nb, ngpu, total_streams, batches)
}

/// The pipelined merge schedule under the configured strategy: pair
/// specs plus the final multiway merge's inputs.
fn pair_schedule(config: &HetSortConfig, n: usize, nb: usize) -> (Vec<PairSpec>, Vec<MergeInput>) {
    let bs = config.batch_elems;
    let batch_len = |b: usize| bs.min(n - b * bs);
    match (nb > 1, config.pair_strategy) {
        (false, _) => (Vec::new(), Vec::new()),
        (true, PairStrategy::PaperHeuristic) => {
            let npairs = config.pipelined_pair_merges(nb);
            let pairs: Vec<PairSpec> = (0..npairs)
                .map(|p| PairSpec {
                    left: MergeSrc::Batch(2 * p),
                    right: MergeSrc::Batch(2 * p + 1),
                    out_elems: batch_len(2 * p) + batch_len(2 * p + 1),
                })
                .collect();
            let mut inputs: Vec<MergeInput> = (0..npairs).map(MergeInput::Pair).collect();
            inputs.extend((2 * npairs..nb).map(MergeInput::Batch));
            (pairs, inputs)
        }
        (true, PairStrategy::Online) => {
            // Rejected strategy (§III-D3): fold each arriving batch into
            // one growing run. Re-merges the accumulated prefix every
            // time.
            let mut pairs = Vec::new();
            let mut acc = MergeSrc::Batch(0);
            let mut acc_len = batch_len(0);
            for b in 1..nb {
                acc_len += batch_len(b);
                pairs.push(PairSpec {
                    left: acc,
                    right: MergeSrc::Batch(b),
                    out_elems: acc_len,
                });
                acc = MergeSrc::Merged(pairs.len() - 1);
            }
            (pairs, vec![MergeInput::Pair(nb - 2)])
        }
        (true, PairStrategy::MergeTree) => {
            // Rejected strategy (§III-D3): a full binary merge tree;
            // upper levels are giant pairwise merges that replace the
            // cache-efficient multiway merge.
            let mut pairs: Vec<PairSpec> = Vec::new();
            let mut level: Vec<(MergeSrc, usize)> = (0..nb)
                .map(|b| (MergeSrc::Batch(b), batch_len(b)))
                .collect();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut it = level.into_iter();
                while let Some((l, ll)) = it.next() {
                    match it.next() {
                        Some((r, rl)) => {
                            pairs.push(PairSpec {
                                left: l,
                                right: r,
                                out_elems: ll + rl,
                            });
                            next.push((MergeSrc::Merged(pairs.len() - 1), ll + rl));
                        }
                        None => next.push((l, ll)),
                    }
                }
                level = next;
            }
            let root = match level[0].0 {
                MergeSrc::Merged(slot) => MergeInput::Pair(slot),
                MergeSrc::Batch(b) => MergeInput::Batch(b),
            };
            (pairs, vec![root])
        }
    }
}

/// The shared lowering: geometry + merge schedule + FIFO step emission.
/// `piped` selects the staging discipline (separate in/out pinned
/// buffers and asynchronous chunked transfers vs one blocking buffer).
fn lower(config: HetSortConfig, n: usize, piped: bool) -> Result<Plan, HetSortError> {
    let (nb, ngpu, total_streams, batches) = geometry(&config, n);
    let (pairs, final_inputs) = pair_schedule(&config, n, nb);
    let db = config.double_buffered();
    // Blocking + double-buffered: the sorted batch is still
    // device-resident when it is written out, so the outbound pinned
    // bounce is elided — `DtoH` carries the (pageable) device→host cost
    // and `StageOut` becomes the zero-byte marker where the chunk is
    // emitted straight from device memory.
    let elided = db && !piped;

    let mut steps: Vec<Step> = Vec::new();
    // FIFO tails. The paper shape serializes every step of a stream on
    // one tail; double-buffered staging splits each stream into a host
    // lane (pinned allocs + staging copies) and a device lane (HtoD,
    // sort, DtoH) so the host→pinned bounce of chunk c overlaps the
    // DMA of chunk c−1. Buffer-reuse hazards that the single tail made
    // implicit become explicit edges below (and the validator's `fifo`
    // rule demands exactly this discipline).
    let mut host_tail: Vec<Option<usize>> = vec![None; total_streams];
    let mut dev_tail: Vec<Option<usize>> = vec![None; total_streams];
    let push = |steps: &mut Vec<Step>,
                host_tail: &mut Vec<Option<usize>>,
                dev_tail: &mut Vec<Option<usize>>,
                kind: StepKind,
                mut deps: Vec<usize>,
                stream: Option<usize>,
                dev_lane: bool| {
        if let Some(s) = stream {
            let tail = if db && dev_lane {
                &mut dev_tail[s]
            } else {
                &mut host_tail[s]
            };
            if let Some(prev) = *tail {
                deps.push(prev);
            }
            let idx = steps.len();
            steps.push(Step { kind, deps, stream });
            *tail = Some(idx);
            return idx;
        }
        let idx = steps.len();
        steps.push(Step { kind, deps, stream });
        idx
    };

    // 1. Pinned allocations: one buffer for blocking approaches
    //    (reused in both directions, as in §IV-E's reproduction),
    //    two per stream (in + out) for piped approaches.
    let ps_bytes = config.elem_bytes * config.pinned_elems as f64;
    // Double-buffered staging doubles the *inbound* buffer: two
    // parity-selected halves share one allocation (one producer key, so
    // the alloc count per stream is unchanged either way).
    let in_bytes = if db { 2.0 * ps_bytes } else { ps_bytes };
    if piped {
        for s in 0..total_streams {
            push(
                &mut steps,
                &mut host_tail,
                &mut dev_tail,
                StepKind::PinnedAlloc {
                    stream: s,
                    bytes: in_bytes,
                    dir_in: true,
                },
                vec![],
                Some(s),
                false,
            );
            push(
                &mut steps,
                &mut host_tail,
                &mut dev_tail,
                StepKind::PinnedAlloc {
                    stream: s,
                    bytes: ps_bytes,
                    dir_in: false,
                },
                vec![],
                Some(s),
                false,
            );
        }
    } else {
        // Blocking approaches reuse one staging buffer per host thread
        // for both directions (as in the §IV-E reproduction); elided
        // stage-out never bounces outbound at all, so the inbound
        // halves are the whole pinned footprint.
        for s in 0..total_streams {
            push(
                &mut steps,
                &mut host_tail,
                &mut dev_tail,
                StepKind::PinnedAlloc {
                    stream: s,
                    bytes: in_bytes,
                    dir_in: true,
                },
                vec![],
                Some(s),
                false,
            );
        }
    }

    // 2. Per batch: chunked stage-in/HtoD, sort, chunked DtoH/
    //    stage-out, all FIFO within the batch's stream.
    let ps = config.pinned_elems;
    let mut last_stage_out: Vec<usize> = vec![0; nb];
    // Per stream: the previous batch's last HtoD and StageOut, for the
    // explicit buffer-reuse edges of the double-buffered discipline.
    let mut prev_htod: Vec<Option<usize>> = vec![None; total_streams];
    let mut prev_sout: Vec<Option<usize>> = vec![None; total_streams];
    for b in &batches {
        let s = b.stream;
        let stream = Some(s);
        let nchunks = b.len.div_ceil(ps);
        let mut htods: Vec<usize> = Vec::with_capacity(nchunks);
        // A batch always has ≥ 1 chunk, so the loop below assigns this.
        let mut last_htod = 0;
        let mut souts: Vec<usize> = Vec::with_capacity(nchunks);
        for c in 0..nchunks {
            let cstart = b.start + c * ps;
            let clen = ps.min(b.start + b.len - cstart);
            // Double-buffered: the half chunk c overwrites (parity
            // c % 2) was last read by HtoD(c−2); the first chunk of a
            // later batch waits for the previous batch's last HtoD.
            let mut si_deps = Vec::new();
            if db {
                if c >= 2 {
                    si_deps.push(htods[c - 2]);
                } else if c == 0 {
                    if let Some(h) = prev_htod[s] {
                        si_deps.push(h);
                    }
                }
            }
            let si = push(
                &mut steps,
                &mut host_tail,
                &mut dev_tail,
                StepKind::StageIn {
                    batch: b.index,
                    chunk: c,
                    start: cstart,
                    len: clen,
                },
                si_deps,
                stream,
                false,
            );
            // The DMA waits for its staging copy (explicit under the
            // two-lane discipline; the single tail implies it in the
            // paper shape). When stage-out is elided, the first HtoD of
            // a batch also waits for the previous batch's last emission
            // marker — the device buffer it overwrites was read there.
            let mut h_deps = Vec::new();
            if db {
                h_deps.push(si);
                if elided && c == 0 {
                    if let Some(m) = prev_sout[s] {
                        h_deps.push(m);
                    }
                }
            }
            let h = push(
                &mut steps,
                &mut host_tail,
                &mut dev_tail,
                StepKind::HtoD {
                    batch: b.index,
                    chunk: c,
                    start: cstart,
                    len: clen,
                },
                h_deps,
                stream,
                true,
            );
            htods.push(h);
            last_htod = h;
        }
        let sort = push(
            &mut steps,
            &mut host_tail,
            &mut dev_tail,
            StepKind::GpuSort { batch: b.index },
            vec![last_htod],
            stream,
            true,
        );
        let mut prev = sort;
        for c in 0..nchunks {
            let cstart = b.start + c * ps;
            let clen = ps.min(b.start + b.len - cstart);
            // Bounced stage-out reuses one outbound pinned buffer: the
            // DMA of chunk c overwrites what StageOut(c−1) read (or, at
            // a batch boundary, what the previous batch's last StageOut
            // read). Elided mode has no outbound buffer to protect.
            let mut d_deps = Vec::new();
            if db && !elided {
                if c >= 1 {
                    d_deps.push(souts[c - 1]);
                } else if let Some(o) = prev_sout[s] {
                    d_deps.push(o);
                }
            }
            let d = push(
                &mut steps,
                &mut host_tail,
                &mut dev_tail,
                StepKind::DtoH {
                    batch: b.index,
                    chunk: c,
                    start: cstart,
                    len: clen,
                },
                d_deps,
                stream,
                true,
            );
            let so_deps = if db { vec![d] } else { vec![] };
            prev = push(
                &mut steps,
                &mut host_tail,
                &mut dev_tail,
                StepKind::StageOut {
                    batch: b.index,
                    chunk: c,
                    start: cstart,
                    len: clen,
                },
                so_deps,
                stream,
                false,
            );
            souts.push(prev);
        }
        prev_htod[s] = Some(last_htod);
        prev_sout[s] = Some(prev);
        last_stage_out[b.index] = prev;
    }

    // 3. Pipelined two-way merges: ready when both inputs exist.
    let mut pair_steps: Vec<usize> = Vec::with_capacity(pairs.len());
    let src_dep = |src: MergeSrc, pair_steps: &Vec<usize>| match src {
        MergeSrc::Batch(b) => last_stage_out[b],
        MergeSrc::Merged(slot) => pair_steps[slot],
    };
    for (slot, spec) in pairs.iter().enumerate() {
        let deps = vec![
            src_dep(spec.left, &pair_steps),
            src_dep(spec.right, &pair_steps),
        ];
        let idx = push(
            &mut steps,
            &mut host_tail,
            &mut dev_tail,
            StepKind::PairMerge { slot },
            deps,
            None,
            false,
        );
        pair_steps.push(idx);
    }

    // 4. Final multiway merge (absent when n_b = 1: StageOut wrote B).
    if nb > 1 {
        let deps: Vec<usize> = final_inputs
            .iter()
            .map(|inp| match *inp {
                MergeInput::Batch(b) => last_stage_out[b],
                MergeInput::Pair(slot) => pair_steps[slot],
            })
            .collect();
        push(
            &mut steps,
            &mut host_tail,
            &mut dev_tail,
            StepKind::MultiwayMerge {
                inputs: final_inputs,
            },
            deps,
            None,
            false,
        );
    }

    Ok(Plan {
        config,
        n,
        batches,
        pairs,
        steps,
        total_streams,
        asynchronous: piped,
        device_ids: (0..ngpu).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_vgpu::{platform1, platform2};

    fn cfg(approach: Approach) -> HetSortConfig {
        HetSortConfig::paper_defaults(platform1(), approach)
            .with_batch_elems(1000)
            .with_pinned_elems(300)
    }

    #[test]
    fn builders_validate_and_lower() {
        for (approach, n) in [
            (Approach::BLine, 1000),
            (Approach::BLineMulti, 5000),
            (Approach::PipeData, 6000),
            (Approach::PipeMerge, 7000),
        ] {
            let dag = build_dag(cfg(approach), n).unwrap();
            dag.plan.check_invariants().unwrap();
            dag.validate().unwrap();
            assert_eq!(dag.plan.config.approach, approach);
        }
    }

    #[test]
    fn piped_discipline_is_the_only_structural_difference() {
        // Same geometry, different staging: blocking allocs 1 pinned
        // buffer per stream, piped allocs 2 and is asynchronous.
        let blocking = build(cfg(Approach::BLineMulti), 5000).unwrap();
        let piped = build(cfg(Approach::PipeData), 5000).unwrap();
        let allocs = |p: &Plan| {
            p.steps
                .iter()
                .filter(|s| matches!(s.kind, StepKind::PinnedAlloc { .. }))
                .count()
        };
        assert_eq!(allocs(&blocking), blocking.total_streams);
        assert_eq!(allocs(&piped), 2 * piped.total_streams);
        assert!(!blocking.asynchronous);
        assert!(piped.asynchronous);
    }

    #[test]
    fn multi_gpu_pair_schedule_matches_heuristic() {
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(1000)
            .with_pinned_elems(250);
        let plan = build(cfg, 10_000).unwrap();
        assert_eq!(plan.pairs.len(), 2); // ⌊9/2²⌋ on 2 GPUs
    }
}
