//! A free-list buffer pool for the executors' scratch allocations.
//!
//! The hot paths this serves are the per-merge output buffers and the
//! recovery staging buffers in [`crate::exec_stream::StreamExec`]:
//! before the pool, every Split-mode merge zero-initialized a fresh
//! `vec![T::default(); b.len]` and every DtoH fault cloned the whole
//! device buffer. A checkout that can be served from a recycled
//! allocation (capacity already covers the request) is a *hit*; a
//! checkout that has to grow or allocate is a *miss*. The counters
//! surface through the metrics registry as `pool.hits` / `pool.misses`
//! next to the `recovery.*` family, so a bench run can assert the
//! steady state allocates nothing.

use hetsort_obs::MetricsRegistry;

/// Hit/miss counters for one [`BufferPool`] (merged across streams by
/// the engines, folded into metrics as `pool.*`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from a recycled allocation without growing.
    pub hits: u64,
    /// Checkouts that allocated or grew a buffer.
    pub misses: u64,
}

impl PoolStats {
    /// Accumulate another pool's counters (per-stream → per-run).
    pub fn absorb(&mut self, other: PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Add the counters to `reg` as `pool.hits` / `pool.misses`.
    pub fn fold_into(&self, reg: &mut MetricsRegistry) {
        reg.add_counter("pool.hits", self.hits as f64);
        reg.add_counter("pool.misses", self.misses as f64);
    }
}

/// A small free-list of reusable `Vec<T>` buffers.
///
/// `checkout(len)` returns a buffer of exactly `len` elements, served
/// best-fit from the free list when some recycled buffer's capacity
/// already covers the request (no allocation, no zeroing of the
/// recycled prefix beyond what `resize` must fill). `checkin` returns
/// a buffer to the list. The pool is unbounded in count but each
/// executor holds at most a couple of scratch buffers at a time, so in
/// practice it stabilizes at the high-water mark of one batch.
#[derive(Debug, Default)]
pub struct BufferPool<T> {
    free: Vec<Vec<T>>,
    /// Hit/miss counters, read by the engines at fold time.
    pub stats: PoolStats,
}

impl<T: Default + Clone> BufferPool<T> {
    pub fn new() -> Self {
        BufferPool {
            free: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// Check out a buffer of `len` elements.
    pub fn checkout(&mut self, len: usize) -> Vec<T> {
        // Best fit: the smallest recycled buffer that covers `len`.
        let pos = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match pos {
            Some(i) => {
                self.stats.hits += 1;
                let mut buf = self.free.swap_remove(i);
                buf.resize(len, T::default());
                buf
            }
            None => {
                self.stats.misses += 1;
                // Grow the largest recycled buffer rather than leaving
                // it stranded below every future request.
                if let Some(i) = self
                    .free
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i)
                {
                    let mut buf = self.free.swap_remove(i);
                    buf.resize(len, T::default());
                    buf
                } else {
                    vec![T::default(); len]
                }
            }
        }
    }

    /// Return a buffer to the free list for later reuse.
    pub fn checkin(&mut self, buf: Vec<T>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_instead_of_allocating() {
        let mut pool: BufferPool<u64> = BufferPool::new();
        let a = pool.checkout(100);
        assert_eq!(pool.stats, PoolStats { hits: 0, misses: 1 });
        let ptr = a.as_ptr();
        pool.checkin(a);
        // Same-size request is served from the same allocation.
        let b = pool.checkout(100);
        assert_eq!(pool.stats, PoolStats { hits: 1, misses: 1 });
        assert_eq!(b.as_ptr(), ptr);
        pool.checkin(b);
        // A smaller request still reuses (capacity covers it).
        let c = pool.checkout(10);
        assert_eq!(pool.stats, PoolStats { hits: 2, misses: 1 });
        assert_eq!(c.len(), 10);
        pool.checkin(c);
        // A larger request grows the recycled buffer: a miss, but the
        // free list does not strand the old allocation.
        let d = pool.checkout(1000);
        assert_eq!(pool.stats, PoolStats { hits: 2, misses: 2 });
        assert_eq!(d.len(), 1000);
        pool.checkin(d);
        assert_eq!(pool.free.len(), 1);
    }

    #[test]
    fn best_fit_prefers_the_smallest_cover() {
        let mut pool: BufferPool<u64> = BufferPool::new();
        let small = pool.checkout(10);
        let big = pool.checkout(1000);
        let big_ptr = big.as_ptr();
        pool.checkin(small);
        pool.checkin(big);
        // A mid-size request must not burn the big buffer when growing
        // the small one... it takes the smallest cover: the big one
        // covers 500, the small one does not.
        let mid = pool.checkout(500);
        assert_eq!(mid.as_ptr(), big_ptr);
    }
}
