//! Device-loss recovery shared by the functional executors.
//!
//! When a [`FaultInjector`](hetsort_vgpu::FaultInjector) pool schedule
//! kills a GPU mid-run, the executors checkpoint per-batch completion
//! (host-resident sorted runs survive; device-resident state died with
//! the card) and rebuild the *unfinished* work as a fresh plan over the
//! surviving devices. Two properties make that re-plan cheap and safe:
//!
//! * batch tiling (`index`/`start`/`len`) depends only on `n` and
//!   `batch_elems`, never on the GPU count — so a survivor plan has the
//!   *identical* batch set, and the original plan's merge schedule
//!   (pair slots, multiway inputs) stays valid verbatim;
//! * [`Plan::on_devices`] relabels the survivor plan's compacted GPU
//!   indices back to physical device numbers, so the shared fault
//!   schedule, spans, and residency accounting keep addressing the same
//!   hardware, and re-runs [`Plan::check_invariants`] before the
//!   executor resumes.

use std::collections::BTreeSet;

use crate::error::HetSortError;
use crate::plan::{Plan, StepKind};

/// The batch a stream-bound step operates on, if any.
pub fn step_batch(kind: &StepKind) -> Option<usize> {
    match kind {
        StepKind::StageIn { batch, .. }
        | StepKind::HtoD { batch, .. }
        | StepKind::GpuSort { batch }
        | StepKind::DtoH { batch, .. }
        | StepKind::StageOut { batch, .. } => Some(*batch),
        StepKind::PinnedAlloc { .. }
        | StepKind::PairMerge { .. }
        | StepKind::MultiwayMerge { .. } => None,
    }
}

/// Build a recovery re-plan of `base` (the *original* plan) over the
/// devices not in `lost`, relabelled to physical device numbers and
/// invariant-checked. `Ok(None)` when no device survives — the caller
/// decides between CPU fallback and a typed
/// [`HetSortError::DeviceLost`].
///
/// # Errors
///
/// Propagates [`Plan::build`] / [`Plan::on_devices`] failures.
pub fn survivor_plan(base: &Plan, lost: &BTreeSet<usize>) -> Result<Option<Plan>, HetSortError> {
    let surv: Vec<usize> = (0..base.config.platform.n_gpus())
        .filter(|g| !lost.contains(g))
        .collect();
    if surv.is_empty() {
        return Ok(None);
    }
    let mut cfg = base.config.clone();
    cfg.platform.gpus = surv
        .iter()
        .map(|&g| base.config.platform.gpus[g].clone())
        .collect();
    let rp = Plan::build(cfg, base.n)?.on_devices(surv)?;
    // Same batch_elems + same n ⇒ same tiling; the original plan's
    // merge schedule keeps referencing valid batch indices.
    debug_assert_eq!(rp.nb(), base.nb());
    Ok(Some(rp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HetSortConfig};
    use hetsort_vgpu::platform2;

    #[test]
    fn survivor_plan_keeps_tiling_and_maps_devices() {
        let cfg = HetSortConfig::paper_defaults(platform2(), Approach::PipeMerge)
            .with_batch_elems(5_000)
            .with_pinned_elems(1_000);
        let base = Plan::build(cfg, 40_000).unwrap();
        assert_eq!(base.device_ids, vec![0, 1]);
        let lost: BTreeSet<usize> = [0].into_iter().collect();
        let rp = survivor_plan(&base, &lost).unwrap().unwrap();
        rp.check_invariants().unwrap();
        assert_eq!(rp.device_ids, vec![1]);
        assert_eq!(rp.nb(), base.nb());
        for (a, b) in base.batches.iter().zip(rp.batches.iter()) {
            assert_eq!((a.index, a.start, a.len), (b.index, b.start, b.len));
        }
        // Every batch now addresses physical device 1.
        for b in &rp.batches {
            assert_eq!(rp.physical_gpu(b.gpu), 1);
        }
        // Losing everything yields None.
        let all: BTreeSet<usize> = [0, 1].into_iter().collect();
        assert!(survivor_plan(&base, &all).unwrap().is_none());
    }
}
