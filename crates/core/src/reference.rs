//! The parallel CPU reference implementation (§IV-C).
//!
//! The paper benchmarks the GNU parallel mode sort with 16 threads
//! (PLATFORM1) or 20 threads (PLATFORM2) as the baseline every
//! heterogeneous approach is compared against. Two faces here:
//!
//! * [`reference_time`] — simulated response time from the calibrated
//!   black-box model (used at paper scale);
//! * [`reference_sort_real`] — the real from-scratch parallel multiway
//!   mergesort on actual data (used at functional scale).

use hetsort_vgpu::{Machine, PlatformSpec};

/// Simulated response time of the parallel reference sort.
pub fn reference_time(plat: &PlatformSpec, n: usize, threads: u32) -> f64 {
    let mut m = Machine::new(plat.clone());
    let op = m.ref_sort(n as f64, threads, &[], None);
    let tl = match m.run() {
        Ok(tl) => tl,
        // A single unconstrained op cannot stall the engine; rejecting
        // it would be a simulator bug, not a runtime condition.
        Err(e) => unreachable!("reference sort simulation cannot fail: {e}"),
    };
    tl.span(op).duration()
}

/// Simulated reference time at the platform's full thread count.
pub fn reference_time_full(plat: &PlatformSpec, n: usize) -> f64 {
    reference_time(plat, n, plat.cpu.cores)
}

/// Real parallel mergesort (the GNU stand-in), for functional runs.
pub fn reference_sort_real(threads: usize, data: &mut [f64]) {
    hetsort_algos::par_mergesort(threads, data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_algos::verify::is_sorted;
    use hetsort_vgpu::{platform1, platform2};

    #[test]
    fn reference_scales_with_threads() {
        let p = platform1();
        let t1 = reference_time(&p, 1_000_000_000, 1);
        let t16 = reference_time(&p, 1_000_000_000, 16);
        let speedup = t1 / t16;
        // Figure 4b: 10.12× at n = 1e9 with 16 threads.
        assert!((speedup - 10.12).abs() < 1.0, "speedup={speedup}");
    }

    #[test]
    fn small_n_scales_poorly() {
        // Figure 4b: 3.17× at n = 1e6.
        let p = platform1();
        let s = reference_time(&p, 1_000_000, 1) / reference_time(&p, 1_000_000, 16);
        assert!((s - 3.17).abs() < 0.8, "speedup={s}");
    }

    #[test]
    fn platform2_uses_20_threads() {
        let p = platform2();
        let t = reference_time_full(&p, 700_000_000);
        // Figure 5: ratio CPU/GPU between 1.22 and 1.32 where the GPU
        // BLINE takes ≈ 6.278 ns/elem → reference ∈ [5.36, 5.80] s.
        assert!((4.9..6.5).contains(&t), "t={t}");
    }

    #[test]
    fn real_reference_sorts() {
        let mut v: Vec<f64> = (0..10_000).rev().map(|i| i as f64).collect();
        reference_sort_real(4, &mut v);
        assert!(is_sorted(&v));
    }
}
