//! Timing reports: the paper's end-to-end accounting, both ways.
//!
//! §IV-E's central finding is that the literature (\[5\]) computes
//! "end-to-end" time from only `HtoD + GPUSort + DtoH (+ merge)`,
//! omitting pinned allocation, host staging copies, and per-copy
//! synchronization. A [`TimingReport`] therefore carries both totals:
//!
//! * [`TimingReport::total_s`] — the honest wall clock (simulation
//!   makespan, every overhead included);
//! * [`TimingReport::literature_total_s`] — the literature's method:
//!   the sum of the included components' *pure service* time.

use std::collections::BTreeMap;

use hetsort_obs::MetricsRegistry;
use hetsort_sim::Timeline;
use hetsort_vgpu::tags;

/// What the executor had to do to survive faults during a functional
/// run (all zeros on a fault-free run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Faults the schedule actually injected (tripped sites + panics).
    pub faults_injected: usize,
    /// DMA transfer retry attempts performed.
    pub retries: usize,
    /// Batches sorted host-side because the GPU path was unrecoverable
    /// (exhausted retries, sort failure, or a dead worker).
    pub degraded_batches: usize,
    /// Batches re-planned into device-sized sub-runs after a GPU OOM
    /// (GPU still sorts; the CPU merges the sub-runs).
    pub oom_replans: usize,
    /// Device-loss events observed (a GPU fell out of the pool).
    pub device_lost: usize,
    /// Whole-plan rebuilds onto surviving devices after a loss.
    pub replans: usize,
    /// Batches whose device-resident state died with a lost GPU and
    /// were re-sorted from the host-resident input checkpoint.
    pub batches_recomputed: usize,
    /// Bitmask of *which* physical GPUs were lost (bit `g` = GPU `g`).
    /// Several devices can die inside one checkpoint window, so a
    /// single "first lost" id would mis-attribute the event; the mask
    /// records every casualty.
    pub lost_gpu_mask: u64,
}

impl RecoveryStats {
    /// Anything non-zero?
    pub fn any(&self) -> bool {
        *self != RecoveryStats::default()
    }

    /// Record a lost physical GPU id in the mask (ids ≥ 64 saturate
    /// into the top bit rather than wrapping onto GPU 0).
    pub fn record_lost_gpu(&mut self, gpu: usize) {
        self.lost_gpu_mask |= 1u64 << gpu.min(63);
    }

    /// The lost physical GPU ids, in ascending order.
    pub fn lost_gpus(&self) -> Vec<usize> {
        (0..64)
            .filter(|g| self.lost_gpu_mask & (1 << g) != 0)
            .collect()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "faults injected: {}, retries: {}, degraded batches: {}, OOM re-plans: {}, \
             devices lost: {} {:?}, re-plans: {}, batches recomputed: {}",
            self.faults_injected,
            self.retries,
            self.degraded_batches,
            self.oom_replans,
            self.device_lost,
            self.lost_gpus(),
            self.replans,
            self.batches_recomputed
        )
    }

    /// Surface the stats as `recovery.*` counters in a metrics registry,
    /// so fault-injection runs are observable in every export path.
    pub fn fold_into(&self, reg: &mut MetricsRegistry) {
        reg.add_counter("recovery.faults_injected", self.faults_injected as f64);
        reg.add_counter("recovery.retries", self.retries as f64);
        reg.add_counter("recovery.degraded_batches", self.degraded_batches as f64);
        reg.add_counter("recovery.oom_replans", self.oom_replans as f64);
        reg.add_counter("recovery.device_lost", self.device_lost as f64);
        reg.add_counter("recovery.replans", self.replans as f64);
        reg.add_counter(
            "recovery.batches_recomputed",
            self.batches_recomputed as f64,
        );
        reg.add_counter("recovery.lost_gpu_mask", self.lost_gpu_mask as f64);
    }
}

/// Component breakdown and totals for one simulated run.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Approach name.
    pub approach: String,
    /// Platform name.
    pub platform: String,
    /// Input size (elements).
    pub n: usize,
    /// Number of batches.
    pub nb: usize,
    /// Full end-to-end response time (simulation makespan), seconds.
    pub total_s: f64,
    /// The literature's end-to-end method: included components only.
    pub literature_total_s: f64,
    /// Busy seconds per component tag (sum of span durations; overlap
    /// counts multiply — this is "component time" as papers report it).
    pub components: BTreeMap<String, f64>,
    /// Total async-copy synchronization latency (inside HtoD/DtoH spans).
    pub sync_s: f64,
    /// Total kernel-launch latency (inside GPUSort spans).
    pub launch_s: f64,
    /// The timeline, for Gantt rendering and further analysis.
    pub timeline: Timeline,
}

impl TimingReport {
    /// Assemble a report from a finished timeline.
    pub fn from_timeline(
        approach: &str,
        platform: &str,
        n: usize,
        nb: usize,
        sync_s: f64,
        launch_s: f64,
        timeline: Timeline,
    ) -> Self {
        let mut components = BTreeMap::new();
        for (tag, name) in timeline.tags() {
            let t = timeline.busy_time(tag);
            if t > 0.0 {
                components.insert(name.to_string(), t);
            }
        }
        // Literature accounting: pure transfer + sort + merge service
        // time (their embedded sync/launch latencies removed — the
        // literature's numbers are DMA/kernel time proper).
        let mut lit = 0.0;
        for &name in tags::LITERATURE_COMPONENTS {
            if let Some(&t) = components.get(name) {
                lit += t;
            }
        }
        lit -= sync_s + launch_s;
        let total_s = timeline.makespan();
        TimingReport {
            approach: approach.to_string(),
            platform: platform.to_string(),
            n,
            nb,
            total_s,
            literature_total_s: lit.max(0.0),
            components,
            sync_s,
            launch_s,
            timeline,
        }
    }

    /// Busy time of one component, or `None` when the tag never
    /// appeared in the run. Absence is surfaced rather than folded to
    /// `0.0` so a typo'd span name in a gate scenario or golden-shape
    /// test cannot pass vacuously — callers that genuinely treat a
    /// missing component as zero (CSV columns) opt in with
    /// `unwrap_or(0.0)`.
    pub fn component(&self, name: &str) -> Option<f64> {
        self.components.get(name).copied()
    }

    /// The run as a structured metrics registry: every simulator span
    /// folded into the observability vocabulary, with the embedded
    /// sync/launch latencies surfaced as counters.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = hetsort_obs::registry_from_timeline(&self.timeline);
        reg.add_counter("sim.sync_s", self.sync_s);
        reg.add_counter("sim.launch_s", self.launch_s);
        reg
    }

    /// The overhead the literature omits: full total minus what their
    /// accounting would report (≥ 0 for serial pipelines; may be
    /// negative under overlap, where busy-sums over-count).
    pub fn missing_overhead_s(&self) -> f64 {
        self.total_s - self.literature_total_s
    }

    /// Render a one-line CSV row: `approach,platform,n,nb,total,lit,<tags>`.
    pub fn csv_row(&self, tag_order: &[&str]) -> String {
        let mut row = format!(
            "{},{},{},{},{:.6},{:.6}",
            self.approach, self.platform, self.n, self.nb, self.total_s, self.literature_total_s
        );
        for t in tag_order {
            // A fixed column layout renders absent components as zero.
            row.push_str(&format!(",{:.6}", self.component(t).unwrap_or(0.0)));
        }
        row
    }

    /// Render a human-readable component table.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} on {} (n={}, n_b={}): total {:.3} s  (literature method: {:.3} s)\n",
            self.approach, self.platform, self.n, self.nb, self.total_s, self.literature_total_s
        );
        for (name, t) in &self.components {
            s.push_str(&format!("  {name:<14} {t:>10.4} s\n"));
        }
        s.push_str(&format!(
            "  {:<14} {:>10.4} s\n  {:<14} {:>10.4} s\n",
            "(sync)", self.sync_s, "(launch)", self.launch_s
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_sim::{Op, SimBuilder};

    fn sample_report() -> TimingReport {
        let mut sim = SimBuilder::new();
        let htod = sim.tag(tags::HTOD);
        let sort = sim.tag(tags::GPU_SORT);
        let mcpy = sim.tag(tags::MCPY_IN);
        let a = sim.op(Op::new(mcpy, 10.0).cap(10.0));
        let b = sim.op(Op::new(htod, 10.0).cap(5.0).dep(a));
        let _c = sim.op(Op::new(sort, 10.0).cap(10.0).dep(b));
        let tl = sim.run().unwrap();
        TimingReport::from_timeline("BLine", "PLATFORM1", 10, 1, 0.0, 0.0, tl)
    }

    #[test]
    fn totals_and_components() {
        let r = sample_report();
        assert!((r.total_s - 4.0).abs() < 1e-9);
        // Literature counts HtoD (2 s) + GPUSort (1 s) but not MCpyIn.
        assert!((r.literature_total_s - 3.0).abs() < 1e-9);
        assert!((r.missing_overhead_s() - 1.0).abs() < 1e-9);
        assert!((r.component(tags::MCPY_IN).expect("MCpyIn ran") - 1.0).abs() < 1e-9);
        // Unknown components are a None, not a vacuous 0.0.
        assert_eq!(r.component("Nope"), None);
    }

    #[test]
    fn recovery_stats_record_every_lost_gpu() {
        let mut r = RecoveryStats::default();
        assert!(!r.any());
        r.record_lost_gpu(1);
        r.record_lost_gpu(3);
        assert_eq!(r.lost_gpu_mask, 0b1010);
        assert_eq!(r.lost_gpus(), vec![1, 3]);
        assert!(r.any());
        assert!(r.summary().contains("[1, 3]"));
        // Absurd ids saturate instead of wrapping onto GPU 0.
        r.record_lost_gpu(200);
        assert_eq!(r.lost_gpus(), vec![1, 3, 63]);
    }

    #[test]
    fn csv_row_shape() {
        let r = sample_report();
        let row = r.csv_row(&[tags::HTOD, tags::DTOH]);
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), 8);
        assert_eq!(fields[0], "BLine");
        assert_eq!(fields[2], "10");
    }

    #[test]
    fn summary_mentions_components() {
        let r = sample_report();
        let s = r.summary();
        assert!(s.contains("HtoD"));
        assert!(s.contains("total 4.000 s"));
    }

    #[test]
    fn sync_subtracted_from_literature() {
        let mut sim = SimBuilder::new();
        let htod = sim.tag(tags::HTOD);
        sim.op(Op::new(htod, 10.0).cap(10.0).latency(0.5));
        let tl = sim.run().unwrap();
        let r = TimingReport::from_timeline("X", "P", 1, 1, 0.5, 0.0, tl);
        // Span is 1.5 s but the pure transfer is 1.0 s.
        assert!((r.literature_total_s - 1.0).abs() < 1e-9);
        assert!((r.total_s - 1.5).abs() < 1e-9);
    }
}
