//! Efficiency relative to the lower bound (the paper's 0.93×/0.88×
//! "slowdown" numbers at n = 4.9·10⁹).

use crate::lower_bound::LowerBoundModel;

/// A measured-vs-model comparison at one input size.
#[derive(Debug, Clone, Copy)]
pub struct Efficiency {
    /// Input size.
    pub n: usize,
    /// Measured (simulated) response time.
    pub measured_s: f64,
    /// Model prediction.
    pub model_s: f64,
}

impl Efficiency {
    /// Build from a model and a measurement.
    pub fn new(model: &LowerBoundModel, n: usize, measured_s: f64) -> Efficiency {
        Efficiency {
            n,
            measured_s,
            model_s: model.predict(n),
        }
    }

    /// The paper's "slowdown" metric: model/measured (1.0 = at the
    /// bound; > 1.0 = *faster* than the bound, possible because
    /// pipelining overlaps transfers the serial BLINE probe cannot).
    pub fn slowdown(&self) -> f64 {
        if self.measured_s <= 0.0 {
            f64::INFINITY
        } else {
            self.model_s / self.measured_s
        }
    }

    /// Is the measurement beating the serial lower bound?
    pub fn beats_bound(&self) -> bool {
        self.measured_s < self.model_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_semantics_match_paper() {
        let m = LowerBoundModel {
            slope: 6.278e-9,
            n_gpus: 1,
        };
        // Paper: at n = 4.9e9 PIPEDATA is 0.93× the model.
        let n = 4_900_000_000usize;
        let model_t = m.predict(n);
        let measured = model_t / 0.93;
        let e = Efficiency::new(&m, n, measured);
        assert!((e.slowdown() - 0.93).abs() < 1e-12);
        assert!(!e.beats_bound());
        // At small n the paper observes PIPEDATA *beating* the bound.
        let e2 = Efficiency::new(&m, 1_400_000_000, m.predict(1_400_000_000) * 0.9);
        assert!(e2.beats_bound());
        assert!(e2.slowdown() > 1.0);
    }

    #[test]
    fn degenerate_measurement() {
        let m = LowerBoundModel {
            slope: 1e-9,
            n_gpus: 1,
        };
        let e = Efficiency::new(&m, 100, 0.0);
        assert!(e.slowdown().is_infinite());
    }
}
