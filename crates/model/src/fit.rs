//! Least-squares fitting used to extract model slopes from sweeps.

/// Result of a least-squares linear fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination (1.0 = perfect fit).
    pub r2: f64,
}

/// Ordinary least squares over `(x, y)` points.
///
/// # Panics
///
/// Panics on fewer than 2 points or zero x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 0.0, "x values are degenerate");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - slope * p.0 - intercept).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    LinearFit {
        slope,
        intercept,
        r2,
    }
}

/// Least-squares slope of `y = slope·x` (line through the origin — the
/// form of the paper's lower-bound models).
pub fn fit_line_through_origin(points: &[(f64, f64)]) -> f64 {
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    assert!(sxx > 0.0, "x values are degenerate");
    sxy / sxx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let f = linear_fit(&pts);
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept - 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_has_lower_r2() {
        let pts = [(1.0, 3.0), (2.0, 5.5), (3.0, 8.6), (4.0, 11.1), (5.0, 16.0)];
        let f = linear_fit(&pts);
        assert!(f.r2 < 1.0);
        assert!(f.r2 > 0.9);
        assert!(f.slope > 2.5 && f.slope < 3.5);
    }

    #[test]
    fn origin_fit() {
        let pts: Vec<(f64, f64)> = (1..6).map(|i| (i as f64, 6.278e-9 * i as f64)).collect();
        let s = fit_line_through_origin(&pts);
        assert!((s - 6.278e-9).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_few_points_panics() {
        linear_fit(&[(1.0, 1.0)]);
    }
}
