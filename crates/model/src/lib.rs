//! # hetsort-model — lower-bound performance models (§IV-G)
//!
//! The paper derives simple analytical lower bounds on heterogeneous
//! sorting time from BLINE's peak throughput, then measures how close
//! PIPEDATA gets:
//!
//! * **1 GPU**: the fit `y = 6.278·10⁻⁹ · n` seconds, the per-element
//!   cost of BLINE at the largest single-batch size on PLATFORM2;
//! * **2 GPUs**: `y = 3.706·10⁻⁹ · n`, from BLINE on both GPUs with
//!   `b_s = n/2` plus one unavoidable CPU merge.
//!
//! [`lower_bound`] rebuilds both models *from the simulator* (the same
//! way the paper builds them from measurements), and [`fit`] provides
//! the least-squares affine fitting used to extract slopes.

// No unsafe anywhere in this crate — enforced, not assumed.
#![forbid(unsafe_code)]

pub mod efficiency;
pub mod fit;
pub mod lower_bound;

pub use efficiency::Efficiency;
pub use fit::{fit_line_through_origin, linear_fit, LinearFit};
pub use lower_bound::{LowerBoundModel, PAPER_SLOPE_1GPU, PAPER_SLOPE_2GPU};
