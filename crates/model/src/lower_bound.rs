//! The §IV-G lower-limit baseline models, rebuilt the paper's way.

use hetsort_core::{simulate, Approach, HetSortConfig, StagingMode};
use hetsort_vgpu::PlatformSpec;

/// The paper's measured 1-GPU model slope on PLATFORM2 (s/element).
pub const PAPER_SLOPE_1GPU: f64 = 6.278e-9;
/// The paper's measured 2-GPU model slope on PLATFORM2 (s/element).
pub const PAPER_SLOPE_2GPU: f64 = 3.706e-9;

/// A linear lower-bound model `t(n) = slope · n`.
#[derive(Debug, Clone, Copy)]
pub struct LowerBoundModel {
    /// Seconds per element.
    pub slope: f64,
    /// GPUs the model assumes.
    pub n_gpus: usize,
}

impl LowerBoundModel {
    /// Predicted time for `n` elements.
    pub fn predict(&self, n: usize) -> f64 {
        self.slope * n as f64
    }

    /// Derive the 1-GPU model exactly as the paper does: run BLINE at
    /// the largest `n` that fits in one GPU's global memory and divide
    /// (§IV-G uses n = 7·10⁸ on a K40m).
    ///
    /// # Panics
    ///
    /// Panics if the probe simulation fails (impossible for valid
    /// platforms).
    pub fn one_gpu(plat: &PlatformSpec) -> LowerBoundModel {
        let mut single = plat.clone();
        single.gpus.truncate(1);
        let n = (single.max_batch_elems(1) / 1_000_000) * 1_000_000;
        // The paper's probe stages through a single pinned buffer —
        // pin the protocol so the fitted slope stays the published one.
        let cfg =
            HetSortConfig::paper_defaults(single, Approach::BLine).with_staging(StagingMode::Paper);
        let r = simulate(cfg, n).expect("1-GPU lower-bound probe failed");
        LowerBoundModel {
            slope: r.total_s / n as f64,
            n_gpus: 1,
        }
    }

    /// Derive the 2-GPU model: BLINE on both GPUs with `b_s = n/2`
    /// (each GPU sorts one half) plus the unavoidable CPU merge of the
    /// two batches (§IV-G uses n = 1.4·10⁹, b_s = 7·10⁸, n_s = 1).
    ///
    /// # Panics
    ///
    /// Panics on platforms with fewer than 2 GPUs or probe failure.
    pub fn two_gpu(plat: &PlatformSpec) -> LowerBoundModel {
        assert!(plat.n_gpus() >= 2, "two_gpu model needs 2 GPUs");
        let bs = (plat.max_batch_elems(1) / 1_000_000) * 1_000_000;
        let n = 2 * bs;
        let cfg = HetSortConfig::paper_defaults(plat.clone(), Approach::BLineMulti)
            .with_batch_elems(bs)
            .with_staging(StagingMode::Paper);
        let r = simulate(cfg, n).expect("2-GPU lower-bound probe failed");
        LowerBoundModel {
            slope: r.total_s / n as f64,
            n_gpus: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_vgpu::platform2;

    #[test]
    fn one_gpu_slope_matches_paper() {
        let m = LowerBoundModel::one_gpu(&platform2());
        assert_eq!(m.n_gpus, 1);
        let err = (m.slope - PAPER_SLOPE_1GPU).abs() / PAPER_SLOPE_1GPU;
        assert!(
            err < 0.03,
            "slope {} vs paper {}",
            m.slope,
            PAPER_SLOPE_1GPU
        );
    }

    #[test]
    fn two_gpu_slope_in_paper_ballpark() {
        let m = LowerBoundModel::two_gpu(&platform2());
        assert_eq!(m.n_gpus, 2);
        let err = (m.slope - PAPER_SLOPE_2GPU).abs() / PAPER_SLOPE_2GPU;
        assert!(
            err < 0.20,
            "slope {} vs paper {}",
            m.slope,
            PAPER_SLOPE_2GPU
        );
        // Two GPUs must beat one, but by less than 2× (shared PCIe +
        // the extra merge — the paper's sub-linearity finding).
        let one = LowerBoundModel::one_gpu(&platform2());
        assert!(m.slope < one.slope);
        assert!(m.slope > one.slope / 2.0);
    }

    #[test]
    fn predictions_are_linear() {
        let m = LowerBoundModel {
            slope: 6.278e-9,
            n_gpus: 1,
        };
        assert!((m.predict(1_000_000_000) - 6.278).abs() < 1e-9);
        assert_eq!(m.predict(0), 0.0);
    }
}
