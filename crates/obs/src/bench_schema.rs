//! The stable `BENCH.json` schema and the tolerance-band comparison
//! behind the `bench_gate` regression gate.
//!
//! Schema (version 1):
//!
//! ```json
//! {
//!   "schema": "hetsort-bench",
//!   "version": 1,
//!   "generated": "YYYY-MM-DD",
//!   "scenarios": [
//!     {
//!       "id": "p1/pipedata/n2e9",
//!       "platform": "p1",
//!       "approach": "PIPEDATA",
//!       "n": 2000000000,
//!       "nb": 16,
//!       "total_s": 12.34,
//!       "literature_total_s": 10.1,
//!       "overlap_ratio": 0.42,
//!       "bus_util": 0.61,
//!       "components": {"HtoD": 1.2, "GPUSort": 3.4, ...},
//!       "counters": {"recovery.retries": 0, ...}
//!     }
//!   ]
//! }
//! ```
//!
//! The gate compares a current document against a committed baseline:
//! a scenario regresses when `current > baseline * (1 + rel) + abs`
//! on `total_s` (and, with a looser band, per component). Missing
//! scenarios fail the gate; new scenarios are reported but pass.

use std::collections::BTreeMap;

use crate::json::Json;

/// Measured result of one pinned benchmark scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Stable identifier, e.g. `"p1/pipedata/n2e9"`.
    pub id: String,
    /// Platform name (`p1`/`p2`).
    pub platform: String,
    /// Approach label (`BLINE`, `PIPEDATA`, `PARMEMCPY`, ...).
    pub approach: String,
    /// Elements sorted.
    pub n: u64,
    /// Batch count.
    pub nb: u64,
    /// Full end-to-end seconds.
    pub total_s: f64,
    /// The literature's accounting for the same run.
    pub literature_total_s: f64,
    /// Overlap ratio in `[0, 1]`.
    pub overlap_ratio: f64,
    /// Bus utilization in `[0, 1]`.
    pub bus_util: f64,
    /// Per-component busy seconds, keyed by op-class name.
    pub components: BTreeMap<String, f64>,
    /// Named counters (recovery stats etc.).
    pub counters: BTreeMap<String, f64>,
}

impl ScenarioResult {
    fn to_json(&self) -> Json {
        let comp = Json::Obj(
            self.components
                .iter()
                .map(|(k, v)| (k.clone(), Json::n(*v)))
                .collect(),
        );
        let ctr = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::n(*v)))
                .collect(),
        );
        Json::obj(vec![
            ("id", Json::s(self.id.clone())),
            ("platform", Json::s(self.platform.clone())),
            ("approach", Json::s(self.approach.clone())),
            ("n", Json::n(self.n as f64)),
            ("nb", Json::n(self.nb as f64)),
            ("total_s", Json::n(self.total_s)),
            ("literature_total_s", Json::n(self.literature_total_s)),
            ("overlap_ratio", Json::n(self.overlap_ratio)),
            ("bus_util", Json::n(self.bus_util)),
            ("components", comp),
            ("counters", ctr),
        ])
    }

    fn from_json(v: &Json) -> Result<ScenarioResult, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("scenario missing string field {k:?}"))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("scenario missing numeric field {k:?}"))
        };
        let map_field = |k: &str| -> Result<BTreeMap<String, f64>, String> {
            let obj = v
                .get(k)
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("scenario missing object field {k:?}"))?;
            obj.iter()
                .map(|(key, val)| {
                    val.as_f64()
                        .map(|f| (key.clone(), f))
                        .ok_or_else(|| format!("non-numeric value in {k:?}.{key:?}"))
                })
                .collect()
        };
        let out = ScenarioResult {
            id: str_field("id")?,
            platform: str_field("platform")?,
            approach: str_field("approach")?,
            n: num_field("n")? as u64,
            nb: num_field("nb")? as u64,
            total_s: num_field("total_s")?,
            literature_total_s: num_field("literature_total_s")?,
            overlap_ratio: num_field("overlap_ratio")?,
            bus_util: num_field("bus_util")?,
            components: map_field("components")?,
            counters: map_field("counters")?,
        };
        if !(0.0..=1.0).contains(&out.overlap_ratio) {
            return Err(format!("{}: overlap_ratio outside [0,1]", out.id));
        }
        if !(0.0..=1.0).contains(&out.bus_util) {
            return Err(format!("{}: bus_util outside [0,1]", out.id));
        }
        Ok(out)
    }
}

/// A full `BENCH.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// `"YYYY-MM-DD"` generation date.
    pub generated: String,
    /// All measured scenarios, in id order.
    pub scenarios: Vec<ScenarioResult>,
}

impl BenchDoc {
    /// Build a document; scenarios are sorted by id for stable output.
    pub fn new(generated: impl Into<String>, mut scenarios: Vec<ScenarioResult>) -> BenchDoc {
        scenarios.sort_by(|a, b| a.id.cmp(&b.id));
        BenchDoc {
            generated: generated.into(),
            scenarios,
        }
    }

    /// Serialize to pretty JSON (schema v1).
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("schema", Json::s("hetsort-bench")),
            ("version", Json::n(1.0)),
            ("generated", Json::s(self.generated.clone())),
            (
                "scenarios",
                Json::Arr(self.scenarios.iter().map(ScenarioResult::to_json).collect()),
            ),
        ])
        .pretty()
    }

    /// Parse and schema-validate a document.
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let doc = Json::parse(text)?;
        match doc.get("schema").and_then(Json::as_str) {
            Some("hetsort-bench") => {}
            other => return Err(format!("unexpected schema marker {other:?}")),
        }
        let version = doc.get("version").and_then(Json::as_f64);
        if version != Some(1.0) {
            return Err(format!("unsupported schema version {version:?}"));
        }
        let generated = doc
            .get("generated")
            .and_then(Json::as_str)
            .ok_or("missing generated date")?
            .to_string();
        let scenarios = doc
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or("missing scenarios array")?
            .iter()
            .map(ScenarioResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if scenarios.is_empty() {
            return Err("scenarios array is empty".to_string());
        }
        Ok(BenchDoc::new(generated, scenarios))
    }

    /// Find a scenario by id.
    pub fn scenario(&self, id: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.id == id)
    }
}

/// Tolerance bands for the gate comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative band on `total_s` (0.05 = +5 %).
    pub total_rel: f64,
    /// Relative band on each component's busy seconds.
    pub component_rel: f64,
    /// Absolute floor in seconds — differences below this never fail,
    /// so sub-millisecond jitter in tiny scenarios cannot flake.
    pub abs_floor_s: f64,
}

impl Default for Tolerance {
    /// The committed defaults: the simulator is deterministic, so these
    /// bands only absorb deliberate cost-model retuning, not noise.
    /// 5 % end-to-end / 10 % per-component, 1 ms floor.
    fn default() -> Self {
        Tolerance {
            total_rel: 0.05,
            component_rel: 0.10,
            abs_floor_s: 1e-3,
        }
    }
}

/// One gate finding (regression, improvement, or structural issue).
#[derive(Debug, Clone, PartialEq)]
pub struct GateFinding {
    /// Scenario id.
    pub id: String,
    /// What was compared (`"total_s"`, `"component.HtoD"`, ...).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// True when this finding fails the gate.
    pub regression: bool,
}

/// Outcome of comparing a current document against the baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// All findings, regressions first.
    pub findings: Vec<GateFinding>,
    /// Scenario ids present in the baseline but missing now.
    pub missing: Vec<String>,
    /// Scenario ids present now but not in the baseline.
    pub new_scenarios: Vec<String>,
}

impl GateReport {
    /// True when the gate passes (no regressions, nothing missing).
    pub fn pass(&self) -> bool {
        self.missing.is_empty() && self.findings.iter().all(|f| !f.regression)
    }

    /// Multi-line human-readable report.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for id in &self.missing {
            out.push_str(&format!("FAIL {id}: scenario missing from current run\n"));
        }
        for f in &self.findings {
            if f.regression {
                out.push_str(&format!(
                    "FAIL {} {}: {:.6} s -> {:.6} s (+{:.1} %)\n",
                    f.id,
                    f.metric,
                    f.baseline,
                    f.current,
                    (f.current / f.baseline - 1.0) * 100.0
                ));
            }
        }
        for id in &self.new_scenarios {
            out.push_str(&format!("note {id}: new scenario (not in baseline)\n"));
        }
        if self.pass() {
            out.push_str("gate: PASS\n");
        } else {
            out.push_str("gate: FAIL\n");
        }
        out
    }
}

fn check(
    report: &mut GateReport,
    id: &str,
    metric: &str,
    baseline: f64,
    current: f64,
    rel: f64,
    abs_floor: f64,
) {
    let limit = baseline * (1.0 + rel) + abs_floor;
    let regression = current > limit;
    // Only record interesting findings: regressions always; otherwise
    // changes beyond the floor, so the report stays readable.
    if regression || (current - baseline).abs() > abs_floor {
        report.findings.push(GateFinding {
            id: id.to_string(),
            metric: metric.to_string(),
            baseline,
            current,
            regression,
        });
    }
}

/// Compare `current` against `baseline` under `tol`.
pub fn compare(baseline: &BenchDoc, current: &BenchDoc, tol: Tolerance) -> GateReport {
    let mut report = GateReport::default();
    for base in &baseline.scenarios {
        let Some(cur) = current.scenario(&base.id) else {
            report.missing.push(base.id.clone());
            continue;
        };
        check(
            &mut report,
            &base.id,
            "total_s",
            base.total_s,
            cur.total_s,
            tol.total_rel,
            tol.abs_floor_s,
        );
        for (name, &base_v) in &base.components {
            let cur_v = cur.components.get(name).copied().unwrap_or(0.0);
            check(
                &mut report,
                &base.id,
                &format!("component.{name}"),
                base_v,
                cur_v,
                tol.component_rel,
                tol.abs_floor_s,
            );
        }
    }
    for cur in &current.scenarios {
        if baseline.scenario(&cur.id).is_none() {
            report.new_scenarios.push(cur.id.clone());
        }
    }
    report.findings.sort_by(|a, b| {
        b.regression
            .cmp(&a.regression)
            .then(a.id.cmp(&b.id))
            .then(a.metric.cmp(&b.metric))
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(id: &str, total: f64) -> ScenarioResult {
        let mut components = BTreeMap::new();
        components.insert("HtoD".to_string(), total * 0.3);
        components.insert("GPUSort".to_string(), total * 0.5);
        ScenarioResult {
            id: id.to_string(),
            platform: "p1".to_string(),
            approach: "PIPEDATA".to_string(),
            n: 2_000_000_000,
            nb: 16,
            total_s: total,
            literature_total_s: total * 0.8,
            overlap_ratio: 0.4,
            bus_util: 0.6,
            components,
            counters: BTreeMap::new(),
        }
    }

    #[test]
    fn doc_round_trips() {
        let doc = BenchDoc::new("2026-08-05", vec![scenario("b", 2.0), scenario("a", 1.0)]);
        let text = doc.to_json();
        let back = BenchDoc::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Sorted by id.
        assert_eq!(back.scenarios[0].id, "a");
    }

    #[test]
    fn parse_rejects_bad_docs() {
        assert!(BenchDoc::parse("{}").is_err());
        assert!(BenchDoc::parse(
            r#"{"schema":"hetsort-bench","version":2,"generated":"x","scenarios":[]}"#
        )
        .is_err());
        let doc = BenchDoc::new("d", vec![scenario("a", 1.0)]);
        let bad = doc
            .to_json()
            .replace("\"overlap_ratio\": 0.4", "\"overlap_ratio\": 1.5");
        assert!(
            BenchDoc::parse(&bad).is_err(),
            "out-of-range ratio must fail"
        );
    }

    #[test]
    fn identical_docs_pass() {
        let doc = BenchDoc::new("d", vec![scenario("a", 1.0)]);
        let report = compare(&doc, &doc, Tolerance::default());
        assert!(report.pass(), "{}", report.summary());
        assert!(report.findings.is_empty());
    }

    #[test]
    fn slowdown_beyond_band_fails() {
        let base = BenchDoc::new("d", vec![scenario("a", 1.0)]);
        let cur = BenchDoc::new("d", vec![scenario("a", 1.2)]);
        let report = compare(&base, &cur, Tolerance::default());
        assert!(!report.pass());
        assert!(report
            .findings
            .iter()
            .any(|f| f.metric == "total_s" && f.regression));
        assert!(report.summary().contains("FAIL"));
    }

    #[test]
    fn slowdown_within_band_passes() {
        let base = BenchDoc::new("d", vec![scenario("a", 1.0)]);
        let cur = BenchDoc::new("d", vec![scenario("a", 1.03)]);
        let report = compare(&base, &cur, Tolerance::default());
        assert!(report.pass(), "{}", report.summary());
        // A 3 % drift is reported as a non-regression finding.
        assert!(report.findings.iter().any(|f| !f.regression));
    }

    #[test]
    fn missing_scenario_fails_new_scenario_passes() {
        let base = BenchDoc::new("d", vec![scenario("a", 1.0)]);
        let cur = BenchDoc::new("d", vec![scenario("b", 1.0)]);
        let report = compare(&base, &cur, Tolerance::default());
        assert!(!report.pass());
        assert_eq!(report.missing, vec!["a".to_string()]);
        assert_eq!(report.new_scenarios, vec!["b".to_string()]);

        let both = BenchDoc::new("d", vec![scenario("a", 1.0), scenario("b", 1.0)]);
        let report = compare(&base, &both, Tolerance::default());
        assert!(report.pass(), "{}", report.summary());
    }

    #[test]
    fn tiny_absolute_jitter_never_fails() {
        let base = BenchDoc::new("d", vec![scenario("a", 1e-4)]);
        let cur = BenchDoc::new("d", vec![scenario("a", 5e-4)]);
        // 5x relative blowup but far under the 1 ms floor.
        let report = compare(&base, &cur, Tolerance::default());
        assert!(report.pass(), "{}", report.summary());
    }

    #[test]
    fn improvements_pass() {
        let base = BenchDoc::new("d", vec![scenario("a", 2.0)]);
        let cur = BenchDoc::new("d", vec![scenario("a", 1.0)]);
        let report = compare(&base, &cur, Tolerance::default());
        assert!(report.pass(), "{}", report.summary());
    }
}
