//! Chrome-trace ("trace event format") export.
//!
//! Emits the JSON-object form `{"traceEvents": [...]}` with complete
//! (`"X"`) events so a run can be opened in `chrome://tracing` or
//! Perfetto. One process per GPU (plus a host process), one thread per
//! stream; timestamps are microseconds relative to the run origin.
//! [`validate_chrome`] structurally checks an exported document — the
//! acceptance test for the CLI path.

use std::collections::{BTreeMap, BTreeSet};

use crate::json::Json;
use crate::registry::MetricsRegistry;
use crate::span::OpClass;

/// Host-side work (merges, staging) is grouped under this pid.
const HOST_PID: usize = 0;
/// Host ops with no stream id land on this tid.
const HOST_TID: usize = 0;

fn span_pid(gpu: Option<usize>) -> usize {
    // pid 0 is the host; GPU g becomes pid g+1.
    gpu.map(|g| g + 1).unwrap_or(HOST_PID)
}

fn span_tid(stream: Option<usize>) -> usize {
    stream.map(|s| s + 1).unwrap_or(HOST_TID)
}

/// Export every span in `reg` as a Chrome-trace JSON document.
/// `process_label` names the run in the viewer (e.g. the CLI's
/// platform/approach string).
pub fn chrome_trace(reg: &MetricsRegistry, process_label: &str) -> String {
    let mut events: Vec<Json> = Vec::new();

    // Metadata: name the processes and threads that occur.
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for s in reg.sorted_spans() {
        seen.insert((span_pid(s.gpu), span_tid(s.stream)));
    }
    let mut named_pids: BTreeSet<usize> = BTreeSet::new();
    for &(pid, tid) in &seen {
        if named_pids.insert(pid) {
            let pname = if pid == HOST_PID {
                format!("host ({process_label})")
            } else {
                format!("gpu{} ({process_label})", pid - 1)
            };
            events.push(Json::obj(vec![
                ("ph", Json::s("M")),
                ("name", Json::s("process_name")),
                ("pid", Json::n(pid as f64)),
                ("tid", Json::n(0.0)),
                ("args", Json::obj(vec![("name", Json::s(pname))])),
            ]));
        }
        let tname = if tid == HOST_TID {
            "host".to_string()
        } else {
            format!("stream{}", tid - 1)
        };
        events.push(Json::obj(vec![
            ("ph", Json::s("M")),
            ("name", Json::s("thread_name")),
            ("pid", Json::n(pid as f64)),
            ("tid", Json::n(tid as f64)),
            ("args", Json::obj(vec![("name", Json::s(tname))])),
        ]));
    }

    // Complete events, sorted so nesting renders correctly: within a
    // (pid, tid) lane, outer spans (earlier start, longer duration)
    // must precede the spans they contain.
    let t0 = reg.window().map(|(a, _)| a).unwrap_or(0.0);
    let mut spans = reg.sorted_spans();
    spans.sort_by(|a, b| {
        span_pid(a.gpu)
            .cmp(&span_pid(b.gpu))
            .then(span_tid(a.stream).cmp(&span_tid(b.stream)))
            .then(a.t_start.total_cmp(&b.t_start))
            .then(b.duration().total_cmp(&a.duration()))
    });
    for s in spans {
        let mut args = vec![("bytes", Json::n(s.bytes))];
        if let Some(batch) = s.batch {
            args.push(("batch", Json::n(batch as f64)));
        }
        if let Some(job) = s.job {
            args.push(("job", Json::n(job as f64)));
        }
        events.push(Json::obj(vec![
            ("ph", Json::s("X")),
            ("name", Json::s(s.label.clone())),
            ("cat", Json::s(s.class.name())),
            ("pid", Json::n(span_pid(s.gpu) as f64)),
            ("tid", Json::n(span_tid(s.stream) as f64)),
            ("ts", Json::n((s.t_start - t0) * 1e6)),
            ("dur", Json::n(s.duration() * 1e6)),
            ("args", Json::obj(args)),
        ]));
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::s("ms")),
    ])
    .pretty()
}

/// What a structurally valid Chrome trace contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Number of `"X"` complete events.
    pub complete_events: usize,
    /// Number of `"M"` metadata events.
    pub metadata_events: usize,
    /// Distinct categories (op-class names) seen on complete events.
    pub categories: Vec<String>,
    /// Maximum nesting depth observed within any (pid, tid) lane.
    pub max_depth: usize,
}

/// Structurally validate a Chrome-trace document: parses as JSON, has a
/// `traceEvents` array, every event carries the required fields, and
/// complete events have non-negative `ts`/`dur`. Returns a summary used
/// by round-trip tests.
pub fn validate_chrome(text: &str) -> Result<ChromeSummary, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut complete = 0usize;
    let mut metadata = 0usize;
    let mut categories: Vec<String> = Vec::new();
    // Per-lane stack of open interval ends to measure nesting depth.
    let mut lanes: BTreeMap<(u64, u64), Vec<f64>> = BTreeMap::new();
    let mut max_depth = 0usize;

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        match ph {
            "M" => {
                metadata += 1;
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: metadata without args.name"))?;
            }
            "X" => {
                complete += 1;
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: complete event without name"))?;
                let cat = ev
                    .get("cat")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: complete event without cat"))?;
                if OpClass::parse(cat).is_none() {
                    return Err(format!("event {i}: unknown category {cat:?}"));
                }
                if !categories.iter().any(|c| c == cat) {
                    categories.push(cat.to_string());
                }
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: missing ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: missing dur"))?;
                if ts < 0.0 || dur < 0.0 || !ts.is_finite() || !dur.is_finite() {
                    return Err(format!("event {i}: negative or non-finite ts/dur"));
                }
                let stack = lanes.entry((pid as u64, tid as u64)).or_default();
                // Close intervals that ended before this one starts.
                // Small tolerance: equal-boundary spans are siblings.
                while matches!(stack.last(), Some(&end) if end <= ts + 1e-9) {
                    stack.pop();
                }
                stack.push(ts + dur);
                max_depth = max_depth.max(stack.len());
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    categories.sort();
    Ok(ChromeSummary {
        complete_events: complete,
        metadata_events: metadata,
        categories,
        max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::ObsSpan;

    fn sample_registry() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.record(
            ObsSpan::new(OpClass::HtoD, "HtoD b0", 0.0, 1.0)
                .on_gpu(0)
                .on_stream(0)
                .with_bytes(1024.0),
        );
        r.record(
            ObsSpan::new(OpClass::GpuSort, "GPUSort b0", 1.0, 2.0)
                .on_gpu(0)
                .on_stream(0)
                .for_batch(0),
        );
        r.record(ObsSpan::new(OpClass::PairMerge, "PairMerge 0+1", 2.0, 3.0));
        r
    }

    #[test]
    fn export_validates_and_counts_events() {
        let text = chrome_trace(&sample_registry(), "p1/pipedata");
        let sum = validate_chrome(&text).unwrap();
        assert_eq!(sum.complete_events, 3);
        // host process+thread, gpu process+stream thread.
        assert_eq!(sum.metadata_events, 4);
        assert_eq!(
            sum.categories,
            vec![
                "GPUSort".to_string(),
                "HtoD".to_string(),
                "PairMerge".to_string()
            ]
        );
    }

    #[test]
    fn timestamps_are_relative_microseconds() {
        let mut r = MetricsRegistry::new();
        r.record(ObsSpan::new(OpClass::Sync, "late", 10.0, 10.5));
        let text = chrome_trace(&r, "x");
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(x.get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(x.get("dur").and_then(Json::as_f64), Some(0.5e6));
    }

    #[test]
    fn nesting_depth_is_observed() {
        let mut r = MetricsRegistry::new();
        r.record(ObsSpan::new(OpClass::Other, "outer", 0.0, 4.0));
        r.record(ObsSpan::new(OpClass::Sync, "inner", 1.0, 2.0));
        let sum = validate_chrome(&chrome_trace(&r, "nest")).unwrap();
        assert_eq!(sum.max_depth, 2);
    }

    #[test]
    fn validator_rejects_junk() {
        assert!(validate_chrome("not json").is_err());
        assert!(validate_chrome("{}").is_err());
        assert!(
            validate_chrome(r#"{"traceEvents":[{"ph":"X","pid":0,"tid":0}]}"#).is_err(),
            "complete event missing name/cat/ts/dur must fail"
        );
        assert!(
            validate_chrome(
                r#"{"traceEvents":[{"ph":"X","name":"a","cat":"NotAClass","pid":0,"tid":0,"ts":0,"dur":1}]}"#
            )
            .is_err(),
            "unknown category must fail"
        );
    }
}
