//! Dependency-free JSON value, writer, and parser.
//!
//! The container has no serde; the Chrome-trace exporter and the
//! `BENCH.json` schema share this minimal implementation. It supports
//! the full JSON grammar except `\u` surrogate pairs are passed through
//! unvalidated, and numbers are always `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use [`BTreeMap`] so serialization is
/// deterministic (keys in sorted order) — important for byte-stable
/// `BENCH.json` baselines.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for a string value.
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Shorthand for a numeric value.
    pub fn n(v: f64) -> Json {
        Json::Num(v)
    }

    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map, if an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a description of the first error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; null is the standard fallback.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid utf8 in number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one slice.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| format!("invalid \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u{hex} at byte {}", self.pos))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::s("BENCH")),
            ("version", Json::n(1.0)),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(BTreeMap::new())),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::n(1.5), Json::s("a\"b\\c\nd"), Json::n(-2e-3)]),
            ),
        ]);
        for text in [v.dump(), v.pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(Json::n(3.0).dump(), "3");
        assert_eq!(Json::n(3.25).dump(), "3.25");
        assert_eq!(Json::n(-0.0).dump(), "0");
        assert_eq!(Json::n(f64::NAN).dump(), "null");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""aé\t\/b""#).unwrap();
        assert_eq!(v.as_str(), Some("aé\t/b"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"abc"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": [1, 2], "b": "x"}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_obj().map(|m| m.len()), Some(2));
    }
}
