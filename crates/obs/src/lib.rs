//! # hetsort-obs — unified tracing and metrics
//!
//! The paper's core contribution is *accounting*: showing that pinned
//! allocation, staging memcpys, and synchronization are first-order
//! costs the literature omits. This crate is the subsystem that makes
//! that accounting machine-readable and regression-checkable:
//!
//! * [`span`] — the span vocabulary: every operation the pipeline
//!   performs is one [`ObsSpan`] tagged with an [`OpClass`]
//!   (`HtoD`/`DtoH`/`GpuSort`/`StagingCopy`/`PairMerge`/
//!   `MultiwayMerge`/`PinnedAlloc`/`Sync`), stream/GPU id, and bytes.
//!   Both the DES engine ([`spans_from_timeline`]) and the functional
//!   executors (`hetsort-core`) emit into it.
//! * [`registry`] — [`MetricsRegistry`]: per-class totals (busy,
//!   union, bytes, count), named counters (recovery stats), overlap
//!   ratio, bus utilization, and the literature-vs-full accounting
//!   delta. Aggregation is permutation-invariant: merging any
//!   reordering of span streams yields bit-identical totals.
//! * [`chrome`] — Chrome-trace JSON export (`chrome://tracing` /
//!   Perfetto "trace event format") plus a structural validator used
//!   by the tests.
//! * [`bench_schema`] — the stable `BENCH.json` schema (component
//!   breakdowns + end-to-end times per scenario) and the tolerance-band
//!   comparison that powers the `bench_gate` regression gate.
//! * [`json`] — the dependency-free JSON value/parser/writer the two
//!   exports share.

// Library code must surface failures as typed results, never panics.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bench_schema;
pub mod chrome;
pub mod json;
pub mod registry;
pub mod span;
pub mod timeline;

pub use bench_schema::{compare, BenchDoc, GateFinding, GateReport, ScenarioResult, Tolerance};
pub use chrome::{chrome_trace, validate_chrome, ChromeSummary};
pub use json::Json;
pub use registry::{ClassStats, MetricsRegistry};
pub use span::{ObsSpan, OpClass};
pub use timeline::{registry_from_timeline, spans_from_timeline};
