//! The metrics registry: aggregate spans and counters into the
//! paper's accounting.
//!
//! Aggregation is *permutation-invariant*: before any statistic is
//! computed, spans are put into a canonical total order, so merging
//! per-stream span logs in any order yields bit-identical totals
//! (floating-point addition happens in one fixed sequence). The
//! property tests in `tests/prop_metrics.rs` pin this down.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use crate::json::Json;
use crate::span::{ObsSpan, OpClass};

/// Aggregated statistics of one op class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassStats {
    /// Number of spans.
    pub count: usize,
    /// Sum of span durations (the paper's additive "component time";
    /// overlap counts multiply).
    pub busy_s: f64,
    /// Wall clock covered by at least one span of the class (union of
    /// intervals; the honest measure under overlap).
    pub union_s: f64,
    /// Total bytes / work units.
    pub bytes: f64,
}

/// Span + counter aggregator.
///
/// Producers [`record`](MetricsRegistry::record) spans and bump named
/// [`counters`](MetricsRegistry::counter); consumers read per-class
/// totals, the overlap ratio, bus utilization, and the
/// literature-vs-full accounting delta.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    spans: Vec<ObsSpan>,
    counters: BTreeMap<String, f64>,
}

/// Canonical total order on spans: time, class, placement, size, label.
fn span_cmp(a: &ObsSpan, b: &ObsSpan) -> Ordering {
    a.t_start
        .total_cmp(&b.t_start)
        .then(a.t_end.total_cmp(&b.t_end))
        .then(a.class.ord_key().cmp(&b.class.ord_key()))
        .then(a.stream.cmp(&b.stream))
        .then(a.gpu.cmp(&b.gpu))
        .then(a.batch.cmp(&b.batch))
        .then(a.job.cmp(&b.job))
        .then(a.bytes.total_cmp(&b.bytes))
        .then(a.label.cmp(&b.label))
}

/// Length of the union of intervals; sorts in place.
fn union_length(iv: &mut Vec<(f64, f64)>) -> f64 {
    iv.retain(|(s, e)| e > s);
    if iv.is_empty() {
        return 0.0;
    }
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let (mut cur_s, mut cur_e) = iv[0];
    for &(s, e) in iv.iter().skip(1) {
        if s > cur_e {
            total += cur_e - cur_s;
            cur_s = s;
            cur_e = e;
        } else if e > cur_e {
            cur_e = e;
        }
    }
    total + (cur_e - cur_s)
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Build a registry from a span list.
    pub fn from_spans(spans: Vec<ObsSpan>) -> Self {
        MetricsRegistry {
            spans,
            counters: BTreeMap::new(),
        }
    }

    /// Record one span.
    pub fn record(&mut self, span: ObsSpan) {
        self.spans.push(span);
    }

    /// Record many spans.
    pub fn record_all(&mut self, spans: impl IntoIterator<Item = ObsSpan>) {
        self.spans.extend(spans);
    }

    /// Add `v` to the named counter (creates it at 0).
    pub fn add_counter(&mut self, name: &str, v: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> &BTreeMap<String, f64> {
        &self.counters
    }

    /// Absorb another registry (spans concatenated, counters summed).
    pub fn merge(&mut self, other: MetricsRegistry) {
        self.spans.extend(other.spans);
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0.0) += v;
        }
    }

    /// All recorded spans, unsorted (insertion order).
    pub fn spans(&self) -> &[ObsSpan] {
        &self.spans
    }

    /// Spans in the canonical order every statistic is computed in.
    pub fn sorted_spans(&self) -> Vec<&ObsSpan> {
        let mut v: Vec<&ObsSpan> = self.spans.iter().collect();
        v.sort_by(|a, b| span_cmp(a, b));
        v
    }

    /// Classes with at least one span, in canonical class order.
    pub fn classes(&self) -> Vec<OpClass> {
        OpClass::ALL
            .iter()
            .copied()
            .filter(|c| self.spans.iter().any(|s| s.class == *c))
            .collect()
    }

    /// Aggregate statistics of one class.
    pub fn class_stats(&self, class: OpClass) -> ClassStats {
        let mut stats = ClassStats::default();
        let mut iv: Vec<(f64, f64)> = Vec::new();
        for s in self.sorted_spans() {
            if s.class != class {
                continue;
            }
            stats.count += 1;
            stats.busy_s += s.duration();
            stats.bytes += s.bytes;
            iv.push((s.t_start, s.t_end));
        }
        stats.union_s = union_length(&mut iv);
        stats
    }

    /// Per-class statistics for every present class.
    pub fn per_class(&self) -> BTreeMap<&'static str, ClassStats> {
        self.classes()
            .into_iter()
            .map(|c| (c.name(), self.class_stats(c)))
            .collect()
    }

    /// `(first start, last end)` over all spans; `None` when empty.
    pub fn window(&self) -> Option<(f64, f64)> {
        let mut out: Option<(f64, f64)> = None;
        for s in self.sorted_spans() {
            out = Some(match out {
                None => (s.t_start, s.t_end),
                Some((a, b)) => (a.min(s.t_start), b.max(s.t_end)),
            });
        }
        out
    }

    /// End-to-end seconds: the full window covered by the run.
    pub fn end_to_end_s(&self) -> f64 {
        self.window().map(|(a, b)| (b - a).max(0.0)).unwrap_or(0.0)
    }

    /// Sum of all span durations (counts overlap multiply).
    pub fn busy_total_s(&self) -> f64 {
        self.sorted_spans().iter().map(|s| s.duration()).sum()
    }

    /// Union of all spans (wall clock with at least one op in flight).
    pub fn union_total_s(&self) -> f64 {
        let mut iv: Vec<(f64, f64)> = self
            .sorted_spans()
            .iter()
            .map(|s| (s.t_start, s.t_end))
            .collect();
        union_length(&mut iv)
    }

    /// How much of the busy time ran concurrently with other work:
    /// `1 − union/busy`, clamped to `[0, 1]`. 0 for a fully serial
    /// pipeline, approaching 1 as more ops overlap.
    pub fn overlap_ratio(&self) -> f64 {
        let busy = self.busy_total_s();
        if busy <= 0.0 {
            return 0.0;
        }
        (1.0 - self.union_total_s() / busy).clamp(0.0, 1.0)
    }

    /// PCIe/host-bus utilization: the fraction of the end-to-end window
    /// with at least one transfer (HtoD or DtoH) in flight.
    pub fn bus_util(&self) -> f64 {
        let e2e = self.end_to_end_s();
        if e2e <= 0.0 {
            return 0.0;
        }
        let mut iv: Vec<(f64, f64)> = self
            .sorted_spans()
            .iter()
            .filter(|s| matches!(s.class, OpClass::HtoD | OpClass::DtoH))
            .map(|s| (s.t_start, s.t_end))
            .collect();
        (union_length(&mut iv) / e2e).clamp(0.0, 1.0)
    }

    /// The literature's end-to-end method (§IV-E): the busy sum of only
    /// the included component classes.
    pub fn literature_total_s(&self) -> f64 {
        OpClass::LITERATURE
            .iter()
            .map(|&c| self.class_stats(c).busy_s)
            .sum()
    }

    /// The accounting delta the paper is about: full end-to-end minus
    /// what the literature's method would report. May be negative under
    /// heavy overlap, where busy-sums over-count.
    pub fn missing_overhead_s(&self) -> f64 {
        self.end_to_end_s() - self.literature_total_s()
    }

    /// The registry as a JSON value: totals, ratios, per-class stats,
    /// and counters — the machine-readable form of [`summary`](Self::summary).
    pub fn to_json(&self) -> Json {
        let per_class = Json::Obj(
            self.per_class()
                .into_iter()
                .map(|(name, st)| {
                    (
                        name.to_string(),
                        Json::obj(vec![
                            ("count", Json::n(st.count as f64)),
                            ("busy_s", Json::n(st.busy_s)),
                            ("union_s", Json::n(st.union_s)),
                            ("bytes", Json::n(st.bytes)),
                        ]),
                    )
                })
                .collect(),
        );
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::n(*v)))
                .collect(),
        );
        Json::obj(vec![
            ("end_to_end_s", Json::n(self.end_to_end_s())),
            ("literature_total_s", Json::n(self.literature_total_s())),
            ("missing_overhead_s", Json::n(self.missing_overhead_s())),
            ("overlap_ratio", Json::n(self.overlap_ratio())),
            ("bus_util", Json::n(self.bus_util())),
            ("span_count", Json::n(self.spans.len() as f64)),
            ("components", per_class),
            ("counters", counters),
        ])
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "end-to-end {:.6} s, literature method {:.6} s, overlap {:.3}, bus util {:.3}\n",
            self.end_to_end_s(),
            self.literature_total_s(),
            self.overlap_ratio(),
            self.bus_util(),
        );
        for (name, st) in self.per_class() {
            s.push_str(&format!(
                "  {name:<14} n={:<5} busy {:>10.6} s  union {:>10.6} s  bytes {:.3e}\n",
                st.count, st.busy_s, st.union_s, st.bytes
            ));
        }
        for (name, v) in &self.counters {
            s.push_str(&format!("  counter {name} = {v}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(class: OpClass, t0: f64, t1: f64) -> ObsSpan {
        ObsSpan::new(class, format!("{}@{t0}", class.name()), t0, t1)
    }

    #[test]
    fn class_stats_and_totals() {
        let mut r = MetricsRegistry::new();
        r.record(span(OpClass::HtoD, 0.0, 1.0).with_bytes(8.0));
        r.record(span(OpClass::HtoD, 0.5, 1.5).with_bytes(8.0));
        r.record(span(OpClass::GpuSort, 1.5, 2.5));
        let h = r.class_stats(OpClass::HtoD);
        assert_eq!(h.count, 2);
        assert!((h.busy_s - 2.0).abs() < 1e-12);
        assert!((h.union_s - 1.5).abs() < 1e-12);
        assert!((h.bytes - 16.0).abs() < 1e-12);
        assert!((r.end_to_end_s() - 2.5).abs() < 1e-12);
        assert!((r.busy_total_s() - 3.0).abs() < 1e-12);
        assert!((r.union_total_s() - 2.5).abs() < 1e-12);
        // overlap = 1 - 2.5/3.0.
        assert!((r.overlap_ratio() - (1.0 - 2.5 / 3.0)).abs() < 1e-12);
        // bus covered [0,1.5] of [0,2.5].
        assert!((r.bus_util() - 0.6).abs() < 1e-12);
        assert_eq!(r.classes(), vec![OpClass::HtoD, OpClass::GpuSort]);
    }

    #[test]
    fn literature_vs_full_accounting() {
        let mut r = MetricsRegistry::new();
        r.record(span(OpClass::StagingCopy, 0.0, 1.0));
        r.record(span(OpClass::HtoD, 1.0, 2.0));
        r.record(span(OpClass::GpuSort, 2.0, 3.0));
        r.record(span(OpClass::DtoH, 3.0, 4.0));
        r.record(span(OpClass::StagingCopy, 4.0, 5.0));
        // Literature counts 3 of the 5 serial seconds.
        assert!((r.literature_total_s() - 3.0).abs() < 1e-12);
        assert!((r.missing_overhead_s() - 2.0).abs() < 1e-12);
        assert_eq!(r.overlap_ratio(), 0.0, "serial pipeline has no overlap");
    }

    #[test]
    fn merge_sums_counters_and_concatenates_spans() {
        let mut a = MetricsRegistry::new();
        a.record(span(OpClass::HtoD, 0.0, 1.0));
        a.add_counter("recovery.retries", 2.0);
        let mut b = MetricsRegistry::new();
        b.record(span(OpClass::DtoH, 1.0, 2.0));
        b.add_counter("recovery.retries", 3.0);
        a.merge(b);
        assert_eq!(a.spans().len(), 2);
        assert_eq!(a.counter("recovery.retries"), 5.0);
        assert_eq!(a.counter("absent"), 0.0);
    }

    #[test]
    fn empty_registry_is_all_zeros() {
        let r = MetricsRegistry::new();
        assert_eq!(r.end_to_end_s(), 0.0);
        assert_eq!(r.overlap_ratio(), 0.0);
        assert_eq!(r.bus_util(), 0.0);
        assert!(r.classes().is_empty());
        assert!(r.window().is_none());
    }

    #[test]
    fn union_drops_degenerate_intervals() {
        let mut iv = vec![(1.0, 1.0), (2.0, 1.0)];
        assert_eq!(union_length(&mut iv), 0.0);
        let mut iv = vec![(0.0, 1.0), (1.0, 1.0), (3.0, 4.0)];
        assert!((union_length(&mut iv) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_classes_and_counters() {
        let mut r = MetricsRegistry::new();
        r.record(span(OpClass::PairMerge, 0.0, 1.0));
        r.add_counter("recovery.oom_replans", 1.0);
        let s = r.summary();
        assert!(s.contains("PairMerge"), "{s}");
        assert!(s.contains("recovery.oom_replans"), "{s}");
    }
}
