//! The span vocabulary: one record per executed operation.
//!
//! Classes mirror the paper's component taxonomy (Table I + §IV-E) so
//! that per-class totals line up with the figures: the literature's
//! accounting counts `HtoD + DtoH + GpuSort (+ merges)`, the full
//! accounting adds `StagingCopy`, `PinnedAlloc`, and `Sync`.

/// Operation class of a span. The closed vocabulary every producer
/// (simulator timeline, functional executors) maps into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Host→device transfer over PCIe.
    HtoD,
    /// Device→host transfer over PCIe.
    DtoH,
    /// On-device sort kernel.
    GpuSort,
    /// Host↔pinned staging memcpy (both directions of the paper's
    /// `MCpy`).
    StagingCopy,
    /// Pipelined pair-wise merge on the CPU.
    PairMerge,
    /// Final multiway merge on the CPU.
    MultiwayMerge,
    /// A two-way merge pinned to the CPU merge resource by the DAG
    /// scheduler (hybrid schedules) — same data semantics as
    /// [`OpClass::PairMerge`], kept distinct so hybrid plans are
    /// visible in per-class totals.
    CpuMerge,
    /// Pinned-memory allocation (`cudaMallocHost`).
    PinnedAlloc,
    /// Synchronization / barrier latency surfaced as its own span.
    Sync,
    /// One CPU worker's share of a parallel merge/sort region — the
    /// per-worker breakdown of a `PairMerge`/`MultiwayMerge` span, so
    /// scheduler imbalance is visible in Chrome traces and the
    /// registry. Not part of the literature accounting (the parent
    /// span already covers the wall time).
    CpuPart,
    /// Anything outside the closed vocabulary (reference sorts,
    /// experimental device merges); kept so totals never silently drop
    /// spans.
    Other,
}

impl OpClass {
    /// Every class, in display order.
    pub const ALL: [OpClass; 11] = [
        OpClass::HtoD,
        OpClass::DtoH,
        OpClass::GpuSort,
        OpClass::StagingCopy,
        OpClass::PairMerge,
        OpClass::MultiwayMerge,
        OpClass::CpuMerge,
        OpClass::PinnedAlloc,
        OpClass::Sync,
        OpClass::CpuPart,
        OpClass::Other,
    ];

    /// The classes the literature's end-to-end accounting includes
    /// (§IV-E: transfers, device sort, host merges).
    pub const LITERATURE: [OpClass; 5] = [
        OpClass::HtoD,
        OpClass::DtoH,
        OpClass::GpuSort,
        OpClass::PairMerge,
        OpClass::MultiwayMerge,
    ];

    /// Stable display name (also the Chrome-trace category).
    pub fn name(&self) -> &'static str {
        match self {
            OpClass::HtoD => "HtoD",
            OpClass::DtoH => "DtoH",
            OpClass::GpuSort => "GPUSort",
            OpClass::StagingCopy => "StagingCopy",
            OpClass::PairMerge => "PairMerge",
            OpClass::MultiwayMerge => "MultiwayMerge",
            OpClass::CpuMerge => "CpuMerge",
            OpClass::PinnedAlloc => "PinnedAlloc",
            OpClass::Sync => "Sync",
            OpClass::CpuPart => "CpuPart",
            OpClass::Other => "Other",
        }
    }

    /// Map a simulator/component tag name into the closed vocabulary.
    /// The staging tags `MCpyIn`/`MCpyOut` both fold into
    /// [`OpClass::StagingCopy`]; unknown tags fold into
    /// [`OpClass::Other`] rather than being dropped.
    pub fn from_tag(tag: &str) -> OpClass {
        match tag {
            "HtoD" => OpClass::HtoD,
            "DtoH" => OpClass::DtoH,
            "GPUSort" | "GpuSort" => OpClass::GpuSort,
            "MCpyIn" | "MCpyOut" | "StagingCopy" => OpClass::StagingCopy,
            "PairMerge" => OpClass::PairMerge,
            "MultiwayMerge" => OpClass::MultiwayMerge,
            "CpuMerge" => OpClass::CpuMerge,
            "PinnedAlloc" => OpClass::PinnedAlloc,
            "Sync" => OpClass::Sync,
            "CpuPart" => OpClass::CpuPart,
            _ => OpClass::Other,
        }
    }

    /// Parse a display name back into a class (exact match only).
    pub fn parse(name: &str) -> Option<OpClass> {
        OpClass::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Stable small integer for deterministic sorting.
    pub(crate) fn ord_key(&self) -> u8 {
        // Position in ALL is the canonical order.
        OpClass::ALL
            .iter()
            .position(|c| c == self)
            .unwrap_or(OpClass::ALL.len()) as u8
    }
}

/// One executed operation: what it was, where it ran, how big it was,
/// and when (seconds relative to the run's origin — simulated time for
/// the DES engine, wall clock since run start for the functional
/// executors).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSpan {
    /// Operation class.
    pub class: OpClass,
    /// Human-readable detail (`"HtoD b2.c1"`).
    pub label: String,
    /// GPU the op touched, if any.
    pub gpu: Option<usize>,
    /// Stream the op ran in, if any (host-side merges have none).
    pub stream: Option<usize>,
    /// Batch correlation key, if any.
    pub batch: Option<u64>,
    /// Serve-layer job correlation key, if any (spans from a
    /// single-tenant run have none).
    pub job: Option<u64>,
    /// Bytes moved / work units performed (bytes for transfers,
    /// staging copies, and allocations; calibrated work units for
    /// sorts and merges).
    pub bytes: f64,
    /// Start time, seconds.
    pub t_start: f64,
    /// End time, seconds.
    pub t_end: f64,
}

impl ObsSpan {
    /// Build a span covering `[t_start, t_end]`.
    pub fn new(class: OpClass, label: impl Into<String>, t_start: f64, t_end: f64) -> ObsSpan {
        ObsSpan {
            class,
            label: label.into(),
            gpu: None,
            stream: None,
            batch: None,
            job: None,
            bytes: 0.0,
            t_start,
            t_end,
        }
    }

    /// Set the GPU id.
    pub fn on_gpu(mut self, gpu: usize) -> Self {
        self.gpu = Some(gpu);
        self
    }

    /// Set the stream id.
    pub fn on_stream(mut self, stream: usize) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Set the batch correlation key.
    pub fn for_batch(mut self, batch: u64) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Set the serve-layer job correlation key.
    pub fn for_job(mut self, job: u64) -> Self {
        self.job = Some(job);
        self
    }

    /// Set the byte/work volume.
    pub fn with_bytes(mut self, bytes: f64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Span duration in seconds (clamped at 0 for degenerate spans).
    pub fn duration(&self) -> f64 {
        (self.t_end - self.t_start).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_mapping_covers_component_taxonomy() {
        assert_eq!(OpClass::from_tag("HtoD"), OpClass::HtoD);
        assert_eq!(OpClass::from_tag("DtoH"), OpClass::DtoH);
        assert_eq!(OpClass::from_tag("GPUSort"), OpClass::GpuSort);
        assert_eq!(OpClass::from_tag("MCpyIn"), OpClass::StagingCopy);
        assert_eq!(OpClass::from_tag("MCpyOut"), OpClass::StagingCopy);
        assert_eq!(OpClass::from_tag("PinnedAlloc"), OpClass::PinnedAlloc);
        assert_eq!(OpClass::from_tag("PairMerge"), OpClass::PairMerge);
        assert_eq!(OpClass::from_tag("MultiwayMerge"), OpClass::MultiwayMerge);
        assert_eq!(OpClass::from_tag("Sync"), OpClass::Sync);
        assert_eq!(OpClass::from_tag("RefSort"), OpClass::Other);
        assert_eq!(OpClass::from_tag("GpuMerge"), OpClass::Other);
    }

    #[test]
    fn names_round_trip() {
        for c in OpClass::ALL {
            assert_eq!(OpClass::parse(c.name()), Some(c), "{c:?}");
            assert_eq!(OpClass::from_tag(c.name()), c, "{c:?}");
        }
        assert_eq!(OpClass::parse("nope"), None);
    }

    #[test]
    fn ord_keys_are_unique() {
        let mut keys: Vec<u8> = OpClass::ALL.iter().map(|c| c.ord_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), OpClass::ALL.len());
    }

    #[test]
    fn builder_and_duration() {
        let s = ObsSpan::new(OpClass::HtoD, "HtoD b0.c0", 1.0, 2.5)
            .on_gpu(1)
            .on_stream(3)
            .for_batch(7)
            .for_job(9)
            .with_bytes(4096.0);
        assert_eq!(s.gpu, Some(1));
        assert_eq!(s.stream, Some(3));
        assert_eq!(s.batch, Some(7));
        assert_eq!(s.job, Some(9));
        assert!((s.duration() - 1.5).abs() < 1e-12);
        let degenerate = ObsSpan::new(OpClass::Sync, "s", 2.0, 1.0);
        assert_eq!(degenerate.duration(), 0.0);
    }
}
