//! Bridge from the DES engine's [`Timeline`] to the span vocabulary.
//!
//! The simulator records lanes named `S<stream>` / `GPU<gpu>` / `CPU`
//! and queues named `s<stream>`; this module folds those back into the
//! structured [`ObsSpan`] fields so simulated and functional runs
//! aggregate identically.

use hetsort_sim::Timeline;

use crate::registry::MetricsRegistry;
use crate::span::{ObsSpan, OpClass};

fn parse_suffix(name: &str, prefix: &str) -> Option<usize> {
    name.strip_prefix(prefix)?.parse().ok()
}

/// Convert every simulator span into an [`ObsSpan`].
///
/// * `class` comes from the tag name via [`OpClass::from_tag`];
/// * `stream` from the queue name (`s<k>`) or stream lane (`S<k>`);
/// * `gpu` from the GPU lane (`GPU<g>`), so device-sort spans carry it;
/// * `bytes` is the op's work (bytes for transfers/staging/alloc,
///   calibrated work units for sorts and merges);
/// * `batch` is the user correlation key.
pub fn spans_from_timeline(tl: &Timeline) -> Vec<ObsSpan> {
    tl.spans()
        .iter()
        .map(|s| {
            let tag = tl.tag_name(s.tag);
            let lane = s.lane.map(|l| tl.lane_name(l));
            let queue = s.queue.map(|q| tl.queue_names()[q.0].as_str());
            let stream = queue
                .and_then(|q| parse_suffix(q, "s"))
                .or_else(|| lane.and_then(|l| parse_suffix(l, "S")));
            let gpu = lane.and_then(|l| parse_suffix(l, "GPU"));
            let mut span = ObsSpan::new(
                OpClass::from_tag(tag),
                format!("{tag} b{}", s.user_key),
                s.t_start,
                s.t_end,
            )
            .for_batch(s.user_key)
            .with_bytes(s.work);
            span.stream = stream;
            span.gpu = gpu;
            span
        })
        .collect()
}

/// Aggregate a timeline straight into a [`MetricsRegistry`].
pub fn registry_from_timeline(tl: &Timeline) -> MetricsRegistry {
    MetricsRegistry::from_spans(spans_from_timeline(tl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_sim::{Op, SimBuilder};

    #[test]
    fn structured_fields_survive_the_bridge() {
        let mut sim = SimBuilder::new();
        let htod = sim.tag("HtoD");
        let sort = sim.tag("GPUSort");
        let s0 = sim.lane("S0");
        let g1 = sim.lane("GPU1");
        let q = sim.queue("s0");
        let a = sim.op(Op::new(htod, 8.0).cap(4.0).lane(s0).queue(q).key(3));
        sim.op(Op::new(sort, 4.0).cap(4.0).lane(g1).queue(q).dep(a).key(3));
        let tl = sim.run().unwrap();

        let spans = spans_from_timeline(&tl);
        assert_eq!(spans.len(), 2);
        let h = spans.iter().find(|s| s.class == OpClass::HtoD).unwrap();
        assert_eq!(h.stream, Some(0));
        assert_eq!(h.gpu, None);
        assert_eq!(h.batch, Some(3));
        assert!((h.bytes - 8.0).abs() < 1e-12);
        let g = spans.iter().find(|s| s.class == OpClass::GpuSort).unwrap();
        assert_eq!(g.gpu, Some(1), "GPU id parsed from lane");
        assert_eq!(g.stream, Some(0), "stream parsed from queue");

        let reg = registry_from_timeline(&tl);
        assert!((reg.end_to_end_s() - tl.makespan()).abs() < 1e-9);
        assert_eq!(reg.classes(), vec![OpClass::HtoD, OpClass::GpuSort]);
    }

    #[test]
    fn cpu_lane_spans_have_no_placement() {
        let mut sim = SimBuilder::new();
        let merge = sim.tag("PairMerge");
        let cpu = sim.lane("CPU");
        sim.op(Op::new(merge, 1.0).cap(1.0).lane(cpu));
        let tl = sim.run().unwrap();
        let spans = spans_from_timeline(&tl);
        assert_eq!(spans[0].class, OpClass::PairMerge);
        assert_eq!(spans[0].stream, None);
        assert_eq!(spans[0].gpu, None);
    }
}
