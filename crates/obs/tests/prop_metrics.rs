//! Property tests for the metrics aggregator and the Chrome-trace
//! exporter, driven by `hetsort-prng` (no external proptest crate).
//!
//! The aggregator's contract is permutation invariance: a registry's
//! totals come from a canonical span ordering, so merging any shuffling
//! of any partitioning of the same spans yields *bitwise* identical
//! results. The exporter's contract is structural: every export
//! validates, and the validator's summary recovers the span counts.

use hetsort_obs::{chrome_trace, validate_chrome, MetricsRegistry, ObsSpan, OpClass};
use hetsort_prng::{run_cases, Rng};

fn random_span(rng: &mut Rng) -> ObsSpan {
    let class = *rng.pick(&OpClass::ALL);
    let t0 = rng.f64_in(0.0, 100.0);
    let dur = rng.f64_in(0.0, 10.0);
    let mut s = ObsSpan::new(class, format!("{} x", class.name()), t0, t0 + dur)
        .with_bytes(rng.f64_in(0.0, 1e9));
    if rng.bool() {
        s = s.on_gpu(rng.usize_in(0, 3));
    }
    if rng.bool() {
        s = s.on_stream(rng.usize_in(0, 7));
    }
    if rng.bool() {
        s = s.for_batch(rng.u64_in(0, 99));
    }
    if rng.bool() {
        s = s.for_job(rng.u64_in(0, 9));
    }
    s
}

fn shuffle<T>(rng: &mut Rng, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.usize_in(0, i);
        xs.swap(i, j);
    }
}

/// Everything the registry derives, as raw bits for exact comparison.
fn fingerprint(reg: &MetricsRegistry) -> Vec<u64> {
    let mut out = vec![
        reg.end_to_end_s().to_bits(),
        reg.busy_total_s().to_bits(),
        reg.union_total_s().to_bits(),
        reg.overlap_ratio().to_bits(),
        reg.bus_util().to_bits(),
        reg.literature_total_s().to_bits(),
    ];
    for class in reg.classes() {
        let st = reg.class_stats(class);
        out.push(st.count as u64);
        out.push(st.busy_s.to_bits());
        out.push(st.union_s.to_bits());
        out.push(st.bytes.to_bits());
    }
    out
}

#[test]
fn prop_totals_are_permutation_invariant() {
    run_cases("permutation invariance", 60, |rng| {
        let n = rng.usize_in(1, 120);
        let spans: Vec<ObsSpan> = (0..n).map(|_| random_span(rng)).collect();
        let reference = MetricsRegistry::from_spans(spans.clone());
        let want = fingerprint(&reference);

        // Any shuffle, recorded one by one.
        let mut shuffled = spans.clone();
        shuffle(rng, &mut shuffled);
        let mut one_by_one = MetricsRegistry::new();
        for s in shuffled {
            one_by_one.record(s);
        }
        if fingerprint(&one_by_one) != want {
            return Err("shuffled one-by-one differs from reference".into());
        }

        // Any partitioning into sub-registries, merged in random order.
        let mut parts: Vec<MetricsRegistry> = (0..rng.usize_in(1, 4))
            .map(|_| MetricsRegistry::new())
            .collect();
        let k = parts.len();
        let mut shuffled = spans;
        shuffle(rng, &mut shuffled);
        for (i, s) in shuffled.into_iter().enumerate() {
            parts[i % k].record(s);
        }
        shuffle(rng, &mut parts);
        let mut merged = MetricsRegistry::new();
        for p in parts {
            merged.merge(p);
        }
        if fingerprint(&merged) != want {
            return Err("partitioned merge differs from reference".into());
        }
        Ok(())
    });
}

#[test]
fn prop_counters_are_order_independent() {
    run_cases("counter order independence", 40, |rng| {
        let names = ["a.x", "b.y", "c.z"];
        let mut adds: Vec<(&str, f64)> = (0..rng.usize_in(1, 30))
            .map(|_| (*rng.pick(&names), rng.f64_in(0.0, 5.0)))
            .collect();
        let mut r1 = MetricsRegistry::new();
        for (k, v) in &adds {
            r1.add_counter(k, *v);
        }
        // Summation per key is order-independent only up to float
        // rounding, so compare against a per-key shuffle-free total with
        // a tight tolerance instead of bitwise.
        shuffle(rng, &mut adds);
        let mut r2 = MetricsRegistry::new();
        for (k, v) in &adds {
            r2.add_counter(k, *v);
        }
        for k in names {
            let (a, b) = (r1.counter(k), r2.counter(k));
            if (a - b).abs() > 1e-9 * (1.0 + a.abs()) {
                return Err(format!("counter {k}: {a} vs {b}"));
            }
        }
        Ok(())
    });
}

#[test]
fn prop_chrome_export_round_trips_structure() {
    run_cases("chrome export round trip", 40, |rng| {
        let n = rng.usize_in(1, 80);
        let spans: Vec<ObsSpan> = (0..n).map(|_| random_span(rng)).collect();
        let reg = MetricsRegistry::from_spans(spans);
        let text = chrome_trace(&reg, "prop");
        let summary = validate_chrome(&text).map_err(|e| format!("invalid trace: {e}"))?;
        if summary.complete_events != reg.spans().len() {
            return Err(format!(
                "lost spans: {} exported of {}",
                summary.complete_events,
                reg.spans().len()
            ));
        }
        // Every category present in the registry appears in the trace.
        for class in reg.classes() {
            if !summary.categories.iter().any(|c| c == class.name()) {
                return Err(format!("category {} missing", class.name()));
            }
        }
        if summary.max_depth < 1 {
            return Err("non-empty trace must have depth >= 1".into());
        }
        Ok(())
    });
}

#[test]
fn prop_nesting_depth_is_preserved() {
    // Build explicitly nested spans on one lane and check the validator
    // recovers the exact depth.
    run_cases("nesting depth", 30, |rng| {
        let depth = rng.usize_in(1, 12);
        let mut spans = Vec::new();
        for d in 0..depth {
            let pad = d as f64;
            spans.push(
                ObsSpan::new(OpClass::GpuSort, format!("nest {d}"), pad, 100.0 - pad)
                    .on_gpu(0)
                    .on_stream(0),
            );
        }
        shuffle(rng, &mut spans);
        let reg = MetricsRegistry::from_spans(spans);
        let summary =
            validate_chrome(&chrome_trace(&reg, "nest")).map_err(|e| format!("invalid: {e}"))?;
        if summary.max_depth != depth {
            return Err(format!("depth {} != expected {depth}", summary.max_depth));
        }
        Ok(())
    });
}
