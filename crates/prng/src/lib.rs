//! Deterministic randomness for the whole workspace.
//!
//! The build environment is fully offline, so this crate supplies the
//! three things external crates used to provide:
//!
//! * [`Rng`] — a SplitMix64 generator (Steele et al., OOPSLA 2014):
//!   tiny, fast, passes BigCrush at the quality level tests need, and
//!   bit-reproducible across platforms;
//! * [`run_cases`] + [`prop_assert!`]/[`prop_assert_eq!`] — a minimal
//!   property-test harness with per-case seeds, env-var reproduction
//!   (`PTEST_SEED`, `PTEST_CASES`), and shrink-free failure reports;
//! * [`bench`] — a wall-clock bench timer for `harness = false`
//!   benchmarks.

// No unsafe anywhere in this crate — enforced, not assumed.
#![forbid(unsafe_code)]

/// SplitMix64 pseudo-random generator.
///
/// Every draw advances the state by a fixed odd constant and hashes it,
/// so streams never short-cycle and two generators with different seeds
/// are statistically independent for test purposes.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_in: empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "u64_in: empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64_unit()
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.usize_in(0, xs.len())]
    }

    /// An arbitrary `f64` including specials: a mix of raw bit
    /// patterns (NaNs, denormals, ±inf all reachable), hand-picked
    /// special values, and ordinary unit-range values — the same
    /// coverage the old proptest strategy aimed for.
    pub fn any_f64(&mut self) -> f64 {
        const SPECIALS: [f64; 10] = [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            1.0,
            -1.0,
        ];
        match self.next_u64() % 6 {
            0 => f64::from_bits(self.next_u64()),
            1 => {
                let s = SPECIALS[self.usize_in(0, SPECIALS.len())];
                if s.is_nan() && self.bool() {
                    -s
                } else {
                    s
                }
            }
            _ => self.f64_in(-1.0, 1.0) * 10f64.powi(self.u32_in(0, 9) as i32 - 4),
        }
    }

    /// Vector of length `[0, max_len)` filled by `gen`.
    pub fn vec_with<T>(&mut self, max_len: usize, mut gen: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let n = self.usize_in(0, max_len.max(1));
        (0..n).map(|_| gen(self)).collect()
    }
}

/// Run a property `cases` times with per-case deterministic seeds.
///
/// On failure, panics with the case's seed; reproduce a single failing
/// case with `PTEST_SEED=<seed> PTEST_CASES=1 cargo test <name>`.
/// `PTEST_CASES` also globally overrides the case count.
pub fn run_cases<F>(name: &str, cases: usize, mut property: F)
where
    F: FnMut(&mut Rng) -> Result<(), String>,
{
    let base: u64 = std::env::var("PTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00C0_FFEE);
    let cases: usize = std::env::var("PTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(cases);
    for i in 0..cases {
        // Case 0 uses the base seed itself so PTEST_SEED reproduces it.
        let seed = base.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = Rng::new(seed);
        if let Err(msg) = property(&mut rng) {
            panic!(
                "property '{name}' failed at case {i}/{cases}:\n  {msg}\n  \
                 reproduce with: PTEST_SEED={seed} PTEST_CASES=1"
            );
        }
    }
}

/// Property-style assertion: returns `Err` from the enclosing
/// `Result<(), String>` closure instead of panicking, so `run_cases`
/// can report the failing seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Equality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed: {} == {} ({}:{})\n    left: {:?}\n   right: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                lhs,
                rhs
            ));
        }
    }};
}

/// Minimal wall-clock bench runner for `harness = false` benchmarks.
pub mod bench {
    use std::time::Instant;

    /// Time `f` for `samples` iterations after one warmup call and
    /// print `label: median / min per iteration`.
    ///
    /// The return value of `f` is consumed via `std::hint::black_box`
    /// so the optimizer cannot delete the measured work.
    pub fn bench<R>(label: &str, samples: usize, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let mut times: Vec<f64> = (0..samples.max(1))
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        let min = times[0];
        println!(
            "bench  {label:<44} median {:>10}  min {:>10}",
            fmt_s(median),
            fmt_s(min)
        );
    }

    /// Like [`bench`] but also reports elements/second throughput.
    pub fn bench_throughput<R>(
        label: &str,
        samples: usize,
        elems: usize,
        mut f: impl FnMut() -> R,
    ) {
        std::hint::black_box(f());
        let mut times: Vec<f64> = (0..samples.max(1))
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        println!(
            "bench  {label:<44} median {:>10}  {:>12.3e} elem/s",
            fmt_s(median),
            elems as f64 / median
        );
    }

    fn fmt_s(s: f64) -> String {
        if s >= 1.0 {
            format!("{s:.3} s")
        } else if s >= 1e-3 {
            format!("{:.3} ms", s * 1e3)
        } else {
            format!("{:.3} us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..100).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..100).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..100).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = Rng::new(42);
        for _ in 0..10_000 {
            let x = r.usize_in(3, 17);
            assert!((3..17).contains(&x));
            let f = r.f64_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&f));
            let u = r.f64_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_mean_is_half() {
        let mut r = Rng::new(1);
        let n = 100_000;
        let mean = (0..n).map(|_| r.f64_unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn property_harness_runs_and_reports() {
        run_cases("trivial", 25, |rng| {
            let v = rng.usize_in(0, 10);
            prop_assert!(v < 10, "v={v}");
            prop_assert_eq!(v, v);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "reproduce with")]
    fn property_harness_panics_with_seed() {
        run_cases("failing", 5, |rng| {
            prop_assert!(rng.usize_in(0, 2) > 5);
            Ok(())
        });
    }

    #[test]
    fn any_f64_hits_specials_eventually() {
        let mut r = Rng::new(3);
        let vals: Vec<f64> = (0..10_000).map(|_| r.any_f64()).collect();
        assert!(vals.iter().any(|v| v.is_nan()));
        assert!(vals.iter().any(|v| v.is_infinite()));
        assert!(vals.iter().any(|v| v.is_finite()));
    }
}
