//! Memory-budget admission control.
//!
//! The controller reuses the analyzer's peak-residency math
//! ([`Residency`]): a job's footprint is what its built plan keeps
//! resident for its whole run — per-GPU device buffers plus pinned
//! host staging. Jobs are admitted only while, on every GPU,
//!
//! ```text
//! Σ_{jobs in flight} mem_factor · elem_bytes · b_s · streams_on_gpu
//!     ≤ device_budget_bytes
//! ```
//!
//! and the summed pinned staging stays under `pinned_budget_bytes`.
//! A coalesced group shares one reservation (the element-wise maximum
//! of its members' footprints — members run back-to-back through the
//! same buffers), which is exactly why coalescing relieves budget
//! pressure.

use std::collections::BTreeSet;

use hetsort_analyze::Residency;

/// The service's aggregate memory budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeBudget {
    /// Cap on aggregate resident bytes **per GPU** across all jobs in
    /// flight (a job set is admissible only if every GPU stays under).
    pub device_bytes: f64,
    /// Cap on total pinned host staging bytes across all jobs in
    /// flight.
    pub pinned_bytes: f64,
}

impl ServeBudget {
    /// A budget from explicit byte caps.
    pub fn new(device_bytes: f64, pinned_bytes: f64) -> ServeBudget {
        ServeBudget {
            device_bytes,
            pinned_bytes,
        }
    }
}

/// Tracks the footprints of reservations currently in flight, plus
/// the set of GPUs currently missing from the elastic pool.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    budget: ServeBudget,
    agg: Residency,
    reservations: Vec<(u64, Residency)>,
    dead: BTreeSet<usize>,
}

impl AdmissionController {
    /// An empty controller under `budget`.
    pub fn new(budget: ServeBudget) -> AdmissionController {
        AdmissionController {
            budget,
            agg: Residency::default(),
            reservations: Vec::new(),
            dead: BTreeSet::new(),
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> ServeBudget {
        self.budget
    }

    /// The aggregate footprint currently reserved.
    pub fn in_flight(&self) -> &Residency {
        &self.agg
    }

    /// Would adding `r` keep every GPU and the pinned pool under
    /// budget? A footprint touching a GPU that has left the pool
    /// never fits — plans must be rebuilt on the surviving devices
    /// first.
    pub fn fits(&self, r: &Residency) -> bool {
        let alive_ok = r
            .device_bytes
            .iter()
            .all(|(gpu, b)| *b <= 0.0 || !self.dead.contains(gpu));
        let pinned_ok = self.agg.pinned_bytes + r.pinned_bytes <= self.budget.pinned_bytes;
        let device_ok = r.device_bytes.iter().all(|(gpu, b)| {
            self.agg.device_bytes.get(gpu).copied().unwrap_or(0.0) + b <= self.budget.device_bytes
        });
        alive_ok && pinned_ok && device_ok
    }

    /// Could `r` *ever* be admitted, even with nothing else in flight,
    /// on the pool as it stands today? Jobs failing this are shed
    /// immediately instead of queuing forever.
    pub fn ever_fits(&self, r: &Residency) -> bool {
        r.device_bytes
            .iter()
            .all(|(gpu, b)| *b <= 0.0 || !self.dead.contains(gpu))
            && r.pinned_bytes <= self.budget.pinned_bytes
            && r.device_bytes
                .values()
                .all(|b| *b <= self.budget.device_bytes)
    }

    /// Reserve `r` under key `id` (a job id or a coalesced-group
    /// leader id).
    pub fn reserve(&mut self, id: u64, r: Residency) {
        self.agg.add(&r);
        self.reservations.push((id, r));
    }

    /// Release the reservation keyed `id`; returns whether it existed.
    pub fn release(&mut self, id: u64) -> bool {
        match self.reservations.iter().position(|(k, _)| *k == id) {
            Some(i) => {
                let (_, r) = self.reservations.remove(i);
                self.agg.sub(&r);
                if self.reservations.is_empty() {
                    // Drop any f64 round-off residue: an empty
                    // controller must admit exactly what `ever_fits`
                    // admits, or boundary-sized jobs could queue
                    // forever.
                    self.agg = Residency::default();
                }
                true
            }
            None => false,
        }
    }

    /// Ids of reservations currently held, in reservation order.
    pub fn held(&self) -> Vec<u64> {
        self.reservations.iter().map(|(k, _)| *k).collect()
    }

    /// Remove `gpu` from the pool. Returns the leader ids of every
    /// in-flight reservation whose footprint touches the lost device —
    /// the service must release them and decide (re-queue, never drop)
    /// what happens to their jobs. Idempotent.
    pub fn lose_gpu(&mut self, gpu: usize) -> Vec<u64> {
        self.dead.insert(gpu);
        self.reservations
            .iter()
            .filter(|(_, r)| r.device_bytes.get(&gpu).copied().unwrap_or(0.0) > 0.0)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Return `gpu` to the pool (no-op when it was never lost).
    pub fn join_gpu(&mut self, gpu: usize) {
        self.dead.remove(&gpu);
    }

    /// Physical GPU indices currently missing from the pool.
    pub fn dead(&self) -> &BTreeSet<usize> {
        &self.dead
    }
}

/// Element-wise maximum of two footprints — the shared reservation of
/// a coalesced group whose members reuse the same buffers
/// sequentially.
pub fn footprint_max(a: &Residency, b: &Residency) -> Residency {
    let mut out = a.clone();
    for (gpu, bytes) in &b.device_bytes {
        let cur = out.device_bytes.entry(*gpu).or_insert(0.0);
        *cur = cur.max(*bytes);
    }
    out.pinned_bytes = out.pinned_bytes.max(b.pinned_bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn footprint(gpu: usize, dev: f64, pinned: f64) -> Residency {
        let mut r = Residency::default();
        r.device_bytes.insert(gpu, dev);
        r.pinned_bytes = pinned;
        r
    }

    #[test]
    fn admits_until_either_budget_is_hit() {
        let mut ac = AdmissionController::new(ServeBudget::new(100.0, 50.0));
        let r = footprint(0, 40.0, 10.0);
        assert!(ac.fits(&r));
        ac.reserve(1, r.clone());
        assert!(ac.fits(&r));
        ac.reserve(2, r.clone());
        // Third job would hit 120 device bytes on GPU 0 → refused.
        assert!(!ac.fits(&r));
        // But a job on a *different* GPU still fits (per-GPU budget),
        // as long as the pinned pool holds.
        assert!(ac.fits(&footprint(1, 90.0, 30.0)));
        assert!(!ac.fits(&footprint(1, 90.0, 31.0)), "pinned pool full");
        assert!(ac.release(1));
        assert!(ac.fits(&r), "released budget is reusable");
        assert!(!ac.release(1), "double release is a no-op");
    }

    #[test]
    fn ever_fits_is_budget_against_empty_controller() {
        let mut ac = AdmissionController::new(ServeBudget::new(100.0, 50.0));
        ac.reserve(1, footprint(0, 90.0, 40.0));
        let r = footprint(0, 95.0, 5.0);
        assert!(!ac.fits(&r), "not now");
        assert!(ac.ever_fits(&r), "but possible once drained");
        assert!(!ac.ever_fits(&footprint(0, 101.0, 0.0)));
        assert!(!ac.ever_fits(&footprint(0, 1.0, 51.0)));
    }

    #[test]
    fn losing_a_gpu_reports_displaced_reservations_and_blocks_admission() {
        let mut ac = AdmissionController::new(ServeBudget::new(100.0, 50.0));
        ac.reserve(1, footprint(0, 40.0, 10.0));
        ac.reserve(2, footprint(1, 40.0, 10.0));
        let displaced = ac.lose_gpu(1);
        assert_eq!(displaced, vec![2]);
        // Footprints touching the dead GPU no longer fit — not now,
        // not ever — while GPU-0 jobs are untouched.
        assert!(!ac.fits(&footprint(1, 1.0, 0.0)));
        assert!(!ac.ever_fits(&footprint(1, 1.0, 0.0)));
        assert!(ac.fits(&footprint(0, 1.0, 0.0)));
        assert_eq!(ac.dead().iter().copied().collect::<Vec<_>>(), vec![1]);
        // Idempotent loss; join restores admissibility.
        assert!(ac.lose_gpu(1).contains(&2));
        ac.join_gpu(1);
        assert!(ac.ever_fits(&footprint(1, 1.0, 0.0)));
        assert!(ac.dead().is_empty());
    }

    #[test]
    fn coalesced_groups_share_the_max_footprint() {
        let a = footprint(0, 40.0, 10.0);
        let b = footprint(0, 30.0, 20.0);
        let m = footprint_max(&a, &b);
        assert_eq!(m.device_bytes.get(&0), Some(&40.0));
        assert_eq!(m.pinned_bytes, 20.0);
        // Sharing beats summing: the group fits where two solo
        // reservations would not.
        let mut ac = AdmissionController::new(ServeBudget::new(50.0, 25.0));
        assert!(ac.fits(&m));
        ac.reserve(1, a);
        assert!(!ac.fits(&b), "solo reservations would overflow");
    }
}
