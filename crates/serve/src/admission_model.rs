//! [`SchedModel`] of the admission state machine under `PoolEvent`
//! lose/join sequences — the serve-side half of the schedule-space
//! explorer (`hetsort-analyze::explore`).
//!
//! Threads are the jobs (admit → run → release) plus one pool thread
//! playing an ordered lose/join script, so the explorer covers every
//! alignment of reservations, releases, displacements, and rejoins.
//! Two independent layers keep the model honest:
//!
//! * a [`MirrorCtl`] re-implements [`AdmissionController`] semantics
//!   op for op — including the empty-state round-off reset — with
//!   injectable [`AdmissionDefect`]s for the mutation kill-suite;
//! * when no defect is seeded, the model *also* drives a real
//!   [`AdmissionController`] in lockstep and reports any divergence —
//!   so the model checking applies to the shipped controller, not a
//!   drifted copy of it.
//!
//! The **budget-safety invariant** is checked against ground truth
//! (the sum of *running* jobs' footprints, not the controller's own
//! counters, which a defect may corrupt): no interleaving may
//! overcommit any device or the pinned pool, keep a running job on a
//! dead device, or leak reservations past quiescence. Violations are
//! [`FindingClass::Budget`] findings; admission livelocks (a job
//! forever queued though `ever_fits` holds) surface as the engine's
//! reachable deadlock.

use std::collections::BTreeSet;

use hetsort_analyze::explore::{AdmissionDefect, Footprint, Res, SchedModel};
use hetsort_analyze::{Finding, FindingClass, Residency};

use crate::admission::{AdmissionController, ServeBudget};
use crate::pool::PoolEventKind;

/// One modeled job: a footprint that gets reserved, held, released.
#[derive(Debug, Clone)]
pub struct ModelJob {
    /// Reservation key.
    pub id: u64,
    /// The job's full-run footprint.
    pub fp: Residency,
}

/// A scripted admission scenario: jobs racing a lose/join schedule.
#[derive(Debug, Clone)]
pub struct AdmissionScenario {
    /// Scenario name (appears in findings).
    pub name: String,
    /// The budget under test.
    pub budget: ServeBudget,
    /// Jobs, one model thread each.
    pub jobs: Vec<ModelJob>,
    /// Ordered pool script (kind, gpu).
    pub events: Vec<(PoolEventKind, usize)>,
    /// Seeded controller defect (`None` = model the shipped
    /// semantics and cross-validate against the real controller).
    pub defect: Option<AdmissionDefect>,
}

/// Exact reimplementation of [`AdmissionController`]'s bookkeeping
/// with seedable defects.
#[derive(Debug, Clone)]
struct MirrorCtl {
    budget: ServeBudget,
    agg: Residency,
    reservations: Vec<(u64, Residency)>,
    dead: BTreeSet<usize>,
    defect: Option<AdmissionDefect>,
}

impl MirrorCtl {
    fn new(budget: ServeBudget, defect: Option<AdmissionDefect>) -> MirrorCtl {
        MirrorCtl {
            budget,
            agg: Residency::default(),
            reservations: Vec::new(),
            dead: BTreeSet::new(),
            defect,
        }
    }

    fn fits(&self, r: &Residency) -> bool {
        let alive_ok = r
            .device_bytes
            .iter()
            .all(|(gpu, b)| *b <= 0.0 || !self.dead.contains(gpu));
        let pinned_ok = self.agg.pinned_bytes + r.pinned_bytes <= self.budget.pinned_bytes;
        let device_ok = r.device_bytes.iter().all(|(gpu, b)| {
            self.agg.device_bytes.get(gpu).copied().unwrap_or(0.0) + b <= self.budget.device_bytes
        });
        alive_ok && pinned_ok && device_ok
    }

    fn ever_fits(&self, r: &Residency) -> bool {
        r.device_bytes
            .iter()
            .all(|(gpu, b)| *b <= 0.0 || !self.dead.contains(gpu))
            && r.pinned_bytes <= self.budget.pinned_bytes
            && r.device_bytes
                .values()
                .all(|b| *b <= self.budget.device_bytes)
    }

    fn reserve(&mut self, id: u64, r: Residency) {
        self.agg.add(&r);
        self.reservations.push((id, r));
    }

    fn release(&mut self, id: u64) -> bool {
        match self.reservations.iter().position(|(k, _)| *k == id) {
            Some(i) => {
                let (_, r) = self.reservations.remove(i);
                self.agg.sub(&r);
                if self.defect == Some(AdmissionDefect::DoubleRelease) {
                    // Seeded defect: the footprint comes off twice, so
                    // the controller under-counts what is in flight.
                    self.agg.sub(&r);
                }
                if self.reservations.is_empty()
                    && self.defect != Some(AdmissionDefect::NoDrainReset)
                {
                    // The shipped empty-state round-off reset;
                    // NoDrainReset seeds its omission.
                    self.agg = Residency::default();
                }
                true
            }
            None => false,
        }
    }

    fn lose_gpu(&mut self, gpu: usize) -> Vec<u64> {
        self.dead.insert(gpu);
        self.reservations
            .iter()
            .filter(|(_, r)| r.device_bytes.get(&gpu).copied().unwrap_or(0.0) > 0.0)
            .map(|(k, _)| *k)
            .collect()
    }

    fn join_gpu(&mut self, gpu: usize) {
        self.dead.remove(&gpu);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Shed,
}

/// Exhaustive-interleaving model of one [`AdmissionScenario`].
pub struct AdmissionModel {
    scenario: AdmissionScenario,
    mirror: MirrorCtl,
    /// The shipped controller, driven in lockstep when no defect is
    /// seeded.
    real: Option<AdmissionController>,
    state: Vec<JobState>,
    event_pc: usize,
}

impl AdmissionModel {
    /// Build the model for a scenario.
    pub fn new(scenario: AdmissionScenario) -> AdmissionModel {
        let mirror = MirrorCtl::new(scenario.budget, scenario.defect);
        let real = match scenario.defect {
            None => Some(AdmissionController::new(scenario.budget)),
            Some(_) => None,
        };
        let state = vec![JobState::Queued; scenario.jobs.len()];
        AdmissionModel {
            scenario,
            mirror,
            real,
            state,
            event_pc: 0,
        }
    }

    fn pool_thread(&self) -> usize {
        self.scenario.jobs.len()
    }

    /// Does any Join remain in the unplayed script? While one does, a
    /// currently-impossible job keeps waiting instead of shedding.
    fn join_pending(&self) -> bool {
        self.scenario.events[self.event_pc..]
            .iter()
            .any(|(k, _)| *k == PoolEventKind::Join)
    }

    fn budget_finding(&self, code: &'static str, message: String) -> Finding {
        Finding {
            class: FindingClass::Budget,
            code,
            message: format!("{}: {message}", self.scenario.name),
            ops: Vec::new(),
        }
    }

    /// Ground-truth budget safety: sum the *running* jobs' footprints
    /// directly — a defective controller's counters are not trusted.
    fn ground_truth(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        let mut truth = Residency::default();
        for (j, job) in self.scenario.jobs.iter().enumerate() {
            if self.state[j] == JobState::Running {
                truth.add(&job.fp);
                if let Some(gpu) = job
                    .fp
                    .device_bytes
                    .iter()
                    .find(|(g, b)| **b > 0.0 && self.mirror.dead.contains(g))
                    .map(|(g, _)| *g)
                {
                    out.push(self.budget_finding(
                        "dead-reservation",
                        format!("job {} runs on GPU {gpu} after the pool lost it", job.id),
                    ));
                }
            }
        }
        let eps = 1e-9;
        for (gpu, bytes) in &truth.device_bytes {
            if *bytes > self.scenario.budget.device_bytes * (1.0 + eps) + eps {
                out.push(self.budget_finding(
                    "overcommit",
                    format!(
                        "running jobs hold {bytes:.6e} B on GPU {gpu}, over the \
                         {:.6e} B device budget",
                        self.scenario.budget.device_bytes
                    ),
                ));
            }
        }
        if truth.pinned_bytes > self.scenario.budget.pinned_bytes * (1.0 + eps) + eps {
            out.push(self.budget_finding(
                "overcommit",
                format!(
                    "running jobs hold {:.6e} B of pinned staging, over the {:.6e} B cap",
                    truth.pinned_bytes, self.scenario.budget.pinned_bytes
                ),
            ));
        }
        out
    }

    /// Cross-validation: with no seeded defect the mirror and the
    /// shipped controller must agree bit for bit.
    fn divergence(&self) -> Vec<Finding> {
        let Some(real) = &self.real else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if real.in_flight() != &self.mirror.agg {
            out.push(self.budget_finding(
                "mirror-divergence",
                format!(
                    "model in-flight {:?} != shipped controller {:?}",
                    self.mirror.agg,
                    real.in_flight()
                ),
            ));
        }
        if real.dead() != &self.mirror.dead {
            out.push(self.budget_finding(
                "mirror-divergence",
                format!(
                    "model dead set {:?} != shipped controller {:?}",
                    self.mirror.dead,
                    real.dead()
                ),
            ));
        }
        let held: Vec<u64> = self.mirror.reservations.iter().map(|(k, _)| *k).collect();
        if real.held() != held {
            out.push(self.budget_finding(
                "mirror-divergence",
                format!(
                    "model reservations {held:?} != shipped controller {:?}",
                    real.held()
                ),
            ));
        }
        out
    }
}

impl SchedModel for AdmissionModel {
    fn name(&self) -> String {
        format!(
            "admission {} jobs={} events={}",
            self.scenario.name,
            self.scenario.jobs.len(),
            self.scenario.events.len()
        )
    }

    fn n_threads(&self) -> usize {
        self.scenario.jobs.len() + 1
    }

    fn reset(&mut self) {
        self.mirror = MirrorCtl::new(self.scenario.budget, self.scenario.defect);
        self.real = match self.scenario.defect {
            None => Some(AdmissionController::new(self.scenario.budget)),
            Some(_) => None,
        };
        self.state = vec![JobState::Queued; self.scenario.jobs.len()];
        self.event_pc = 0;
    }

    fn enabled(&self, thread: usize) -> bool {
        if thread == self.pool_thread() {
            return self.event_pc < self.scenario.events.len();
        }
        match self.state[thread] {
            JobState::Running => true,
            JobState::Done | JobState::Shed => false,
            JobState::Queued => {
                let fp = &self.scenario.jobs[thread].fp;
                if self.mirror.fits(fp) {
                    true
                } else {
                    // Shed only once no pending Join can revive the
                    // job; until then it waits in the queue.
                    !self.mirror.ever_fits(fp) && !self.join_pending()
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.event_pc == self.scenario.events.len()
            && self
                .state
                .iter()
                .all(|s| matches!(s, JobState::Done | JobState::Shed))
    }

    fn next_footprint(&self, thread: usize) -> Footprint {
        if thread == self.pool_thread() {
            // Lose/join rewrites liveness and displaces reservations:
            // dependent with every admission action.
            return Footprint::global();
        }
        // Reserve/release mutate the shared aggregate counters for
        // every GPU the job touches plus the pinned pool.
        let fp = &self.scenario.jobs[thread].fp;
        let mut out = Footprint::write(Res::Pinned);
        for (gpu, b) in &fp.device_bytes {
            if *b > 0.0 {
                out = out.and_write(Res::Gpu(*gpu));
            }
        }
        out
    }

    fn step(&mut self, thread: usize) {
        if thread == self.pool_thread() {
            let (kind, gpu) = self.scenario.events[self.event_pc];
            self.event_pc += 1;
            match kind {
                PoolEventKind::Lose => {
                    let displaced = self.mirror.lose_gpu(gpu);
                    if let Some(real) = &mut self.real {
                        real.lose_gpu(gpu);
                    }
                    for id in displaced {
                        if self.scenario.defect != Some(AdmissionDefect::SkipDisplaceRelease) {
                            self.mirror.release(id);
                            if let Some(real) = &mut self.real {
                                real.release(id);
                            }
                        }
                        // The service never drops a displaced job: it
                        // re-queues for the next admission scan.
                        for (j, job) in self.scenario.jobs.iter().enumerate() {
                            if job.id == id && self.state[j] == JobState::Running {
                                self.state[j] = JobState::Queued;
                            }
                        }
                    }
                }
                PoolEventKind::Join => {
                    self.mirror.join_gpu(gpu);
                    if let Some(real) = &mut self.real {
                        real.join_gpu(gpu);
                    }
                }
            }
            return;
        }
        let job = self.scenario.jobs[thread].clone();
        match self.state[thread] {
            JobState::Queued => {
                if self.mirror.fits(&job.fp) {
                    self.mirror.reserve(job.id, job.fp.clone());
                    if let Some(real) = &mut self.real {
                        real.reserve(job.id, job.fp.clone());
                    }
                    self.state[thread] = JobState::Running;
                } else {
                    self.state[thread] = JobState::Shed;
                }
            }
            JobState::Running => {
                self.mirror.release(job.id);
                if let Some(real) = &mut self.real {
                    real.release(job.id);
                }
                self.state[thread] = JobState::Done;
            }
            JobState::Done | JobState::Shed => {}
        }
    }

    fn check_state(&self) -> Vec<Finding> {
        let mut out = self.ground_truth();
        out.extend(self.divergence());
        out
    }

    fn check_final(&self) -> Vec<Finding> {
        let mut out = self.check_state();
        if !self.mirror.reservations.is_empty() {
            let ids: Vec<u64> = self.mirror.reservations.iter().map(|(k, _)| *k).collect();
            out.push(self.budget_finding(
                "leaked-reservation",
                format!("reservations {ids:?} still held after every job finished"),
            ));
        }
        if self.mirror.agg.device_total() > 0.0 || self.mirror.agg.pinned_bytes > 0.0 {
            out.push(self.budget_finding(
                "leaked-reservation",
                format!(
                    "controller still counts {:.3e} B device / {:.3e} B pinned \
                     at quiescence",
                    self.mirror.agg.device_total(),
                    self.mirror.agg.pinned_bytes
                ),
            ));
        }
        out
    }

    fn blocked_describe(&self) -> String {
        let waiting: Vec<String> = self
            .scenario
            .jobs
            .iter()
            .enumerate()
            .filter(|(j, _)| self.state[*j] == JobState::Queued)
            .map(|(_, job)| {
                format!(
                    "job {} queued (fits={}, ever_fits={})",
                    job.id,
                    self.mirror.fits(&job.fp),
                    self.mirror.ever_fits(&job.fp)
                )
            })
            .collect();
        format!(
            "{} pool event(s) left; {}",
            self.scenario.events.len() - self.event_pc,
            if waiting.is_empty() {
                "no job queued".to_string()
            } else {
                waiting.join("; ")
            }
        )
    }
}

/// A footprint on one GPU.
pub fn gpu_footprint(gpu: usize, dev: f64, pinned: f64) -> Residency {
    let mut r = Residency::default();
    r.device_bytes.insert(gpu, dev);
    r.pinned_bytes = pinned;
    r
}

/// Clean lose→join churn: two jobs on different GPUs race a loss and
/// rejoin of GPU 1. Must explore with zero findings.
pub fn scenario_lose_join(defect: Option<AdmissionDefect>) -> AdmissionScenario {
    AdmissionScenario {
        name: "lose-join".into(),
        budget: ServeBudget::new(2.0, 2.0),
        jobs: vec![
            ModelJob {
                id: 1,
                fp: gpu_footprint(0, 1.0, 0.5),
            },
            ModelJob {
                id: 2,
                fp: gpu_footprint(1, 1.0, 0.5),
            },
        ],
        events: vec![(PoolEventKind::Lose, 1), (PoolEventKind::Join, 1)],
        defect,
    }
}

/// Round-off scenario: 0.1 + 0.3 released in a concurrent order
/// leaves ~5.6e-17 residue, which blocks the budget-sized job 3
/// forever unless the empty-state reset clears it. Only *some*
/// interleavings exhibit the residue — serialized reserve/release
/// pairs cancel exactly — which is precisely why the explorer is
/// needed to catch [`AdmissionDefect::NoDrainReset`].
pub fn scenario_roundoff(defect: Option<AdmissionDefect>) -> AdmissionScenario {
    AdmissionScenario {
        name: "roundoff".into(),
        budget: ServeBudget::new(0.4, 1.0),
        jobs: vec![
            ModelJob {
                id: 1,
                fp: gpu_footprint(0, 0.1, 0.0),
            },
            ModelJob {
                id: 2,
                fp: gpu_footprint(0, 0.3, 0.0),
            },
            ModelJob {
                id: 3,
                fp: gpu_footprint(0, 0.4, 0.0),
            },
        ],
        events: Vec::new(),
        defect,
    }
}

/// Four equal jobs against a two-job budget: a double release frees
/// phantom capacity and later admissions overcommit the device.
pub fn scenario_equal_jobs(defect: Option<AdmissionDefect>) -> AdmissionScenario {
    AdmissionScenario {
        name: "equal-jobs".into(),
        budget: ServeBudget::new(2.0, 4.0),
        jobs: (1..=4)
            .map(|id| ModelJob {
                id,
                fp: gpu_footprint(0, 1.0, 0.25),
            })
            .collect(),
        events: Vec::new(),
        defect,
    }
}

/// Every shipped-semantics scenario the sweep explores.
pub fn clean_scenarios() -> Vec<AdmissionScenario> {
    vec![
        scenario_lose_join(None),
        scenario_roundoff(None),
        scenario_equal_jobs(None),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_analyze::explore::{explore, ExploreConfig};

    #[test]
    fn clean_scenarios_explore_clean() {
        for sc in clean_scenarios() {
            let name = sc.name.clone();
            let mut m = AdmissionModel::new(sc);
            let rep = explore(&mut m, &ExploreConfig::default());
            assert!(rep.is_clean(), "{name}: {:?}", rep.findings);
            assert!(!rep.truncated, "{name}");
            assert!(rep.traces >= 1, "{name}");
        }
    }

    #[test]
    fn displaced_job_waits_for_rejoin_and_completes() {
        let mut m = AdmissionModel::new(scenario_lose_join(None));
        let rep = explore(&mut m, &ExploreConfig::default());
        assert!(rep.is_clean(), "{:?}", rep.findings);
        // The schedule space must actually branch (loss lands before,
        // between, and after the admissions).
        assert!(rep.traces > 1, "{}", rep.summary());
    }
}
