//! Jobs: what tenants submit and what they get back.

use hetsort_core::HetSortConfig;

/// Scheduling priority. Higher priorities are scanned first at every
/// admission decision; within a priority, jobs admit in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Scanned last.
    Low,
    /// The default.
    Normal,
    /// Scanned first.
    High,
}

impl Priority {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// One tenant request: data to sort under a configuration, with a
/// priority and an optional admission deadline.
///
/// All times are *virtual* seconds on the service clock (the same
/// clock the simulator's durations advance), never wall clock — the
/// whole service is deterministic for a fixed job list.
#[derive(Debug, Clone)]
pub struct SortJob {
    /// The unsorted input.
    pub data: Vec<f64>,
    /// Full pipeline configuration (the per-job
    /// [`RecoveryPolicy`](hetsort_core::RecoveryPolicy) and fault
    /// schedule ride along in here).
    pub config: HetSortConfig,
    /// Scheduling priority.
    pub priority: Priority,
    /// Latest virtual time at which the job may still be *admitted*;
    /// a job whose deadline passes while queued is shed with a typed
    /// [`Overloaded`](hetsort_core::HetSortError::Overloaded) error.
    pub deadline_s: Option<f64>,
    /// Virtual arrival time (submission order breaks ties).
    pub arrival_s: f64,
}

impl SortJob {
    /// A normal-priority job arriving at `t = 0`.
    pub fn new(data: Vec<f64>, config: HetSortConfig) -> SortJob {
        SortJob {
            data,
            config,
            priority: Priority::Normal,
            deadline_s: None,
            arrival_s: 0.0,
        }
    }

    /// Set the priority.
    pub fn with_priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Set the admission deadline (virtual seconds).
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Set the arrival time (virtual seconds).
    pub fn arriving_at(mut self, t_s: f64) -> Self {
        self.arrival_s = t_s;
        self
    }
}

/// What a completed job hands back.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Service-assigned job id (submission order).
    pub id: u64,
    /// The job's priority.
    pub priority: Priority,
    /// Virtual arrival time.
    pub arrival_s: f64,
    /// Virtual time the admission controller let the job in.
    pub admitted_s: f64,
    /// Virtual completion time (`admitted_s` + simulated duration,
    /// plus any coalesced predecessors sharing the reservation).
    pub completed_s: f64,
    /// The sorted output (functionally executed, not simulated).
    pub sorted: Vec<f64>,
    /// Output verification verdict from the executor.
    pub verified: bool,
    /// Reservation this job shared when coalesced (the group leader's
    /// job id); `None` for solo admissions.
    pub coalesced_into: Option<u64>,
    /// Whether the per-job recovery policy had to absorb any fault.
    pub recovered: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_core::Approach;
    use hetsort_vgpu::platform1;

    #[test]
    fn priority_order_is_low_to_high() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::High.name(), "high");
    }

    #[test]
    fn builders_set_fields() {
        let cfg = HetSortConfig::paper_defaults(platform1(), Approach::BLineMulti);
        let j = SortJob::new(vec![3.0, 1.0], cfg)
            .with_priority(Priority::High)
            .with_deadline(12.5)
            .arriving_at(2.0);
        assert_eq!(j.priority, Priority::High);
        assert_eq!(j.deadline_s, Some(12.5));
        assert_eq!(j.arrival_s, 2.0);
    }
}
