//! `hetsort-serve` — a multi-tenant sort service over the hetsort
//! executors.
//!
//! Tenants submit [`SortJob`]s (data + [`HetSortConfig`] + priority +
//! optional deadline) into a bounded queue. An [`AdmissionController`]
//! reuses the analyzer's peak-residency math to admit jobs only while
//! the aggregate device-memory and pinned-staging footprint stays
//! under a configurable [`ServeBudget`]; small same-shape jobs
//! coalesce into shared reservations; overload sheds jobs with a typed
//! [`Overloaded`](hetsort_core::HetSortError::Overloaded) error —
//! never a panic.
//!
//! The device pool is **elastic**: a [`pool::PoolEvent`] schedule can
//! remove and restore GPUs on the virtual clock. A loss displaces and
//! re-queues the jobs running on the lost device (members finished
//! before the loss still complete), re-plans the queue on the
//! survivors, and sheds — typed — only what can never fit again; a
//! join restores capacity at the next admission scan.
//!
//! The service is **deterministic**: outputs come from the functional
//! executors (bit-identical to a reference sort), while every clock —
//! queue waits, admissions, completions — advances in virtual seconds
//! taken from the simulator. Rerunning the same job list reproduces
//! the same schedule and metrics to the bit, which is what makes the
//! concurrent stress harness auditable.
//!
//! ```
//! use hetsort_serve::{ServeBudget, ServeConfig, SortJob, SortService};
//! use hetsort_core::{Approach, HetSortConfig};
//! use hetsort_vgpu::platform1;
//!
//! let cfg = HetSortConfig::paper_defaults(platform1(), Approach::PipeMerge)
//!     .with_batch_elems(1_000)
//!     .with_pinned_elems(250);
//! let svc = SortService::new(ServeConfig::new(ServeBudget::new(1e6, 1e6)));
//! let out = svc.run(vec![SortJob::new(vec![3.0, 1.0, 2.0], cfg)]);
//! assert_eq!(out.completed[0].sorted, vec![1.0, 2.0, 3.0]);
//! ```
//!
//! [`HetSortConfig`]: hetsort_core::HetSortConfig

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod admission;
pub mod admission_model;
pub mod job;
pub mod mix;
pub mod pool;
pub mod service;

pub use admission::{footprint_max, AdmissionController, ServeBudget};
pub use admission_model::{
    clean_scenarios, gpu_footprint, AdmissionModel, AdmissionScenario, ModelJob,
};
pub use job::{JobReport, Priority, SortJob};
pub use mix::{synthetic_jobs, MIX_COALESCE_ELEMS};
pub use pool::{chaos_schedule, parse_schedule, PoolEvent, PoolEventKind};
pub use service::{AdmissionEvent, ServeConfig, ServeOutcome, SortService};
