//! A deterministic synthetic tenant mix, shared by the `serve-sim`
//! CLI command and the bench gate's serve-throughput scenario.
//!
//! The mix exercises every service mechanism: an opening same-instant
//! burst of small coalescible jobs, a spread tail across three config
//! shapes and all three priorities, and a sprinkle of fault-injected
//! jobs running under the default recovery policy. Everything derives
//! from the seed — two calls with the same arguments produce the same
//! jobs bit for bit.

use std::sync::Arc;

use hetsort_core::{Approach, HetSortConfig};
use hetsort_prng::Rng;
use hetsort_vgpu::{FaultInjector, PlatformSpec};

use crate::job::{Priority, SortJob};

/// Fraction of the mix that arrives at `t = 0` in one burst.
const BURST_FRACTION: f64 = 0.2;

/// Small, coalescible shape (also the burst shape).
fn shape_small(platform: &PlatformSpec) -> HetSortConfig {
    HetSortConfig::paper_defaults(platform.clone(), Approach::PipeMerge)
        .with_batch_elems(1_000)
        .with_pinned_elems(250)
}

fn shape_piped(platform: &PlatformSpec) -> HetSortConfig {
    HetSortConfig::paper_defaults(platform.clone(), Approach::PipeData)
        .with_batch_elems(2_000)
        .with_pinned_elems(500)
}

fn shape_blocking(platform: &PlatformSpec) -> HetSortConfig {
    HetSortConfig::paper_defaults(platform.clone(), Approach::BLineMulti)
        .with_batch_elems(1_500)
        .with_pinned_elems(500)
}

/// The element-count ceiling under which mix jobs coalesce; pass this
/// to [`ServeConfig::with_coalescing`](crate::ServeConfig) to engage
/// coalescing on the burst shape.
pub const MIX_COALESCE_ELEMS: usize = 2_000;

/// Build `n_jobs` deterministic jobs for `platform` from `seed`.
pub fn synthetic_jobs(platform: &PlatformSpec, n_jobs: usize, seed: u64) -> Vec<SortJob> {
    let mut rng = Rng::new(seed);
    // Lossy by design: float→int `as` saturates, and any n_jobs big
    // enough to lose precision through f64 (≥2^53) could never be
    // materialized as jobs anyway. Do NOT switch to integer math —
    // rounding differently would change the burst split, and with it
    // every seeded mix and the benchmark gate built on them.
    let burst = ((n_jobs as f64 * BURST_FRACTION) as usize).max(1);
    let mut jobs = Vec::with_capacity(n_jobs);
    let mut arrival = 0.0_f64;
    for i in 0..n_jobs {
        let job = if i < burst {
            let n = rng.usize_in(800, MIX_COALESCE_ELEMS);
            SortJob::new(data(&mut rng, n), shape_small(platform))
        } else {
            arrival += rng.f64_in(0.0, 2.0e-3);
            let (cfg, n) = match i % 3 {
                0 => (shape_small(platform), rng.usize_in(800, MIX_COALESCE_ELEMS)),
                1 => (shape_piped(platform), rng.usize_in(4_000, 12_000)),
                _ => (shape_blocking(platform), rng.usize_in(3_000, 8_000)),
            };
            SortJob::new(data(&mut rng, n), cfg).arriving_at(arrival)
        };
        let job = match i % 3 {
            0 => job,
            1 => job.with_priority(*rng.pick(&[Priority::Low, Priority::High])),
            _ => job.with_priority(Priority::Low),
        };
        let job = if i % 10 == 9 {
            let faults = Arc::new(FaultInjector::from_seed(seed ^ i as u64, 1));
            SortJob {
                config: job.config.clone().with_faults(faults),
                ..job
            }
        } else {
            job
        };
        jobs.push(job);
    }
    jobs
}

fn data(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.f64_unit()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsort_vgpu::platform1;

    #[test]
    fn mix_is_deterministic_and_varied() {
        let a = synthetic_jobs(&platform1(), 60, 7);
        let b = synthetic_jobs(&platform1(), 60, 7);
        assert_eq!(a.len(), 60);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data, y.data);
            assert_eq!(x.arrival_s.to_bits(), y.arrival_s.to_bits());
            assert_eq!(x.priority, y.priority);
        }
        // All three priorities and at least one faulted job appear.
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert!(a.iter().any(|j| j.priority == p), "{:?}", p.name());
        }
        assert!(a.iter().any(|j| j.config.faults.is_some()));
        // The burst arrives together at t = 0.
        assert!(a.iter().filter(|j| j.arrival_s == 0.0).count() >= 12);
    }
}
